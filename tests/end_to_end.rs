//! Cross-crate integration tests: simulator → pcap → fingerprinting →
//! metrics, exercising the whole suite the way a downstream user would.

use wifiprint::analysis::{evaluate_frames, PipelineConfig};
use wifiprint::core::{
    load_db, save_db, EvalConfig, NetworkParameter, ReferenceDb, SignatureBuilder,
    SimilarityMeasure,
};
use wifiprint::ieee80211::{FrameKind, Nanos};
use wifiprint::scenarios::export::{read_pcap, write_pcap};
use wifiprint::scenarios::{ConferenceScenario, FaradayRig, OfficeScenario, FARADAY_DEVICE};

#[test]
fn sim_to_pcap_to_fingerprint_round_trip() {
    // Generate a trace, write it to a standard pcap file, read it back,
    // and verify the fingerprinting pipeline produces identical reference
    // databases from both copies.
    let trace = OfficeScenario::small(101, 60, 8).run_collect();
    let dir = std::env::temp_dir().join("wifiprint-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("round-trip.pcap");
    write_pcap(&path, &trace.frames).unwrap();
    let (reloaded, skipped) = read_pcap(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(skipped, 0);
    assert_eq!(reloaded.len(), trace.frames.len());

    let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
        .with_min_observations(30);
    let build = |frames: &[wifiprint::radiotap::CapturedFrame]| {
        let mut b = SignatureBuilder::new(&cfg);
        for f in frames {
            b.push(f);
        }
        b.finish()
    };
    let from_sim = build(&trace.frames);
    let from_pcap = build(&reloaded);
    assert!(!from_sim.is_empty());
    assert_eq!(from_sim.len(), from_pcap.len());
    for (dev, sig) in &from_sim {
        // Timestamps quantise to µs in pcap, so histograms may shift by a
        // sub-µs amount; compare structure, not bit equality.
        let other = &from_pcap[dev];
        assert_eq!(sig.kind_count(), other.kind_count(), "{dev}");
        assert_eq!(sig.observation_count(), other.observation_count(), "{dev}");
    }
}

#[test]
fn reference_db_persists_and_matches_identically() {
    let trace = ConferenceScenario::small(55, 60, 10).run_collect();
    let cfg = EvalConfig::for_parameter(NetworkParameter::TransmissionTime)
        .with_min_observations(30);
    let mut builder = SignatureBuilder::new(&cfg);
    for f in &trace.frames {
        builder.push(f);
    }
    let sigs = builder.finish();
    assert!(sigs.len() >= 3, "too few devices: {}", sigs.len());
    let db = ReferenceDb::from_signatures(sigs.clone());

    let mut buf = Vec::new();
    save_db(&mut buf, &db, cfg.parameter, &cfg.bins).unwrap();
    let (loaded, param, _bins) = load_db(&buf[..]).unwrap();
    assert_eq!(param, NetworkParameter::TransmissionTime);
    assert_eq!(loaded.len(), db.len());

    // Matching any candidate against the loaded DB gives identical scores.
    let candidate = sigs.values().next().unwrap();
    let a = db.match_signature(candidate, SimilarityMeasure::Cosine);
    let b = loaded.match_signature(candidate, SimilarityMeasure::Cosine);
    assert_eq!(a.similarities(), b.similarities());
}

#[test]
fn pipeline_identifies_devices_in_a_small_office() {
    // Seed chosen for a clear identification margin under the in-repo
    // ChaCha8 stream (the scenario is stochastic; weak draws exist).
    let scenario = OfficeScenario::small(5, 300, 10);
    let trace = scenario.run_collect();
    let cfg = PipelineConfig::miniature(100, 50, 50);
    let eval = evaluate_frames(&cfg, &trace.frames);
    assert!(eval.ref_devices >= 6, "ref devices = {}", eval.ref_devices);
    // Identification well above the 1/N ≈ 10% chance level for the
    // timing parameters.
    let ia = eval.identification(NetworkParameter::InterArrivalTime, 0.5);
    assert!(ia > 0.3, "inter-arrival identification = {ia}");
    // The similarity AUC beats coin flipping for every parameter.
    for p in NetworkParameter::ALL {
        let auc = eval.auc(p);
        assert!(auc > 0.5, "{p}: AUC = {auc}");
    }
}

#[test]
fn same_device_matches_itself_across_reruns() {
    // Two captures of the same device profile on different days (seeds)
    // must match each other far better than a different profile does.
    let catalog = wifiprint::devices::profile_catalog();
    let sig = |profile_idx: usize, seed: u64| {
        let trace =
            FaradayRig::for_profile(&catalog[profile_idx], seed, Nanos::from_secs(8)).run();
        let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime);
        let mut b = SignatureBuilder::new(&cfg);
        for f in &trace.frames {
            b.push(f);
        }
        b.finish().remove(&FARADAY_DEVICE).expect("signature")
    };
    let reference = sig(0, 1);
    let same_later = sig(0, 99);
    let different = sig(4, 99);
    let mut db = ReferenceDb::new();
    db.insert(FARADAY_DEVICE, reference);
    let sim_same = db
        .match_signature(&same_later, SimilarityMeasure::Cosine)
        .similarity_to(&FARADAY_DEVICE)
        .unwrap();
    let sim_diff = db
        .match_signature(&different, SimilarityMeasure::Cosine)
        .similarity_to(&FARADAY_DEVICE)
        .unwrap();
    assert!(
        sim_same > sim_diff + 0.2,
        "same-device {sim_same:.3} vs different-device {sim_diff:.3}"
    );
}

#[test]
fn encrypted_and_open_traces_both_fingerprint() {
    // The method works on WPA traffic (§III): encryption only changes
    // frame sizes, never the observables' availability.
    for enc in [0usize, 16] {
        let mut sc = OfficeScenario::small(21, 90, 6);
        sc.encryption_overhead = enc;
        let trace = sc.run_collect();
        let cfg = PipelineConfig::miniature(30, 30, 30);
        let eval = evaluate_frames(&cfg, &trace.frames);
        assert!(eval.ref_devices >= 4, "enc={enc}: refs = {}", eval.ref_devices);
        assert!(
            eval.auc(NetworkParameter::InterArrivalTime) > 0.5,
            "enc={enc}"
        );
    }
}

#[test]
fn anonymous_control_frames_never_produce_observations() {
    let trace = OfficeScenario::small(31, 30, 6).run_collect();
    let acks = trace
        .frames
        .iter()
        .filter(|f| matches!(f.kind, FrameKind::Ack | FrameKind::Cts))
        .count();
    assert!(acks > 50, "expected plenty of ACK/CTS frames, got {acks}");
    // Every ACK/CTS carries no transmitter, so no signature may contain
    // those kinds.
    let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize).with_min_observations(1);
    let mut builder = SignatureBuilder::new(&cfg);
    for f in &trace.frames {
        assert!(
            !(matches!(f.kind, FrameKind::Ack | FrameKind::Cts) && f.transmitter.is_some()),
            "anonymous frame with a transmitter: {f:?}"
        );
        builder.push(f);
    }
    for (dev, sig) in builder.finish() {
        for (kind, _) in sig.iter() {
            assert!(
                !kind.is_sender_anonymous(),
                "{dev} has observations for anonymous kind {kind}"
            );
        }
    }
}

#[test]
fn windows_shrink_when_traffic_is_sparse() {
    // A device active only in the first half of the validation period
    // yields candidate windows only there.
    let trace = OfficeScenario::small(61, 120, 5).run_collect();
    let cfg = PipelineConfig::miniature(30, 15, 50);
    let eval = evaluate_frames(&cfg, &trace.frames);
    // 90 s validation in 15 s windows = at most 6 windows × devices.
    let n = eval.candidate_instances[&NetworkParameter::InterArrivalTime];
    assert!(n <= 6 * (eval.ref_devices + 5), "implausible candidate count {n}");
    assert!(n > 0);
}
