//! Cross-crate integration tests: simulator → pcap → fingerprinting →
//! metrics, exercising the whole suite the way a downstream user would.

use std::collections::BTreeMap;

use wifiprint::analysis::{evaluate_frames, PipelineConfig};
use wifiprint::core::{
    load_db, save_db, Engine, EvalConfig, Event, FusionSpec, MatchConfig, MatchOutcome,
    MatchScratch, MultiConfig, MultiEngine, MultiEvent, NetworkParameter, ReferenceDb,
    ResilienceConfig, ShardStrategy, SignatureBuilder, SimilarityMeasure, WindowedSignatures,
    F32_SCORE_TOLERANCE,
};
use wifiprint::ieee80211::{FrameKind, MacAddr, Nanos};
use wifiprint::scenarios::export::{read_pcap, write_pcap};
use wifiprint::scenarios::{ConferenceScenario, FaradayRig, OfficeScenario, FARADAY_DEVICE};

#[test]
fn sim_to_pcap_to_fingerprint_round_trip() {
    // Generate a trace, write it to a standard pcap file, read it back,
    // and verify the fingerprinting pipeline produces identical reference
    // databases from both copies.
    let trace = OfficeScenario::small(101, 60, 8).run_collect();
    let dir = std::env::temp_dir().join("wifiprint-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("round-trip.pcap");
    write_pcap(&path, &trace.frames).unwrap();
    let (reloaded, skipped) = read_pcap(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(skipped, 0);
    assert_eq!(reloaded.len(), trace.frames.len());

    let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
        .with_min_observations(30);
    let build = |frames: &[wifiprint::radiotap::CapturedFrame]| {
        let mut b = SignatureBuilder::new(&cfg);
        for f in frames {
            b.push(f);
        }
        b.finish().expect("devices qualify")
    };
    let from_sim = build(&trace.frames);
    let from_pcap = build(&reloaded);
    assert!(!from_sim.is_empty());
    assert_eq!(from_sim.len(), from_pcap.len());
    for (dev, sig) in &from_sim {
        // Timestamps quantise to µs in pcap, so histograms may shift by a
        // sub-µs amount; compare structure, not bit equality.
        let other = &from_pcap[dev];
        assert_eq!(sig.kind_count(), other.kind_count(), "{dev}");
        assert_eq!(sig.observation_count(), other.observation_count(), "{dev}");
    }
}

#[test]
fn reference_db_persists_and_matches_identically() {
    let trace = ConferenceScenario::small(55, 60, 10).run_collect();
    let cfg = EvalConfig::for_parameter(NetworkParameter::TransmissionTime)
        .with_min_observations(30);
    let mut builder = SignatureBuilder::new(&cfg);
    for f in &trace.frames {
        builder.push(f);
    }
    let sigs = builder.finish().expect("devices qualify");
    assert!(sigs.len() >= 3, "too few devices: {}", sigs.len());
    let db = ReferenceDb::from_signatures(sigs.clone());

    let mut buf = Vec::new();
    save_db(&mut buf, &db, cfg.parameter, &cfg.bins).unwrap();
    let (loaded, param, _bins) = load_db(&buf[..]).unwrap();
    assert_eq!(param, NetworkParameter::TransmissionTime);
    assert_eq!(loaded.len(), db.len());

    // Matching any candidate against the loaded DB gives identical scores.
    let candidate = sigs.values().next().unwrap();
    let a = db.match_signature(candidate, SimilarityMeasure::Cosine);
    let b = loaded.match_signature(candidate, SimilarityMeasure::Cosine);
    assert_eq!(a.similarities(), b.similarities());
}

#[test]
fn pipeline_identifies_devices_in_a_small_office() {
    // Seed chosen for a clear identification margin under the in-repo
    // ChaCha8 stream (the scenario is stochastic; weak draws exist).
    let scenario = OfficeScenario::small(5, 300, 10);
    let trace = scenario.run_collect();
    let cfg = PipelineConfig::miniature(100, 50, 50);
    let eval = evaluate_frames(&cfg, &trace.frames).expect("pipeline run");
    assert!(eval.ref_devices >= 6, "ref devices = {}", eval.ref_devices);
    // Identification well above the 1/N ≈ 10% chance level for the
    // timing parameters.
    let ia = eval.identification(NetworkParameter::InterArrivalTime, 0.5);
    assert!(ia > 0.3, "inter-arrival identification = {ia}");
    // The similarity AUC beats coin flipping for every parameter.
    for p in NetworkParameter::ALL {
        let auc = eval.auc(p);
        assert!(auc > 0.5, "{p}: AUC = {auc}");
    }
}

#[test]
fn same_device_matches_itself_across_reruns() {
    // Two captures of the same device profile on different days (seeds)
    // must match each other far better than a different profile does.
    let catalog = wifiprint::devices::profile_catalog();
    let sig = |profile_idx: usize, seed: u64| {
        let trace =
            FaradayRig::for_profile(&catalog[profile_idx], seed, Nanos::from_secs(8)).run();
        let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime);
        let mut b = SignatureBuilder::new(&cfg);
        for f in &trace.frames {
            b.push(f);
        }
        b.finish().expect("device qualifies").remove(&FARADAY_DEVICE).expect("signature")
    };
    let reference = sig(0, 1);
    let same_later = sig(0, 99);
    let different = sig(4, 99);
    let mut db = ReferenceDb::new();
    db.insert(FARADAY_DEVICE, reference).expect("enroll");
    let sim_same = db
        .match_signature(&same_later, SimilarityMeasure::Cosine)
        .similarity_to(&FARADAY_DEVICE)
        .unwrap();
    let sim_diff = db
        .match_signature(&different, SimilarityMeasure::Cosine)
        .similarity_to(&FARADAY_DEVICE)
        .unwrap();
    assert!(
        sim_same > sim_diff + 0.2,
        "same-device {sim_same:.3} vs different-device {sim_diff:.3}"
    );
}

#[test]
fn encrypted_and_open_traces_both_fingerprint() {
    // The method works on WPA traffic (§III): encryption only changes
    // frame sizes, never the observables' availability.
    for enc in [0usize, 16] {
        let mut sc = OfficeScenario::small(21, 90, 6);
        sc.encryption_overhead = enc;
        let trace = sc.run_collect();
        let cfg = PipelineConfig::miniature(30, 30, 30);
        let eval = evaluate_frames(&cfg, &trace.frames).expect("pipeline run");
        assert!(eval.ref_devices >= 4, "enc={enc}: refs = {}", eval.ref_devices);
        assert!(
            eval.auc(NetworkParameter::InterArrivalTime) > 0.5,
            "enc={enc}"
        );
    }
}

#[test]
fn anonymous_control_frames_never_produce_observations() {
    let trace = OfficeScenario::small(31, 30, 6).run_collect();
    let acks = trace
        .frames
        .iter()
        .filter(|f| matches!(f.kind, FrameKind::Ack | FrameKind::Cts))
        .count();
    assert!(acks > 50, "expected plenty of ACK/CTS frames, got {acks}");
    // Every ACK/CTS carries no transmitter, so no signature may contain
    // those kinds.
    let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize).with_min_observations(1);
    let mut builder = SignatureBuilder::new(&cfg);
    for f in &trace.frames {
        assert!(
            !(matches!(f.kind, FrameKind::Ack | FrameKind::Cts) && f.transmitter.is_some()),
            "anonymous frame with a transmitter: {f:?}"
        );
        builder.push(f);
    }
    for (dev, sig) in builder.finish().expect("devices qualify") {
        for (kind, _) in sig.iter() {
            assert!(
                !kind.is_sender_anonymous(),
                "{dev} has observations for anonymous kind {kind}"
            );
        }
    }
}

#[test]
fn streaming_engine_equals_batch_pipeline_on_office_and_conference() {
    // The acceptance equivalence for the Engine redesign: the streaming
    // path must reproduce the batch flow's per-window match decisions —
    // same (window, device) sequence, same argmax, scores within the
    // documented f32 tolerance — on both of the paper's trace shapes,
    // and the (engine-driven) analysis pipeline must agree on the
    // aggregate counts.
    let traces = [
        ("office", OfficeScenario::small(5, 300, 10).run_collect()),
        ("conference", ConferenceScenario::small(7, 300, 12).run_collect()),
    ];
    for (name, trace) in traces {
        let mut cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
            .with_min_observations(50);
        cfg.window = Nanos::from_secs(50);
        let train = Nanos::from_secs(100);

        // Batch flow: split at the training boundary, learn, window the
        // validation portion, sweep every candidate at the end.
        let origin = trace.frames[0].t_end;
        let mut trainer = SignatureBuilder::new(&cfg);
        let mut validator = WindowedSignatures::new(&cfg);
        for f in &trace.frames {
            if f.t_end.saturating_sub(origin) < train {
                trainer.push(f);
            } else {
                validator.push(f);
            }
        }
        let db = ReferenceDb::from_signatures(trainer.finish().expect("devices qualify"));
        let candidates = validator.finish();
        assert!(!candidates.is_empty(), "{name}: batch flow must produce candidates");

        // Streaming flow: the engine over the identical frame stream.
        let mut engine = Engine::builder()
            .config(cfg.clone())
            .train_for(train)
            .build()
            .expect("valid engine configuration");
        let mut events = engine.observe_all(&trace.frames).expect("frames in capture order");
        events.extend(engine.finish().expect("first finish"));

        // The online-enrolled reference matches the batch-learned one.
        let engine_db = engine.into_reference().expect("trained reference");
        assert_eq!(
            engine_db.devices().collect::<Vec<_>>(),
            db.devices().collect::<Vec<_>>(),
            "{name}: enrolled devices differ"
        );

        let decisions: Vec<(usize, MacAddr, MatchOutcome)> = events
            .into_iter()
            .filter_map(|e| match e {
                Event::Match { window, device, view }
                | Event::NewDevice { window, device, view, .. } => Some((window, device, view)),
                _ => None,
            })
            .collect();
        assert_eq!(decisions.len(), candidates.len(), "{name}: decision count");

        let mut scratch = MatchScratch::new();
        let mut known = 0usize;
        for (cand, (window, device, view)) in candidates.iter().zip(&decisions) {
            assert_eq!((cand.index, cand.device), (*window, *device), "{name}");
            let want = db.match_signature_with(&cand.signature, cfg.measure, &mut scratch);
            assert_eq!(
                view.best().map(|(d, _)| d),
                want.best().map(|(d, _)| d),
                "{name}: argmax for {device} in window {window}"
            );
            assert_eq!(view.similarities().len(), want.similarities().len(), "{name}");
            for (got, expect) in view.similarities().iter().zip(want.similarities()) {
                assert_eq!(got.0, expect.0, "{name}: device order");
                assert!(
                    (got.1 - expect.1).abs() < F32_SCORE_TOLERANCE,
                    "{name}: {} vs {} for {device} in window {window}",
                    got.1,
                    expect.1
                );
            }
            if db.contains(device) {
                known += 1;
            }
        }

        // The analysis pipeline (a thin driver of the same engine)
        // reports exactly the decisions counted above.
        let pcfg = PipelineConfig {
            train_duration: train,
            window: cfg.window,
            min_observations: 50,
            measure: SimilarityMeasure::Cosine,
            parameters: vec![NetworkParameter::InterArrivalTime],
            match_config: MatchConfig::default(),
            resilience: ResilienceConfig::default(),
            ingest: None,
        };
        let eval = evaluate_frames(&pcfg, &trace.frames).expect("pipeline run");
        assert_eq!(
            eval.candidate_instances[&NetworkParameter::InterArrivalTime], known,
            "{name}: pipeline instance count"
        );
        assert_eq!(eval.ref_devices, db.len(), "{name}: pipeline reference count");
    }
}

#[test]
fn multi_engine_equals_five_engines_and_offline_fusion() {
    // The acceptance equivalence for the MultiEngine redesign, on both
    // of the paper's trace shapes:
    //
    // 1. per parameter, the fused engine's decisions are the five
    //    single-parameter engines' decisions — same (window, device)
    //    sequence, same argmax, scores within the documented f32
    //    tolerance;
    // 2. the fused (combined) scores equal the offline end-of-trace
    //    combination the analysis crate's fusion evaluator historically
    //    computed: per-parameter similarity vectors weighted-averaged
    //    over the commonly enrolled devices.
    let traces = [
        ("office", OfficeScenario::small(5, 300, 10).run_collect()),
        ("conference", ConferenceScenario::small(7, 300, 12).run_collect()),
    ];
    for (name, trace) in traces {
        let mcfg = MultiConfig::default()
            .with_min_observations(50)
            .with_window(Nanos::from_secs(50));
        let spec = FusionSpec::all_equal();
        let train = Nanos::from_secs(100);

        // Streaming: one fused engine over the identical frame stream.
        let mut multi = MultiEngine::builder()
            .spec(spec.clone())
            .config(mcfg.clone())
            .train_for(train)
            .build()
            .expect("valid engine configuration");
        let mut events = multi.observe_all(&trace.frames).expect("frames in capture order");
        events.extend(multi.finish().expect("first finish"));

        // 1. Per-parameter equivalence against five single engines.
        let mut total_decisions = 0usize;
        for param in NetworkParameter::ALL {
            let mut single = Engine::builder()
                .config(mcfg.eval_config(param))
                .train_for(train)
                .build()
                .expect("valid engine configuration");
            let mut single_events =
                single.observe_all(&trace.frames).expect("frames in capture order");
            single_events.extend(single.finish().expect("first finish"));

            assert_eq!(
                single.reference().expect("trained").devices().collect::<Vec<_>>(),
                multi.reference(param).expect("trained").devices().collect::<Vec<_>>(),
                "{name}/{param}: enrolled devices differ"
            );

            let singles: Vec<(usize, MacAddr, MatchOutcome)> = single_events
                .into_iter()
                .filter_map(|e| match e {
                    Event::Match { window, device, view }
                    | Event::NewDevice { window, device, view, .. } => {
                        Some((window, device, view))
                    }
                    _ => None,
                })
                .collect();
            let multis: Vec<(usize, MacAddr, &MatchOutcome)> = events
                .iter()
                .filter_map(|e| match e {
                    MultiEvent::FusedMatch { window, device, scores, .. }
                    | MultiEvent::FusedNewDevice { window, device, scores, .. } => scores
                        .iter()
                        .find(|d| d.parameter == param)
                        .map(|d| (*window, *device, &d.view)),
                    _ => None,
                })
                .collect();
            assert_eq!(singles.len(), multis.len(), "{name}/{param}: decision count");
            assert!(!singles.is_empty(), "{name}/{param}: no decisions to compare");
            total_decisions += singles.len();
            for ((sw, sd, sv), (mw, md, mv)) in singles.iter().zip(&multis) {
                assert_eq!((sw, sd), (mw, md), "{name}/{param}: decision identity");
                assert_eq!(
                    sv.best().map(|(d, _)| d),
                    mv.best().map(|(d, _)| d),
                    "{name}/{param}: argmax for {sd} in window {sw}"
                );
                assert_eq!(sv.similarities().len(), mv.similarities().len());
                for (a, b) in sv.similarities().iter().zip(mv.similarities()) {
                    assert_eq!(a.0, b.0, "{name}/{param}: device order");
                    assert!(
                        (a.1 - b.1).abs() < F32_SCORE_TOLERANCE,
                        "{name}/{param}: {} vs {} for {sd} in window {sw}",
                        a.1,
                        b.1
                    );
                }
            }
        }
        assert!(total_decisions > 0, "{name}: equivalence must cover real decisions");

        // 2. Fused scores equal the offline combination: learn per-param
        //    databases and window candidates batch-style, then weighted-
        //    average the per-parameter similarity vectors per candidate.
        let configs: Vec<EvalConfig> =
            NetworkParameter::ALL.iter().map(|&p| mcfg.eval_config(p)).collect();
        let origin = trace.frames[0].t_end;
        let mut trainers: Vec<SignatureBuilder> =
            configs.iter().map(SignatureBuilder::new).collect();
        let mut validators: Vec<WindowedSignatures> =
            configs.iter().map(WindowedSignatures::new).collect();
        for f in &trace.frames {
            if f.t_end.saturating_sub(origin) < train {
                for t in &mut trainers {
                    t.push(f);
                }
            } else {
                for v in &mut validators {
                    v.push(f);
                }
            }
        }
        let dbs: Vec<ReferenceDb> = trainers
            .into_iter()
            .map(|t| ReferenceDb::from_signatures(t.finish().unwrap_or_default()))
            .collect();
        let enrolled: Vec<MacAddr> = dbs[0]
            .devices()
            .filter(|d| dbs.iter().all(|db| db.contains(d)))
            .collect();
        let mut offline: BTreeMap<(usize, MacAddr), BTreeMap<MacAddr, f64>> = BTreeMap::new();
        let n_params = configs.len();
        let mut per_key: BTreeMap<(usize, MacAddr), Vec<Option<wifiprint::core::Signature>>> =
            BTreeMap::new();
        for (i, validator) in validators.into_iter().enumerate() {
            for cand in validator.finish() {
                per_key
                    .entry((cand.index, cand.device))
                    .or_insert_with(|| vec![None; n_params])[i] = Some(cand.signature);
            }
        }
        for ((window, device), sigs) in per_key {
            if !enrolled.contains(&device) || sigs.iter().any(Option::is_none) {
                continue;
            }
            let mut fused: BTreeMap<MacAddr, f64> =
                enrolled.iter().map(|&d| (d, 0.0)).collect();
            for (i, sig) in sigs.iter().enumerate() {
                let outcome =
                    dbs[i].match_signature(sig.as_ref().expect("checked"), mcfg.measure);
                for &(dev, sim) in outcome.similarities() {
                    if let Some(acc) = fused.get_mut(&dev) {
                        // Equal weights: each parameter contributes 1/5.
                        *acc += sim / n_params as f64;
                    }
                }
            }
            offline.insert((window, device), fused);
        }

        // The streamed fused scores must be exactly that combination.
        let mut streamed_fused = 0usize;
        for event in &events {
            let MultiEvent::FusedMatch { window, device, fused: Some(fused), .. } = event
            else {
                continue;
            };
            let want = offline
                .remove(&(*window, *device))
                .unwrap_or_else(|| panic!("{name}: no offline fusion for {device} in {window}"));
            assert_eq!(fused.similarities().len(), want.len(), "{name}: fused domain");
            for &(dev, got) in fused.similarities() {
                let expect = want[&dev];
                assert!(
                    (got - expect).abs() < F32_SCORE_TOLERANCE,
                    "{name}: fused {got} vs offline {expect} for {device} in window {window}"
                );
            }
            streamed_fused += 1;
        }
        assert!(streamed_fused > 0, "{name}: no fused decisions compared");
        assert!(
            offline.is_empty(),
            "{name}: offline fusion produced extra instances: {offline:?}"
        );
    }
}

#[test]
fn windows_shrink_when_traffic_is_sparse() {
    // A device active only in the first half of the validation period
    // yields candidate windows only there.
    let trace = OfficeScenario::small(61, 120, 5).run_collect();
    let cfg = PipelineConfig::miniature(30, 15, 50);
    let eval = evaluate_frames(&cfg, &trace.frames).expect("pipeline run");
    // 90 s validation in 15 s windows = at most 6 windows × devices.
    let n = eval.candidate_instances[&NetworkParameter::InterArrivalTime];
    assert!(n <= 6 * (eval.ref_devices + 5), "implausible candidate count {n}");
    assert!(n > 0);
}

#[test]
fn sharded_references_leave_multi_engine_decisions_unchanged() {
    // The acceptance equivalence for the sharded-store refactor: a
    // MultiEngine whose trained references use the sharded layout (any
    // strategy) must emit exactly the decisions of one using the flat
    // single-matrix layout — same event sequence, same per-parameter and
    // fused scores — on both of the paper's trace shapes.
    let traces = [
        ("office", OfficeScenario::small(5, 300, 10).run_collect()),
        ("conference", ConferenceScenario::small(7, 300, 12).run_collect()),
    ];
    let layouts = [
        ("dominant-histogram", MatchConfig::default()),
        ("mac-prefix", MatchConfig::default().with_strategy(ShardStrategy::MacPrefix)),
    ];
    for (name, trace) in traces {
        let run = |match_config: MatchConfig| {
            let mcfg = MultiConfig::default()
                .with_min_observations(50)
                .with_window(Nanos::from_secs(50))
                .with_match_config(match_config);
            let mut engine = MultiEngine::builder()
                .spec(FusionSpec::all_equal())
                .config(mcfg)
                .train_for(Nanos::from_secs(100))
                .build()
                .expect("valid engine configuration");
            let mut events = engine.observe_all(&trace.frames).expect("in-order frames");
            events.extend(engine.finish().expect("first finish"));
            events
        };
        let flat = run(MatchConfig::flat());
        for (layout, config) in layouts {
            let sharded = run(config);
            assert_eq!(flat.len(), sharded.len(), "{name}/{layout}: event count");
            let mut decisions = 0usize;
            for (a, b) in flat.iter().zip(&sharded) {
                match (a, b) {
                    (
                        MultiEvent::Enrolled { device: da, observations: oa },
                        MultiEvent::Enrolled { device: db_, observations: ob },
                    ) => {
                        assert_eq!((da, oa), (db_, ob), "{name}/{layout}: enrollment");
                    }
                    (
                        MultiEvent::FusedMatch {
                            window: wa, device: da, scores: sa, fused: fa, ..
                        },
                        MultiEvent::FusedMatch {
                            window: wb, device: db_, scores: sb, fused: fb, ..
                        },
                    )
                    | (
                        MultiEvent::FusedNewDevice {
                            window: wa, device: da, scores: sa, fused: fa, ..
                        },
                        MultiEvent::FusedNewDevice {
                            window: wb, device: db_, scores: sb, fused: fb, ..
                        },
                    ) => {
                        assert_eq!((wa, da), (wb, db_), "{name}/{layout}: decision identity");
                        assert_eq!(sa.len(), sb.len(), "{name}/{layout}: parameter count");
                        for (pa, pb) in sa.iter().zip(sb) {
                            assert_eq!(pa.parameter, pb.parameter, "{name}/{layout}");
                            assert_eq!(pa.known, pb.known, "{name}/{layout}");
                            // The sharded dense sweep is bit-identical to
                            // the flat one — exact equality, no tolerance.
                            assert_eq!(
                                pa.view.similarities(),
                                pb.view.similarities(),
                                "{name}/{layout}/{}: per-parameter scores",
                                pa.parameter
                            );
                        }
                        assert_eq!(
                            fa.as_ref().map(wifiprint::core::FusedOutcome::similarities),
                            fb.as_ref().map(wifiprint::core::FusedOutcome::similarities),
                            "{name}/{layout}: fused scores"
                        );
                        decisions += 1;
                    }
                    (
                        MultiEvent::WindowClosed { window: wa, candidates: ca, .. },
                        MultiEvent::WindowClosed { window: wb, candidates: cb, .. },
                    ) => {
                        assert_eq!((wa, ca), (wb, cb), "{name}/{layout}: window terminator");
                    }
                    other => panic!("{name}/{layout}: event sequences diverged: {other:?}"),
                }
            }
            assert!(decisions > 0, "{name}/{layout}: equivalence must cover real decisions");
        }
    }
}
