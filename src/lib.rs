//! # wifiprint
//!
//! A Rust reproduction of *"An empirical study of passive 802.11 device
//! fingerprinting"* (Neumann, Heen, Onno — ICDCS workshops 2012): the
//! fingerprinting library itself, the 802.11 substrate it is evaluated on,
//! and the full experiment harness.
//!
//! # The streaming engine
//!
//! The production entry point is [`core::Engine`] — a builder-configured
//! facade over the whole ingest → window → match path. A passive monitor
//! is online by nature, so the engine is too: feed it every captured
//! frame once, in capture order, and it emits typed
//! [`core::Event`]s as 5-minute detection windows close —
//! [`Enrolled`](core::Event::Enrolled) when the training phase seals the
//! reference database, [`Match`](core::Event::Match) /
//! [`NewDevice`](core::Event::NewDevice) per per-window candidate, and a
//! [`WindowClosed`](core::Event::WindowClosed) terminator. Failures are
//! typed too ([`core::EngineError`] wrapping [`core::CoreError`]).
//!
//! ```
//! use wifiprint::core::{Engine, Event, EvalConfig, NetworkParameter};
//! use wifiprint::ieee80211::Nanos;
//! use wifiprint::scenarios::OfficeScenario;
//!
//! // 90 s of simulated office traffic: train 30 s, then 15 s windows.
//! let mut cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
//!     .with_min_observations(30);
//! cfg.window = Nanos::from_secs(15);
//! let mut engine = Engine::builder()
//!     .config(cfg)
//!     .train_for(Nanos::from_secs(30))
//!     .build()
//!     .expect("valid configuration");
//!
//! let scenario = OfficeScenario::small(42, 90, 8);
//! let (mut events, _report) = scenario.run_engine(&mut engine).expect("in-order capture");
//! events.extend(engine.finish().expect("first finish"));
//! assert!(events.iter().any(|e| matches!(e, Event::Enrolled { .. })));
//! assert!(events.iter().any(|e| matches!(e, Event::WindowClosed { .. })));
//! ```
//!
//! The batch experiment harness ([`analysis::StreamingEvaluator`]) is a
//! thin driver of the same engine — one per network parameter — so the
//! paper's accuracy tables and a production deployment exercise the
//! identical code path.
//!
//! # Workspace map
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] — the [`core::Engine`], signatures, the SoA/SIMD matching
//!   sweep and accuracy metrics (the paper's contribution),
//! * [`ieee80211`] — MAC frames, rates and PHY timing,
//! * [`radiotap`] — capture headers and the [`radiotap::CapturedFrame`]
//!   interchange type,
//! * [`pcap`] — capture-file I/O,
//! * [`netsim`] — the discrete-event 802.11 channel simulator,
//! * [`devices`] — chipset/driver/service profiles,
//! * [`scenarios`] — the office/conference/Faraday trace generators, each
//!   able to stream straight into an engine (`run_engine`),
//! * [`analysis`] — the evaluation pipeline, tables and plots.
//!
//! See the `examples/` directory for runnable walkthroughs (start with
//! `quickstart.rs`) and `crates/bench/src/bin/repro.rs` for the
//! table/figure reproduction harness.

#![forbid(unsafe_code)]

pub use wifiprint_analysis as analysis;
pub use wifiprint_core as core;
pub use wifiprint_devices as devices;
pub use wifiprint_ieee80211 as ieee80211;
pub use wifiprint_netsim as netsim;
pub use wifiprint_pcap as pcap;
pub use wifiprint_radiotap as radiotap;
pub use wifiprint_scenarios as scenarios;
