//! # wifiprint
//!
//! A Rust reproduction of *"An empirical study of passive 802.11 device
//! fingerprinting"* (Neumann, Heen, Onno — ICDCS workshops 2012): the
//! fingerprinting library itself, the 802.11 substrate it is evaluated on,
//! and the full experiment harness.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] — signatures, matching and accuracy metrics (the paper's
//!   contribution),
//! * [`ieee80211`] — MAC frames, rates and PHY timing,
//! * [`radiotap`] — capture headers and the [`radiotap::CapturedFrame`]
//!   interchange type,
//! * [`pcap`] — capture-file I/O,
//! * [`netsim`] — the discrete-event 802.11 channel simulator,
//! * [`devices`] — chipset/driver/service profiles,
//! * [`scenarios`] — the office/conference/Faraday trace generators,
//! * [`analysis`] — the evaluation pipeline, tables and plots.
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `crates/bench/src/bin/repro.rs` for the table/figure reproduction
//! harness.

#![forbid(unsafe_code)]

pub use wifiprint_analysis as analysis;
pub use wifiprint_core as core;
pub use wifiprint_devices as devices;
pub use wifiprint_ieee80211 as ieee80211;
pub use wifiprint_netsim as netsim;
pub use wifiprint_pcap as pcap;
pub use wifiprint_radiotap as radiotap;
pub use wifiprint_scenarios as scenarios;
