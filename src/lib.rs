//! # wifiprint
//!
//! A Rust reproduction of *"An empirical study of passive 802.11 device
//! fingerprinting"* (Neumann, Heen, Onno — ICDCS workshops 2012): the
//! fingerprinting library itself, the 802.11 substrate it is evaluated on,
//! and the full experiment harness.
//!
//! # The fused streaming engine
//!
//! The production entry point is [`core::MultiEngine`] — a
//! builder-configured facade over the whole ingest → window → match →
//! fuse path, extracting **all five** network parameters from a single
//! header parse per frame and combining their similarity scores online.
//! A passive monitor is online by nature, so the engine is too: feed it
//! every captured frame once, in capture order, and it emits typed
//! [`core::MultiEvent`]s as 5-minute detection windows close —
//! [`Enrolled`](core::MultiEvent::Enrolled) when the training phase
//! seals the per-parameter reference databases,
//! [`FusedMatch`](core::MultiEvent::FusedMatch) /
//! [`FusedNewDevice`](core::MultiEvent::FusedNewDevice) per per-window
//! candidate (per-parameter similarity vectors plus one weighted-average
//! fused score, per [`core::FusionSpec`]), and a
//! [`WindowClosed`](core::MultiEvent::WindowClosed) terminator. Windows
//! also close on wall clock ([`core::MultiEngine::advance_to`] /
//! `tick`), so a quiet channel cannot stall the final decision.
//! Failures are typed ([`core::EngineError`] wrapping
//! [`core::CoreError`]); single-parameter deployments keep the leaner
//! [`core::Engine`].
//!
//! ```
//! use wifiprint::core::{FusionSpec, MultiConfig, MultiEngine, MultiEvent};
//! use wifiprint::ieee80211::Nanos;
//! use wifiprint::scenarios::OfficeScenario;
//!
//! // 90 s of simulated office traffic: train 30 s, then 15 s windows,
//! // all five parameters fused with equal weights.
//! let cfg = MultiConfig::default()
//!     .with_min_observations(30)
//!     .with_window(Nanos::from_secs(15));
//! let mut engine = MultiEngine::builder()
//!     .spec(FusionSpec::all_equal())
//!     .config(cfg)
//!     .train_for(Nanos::from_secs(30))
//!     .build()
//!     .expect("valid configuration");
//!
//! let scenario = OfficeScenario::small(42, 90, 8);
//! let (mut events, _report) = scenario.run_multi_engine(&mut engine).expect("in-order capture");
//! events.extend(engine.finish().expect("first finish"));
//! assert!(events.iter().any(|e| matches!(e, MultiEvent::Enrolled { .. })));
//! assert!(events.iter().any(|e| matches!(e, MultiEvent::WindowClosed { .. })));
//! ```
//!
//! The batch experiment harness ([`analysis::StreamingEvaluator`]) is a
//! thin driver of the same fused engine, so the paper's accuracy tables
//! and a production deployment exercise the identical code path.
//!
//! # Degraded captures
//!
//! Real monitors are not the clean capture the paper assumes: they drop
//! frames under load, deliver out of order through USB batching, and
//! pass truncated or duplicated frames. Both engines therefore sit
//! behind a configurable ingest front ([`core::ResilienceConfig`],
//! builder method `resilience()`): a late-frame policy
//! ([`core::LateFramePolicy`] — strict `Reject` by default, `Drop`, or
//! `Reorder` which restores any stream shuffled within a bounded
//! horizon to capture order *bit-identically*), exact-duplicate
//! suppression, and a runt-size gate. Every dropped frame is accounted
//! for in [`core::EngineHealth`] (`health()`), and the fused engine
//! degrades gracefully: with a fusion quorum set, a sparse window is
//! fused over the parameters that survived, with the missing ones named
//! on the event. The `scenarios::faults::FaultInjector` generates
//! seeded, reproducible capture degradations (burst loss, reordering,
//! jitter, corruption, chaff) and `analysis::robustness` turns them
//! into accuracy-vs-fault-rate tables; CI runs that matrix as a chaos
//! gate.
//!
//! # Overload & supervision
//!
//! Degraded *flow* — burst overload, a stalled source, a poison frame
//! that panics mid-sweep — is handled one layer up by the supervised
//! ingest front ([`core::IngestPipeline`]): either engine runs on a
//! supervised worker thread behind a bounded MPMC ring. An
//! [`core::OverloadPolicy`] decides what a full ring does to a
//! submission (`Block` back-pressure by default, or shed the
//! newest/oldest frame, every shed counted); `catch_unwind` quarantines
//! a frame whose sweep panics into a capped [`core::Quarantine`] buffer
//! and restarts the worker so the stream survives; a stall watchdog
//! drives `tick()` on a wall-clock deadline so a silent source cannot
//! stall window decisions; and a sequence-numbered reassembler keeps
//! delivered events in submission order — bit-identical to synchronous
//! `observe` under `Block` with no faults (property-tested). The whole
//! session reconciles exactly through the [`core::EngineHealth`]
//! conservation law
//! (`seen = delivered + dropped + shed + quarantined + pending`), and
//! `analysis::robustness::evaluate_overload` turns offered-load sweeps
//! into accuracy/latency/shed-rate tables.
//!
//! # The sharded reference store
//!
//! Underneath every engine sits a **sharded** [`core::ReferenceDb`]:
//! rows are bucketed by a locality-sensitive key of each device's
//! dominant histogram (MAC-prefix hashing as the fallback strategy),
//! selectable via [`core::MatchConfig`] and threaded through every
//! configuration layer ([`core::EvalConfig`], [`core::MultiConfig`],
//! [`analysis::PipelineConfig`]). The dense sweeps the engines run are
//! bit-for-bit the flat single-matrix sweep — sharding never changes a
//! decision — while the pruned [`core::ReferenceDb::match_topk`] sweep
//! uses per-shard summaries (upper envelope of the normalised rows +
//! max weight) to skip every shard whose best possible score cannot
//! beat the current top-k: at 10⁵ enrolled devices
//! (`scenarios::MetropolisScenario`, ~50 000 heterogeneous traffic
//! mixes by default) it answers identification queries severalfold
//! faster than the dense sweep (`BENCH_5.json`:
//! `sharded_sweep_speedup`, with the pruned-shard fraction).
//!
//! # MAC randomization & linking
//!
//! Modern clients rotate randomized MAC addresses precisely to defeat
//! address-based tracking — which makes the paper's fingerprints the
//! interesting signal: they survive the rotation. The
//! [`core::RotationLinker`] chains rotated addresses back to stable
//! device identities online: each sighting (an address plus the
//! per-parameter signatures observed under it) is first resolved
//! through its MAC binding (a universally-administered address *is* an
//! identity), and otherwise swept against per-parameter identity
//! galleries — internal sharded [`core::ReferenceDb`]s queried through
//! the pruned [`core::ReferenceDb::match_topk`] path — fusing the
//! per-parameter scores under a [`core::FusionSpec`] and emitting a
//! typed [`core::LinkEvent`]: `Linked` (with confidence), `NewIdentity`
//! or `Ambiguous` (abstention under a configurable margin). TTL and
//! capacity eviction bound the gallery; every decision is accounted for
//! in [`core::LinkerStats`], whose conservation law
//! (`sightings = linked + new_identities + ambiguous`) is
//! property-tested.
//!
//! `scenarios::rotation` generates seeded rotation trails over any base
//! population ([`scenarios::RotationScenario`] over
//! [`scenarios::MetropolisScenario`]): `Never`, `Periodic`,
//! `PerAssociation` burst and `PerSsid` policies, each with an exact
//! [`scenarios::RotationLedger`] mapping every emitted address back to
//! its true owner. `analysis::linking` replays a trail through the
//! linker and scores it against the ledger
//! ([`analysis::linking::evaluate_linking`]): fresh-link
//! precision/recall and identity merge rate vs rotation rate, tabled
//! like the paper's spoofing experiments. CI pins the headline point
//! (1 000 devices, periodic rotation, precision ≥ 0.90 at the tuned
//! operating point) as a fixed-seed linking gate, and `BENCH_7.json`
//! records linker sighting throughput (`linker_throughput_fps`).
//!
//! ```
//! use wifiprint::analysis::linking::{evaluate_linking, metropolis_linker_config};
//! use wifiprint::scenarios::{MetropolisScenario, RotationPolicy};
//!
//! // 64 devices, 4 sightings each: a stable population and one that
//! // rotates its MAC every second sighting.
//! let base = MetropolisScenario::with_devices(7, 64);
//! let sweep = evaluate_linking(
//!     &base,
//!     4,
//!     &[RotationPolicy::Never, RotationPolicy::Periodic { period: 2 }],
//!     &metropolis_linker_config(),
//! )
//! .expect("valid linking configuration");
//!
//! // Rotation rate 0 is the identity map: nothing to link, nothing wrong.
//! assert_eq!(sweep.points[0].precision(), 1.0);
//! assert_eq!(sweep.points[0].merge_rate(), 0.0);
//! println!("{}", sweep.table());
//! ```
//!
//! # Real-capture replay
//!
//! Everything above consumed simulated traffic; real deployments start
//! from a capture file. [`pcap::Replay`] is the zero-copy bridge: raw
//! DLT-127/119/105 pcap bytes are decoded straight into
//! [`radiotap::CapturedFrame`] observations through the borrowed
//! [`ieee80211::WireFrame`] header view — **zero heap allocations per
//! record** in steady state (allocation-counter-tested), with
//! [`pcap::Replay::from_slice`] going further for in-memory files by
//! borrowing records in place and never touching frame bodies at all.
//! [`pcap::replay_into_engine`] / [`pcap::replay_into_multi`] drive a
//! whole file into an engine in one call and return per-file
//! [`pcap::ReplayStats`]: decode-error counts per layer, plus how often
//! the monitor omitted rate/signal/TSFT so decode fell back to defaults
//! — silently-defaulted fields skew derived air times, and the stats
//! make that visible.
//!
//! ```
//! use wifiprint::core::{FusionSpec, MultiConfig, MultiEngine, MultiEvent};
//! use wifiprint::ieee80211::{Frame, MacAddr, Nanos, Rate};
//! use wifiprint::pcap::{replay_into_multi, LinkType, Record, Replay, Writer};
//! use wifiprint::radiotap::{RxFlags, RxInfo};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Stand-in for a real monitor-mode capture: two stations, one AP.
//! let ap = MacAddr::from_index(0xA0);
//! let stations = [MacAddr::from_index(1), MacAddr::from_index(2)];
//! let mut file = Vec::new();
//! let mut writer = Writer::new(&mut file, LinkType::Ieee80211Radiotap)?;
//! for i in 0..2_000u64 {
//!     let sta = stations[(i % 2) as usize];
//!     let frame = Frame::data_to_ds(sta, ap, ap, 200 + (i % 2) as usize * 600);
//!     let ts_us = 2_000 * (i + 1);
//!     let info = RxInfo {
//!         tsft_us: Some(ts_us),
//!         rate: Some(Rate::R54M),
//!         signal_dbm: Some(if i % 2 == 0 { -48 } else { -61 }),
//!         flags: RxFlags::FCS_INCLUDED,
//!         ..RxInfo::default()
//!     };
//!     let mut packet = info.to_radiotap();
//!     packet.extend_from_slice(&frame.to_bytes());
//!     writer.write_record(&Record::from_micros(ts_us, packet))?;
//! }
//!
//! // Replay the capture into the fused engine.
//! let mut cfg = MultiConfig::default().with_min_observations(20);
//! cfg.window = Nanos::from_secs(1);
//! let mut engine = MultiEngine::builder()
//!     .spec(FusionSpec::all_equal())
//!     .config(cfg)
//!     .train_for(Nanos::from_secs(2))
//!     .build()?;
//! let mut replay = Replay::from_slice(&file)?;
//! let (mut events, stats) = replay_into_multi(&mut replay, &mut engine)?;
//! events.extend(engine.finish()?);
//!
//! assert_eq!((stats.decoded, stats.decode_errors()), (2_000, 0));
//! assert_eq!(
//!     events.iter().filter(|e| matches!(e, MultiEvent::Enrolled { .. })).count(),
//!     2,
//! );
//! # Ok(())
//! # }
//! ```
//!
//! # Workspace map
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`core`] — the fused [`core::MultiEngine`] and single-parameter
//!   [`core::Engine`], signatures, score fusion, the sharded SoA/SIMD
//!   matching store with pruned top-k sweeps, the
//!   [`core::RotationLinker`] identity tracker, and accuracy metrics
//!   (the paper's contribution),
//! * [`ieee80211`] — MAC frames, rates and PHY timing,
//! * [`radiotap`] — capture headers and the [`radiotap::CapturedFrame`]
//!   interchange type,
//! * [`pcap`] — capture-file I/O and the zero-copy
//!   [`pcap::Replay`] path from raw capture bytes into either engine,
//! * [`netsim`] — the discrete-event 802.11 channel simulator,
//! * [`devices`] — chipset/driver/service profiles,
//! * [`scenarios`] — the office/conference/Faraday trace generators
//!   (each able to stream straight into an engine, `run_engine`), the
//!   metropolis large-population stress scenario, seeded MAC-rotation
//!   trail generators with exact ownership ledgers, and the seeded
//!   fault injector for degraded-capture experiments,
//! * [`analysis`] — the evaluation pipeline, tables, plots, the
//!   robustness (accuracy-vs-fault-rate) sweeps and the
//!   linking-accuracy (precision/recall-vs-rotation-rate) sweeps.
//!
//! See the `examples/` directory for runnable walkthroughs (start with
//! `quickstart.rs`; `rotation_linking.rs` runs the MAC-randomization
//! linking sweep; `crates/bench/examples/pcap_replay.rs` replays a pcap
//! capture — yours or a synthetic one — through the zero-copy ingest
//! path) and `crates/bench/src/bin/repro.rs` for the table/figure
//! reproduction harness.

#![forbid(unsafe_code)]

pub use wifiprint_analysis as analysis;
pub use wifiprint_core as core;
pub use wifiprint_devices as devices;
pub use wifiprint_ieee80211 as ieee80211;
pub use wifiprint_netsim as netsim;
pub use wifiprint_pcap as pcap;
pub use wifiprint_radiotap as radiotap;
pub use wifiprint_scenarios as scenarios;
