//! Quickstart: stream a small office capture through the production
//! [`MultiEngine`] — online enrollment, then per-window fused
//! identification events as the monitor would emit them live.
//!
//! One fused header parse per frame feeds all five network parameters;
//! each event carries the per-parameter similarity vectors *and* their
//! weighted combination, which is where the paper's method is strongest
//! (§VIII: combining parameters).
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wifiprint::core::{
    FusionSpec, MatchConfig, MatchScratch, MultiConfig, MultiEngine, MultiEvent,
    SimilarityMeasure,
};
use wifiprint::ieee80211::Nanos;
use wifiprint::scenarios::{MetropolisScenario, OfficeScenario};

fn main() {
    // 1. A 4-minute office capture with 12 devices (seeded, reproducible).
    let scenario = OfficeScenario::small(42, 240, 12);
    println!("simulating {} seconds of office traffic ...", 240);

    // 2. One fused streaming engine: the first 60 s of the stream train
    //    the per-parameter reference databases (frozen at the boundary),
    //    the rest is matched in 30 s detection windows as they close —
    //    all five parameters extracted from a single parse per frame.
    let cfg = MultiConfig::default()
        .with_min_observations(50)
        .with_window(Nanos::from_secs(30));
    let mut engine = MultiEngine::builder()
        .spec(FusionSpec::all_equal())
        .config(cfg)
        .train_for(Nanos::from_secs(60))
        .build()
        .expect("valid engine configuration");

    // Monitor → engine, no trace collection in between.
    let (mut events, report) =
        scenario.run_multi_engine(&mut engine).expect("simulator emits frames in capture order");
    events.extend(engine.finish().expect("first finish"));

    println!(
        "captured {} frames ({} collisions on the medium)",
        report.stats.monitor.captured, report.stats.collisions
    );
    let enrolled = events.iter().filter(|e| matches!(e, MultiEvent::Enrolled { .. })).count();
    println!("reference databases: {enrolled} devices enrolled after 60 s of training");

    // 3. Narrate the event stream: one fused identification decision per
    //    (window, device), emitted the moment each window closed.
    let mut correct = 0usize;
    let mut total = 0usize;
    for event in &events {
        match event {
            MultiEvent::FusedMatch { window, device, scores, fused: Some(fused), .. } => {
                let (best, sim) = fused.best().expect("common enrolled set is non-empty");
                let verdict = if best == *device {
                    correct += 1;
                    "ok"
                } else {
                    "MISIDENTIFIED"
                };
                total += 1;
                println!(
                    "  window {window:2}  {device}  ->  {best}  (fused {sim:.3} over {} parameters)  {verdict}",
                    scores.len()
                );
            }
            MultiEvent::FusedNewDevice { window, device, fused, .. } => match fused {
                Some(f) => {
                    let (closest, sim) = f.best().expect("fused view is non-empty");
                    println!(
                        "  window {window:2}  {device}  not enrolled; closest reference {closest} (fused {sim:.3})"
                    );
                }
                None => println!("  window {window:2}  {device}  not enrolled"),
            },
            MultiEvent::FusedMatch { .. }
            | MultiEvent::Enrolled { .. }
            | MultiEvent::WindowClosed { .. } => {}
        }
    }

    // 4. The paper's identification test, over the streamed fused
    //    decisions.
    if total > 0 {
        println!(
            "fused identification: {correct}/{total} window decisions correct ({:.1}%)",
            100.0 * correct as f64 / total as f64
        );
    } else {
        println!("no detection window produced a qualifying candidate; try a longer capture");
    }

    // 5. Beyond the paper: the reference store is sharded
    //    (dominant-histogram locality buckets, MatchConfig), so a
    //    metropolis-scale population answers "who is this?" without
    //    sweeping every enrolled row — shards whose summary cannot beat
    //    the current top-k are pruned before the SIMD sweep runs.
    let metropolis = MetropolisScenario::with_devices(7, 5_000);
    let db = metropolis.reference_db(MatchConfig::default().with_shards(64));
    let mut scratch = MatchScratch::new();
    let probe = metropolis.candidate(1234, 3);
    let top = db.match_topk(&probe, 3, SimilarityMeasure::Cosine, &mut scratch);
    let stats = scratch.prune_stats();
    println!(
        "metropolis: matched one probe against {} devices sweeping {}/{} shards ({:.0}% pruned)",
        db.len(),
        stats.swept_shards,
        stats.swept_shards + stats.pruned_shards,
        100.0 * stats.pruned_fraction()
    );
    for (device, sim) in top {
        println!("  closest reference {device}  (cosine {sim:.3})");
    }
}
