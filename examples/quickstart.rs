//! Quickstart: stream a small office capture through the production
//! [`Engine`] — online enrollment, then per-window identification events
//! as the monitor would emit them live.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wifiprint::core::{Engine, EvalConfig, Event, NetworkParameter};
use wifiprint::ieee80211::Nanos;
use wifiprint::scenarios::OfficeScenario;

fn main() {
    // 1. A 4-minute office capture with 12 devices (seeded, reproducible).
    let scenario = OfficeScenario::small(42, 240, 12);
    println!("simulating {} seconds of office traffic ...", 240);

    // 2. One streaming engine: the first 60 s of the stream train the
    //    reference database (frozen at the boundary), the rest is
    //    matched in 30 s detection windows as they close.
    let mut cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
        .with_min_observations(50);
    cfg.window = Nanos::from_secs(30);
    let mut engine = Engine::builder()
        .config(cfg)
        .train_for(Nanos::from_secs(60))
        .build()
        .expect("valid engine configuration");

    // Monitor → engine, no trace collection in between.
    let (mut events, report) =
        scenario.run_engine(&mut engine).expect("simulator emits frames in capture order");
    events.extend(engine.finish().expect("first finish"));

    println!(
        "captured {} frames ({} collisions on the medium)",
        report.stats.monitor.captured, report.stats.collisions
    );
    let enrolled = events.iter().filter(|e| matches!(e, Event::Enrolled { .. })).count();
    println!("reference database: {enrolled} devices enrolled after 60 s of training");

    // 3. Narrate the event stream: one identification decision per
    //    (window, device), emitted the moment each window closed.
    let mut correct = 0usize;
    let mut total = 0usize;
    for event in &events {
        match event {
            Event::Match { window, device, view } => {
                let (best, sim) = view.best().expect("reference database is non-empty");
                let verdict = if best == *device {
                    correct += 1;
                    "ok"
                } else {
                    "MISIDENTIFIED"
                };
                total += 1;
                println!("  window {window:2}  {device}  ->  {best}  (similarity {sim:.3})  {verdict}");
            }
            Event::NewDevice { window, device, view, .. } => {
                match view.best() {
                    Some((closest, sim)) => println!(
                        "  window {window:2}  {device}  not enrolled; closest reference {closest} ({sim:.3})"
                    ),
                    None => println!("  window {window:2}  {device}  not enrolled"),
                }
            }
            Event::Enrolled { .. } | Event::WindowClosed { .. } => {}
        }
    }

    // 4. The paper's identification test, over the streamed decisions.
    if total > 0 {
        println!(
            "identification: {correct}/{total} window decisions correct ({:.1}%)",
            100.0 * correct as f64 / total as f64
        );
    } else {
        println!("no detection window produced a qualifying candidate; try a longer capture");
    }
}
