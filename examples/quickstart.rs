//! Quickstart: generate a small office capture, learn a reference
//! database, and identify devices in a later detection window.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use wifiprint::analysis::{PipelineConfig, StreamingEvaluator};
use wifiprint::core::NetworkParameter;
use wifiprint::scenarios::OfficeScenario;

fn main() {
    // 1. A 4-minute office capture with 12 devices (seeded, reproducible).
    let scenario = OfficeScenario::small(42, 240, 12);
    println!("simulating {} seconds of office traffic ...", 240);

    // 2. Stream it through the paper's pipeline: first 60 s train the
    //    reference database, the rest is split into 30 s detection windows.
    let mut cfg = PipelineConfig::miniature(60, 30, 50);
    cfg.parameters =
        vec![NetworkParameter::InterArrivalTime, NetworkParameter::TransmissionTime];
    let mut evaluator = StreamingEvaluator::new(&cfg);
    let report = scenario.run_streaming(&mut |frame| evaluator.push(frame));
    let eval = evaluator.finish();

    println!(
        "captured {} frames ({} collisions on the medium)",
        report.stats.monitor.captured, report.stats.collisions
    );
    println!("reference database: {} devices", eval.ref_devices);

    // 3. Report both of the paper's tests.
    for p in cfg.parameters.iter().copied() {
        let outcome = &eval.outcomes[&p];
        println!(
            "{:20} AUC {:5.1}%   identification @ FPR 0.1: {:5.1}%  ({} candidate windows)",
            p.label(),
            100.0 * outcome.auc(),
            100.0 * outcome.identification_at_fpr(0.1),
            outcome.instances,
        );
    }
}
