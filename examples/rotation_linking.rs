//! MAC randomization & linking (§VII privacy headline): chaining
//! rotated addresses back to one device identity at scale.
//!
//! A metropolis population rotates its MAC addresses under three real
//! randomization policies (timer-driven, per-association, per-SSID).
//! The streaming [`RotationLinker`] consumes the sighting stream cold —
//! no enrollment phase — founding an identity on first contact and
//! chaining later randomized addresses back through pruned gallery
//! sweeps. Accuracy is scored against the scenario's exact rotation
//! ledger; the table puts precision/recall/merge-rate next to the
//! gallery's pruned-sweep cost.
//!
//! ```sh
//! cargo run --release --example rotation_linking
//! ```

use wifiprint::analysis::linking::{evaluate_linking, metropolis_linker_config};
use wifiprint::scenarios::{MetropolisScenario, RotationPolicy};

fn main() {
    let devices: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    let base = MetropolisScenario::with_devices(20_120_711, devices);
    let policies = [
        RotationPolicy::Never,
        RotationPolicy::Periodic { period: 2 },
        RotationPolicy::PerAssociation { burst: 3 },
        RotationPolicy::PerSsid { ssids: 2 },
    ];

    println!("linking {devices} rotating devices, 6 sightings each ...\n");
    let sweep = evaluate_linking(&base, 6, &policies, &metropolis_linker_config())
        .expect("valid linker configuration");
    println!("{}", sweep.table());

    let headline = &sweep.points[1];
    println!(
        "\nheadline (periodic p2): precision {:.1}%, recall {:.1}%, \
         {} identities over {} rotated MACs, {:.0}% of gallery shards pruned",
        100.0 * headline.precision(),
        100.0 * headline.recall(),
        headline.identities_founded,
        headline.distinct_macs,
        100.0 * headline.stats.pruned_fraction(),
    );
}
