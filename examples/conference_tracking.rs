//! Privacy implications (§VII-B3): fingerprints track devices across MAC
//! address changes.
//!
//! A conference attendee randomises their MAC address halfway through the
//! day. MAC-based tracking loses them — but the fused [`MultiEngine`]
//! flags the "new" address as a [`MultiEvent::FusedNewDevice`] whose
//! **combined** timing-trio similarity (inter-arrival, medium access,
//! transmission time) ranks the old identity among the closest
//! references: fusing parameters makes re-identification harder to
//! dodge when any single projection is ambiguous.
//!
//! ```sh
//! cargo run --release --example conference_tracking
//! ```

use wifiprint::core::{FusionSpec, MultiConfig, MultiEngine, MultiEvent};
use wifiprint::ieee80211::{MacAddr, Nanos};
use wifiprint::scenarios::ConferenceScenario;

fn cfg() -> MultiConfig {
    MultiConfig::default().with_min_observations(50)
}

fn main() {
    // Morning session: a training-only engine run is the enrollment
    // entry point — finish() emits one Enrolled event per attendee and
    // hands over the frozen per-parameter reference databases.
    println!("morning: learning reference signatures at the venue ...");
    let morning = ConferenceScenario::small(5, 120, 14).run_collect();
    let mut enroller = MultiEngine::builder()
        .spec(FusionSpec::timing_trio())
        .config(cfg())
        .train_for(Nanos::from_secs(3600))
        .build()
        .expect("valid engine configuration");
    enroller.observe_all(&morning.frames).expect("frames in capture order");
    let enrolled = enroller.finish().expect("first finish");
    let dbs = enroller.into_references();
    let known_devices: Vec<MacAddr> =
        dbs.values().next().map(|db| db.devices().collect()).unwrap_or_default();
    println!(
        "reference databases: {} devices × {} parameters ({} Enrolled events)",
        known_devices.len(),
        dbs.len(),
        enrolled.len()
    );

    // Afternoon: the same venue, same devices — but we pretend the
    // chattiest enrolled device rotated its MAC address (we relabel its
    // frames).
    let target = *morning
        .transmitters()
        .iter()
        .filter(|(addr, _)| known_devices.contains(addr) && !morning.report.aps.contains(addr))
        .max_by_key(|(_, n)| **n)
        .expect("nonempty reference")
        .0;
    let new_mac = MacAddr::new([0x02, 0xDE, 0xAD, 0xBE, 0xEF, 0x01]);
    println!("afternoon: device {target} rotates its MAC to {new_mac}");

    let mut afternoon = ConferenceScenario::small(6, 120, 14).run_collect();
    for f in &mut afternoon.frames {
        if f.transmitter == Some(target) {
            f.transmitter = Some(new_mac);
        }
    }

    // Detection: a second engine against the morning's frozen databases.
    // The rotated device has no reference entry, so it surfaces as a
    // FusedNewDevice event — scored against every reference anyway, per
    // parameter and fused.
    let mut detector = MultiEngine::builder()
        .spec(FusionSpec::timing_trio())
        .config(cfg())
        .references(dbs)
        .build()
        .expect("valid engine configuration");
    let mut events = detector.observe_all(&afternoon.frames).expect("frames in capture order");
    events.extend(detector.finish().expect("first finish"));

    let Some(fused) = events.iter().find_map(|e| match e {
        MultiEvent::FusedNewDevice { device, fused: Some(f), .. } if *device == new_mac => {
            Some(f)
        }
        _ => None,
    }) else {
        println!("(the rotated device sent too little traffic this afternoon)");
        return;
    };

    // Who is this "new" device really? Rank the closest references by
    // the fused timing score via partial top-k selection.
    let ranked = fused.top(3);
    println!("closest references for {new_mac} (fused over the timing trio):");
    for (rank, (dev, sim)) in ranked.iter().enumerate() {
        println!("  {}. {dev} (fused similarity {sim:.3})", rank + 1);
    }
    let (best, sim) = ranked[0];
    println!("best match for {new_mac}: {best} (fused similarity {sim:.3})");
    if best == target {
        println!("=> re-identified despite the MAC rotation: address randomisation");
        println!("   alone does not defeat passive fingerprinting (paper §VII).");
    } else {
        println!("=> not re-identified this time; the paper reports 20-57% success");
        println!("   rates in conference settings, so misses are expected too.");
    }
}
