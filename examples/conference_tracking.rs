//! Privacy implications (§VII-B3): fingerprints track devices across MAC
//! address changes.
//!
//! A conference attendee randomises their MAC address halfway through the
//! day. MAC-based tracking loses them — but the streaming engine flags
//! the "new" address as a [`Event::NewDevice`] whose similarity view
//! points straight back at the old identity.
//!
//! ```sh
//! cargo run --release --example conference_tracking
//! ```

use wifiprint::core::{Engine, EvalConfig, Event, NetworkParameter};
use wifiprint::ieee80211::{MacAddr, Nanos};
use wifiprint::scenarios::ConferenceScenario;

fn main() {
    let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
        .with_min_observations(50);

    // Morning session: a training-only engine run is the enrollment
    // entry point — finish() emits one Enrolled event per attendee and
    // hands over the frozen reference database.
    println!("morning: learning reference signatures at the venue ...");
    let morning = ConferenceScenario::small(5, 120, 14).run_collect();
    let mut enroller = Engine::builder()
        .config(cfg.clone())
        .train_for(Nanos::from_secs(3600))
        .build()
        .expect("valid engine configuration");
    enroller.observe_all(&morning.frames).expect("frames in capture order");
    let enrolled = enroller.finish().expect("first finish");
    let db = enroller.into_reference().expect("trained reference");
    println!("reference database: {} devices ({} Enrolled events)", db.len(), enrolled.len());

    // Afternoon: the same venue, same devices — but we pretend the
    // chattiest device rotated its MAC address (we relabel its frames).
    let target = *morning
        .transmitters()
        .iter()
        .filter(|(addr, _)| db.contains(addr) && !morning.report.aps.contains(addr))
        .max_by_key(|(_, n)| **n)
        .expect("nonempty db")
        .0;
    let new_mac = MacAddr::new([0x02, 0xDE, 0xAD, 0xBE, 0xEF, 0x01]);
    println!("afternoon: device {target} rotates its MAC to {new_mac}");

    let mut afternoon = ConferenceScenario::small(6, 120, 14).run_collect();
    for f in &mut afternoon.frames {
        if f.transmitter == Some(target) {
            f.transmitter = Some(new_mac);
        }
    }

    // Detection: a second engine against the morning's frozen database.
    // The rotated device has no reference entry, so it surfaces as a
    // NewDevice event — scored against every reference anyway.
    let mut detector = Engine::builder()
        .config(cfg)
        .reference(db)
        .build()
        .expect("valid engine configuration");
    let mut events = detector.observe_all(&afternoon.frames).expect("frames in capture order");
    events.extend(detector.finish().expect("first finish"));

    let Some(view) = events.iter().find_map(|e| match e {
        Event::NewDevice { device, view, .. } if *device == new_mac => Some(view),
        _ => None,
    }) else {
        println!("(the rotated device sent too little traffic this afternoon)");
        return;
    };

    // Who is this "new" device really? Rank the closest references via
    // partial top-k selection (no full sort of the score vector).
    let ranked = view.top(3);
    println!("closest references for {new_mac}:");
    for (rank, (dev, sim)) in ranked.iter().enumerate() {
        println!("  {}. {dev} (similarity {sim:.3})", rank + 1);
    }
    let (best, sim) = ranked[0];
    println!("best match for {new_mac}: {best} (similarity {sim:.3})");
    if best == target {
        println!("=> re-identified despite the MAC rotation: address randomisation");
        println!("   alone does not defeat passive fingerprinting (paper §VII).");
    } else {
        println!("=> not re-identified this time; the paper reports 20-57% success");
        println!("   rates in conference settings, so misses are expected too.");
    }
}
