//! Privacy implications (§VII-B3): fingerprints track devices across MAC
//! address changes.
//!
//! A conference attendee randomises their MAC address halfway through the
//! day. MAC-based tracking loses them — but matching the new address's
//! signature against the reference database re-identifies the device.
//!
//! ```sh
//! cargo run --release --example conference_tracking
//! ```

use wifiprint::core::{
    EvalConfig, NetworkParameter, ReferenceDb, SignatureBuilder, SimilarityMeasure,
};
use wifiprint::ieee80211::MacAddr;
use wifiprint::scenarios::ConferenceScenario;

fn main() {
    // Morning session: learn signatures for everyone present.
    println!("morning: learning reference signatures at the venue ...");
    let morning = ConferenceScenario::small(5, 120, 14).run_collect();
    let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
        .with_min_observations(50);
    let mut builder = SignatureBuilder::new(&cfg);
    for f in &morning.frames {
        builder.push(f);
    }
    let db = ReferenceDb::from_signatures(builder.finish());
    println!("reference database: {} devices", db.len());

    // Afternoon: the same venue, same devices — but we pretend the
    // chattiest device rotated its MAC address (we relabel its frames).
    let target = *morning
        .transmitters()
        .iter()
        .filter(|(addr, _)| db.contains(addr) && !morning.report.aps.contains(addr))
        .max_by_key(|(_, n)| **n)
        .expect("nonempty db")
        .0;
    let new_mac = MacAddr::new([0x02, 0xDE, 0xAD, 0xBE, 0xEF, 0x01]);
    println!("afternoon: device {target} rotates its MAC to {new_mac}");

    let mut afternoon = ConferenceScenario::small(6, 120, 14).run_collect();
    for f in &mut afternoon.frames {
        if f.transmitter == Some(target) {
            f.transmitter = Some(new_mac);
        }
    }

    let mut builder = SignatureBuilder::new(&cfg);
    for f in &afternoon.frames {
        builder.push(f);
    }
    let afternoon_sigs = builder.finish();
    let Some(anon_sig) = afternoon_sigs.get(&new_mac) else {
        println!("(the rotated device sent too little traffic this afternoon)");
        return;
    };

    // Who is this "new" device really? Rank the closest references via
    // partial top-k selection (no full sort of the score vector).
    let outcome = db.match_signature(anon_sig, SimilarityMeasure::Cosine);
    let ranked = outcome.top(3);
    println!("closest references for {new_mac}:");
    for (rank, (dev, sim)) in ranked.iter().enumerate() {
        println!("  {}. {dev} (similarity {sim:.3})", rank + 1);
    }
    let (best, sim) = ranked[0];
    println!("best match for {new_mac}: {best} (similarity {sim:.3})");
    if best == target {
        println!("=> re-identified despite the MAC rotation: address randomisation");
        println!("   alone does not defeat passive fingerprinting (paper §VII).");
    } else {
        println!("=> not re-identified this time; the paper reports 20-57% success");
        println!("   rates in conference settings, so misses are expected too.");
    }
}
