//! Rogue access-point detection (§VII-B2): a hot-spot operator publishes
//! the fingerprint of the genuine AP; clients verify it on every visit.
//!
//! The genuine AP and the rogue run different hardware, so their beacon /
//! probe-response / data timing differs even though the SSID and BSSID
//! are cloned. Both the installation and each visit run through the
//! fused [`MultiEngine`] over the **timing trio** (inter-arrival, medium
//! access, transmission time — the parameters a software clone cannot
//! easily fake): enrollment is a training-only session, the visit check
//! reads the fused score from the FusedMatch event for the AP's address.
//!
//! ```sh
//! cargo run --release --example rogue_ap
//! ```

use std::collections::BTreeMap;

use wifiprint::core::{
    FrameFilter, FusionSpec, MultiConfig, MultiEngine, MultiEvent, NetworkParameter, ReferenceDb,
};
use wifiprint::ieee80211::{FrameKind, MacAddr, Nanos};
use wifiprint::netsim::{BackoffQuirk, LinkQuality, SimConfig, Simulator, StationConfig};

const AP_ADDR: MacAddr = MacAddr::new([0x02, 0xAB, 0xCD, 0, 0, 0xFE]);

fn ap_spec() -> FusionSpec {
    FusionSpec::timing_trio()
}

fn ap_config() -> MultiConfig {
    MultiConfig::default()
        // Fingerprint the AP's own *contended* transmissions — probe
        // responses — where its backoff personality shows. (Beacon
        // inter-arrivals are dominated by the fixed 102.4 ms interval, and
        // data frames the AP relays for others are excluded per §VII-B2.)
        .with_filter(FrameFilter::kinds_only([FrameKind::ProbeResp]))
        .with_min_observations(30)
}

/// Simulates one 30 s visit to the hot spot and streams the capture
/// straight into `engine` (monitor → engine, nothing stored), returning
/// the events emitted while the capture ran.
fn capture_visit(rogue: bool, seed: u64, engine: &mut MultiEngine) -> Vec<MultiEvent> {
    let mut sim = Simulator::new(SimConfig {
        seed,
        duration: Nanos::from_secs(30),
        monitor_loss: 0.0,
        ..SimConfig::default()
    });
    let mut ap = StationConfig::ap(AP_ADDR, LinkQuality::static_link(38.0));
    if rogue {
        // The rogue clones the BSSID but its card has different timing.
        ap.behavior.backoff = BackoffQuirk::FirstSlotBias(0.5);
        ap.behavior.timer_granularity = Nanos::from_micros(4);
        ap.behavior.host_latency = Nanos::from_micros(19);
    }
    sim.add_station(ap);
    // A visiting client generates probe + data exchanges either way.
    let mut client = StationConfig::client(
        MacAddr::from_index(7),
        AP_ADDR,
        LinkQuality::static_link(30.0),
    );
    client.sources.push(Box::new(wifiprint::netsim::CbrSource::new(
        Nanos::from_millis(25),
        700,
    )));
    client.sources.push(Box::new(wifiprint::netsim::ProbeScanner {
        period: Nanos::from_millis(500),
        burst: 2,
        payload: 60,
        jitter: Nanos::from_millis(120),
    }));
    sim.add_station(client);

    let mut events = Vec::new();
    let mut failure = None;
    sim.run(&mut |f| {
        if failure.is_none() {
            match engine.observe(f) {
                Ok(mut ev) => events.append(&mut ev),
                Err(e) => failure = Some(e),
            }
        }
    });
    assert!(failure.is_none(), "simulator emits frames in capture order: {failure:?}");
    events
}

/// Installation: enroll the genuine AP with a training-only session.
fn learn_reference() -> BTreeMap<NetworkParameter, ReferenceDb> {
    let mut enroller = MultiEngine::builder()
        .spec(ap_spec())
        .config(ap_config())
        .train_for(Nanos::from_secs(3600))
        .build()
        .expect("valid engine configuration");
    // Training-only: the capture emits no events until finish() enrolls.
    let _ = capture_visit(false, 1, &mut enroller);
    enroller.finish().expect("first finish");
    let dbs = enroller.into_references();
    assert!(dbs.values().all(|db| db.contains(&AP_ADDR)), "the AP must enroll");
    dbs
}

/// A later visit: stream today's capture against the published
/// fingerprint and read the AP's fused timing similarity from the
/// FusedMatch event.
fn verify_visit(published: &BTreeMap<NetworkParameter, ReferenceDb>, rogue: bool, seed: u64) -> f64 {
    let snapshot: BTreeMap<_, _> = published.iter().map(|(&p, db)| (p, db.snapshot())).collect();
    let mut engine = MultiEngine::builder()
        .spec(ap_spec())
        .config(ap_config())
        .references(snapshot)
        .build()
        .expect("valid engine configuration");
    // Mid-stream events matter too: with a detection window shorter
    // than the visit, the AP's FusedMatch event arrives from observe(),
    // not from finish().
    let mut events = capture_visit(rogue, seed, &mut engine);
    events.extend(engine.finish().expect("first finish"));
    events
        .iter()
        .find_map(|e| match e {
            // The AP (genuine or impostor) claims AP_ADDR, which *is*
            // enrolled, so its window decision arrives as a FusedMatch.
            MultiEvent::FusedMatch { device, fused: Some(fused), .. } if *device == AP_ADDR => {
                fused.similarity_to(&AP_ADDR)
            }
            _ => None,
        })
        .expect("the AP transmits enough probe responses per visit")
}

fn main() {
    println!("hot-spot installation: learning the genuine AP's fingerprint ...");
    let published = learn_reference();

    println!("a later visit: verifying the AP before connecting ...");
    let sim_genuine = verify_visit(&published, false, 2);
    let sim_rogue = verify_visit(&published, true, 3);

    println!("genuine AP fused timing similarity: {sim_genuine:.3}");
    println!("rogue AP fused timing similarity:   {sim_rogue:.3}");
    assert!(sim_genuine > sim_rogue, "rogue must score below the genuine AP");
    println!(
        "=> the rogue AP scores {:.0}% lower; warn the user before associating",
        100.0 * (1.0 - sim_rogue / sim_genuine.max(f64::MIN_POSITIVE))
    );
}
