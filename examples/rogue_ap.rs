//! Rogue access-point detection (§VII-B2): a hot-spot operator publishes
//! the fingerprint of the genuine AP; clients verify it on every visit.
//!
//! The genuine AP and the rogue run different hardware, so their beacon /
//! probe-response / data timing differs even though the SSID and BSSID
//! are cloned.
//!
//! ```sh
//! cargo run --release --example rogue_ap
//! ```

use wifiprint::core::{
    EvalConfig, FrameFilter, NetworkParameter, ReferenceDb, SignatureBuilder, SimilarityMeasure,
};
use wifiprint::ieee80211::{FrameKind, MacAddr, Nanos};
use wifiprint::netsim::{BackoffQuirk, LinkQuality, SimConfig, Simulator, StationConfig};

const AP_ADDR: MacAddr = MacAddr::new([0x02, 0xAB, 0xCD, 0, 0, 0xFE]);

/// Captures an AP's traffic and fingerprints it from AP-originated frames
/// only (data frames it relays for others are excluded per §VII-B2).
fn ap_signature(rogue: bool, seed: u64) -> wifiprint::core::Signature {
    let mut sim = Simulator::new(SimConfig {
        seed,
        duration: Nanos::from_secs(30),
        monitor_loss: 0.0,
        ..SimConfig::default()
    });
    let mut ap = StationConfig::ap(AP_ADDR, LinkQuality::static_link(38.0));
    if rogue {
        // The rogue clones the BSSID but its card has different timing.
        ap.behavior.backoff = BackoffQuirk::FirstSlotBias(0.5);
        ap.behavior.timer_granularity = Nanos::from_micros(4);
        ap.behavior.host_latency = Nanos::from_micros(19);
    }
    sim.add_station(ap);
    // A visiting client generates probe + data exchanges either way.
    let mut client = StationConfig::client(
        MacAddr::from_index(7),
        AP_ADDR,
        LinkQuality::static_link(30.0),
    );
    client.sources.push(Box::new(wifiprint::netsim::CbrSource::new(
        Nanos::from_millis(25),
        700,
    )));
    client.sources.push(Box::new(wifiprint::netsim::ProbeScanner {
        period: Nanos::from_millis(500),
        burst: 2,
        payload: 60,
        jitter: Nanos::from_millis(120),
    }));
    sim.add_station(client);

    let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
        // Fingerprint the AP's own *contended* transmissions — probe
        // responses — where its backoff personality shows. (Beacon
        // inter-arrivals are dominated by the fixed 102.4 ms interval, and
        // data frames the AP relays for others are excluded per §VII-B2.)
        .with_filter(FrameFilter::kinds_only([FrameKind::ProbeResp]))
        .with_min_observations(30);
    let mut builder = SignatureBuilder::new(&cfg);
    sim.run(&mut |f| builder.push(f));
    builder.finish().remove(&AP_ADDR).expect("AP signature")
}

fn main() {
    println!("hot-spot installation: learning the genuine AP's fingerprint ...");
    let reference = ap_signature(false, 1);
    let mut published = ReferenceDb::new();
    published.insert(AP_ADDR, reference);

    println!("a later visit: verifying the AP before connecting ...");
    let genuine_today = ap_signature(false, 2);
    let rogue_today = ap_signature(true, 3);

    let sim_genuine = published
        .match_signature(&genuine_today, SimilarityMeasure::Cosine)
        .similarity_to(&AP_ADDR)
        .unwrap();
    let sim_rogue = published
        .match_signature(&rogue_today, SimilarityMeasure::Cosine)
        .similarity_to(&AP_ADDR)
        .unwrap();

    println!("genuine AP similarity: {sim_genuine:.3}");
    println!("rogue AP similarity:   {sim_rogue:.3}");
    assert!(sim_genuine > sim_rogue, "rogue must score below the genuine AP");
    println!(
        "=> the rogue AP scores {:.0}% lower; warn the user before associating",
        100.0 * (1.0 - sim_rogue / sim_genuine.max(f64::MIN_POSITIVE))
    );
}
