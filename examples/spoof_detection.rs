//! MAC-spoofing detection (§VII-B1): an access-control list keyed by MAC
//! address is stolen — but the thief's *hardware* does not match the
//! learned fingerprint.
//!
//! We enroll a legitimate device with a training-only [`MultiEngine`]
//! session, then stream two later sessions claiming its MAC address
//! through a detection engine: the device itself, and an attacker with a
//! different card/driver. The legitimate session's fused five-parameter
//! score stays high; the spoofer's collapses — and fusing makes the gap
//! harder to fake than any single parameter (the §VII-A mimicry attack
//! reproduces the *size* distribution easily, the timing trio much
//! less so).
//!
//! ```sh
//! cargo run --release --example spoof_detection
//! ```

use std::collections::BTreeMap;

use wifiprint::core::{FusionSpec, MultiConfig, MultiEngine, MultiEvent, NetworkParameter, ReferenceDb};
use wifiprint::devices::profile_catalog;
use wifiprint::ieee80211::Nanos;
use wifiprint::scenarios::{FaradayRig, FARADAY_DEVICE};

fn spec() -> FusionSpec {
    FusionSpec::all_equal()
}

fn cfg() -> MultiConfig {
    MultiConfig::default()
}

/// One Faraday-cage capture of the given hardware profile, streamed into
/// a fresh training-only engine: returns the enrolled per-parameter
/// references.
fn enroll(profile_idx: usize, seed: u64) -> BTreeMap<NetworkParameter, ReferenceDb> {
    let catalog = profile_catalog();
    let trace = FaradayRig::for_profile(&catalog[profile_idx], seed, Nanos::from_secs(10)).run();
    let mut enroller = MultiEngine::builder()
        .spec(spec())
        .config(cfg())
        .train_for(Nanos::from_secs(3600))
        .build()
        .expect("valid engine configuration");
    enroller.observe_all(&trace.frames).expect("frames in capture order");
    enroller.finish().expect("first finish");
    enroller.into_references()
}

/// A later session claiming the ACL's MAC: stream it against the ACL and
/// read the fused similarity from the engine's FusedMatch event.
fn session_similarity(
    acl: &BTreeMap<NetworkParameter, ReferenceDb>,
    profile_idx: usize,
    seed: u64,
) -> f64 {
    let catalog = profile_catalog();
    let trace = FaradayRig::for_profile(&catalog[profile_idx], seed, Nanos::from_secs(10)).run();
    let snapshot: BTreeMap<_, _> = acl.iter().map(|(&p, db)| (p, db.snapshot())).collect();
    let mut engine = MultiEngine::builder()
        .spec(spec())
        .config(cfg())
        .references(snapshot)
        .build()
        .expect("valid engine configuration");
    let mut events = engine.observe_all(&trace.frames).expect("frames in capture order");
    events.extend(engine.finish().expect("first finish"));
    events
        .iter()
        .find_map(|e| match e {
            MultiEvent::FusedMatch { device, fused: Some(fused), .. }
                if *device == FARADAY_DEVICE =>
            {
                fused.similarity_to(&FARADAY_DEVICE)
            }
            _ => None,
        })
        .expect("the session transmits enough frames")
}

fn main() {
    // Learning phase: the genuine device (profile 0) enrols.
    println!("learning the genuine device's five-parameter signature ...");
    let acl = enroll(0, 1);
    assert!(acl.values().all(|db| db.contains(&FARADAY_DEVICE) && db.is_frozen()));

    // Detection phase: two sessions claim the same MAC address.
    println!("session A: the genuine device reconnects");
    let sim_genuine = session_similarity(&acl, 0, 2); // same hardware, new day
    println!("session B: an attacker spoofs the MAC with different hardware");
    let sim_spoofer = session_similarity(&acl, 4, 3); // different chipset/driver

    println!("fused similarity of genuine session: {sim_genuine:.3}");
    println!("fused similarity of spoofed session: {sim_spoofer:.3}");
    let threshold = 0.75;
    println!("acceptance threshold:                {threshold:.3}");
    assert!(sim_genuine > threshold, "genuine device should pass");
    assert!(sim_spoofer < sim_genuine, "spoofer should score lower");
    if sim_spoofer < threshold {
        println!("=> ALARM: MAC {FARADAY_DEVICE} is being spoofed");
    } else {
        println!("=> spoofer evaded the threshold (try more training data)");
    }
}
