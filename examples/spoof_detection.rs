//! MAC-spoofing detection (§VII-B1): an access-control list keyed by MAC
//! address is stolen — but the thief's *hardware* does not match the
//! learned fingerprint.
//!
//! We learn a reference signature for a legitimate device, then present
//! two candidates claiming its MAC address: the device itself, and an
//! attacker with a different card/driver. The legitimate session matches;
//! the spoofer's similarity collapses.
//!
//! ```sh
//! cargo run --release --example spoof_detection
//! ```

use wifiprint::core::{
    EvalConfig, NetworkParameter, ReferenceDb, SignatureBuilder, SimilarityMeasure,
};
use wifiprint::devices::profile_catalog;
use wifiprint::ieee80211::Nanos;
use wifiprint::scenarios::{FaradayRig, FARADAY_DEVICE};

fn signature_for(profile_idx: usize, seed: u64) -> wifiprint::core::Signature {
    let catalog = profile_catalog();
    let trace = FaradayRig::for_profile(&catalog[profile_idx], seed, Nanos::from_secs(10)).run();
    let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime);
    let mut builder = SignatureBuilder::new(&cfg);
    for f in &trace.frames {
        builder.push(f);
    }
    builder.finish().remove(&FARADAY_DEVICE).expect("device signature")
}

fn main() {
    // Learning phase: the genuine device (profile 0) enrols.
    println!("learning the genuine device's inter-arrival signature ...");
    let genuine = signature_for(0, 1);
    let mut acl = ReferenceDb::new();
    acl.insert(FARADAY_DEVICE, genuine);

    // Detection phase: two sessions claim the same MAC address.
    println!("session A: the genuine device reconnects");
    let session_genuine = signature_for(0, 2); // same hardware, new day
    println!("session B: an attacker spoofs the MAC with different hardware");
    let session_spoofer = signature_for(4, 3); // different chipset/driver

    let sim_genuine = acl
        .match_signature(&session_genuine, SimilarityMeasure::Cosine)
        .similarity_to(&FARADAY_DEVICE)
        .unwrap();
    let sim_spoofer = acl
        .match_signature(&session_spoofer, SimilarityMeasure::Cosine)
        .similarity_to(&FARADAY_DEVICE)
        .unwrap();

    println!("similarity of genuine session: {sim_genuine:.3}");
    println!("similarity of spoofed session: {sim_spoofer:.3}");
    let threshold = 0.75;
    println!("acceptance threshold:          {threshold:.3}");
    assert!(sim_genuine > threshold, "genuine device should pass");
    assert!(sim_spoofer < sim_genuine, "spoofer should score lower");
    if sim_spoofer < threshold {
        println!("=> ALARM: MAC {FARADAY_DEVICE} is being spoofed");
    } else {
        println!("=> spoofer evaded the threshold (try more training data)");
    }
}
