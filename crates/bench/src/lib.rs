//! Shared experiment definitions for the reproduction harness: every
//! table and figure of the paper, expressed as reusable functions driven
//! by both the `repro` binary and the Criterion benchmarks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod figures;

pub use experiments::{evaluate_scenario, TraceKind, TraceRun};
