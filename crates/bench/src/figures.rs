//! The §VI figure experiments (Figs. 2, 4–8): controlled rigs isolating
//! the factors that shape inter-arrival histograms.

use std::collections::BTreeMap;

use wifiprint_core::{
    EvalConfig, FrameFilter, NetworkParameter, ParameterExtractor, SignatureBuilder,
    TxTimeEstimator,
};
use wifiprint_core::{BinSpec, Histogram};
use wifiprint_devices::{profile_catalog, AppProfile, DeviceProfile, InstanceRng};
use wifiprint_ieee80211::{FrameKind, MacAddr, Nanos, Rate};
use wifiprint_netsim::LinkQuality;
use wifiprint_radiotap::CapturedFrame;
use wifiprint_scenarios::{FaradayRig, OfficeScenario, Trace, FARADAY_AP, FARADAY_DEVICE};

/// Builds an inter-arrival histogram from a trace with the given frame
/// filter and bins, over the Faraday device only.
fn ia_histogram(
    frames: &[CapturedFrame],
    device: MacAddr,
    filter: FrameFilter,
    bins: BinSpec,
) -> Histogram {
    let mut ex = ParameterExtractor::with_options(
        NetworkParameter::InterArrivalTime,
        TxTimeEstimator::SizeOverRate,
        filter,
    );
    let mut hist = Histogram::new(bins);
    for f in frames {
        if let Some(obs) = ex.push(f) {
            if obs.device == device {
                hist.add(obs.value);
            }
        }
    }
    hist
}

/// Fig. 2: an example inter-arrival histogram of one ordinary office
/// device over 0–2500 µs.
pub fn fig2_example_histogram(seed: u64) -> (MacAddr, Histogram) {
    let trace = OfficeScenario::small(seed, 120, 8).run_collect();
    // Pick the busiest client.
    let busiest = *trace
        .transmitters()
        .iter()
        .filter(|(addr, _)| !trace.report.aps.contains(addr))
        .max_by_key(|(_, n)| **n)
        .expect("nonempty trace")
        .0;
    let hist = ia_histogram(
        &trace.frames,
        busiest,
        FrameFilter::default(),
        BinSpec::uniform_to(2500.0, 25.0),
    );
    (busiest, hist)
}

fn faraday_trace(profile: &DeviceProfile, seed: u64, secs: u64) -> Trace {
    FaradayRig::for_profile(profile, seed, Nanos::from_secs(secs)).run()
}

/// Fig. 4: backoff implementation differences. Two devices with different
/// chipsets stream UDP in the cage; only first-transmission data frames at
/// 54 Mb/s are histogrammed, over 250–450 µs with 2 µs bins.
pub fn fig4_backoff(seed: u64) -> Vec<(String, Histogram)> {
    let catalog = profile_catalog();
    // aero5210 (uniform backoff) vs wavemax23 (extra early slot).
    let picks = [&catalog[0], &catalog[2]];
    let filter = FrameFilter {
        kinds: Some(vec![FrameKind::Data]),
        rate: Some(Rate::R54M),
        exclude_retries: true,
        broadcast_only: false,
    };
    picks
        .iter()
        .map(|p| {
            let trace = faraday_trace(p, seed, 20);
            let hist = ia_histogram(
                &trace.frames,
                FARADAY_DEVICE,
                filter.clone(),
                BinSpec::uniform_to(500.0, 2.0),
            );
            (p.chipset.name.to_owned(), hist)
        })
        .collect()
}

/// Fig. 5: the same device with virtual carrier sensing off vs an RTS
/// threshold of 2000 bytes, in a busy lab.
pub fn fig5_rts(seed: u64) -> Vec<(String, Histogram)> {
    let catalog = profile_catalog();
    let profile = &catalog[0];
    [None, Some(2000usize)]
        .into_iter()
        .map(|threshold| {
            // A 2200-byte UDP payload exceeds the 2000-byte threshold, so
            // virtual carrier sensing actually triggers in the second run.
            let mut rng = InstanceRng::new(seed ^ 0xF165, 0);
            let station = profile.instantiate(
                FARADAY_DEVICE,
                FARADAY_AP,
                LinkQuality::static_link(40.0),
                &[AppProfile::IperfUdp {
                    interval: Nanos::from_millis(3),
                    payload: 2200,
                }],
                0,
                false,
                &mut rng,
            );
            let mut rig = FaradayRig::for_station(station, seed, Nanos::from_secs(20));
            rig.station.behavior.rts_threshold = threshold;
            let trace = rig.with_background(3).run();
            let hist = ia_histogram(
                &trace.frames,
                FARADAY_DEVICE,
                FrameFilter::kinds_only([FrameKind::Data]),
                BinSpec::uniform_to(2000.0, 20.0),
            );
            let label = match threshold {
                None => "RTS deactivated".to_owned(),
                Some(t) => format!("RTS threshold {t} B"),
            };
            (label, hist)
        })
        .collect()
}

/// Fig. 6: two devices with different rate-adaptation behaviour on a
/// fluctuating link: inter-arrival histograms plus the transmission-rate
/// distributions that explain them.
pub fn fig6_rates(seed: u64) -> Vec<(String, Histogram, BTreeMap<String, f64>)> {
    let catalog = profile_catalog();
    // femto-g1/turbonet (SNR-driven, eager) vs aero5210/opendrv (ARF).
    let picks = [&catalog[12], &catalog[0]];
    picks
        .iter()
        .map(|p| {
            let mut rig = FaradayRig::for_profile(p, seed, Nanos::from_secs(20));
            // A marginal, fluctuating channel makes the controllers move.
            rig.station.link = LinkQuality {
                snr_ap_db: 19.0,
                monitor_offset_db: 15.0, // keep the monitor reliable
                fading_std_db: 3.0,
                mobility: wifiprint_netsim::MobilityModel::RandomWalk {
                    step_db: 2.0,
                    min_db: 10.0,
                    max_db: 30.0,
                },
                update_every: Nanos::from_millis(500),
            };
            let trace = rig.run();
            let hist = ia_histogram(
                &trace.frames,
                FARADAY_DEVICE,
                FrameFilter::kinds_only([FrameKind::Data]),
                BinSpec::uniform_to(1000.0, 10.0),
            );
            // Rate distribution over the device's data frames.
            let mut rates: BTreeMap<String, u64> = BTreeMap::new();
            let mut total = 0u64;
            for f in &trace.frames {
                if f.transmitter == Some(FARADAY_DEVICE) && f.kind == FrameKind::Data {
                    *rates.entry(f.rate.to_string()).or_insert(0) += 1;
                    total += 1;
                }
            }
            let dist: BTreeMap<String, f64> = rates
                .into_iter()
                .map(|(r, n)| (r, n as f64 / total.max(1) as f64))
                .collect();
            (p.name.clone(), hist, dist)
        })
        .collect()
}

/// Fig. 7: two instances of the *same* device model whose service stacks
/// differ — histograms over their group-addressed (broadcast) data frames
/// only.
pub fn fig7_services(seed: u64) -> Vec<(String, Histogram)> {
    let catalog = profile_catalog();
    let profile = &catalog[1]; // aero5210 + vendahl + windows stack
    (0..2u64)
        .map(|instance| {
            let mut rng = InstanceRng::new(seed ^ 0xF1607, instance);
            let mut station = profile.instantiate(
                FARADAY_DEVICE,
                FARADAY_AP,
                LinkQuality::static_link(40.0),
                &[AppProfile::Background],
                0,
                true, // service variation: the two netbooks differ here
                &mut rng,
            );
            station.link.fading_std_db = 0.5;
            let trace =
                FaradayRig::for_station(station, seed + instance, Nanos::from_secs(600)).run();
            let hist = ia_histogram(
                &trace.frames,
                FARADAY_DEVICE,
                FrameFilter { broadcast_only: true, ..FrameFilter::default() },
                BinSpec::uniform_to(2500.0, 25.0),
            );
            (format!("netbook instance {}", instance + 1), hist)
        })
        .collect()
}

/// Fig. 8: null-function-frame histograms for two different wireless
/// cards in the same environment.
pub fn fig8_power_save(seed: u64) -> Vec<(String, Histogram)> {
    let catalog = profile_catalog();
    // wavemax23 (fast PS cycle, nulls at basic rate) vs longhaul31 (slow
    // cycle, CWmin 31).
    let picks = [&catalog[2], &catalog[9]];
    picks
        .iter()
        .map(|p| {
            let trace = faraday_trace(p, seed, 600);
            let hist = ia_histogram(
                &trace.frames,
                FARADAY_DEVICE,
                FrameFilter::kinds_only([FrameKind::NullFunction, FrameKind::QosNull]),
                BinSpec::uniform_to(2500.0, 25.0),
            );
            (p.chipset.name.to_owned(), hist)
        })
        .collect()
}

/// The Fig. 1 worked example: the paper's six-frame sequence and which
/// observations the extraction rules attribute.
pub fn fig1_worked_example() -> Vec<String> {
    use wifiprint_ieee80211::Frame;
    let a = MacAddr::new([0x02, 0, 0, 0, 0, 0xA]);
    let c = MacAddr::new([0x02, 0, 0, 0, 0, 0xC]);
    let ap = MacAddr::new([0x02, 0, 0, 0, 0, 0xF]);
    let t = [1000u64, 1100, 1500, 1600, 2000, 2100];
    let frames = vec![
        ("DATA (A)", CapturedFrame::from_frame(&Frame::data_to_ds(a, ap, ap, 500), Rate::R11M, Nanos::from_micros(t[0]), -50)),
        ("ACK", CapturedFrame::from_frame(&Frame::ack(a), Rate::R11M, Nanos::from_micros(t[1]), -50)),
        ("DATA (A)", CapturedFrame::from_frame(&Frame::data_to_ds(a, ap, ap, 500), Rate::R11M, Nanos::from_micros(t[2]), -50)),
        ("ACK", CapturedFrame::from_frame(&Frame::ack(a), Rate::R11M, Nanos::from_micros(t[3]), -50)),
        ("RTS (C)", CapturedFrame::from_frame(&Frame::rts(ap, c, 300), Rate::R2M, Nanos::from_micros(t[4]), -50)),
        ("CTS", CapturedFrame::from_frame(&Frame::cts(c, 200), Rate::R2M, Nanos::from_micros(t[5]), -50)),
    ];
    let mut ex = ParameterExtractor::new(NetworkParameter::InterArrivalTime);
    let mut lines = Vec::new();
    for (label, frame) in &frames {
        match ex.push(frame) {
            Some(obs) => lines.push(format!(
                "{label:>9} at t={:>5} µs  ->  P^{}({}) += {:.0} µs",
                frame.t_end.as_micros(),
                obs.kind,
                obs.device,
                obs.value
            )),
            None => lines.push(format!(
                "{label:>9} at t={:>5} µs  ->  dropped (no sender or no predecessor)",
                frame.t_end.as_micros()
            )),
        }
    }
    lines
}

/// Helper for tests and the repro binary: builds per-device signatures
/// from a trace for one parameter.
pub fn signatures_for(
    trace: &Trace,
    parameter: NetworkParameter,
    min_obs: u64,
) -> BTreeMap<MacAddr, wifiprint_core::Signature> {
    let cfg = EvalConfig::for_parameter(parameter).with_min_observations(min_obs);
    let mut builder = SignatureBuilder::new(&cfg);
    for f in &trace.frames {
        builder.push(f);
    }
    builder.finish().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_attributes_like_the_paper() {
        let lines = fig1_worked_example();
        assert_eq!(lines.len(), 6);
        // First frame: no predecessor.
        assert!(lines[0].contains("dropped"));
        // ACKs dropped.
        assert!(lines[1].contains("dropped"));
        assert!(lines[3].contains("dropped"));
        assert!(lines[5].contains("dropped"));
        // DATA attributed to A with i2 = t2 - t1 = 400 µs.
        assert!(lines[2].contains("400"), "{}", lines[2]);
        // RTS attributed to C with i4 = t4 - t3 = 400 µs.
        assert!(lines[4].contains("rts"), "{}", lines[4]);
    }

    #[test]
    fn fig4_histograms_differ_between_chipsets() {
        let hists = fig4_backoff(11);
        assert_eq!(hists.len(), 2);
        for (name, h) in &hists {
            assert!(h.total() > 200, "{name}: {} obs", h.total());
        }
        // The two densities must differ materially (different backoff).
        let a = hists[0].1.frequencies();
        let b = hists[1].1.frequencies();
        let l1: f64 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
        assert!(l1 > 0.3, "backoff histograms too similar: L1 = {l1}");
    }

    #[test]
    fn fig5_rts_shifts_mass() {
        let hists = fig5_rts(13);
        assert_eq!(hists.len(), 2);
        let (ref off_label, ref off) = hists[0];
        let (ref on_label, ref on) = hists[1];
        assert!(off_label.contains("deactivated"));
        assert!(on_label.contains("2000"));
        assert!(off.total() > 100 && on.total() > 100);
        let l1: f64 = off
            .frequencies()
            .iter()
            .zip(on.frequencies())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(l1 > 0.25, "RTS on/off histograms too similar: L1 = {l1}");
    }

    #[test]
    fn fig7_same_model_instances_differ() {
        let hists = fig7_services(17);
        assert_eq!(hists.len(), 2);
        assert!(hists[0].1.total() > 10, "instance 1 broadcast obs");
        assert!(hists[1].1.total() > 10, "instance 2 broadcast obs");
        assert_ne!(hists[0].1.frequencies(), hists[1].1.frequencies());
    }

    #[test]
    fn fig8_null_frames_present() {
        let hists = fig8_power_save(19);
        for (name, h) in &hists {
            assert!(h.total() > 20, "{name}: {} null-frame obs", h.total());
        }
    }
}
