//! The four evaluation traces (Table I) and their pipeline runs.

use wifiprint_analysis::{PipelineConfig, StreamingEvaluator, TraceEvaluation};
use wifiprint_core::EvalOutcome;
use wifiprint_ieee80211::Nanos;
use wifiprint_scenarios::{ConferenceScenario, OfficeScenario, TraceReport};

/// Which of the paper's four traces to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// Conference 1: the full 7-hour open-network capture.
    Conference1,
    /// Conference 2: its first hour.
    Conference2,
    /// Office 1: 7 hours, WPA.
    Office1,
    /// Office 2: 1 hour, WPA.
    Office2,
}

impl TraceKind {
    /// All four traces in the paper's column order.
    pub const ALL: [TraceKind; 4] =
        [TraceKind::Conference1, TraceKind::Conference2, TraceKind::Office1, TraceKind::Office2];

    /// The paper's name for this trace.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Conference1 => "Conf. 1",
            TraceKind::Conference2 => "Conf. 2",
            TraceKind::Office1 => "Office 1",
            TraceKind::Office2 => "Office 2",
        }
    }

    /// `true` for the 7-hour traces.
    pub fn is_long(self) -> bool {
        matches!(self, TraceKind::Conference1 | TraceKind::Office1)
    }

    /// The paper's Table I descriptions (total, reference, candidate
    /// durations and encryption).
    pub fn descriptions(self, quick: bool) -> (&'static str, &'static str, &'static str, &'static str) {
        match (self, quick) {
            (TraceKind::Conference1, false) => ("7 hours", "1 hour", "6 hours", "None"),
            (TraceKind::Conference1, true) => ("2 hours", "1 hour", "1 hour", "None"),
            (TraceKind::Conference2, _) => ("1 hour", "20 min", "40 min", "None"),
            (TraceKind::Office1, false) => ("7 hours", "1 hour", "6 hours", "WPA"),
            (TraceKind::Office1, true) => ("2 hours", "1 hour", "1 hour", "WPA"),
            (TraceKind::Office2, _) => ("1 hour", "20 min", "40 min", "WPA"),
        }
    }

    /// The pipeline configuration (training split) for this trace.
    pub fn pipeline(self) -> PipelineConfig {
        if self.is_long() {
            PipelineConfig::long_trace()
        } else {
            PipelineConfig::short_trace()
        }
    }
}

/// One evaluated trace: its pipeline results plus the simulator report.
#[derive(Debug)]
pub struct TraceRun {
    /// Which trace this is.
    pub kind: TraceKind,
    /// Pipeline outcomes per parameter.
    pub eval: TraceEvaluation,
    /// The Pang-style baseline outcome (broadcast frame sizes).
    pub baseline: EvalOutcome,
    /// Simulation report (stats, ground truth).
    pub report: TraceReport,
    /// Wall-clock seconds the run took.
    pub wall_secs: f64,
}

/// Regenerates one trace and evaluates the full pipeline on it.
///
/// With `quick`, the 7-hour traces are shortened to 2 hours (the 1-hour
/// traces are already quick); the qualitative shape is preserved while the
/// whole reproduction stays under a minute.
pub fn evaluate_scenario(kind: TraceKind, quick: bool, seed: u64) -> TraceRun {
    let start = std::time::Instant::now();
    let cfg = kind.pipeline();
    let mut ev = StreamingEvaluator::new(&cfg).expect("valid pipeline configuration");
    let mut baseline = wifiprint_analysis::baseline::BaselineEvaluator::new(&cfg);
    let mut sink = |f: &wifiprint_radiotap::CapturedFrame| {
        ev.push(f);
        baseline.push(f);
    };
    let report = match kind {
        TraceKind::Conference1 => {
            let mut sc = ConferenceScenario::conference1(seed);
            if quick {
                sc.duration = Nanos::from_secs(2 * 3600);
                sc.devices = 200;
            }
            sc.run_streaming(&mut sink)
        }
        TraceKind::Conference2 => ConferenceScenario::conference2(seed).run_streaming(&mut sink),
        TraceKind::Office1 => {
            let mut sc = OfficeScenario::office1(seed);
            if quick {
                sc.duration = Nanos::from_secs(2 * 3600);
            }
            sc.run_streaming(&mut sink)
        }
        TraceKind::Office2 => OfficeScenario::office2(seed).run_streaming(&mut sink),
    };
    let (baseline_outcome, _db) = baseline.finish();
    TraceRun {
        kind,
        eval: ev.finish().expect("engine run"),
        baseline: baseline_outcome,
        report,
        wall_secs: start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_kinds_cover_table_one() {
        assert_eq!(TraceKind::ALL.len(), 4);
        for k in TraceKind::ALL {
            assert!(!k.name().is_empty());
            let (_total, reference, _cand, enc) = k.descriptions(false);
            match k {
                TraceKind::Office1 | TraceKind::Office2 => assert_eq!(enc, "WPA"),
                _ => assert_eq!(enc, "None"),
            }
            if k.is_long() {
                assert_eq!(reference, "1 hour");
            } else {
                assert_eq!(reference, "20 min");
            }
        }
    }
}
