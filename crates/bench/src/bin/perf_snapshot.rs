//! Emits a machine-readable perf snapshot (`BENCH_<n>.json`) so the
//! repository keeps a trajectory of matching-engine throughput across
//! PRs, and optionally gates CI on it.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p wifiprint-bench --bin perf_snapshot \
//!     [output.json] [--check baseline.json]
//! ```
//!
//! Default output is `BENCH_9.json` in the current directory. With
//! `--check`, the freshly measured `match_matrix_ns`,
//! `multi_engine_ingest_fps`, `sharded_sweep_speedup`,
//! `quant_tile_speedup`, `ingest_pipeline_fps`,
//! `linker_throughput_fps`, `replay_fps` and `replay_vs_materialized`
//! are compared against the committed baseline snapshot and the
//! process exits non-zero if any regressed by more than 25 % — the CI
//! perf-smoke gate.
//!
//! The measurements mirror the headline benches in
//! `crates/bench/benches/fingerprint.rs`: the naive f64 baseline versus
//! the f32 SIMD matrix sweep at 256 devices, the K=8 matrix–matrix tile
//! versus 8 matrix–vector sweeps, the f32-vs-f64 dot kernels (with the
//! runtime dispatch decision), streaming insert cost, and the
//! serial-vs-parallel window batch — plus the streaming engines'
//! end-to-end ingest throughput (frames/second through extraction,
//! windowing and per-window tiled matching against 256-device
//! references): the single-parameter `Engine` since PR 3 and, since
//! PR 4, the fused five-parameter `MultiEngine`, whose per-frame cost
//! must stay **well below five single engines** (one header parse and
//! one timing history instead of five). Since PR 5 the snapshot also
//! measures the **sharded** store at metropolis scale: the dense full
//! sweep versus the summary-pruned top-k sweep at 10⁴ and 10⁵ enrolled
//! devices (`sharded_sweep_speedup`, with the pruned-shard fraction),
//! and records the host CPU count and OS kernel so 1-CPU artifacts
//! (`batch_speedup ≈ 1`) are self-explaining. Since PR 7 the snapshot
//! also runs the same fused stream through the **supervised ingest
//! front** (`ingest_pipeline_fps`: bounded ring + worker thread +
//! ordered sequencer under `Block`, gated) and records the shed rate of
//! a fixed overload configuration (tiny `ShedOldest` ring against an
//! artificially slowed worker — recorded for the trajectory, not gated,
//! because shed counts depend on real scheduling). Since PR 8 the
//! snapshot also streams a 1 000-device periodic-rotation trail through
//! the `RotationLinker` (`linker_throughput_fps`: sightings/second
//! through the pruned gallery sweeps at the headline operating point)
//! and records the linking precision/recall the accuracy gate pins, so
//! the trajectory keeps cost and accuracy side by side. Since PR 9 the
//! snapshot also measures the **quantized `u8` tier**: the 251-bin
//! integer dot kernel (`quant_dot_ns`, with the dispatched integer
//! kernel name), the resident bytes per enrolled device on both tiers
//! (`bytes_per_device_{f32,u8}` — the `u8` store must stay at most
//! half the `f32` store), and the headline `quant_tile_speedup`: the
//! f32 dense 8-wide tile sweep versus the quantized tile-wide pruned
//! top-8 sweep over the same 10⁵-device metropolis population, with
//! the tile-wide pruned-shard fraction (`pruned_shard_fraction_k8`).
//! Since PR 10 the snapshot also measures the **zero-copy wire ingest**:
//! the borrowed radiotap→`CapturedFrame` decode of one mid-size data
//! packet (`wire_decode_ns`), the allocation-free pcap replay loop over
//! a 60 000-record in-memory capture (`replay_fps`), and the headline
//! `replay_vs_materialized` — the same capture decoded through the old
//! materializing path (fresh `Vec` per record, owned `Frame` with a
//! body copy) divided by the zero-copy loop, a same-host ratio that
//! transfers across machines.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

use wifiprint_core::{
    kernel, Engine, EvalConfig, FusionSpec, IngestConfig, IngestPipeline, MatchConfig,
    MatchScratch, MultiConfig, MultiEngine, NetworkParameter, OverloadPolicy, ReferenceDb,
    Signature, SimilarityMeasure,
};
use wifiprint_ieee80211::{Frame, FrameKind, MacAddr, Nanos, Rate};
use wifiprint_pcap::{LinkType, Reader, Record, Replay, Writer};
use wifiprint_radiotap::{CapturedFrame, RxFlags, RxInfo};
use wifiprint_analysis::linking::{evaluate_linking_trail, metropolis_linker_config};
use wifiprint_core::engine::linker::RotationLinker;
use wifiprint_scenarios::{MetropolisScenario, RotationPolicy, RotationScenario};

/// Allowed relative regression of the gated metrics under `--check`.
const REGRESSION_BUDGET: f64 = 0.25;

fn synthetic_signature(seed: u64, obs: u64) -> Signature {
    let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime);
    synthetic_signature_for(&cfg, seed, obs)
}

/// A deterministic signature whose values land inside `cfg`'s bins (the
/// transmission-rate parameter is categorical over the 802.11b/g rates).
fn synthetic_signature_for(cfg: &EvalConfig, seed: u64, obs: u64) -> Signature {
    let mut sig = Signature::new();
    for i in 0..obs {
        let v = match cfg.parameter {
            NetworkParameter::TransmissionRate => {
                Rate::ALL_BG[((seed + i) % 12) as usize].mbps()
            }
            _ => ((seed * 131 + i * 37) % 2400) as f64,
        };
        sig.record(FrameKind::Data, v, cfg);
        if i % 5 == 0 {
            let probe = match cfg.parameter {
                NetworkParameter::TransmissionRate => Rate::R1M.mbps(),
                _ => (seed * 17 % 500) as f64,
            };
            sig.record(FrameKind::ProbeReq, probe, cfg);
        }
    }
    sig
}

/// Median per-iteration nanoseconds over `samples` timed samples.
fn measure<F: FnMut()>(samples: usize, iters_per_sample: usize, mut f: F) -> f64 {
    // Warm-up.
    for _ in 0..iters_per_sample {
        f();
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters_per_sample as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite time"));
    times[times.len() / 2]
}

/// Pulls a numeric field out of a previous snapshot without a JSON
/// dependency (the format is this binary's own single-level output).
fn read_field(json: &str, field: &str) -> Option<f64> {
    let key = format!("\"{field}\":");
    let rest = &json[json.find(&key)? + key.len()..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn main() {
    let mut out_path = "BENCH_9.json".to_owned();
    let mut check_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--check" {
            check_path = Some(args.next().expect("--check requires a baseline path"));
        } else {
            out_path = arg;
        }
    }

    let mut db = ReferenceDb::new();
    for d in 0..256u64 {
        db.insert(MacAddr::from_index(d), synthetic_signature(d, 500)).expect("insert");
    }
    let candidate = synthetic_signature(3, 500);
    let windows: Vec<Signature> =
        (0..8u64).map(|w| synthetic_signature(w * 11 + 3, 500)).collect();
    let candidates: Vec<Signature> =
        (0..512u64).map(|w| synthetic_signature(w % 97, 200)).collect();

    // Headline: naive f64 baseline vs the f32 SIMD matrix sweep.
    let naive_ns = measure(15, 20, || {
        std::hint::black_box(db.match_signature_naive(&candidate, SimilarityMeasure::Cosine));
    });
    let mut scratch = MatchScratch::new();
    let matrix_ns = measure(15, 20, || {
        let view = db.match_signature_with(&candidate, SimilarityMeasure::Cosine, &mut scratch);
        std::hint::black_box(view.best());
    });

    // Tiling: 8 matrix–vector sweeps vs one K=8 matrix–matrix tile
    // (both reported per tile of 8 windows).
    let matvec8_ns = measure(15, 10, || {
        for cand in &windows {
            let view = db.match_signature_with(cand, SimilarityMeasure::Cosine, &mut scratch);
            std::hint::black_box(view.best());
        }
    });
    let tile_ns = measure(15, 10, || {
        let tile = db.match_tile(&windows, SimilarityMeasure::Cosine, &mut scratch);
        std::hint::black_box(tile.candidate(7).best());
    });

    // Kernel microbench: one 251-bin dot product per variant.
    let row64: Vec<f64> = (0..251).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
    let col64: Vec<f64> = (0..251).map(|i| ((i * 53) % 89) as f64 / 89.0).collect();
    let row32: Vec<f32> = row64.iter().map(|&v| v as f32).collect();
    let col32: Vec<f32> = col64.iter().map(|&v| v as f32).collect();
    let dot_f64_ns = measure(15, 20_000, || {
        std::hint::black_box(kernel::dot_f64(&row64, &col64));
    });
    let dot_f32_ns = measure(15, 20_000, || {
        std::hint::black_box(kernel::dot_f32(&row32, &col32));
    });
    // Quantized kernel microbench: the same 251-bin rows as 7-bit codes
    // through the dispatched integer dot (maddubs/madd on AVX2, widening
    // multiplies on NEON).
    let qrow = wifiprint_core::QuantizedRow::from_frequencies(&row64);
    let qcol = wifiprint_core::QuantizedRow::from_frequencies(&col64);
    let quant_dot_ns = measure(15, 20_000, || {
        std::hint::black_box(kernel::dot_u8(qrow.values(), qcol.values()));
    });

    // Streaming inserts: per-device cost of growing to 256 devices.
    let insert_sigs: Vec<Signature> = (0..256u64).map(|d| synthetic_signature(d, 200)).collect();
    let insert_ns = measure(9, 1, || {
        let mut fresh = ReferenceDb::new();
        for (d, sig) in insert_sigs.iter().enumerate() {
            fresh.insert(MacAddr::from_index(d as u64), sig.clone()).expect("insert");
        }
        std::hint::black_box(fresh.len());
    }) / insert_sigs.len() as f64;

    let mut serial_scratch = MatchScratch::new();
    let serial_ns = measure(9, 1, || {
        let mut acc = 0.0f64;
        for cand in &candidates {
            let view =
                db.match_signature_with(cand, SimilarityMeasure::Cosine, &mut serial_scratch);
            acc += view.best().map_or(0.0, |(_, s)| s);
        }
        std::hint::black_box(acc);
    });
    let parallel_ns = measure(9, 1, || {
        std::hint::black_box(db.match_batch(&candidates, SimilarityMeasure::Cosine));
    });

    // Engine ingest: the streaming facade end to end — per-frame
    // extraction + windowing, one tiled match sweep per closed 1 s
    // window, 64 active devices against the 256-device reference.
    let engine_cfg = {
        let mut c = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
            .with_min_observations(30);
        c.window = Nanos::from_secs(1);
        c
    };
    let stream_devices = 64u64;
    let engine_frames: Vec<CapturedFrame> = (0..240_000u64)
        .map(|i| {
            let dev = MacAddr::from_index(i % stream_devices);
            let ap = MacAddr::from_index(0xA11);
            // 25 µs between consecutive captures on the channel: the
            // 240k-frame stream spans 6 s, so six 1 s windows close
            // mid-run with ~625 observations per device each.
            let f = Frame::data_to_ds(dev, ap, ap, 200 + (i % 7) as usize * 100);
            CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_micros(25 * (i + 1)), -50)
        })
        .collect();
    let engine_ingest_ns = measure(5, 1, || {
        let mut engine = Engine::builder()
            .config(engine_cfg.clone())
            .reference(db.snapshot())
            .build()
            .expect("valid engine configuration");
        let mut decisions = 0usize;
        for frame in &engine_frames {
            decisions += engine.observe(frame).expect("in-order frame").len();
        }
        decisions += engine.finish().expect("first finish").len();
        std::hint::black_box(decisions);
    }) / engine_frames.len() as f64;
    let engine_ingest_fps = 1e9 / engine_ingest_ns;

    // MultiEngine ingest: the same stream through the fused
    // five-parameter engine — one header parse and one timing history
    // per frame instead of five, five per-parameter reference sweeps as
    // each window closes. The per-frame cost must stay well below five
    // single-parameter engines.
    let multi_cfg = MultiConfig::default()
        .with_min_observations(30)
        .with_window(Nanos::from_secs(1));
    let multi_refs: BTreeMap<NetworkParameter, ReferenceDb> = NetworkParameter::ALL
        .into_iter()
        .map(|param| {
            let cfg = multi_cfg.eval_config(param);
            let mut db = ReferenceDb::new();
            for d in 0..256u64 {
                db.insert(MacAddr::from_index(d), synthetic_signature_for(&cfg, d, 500))
                    .expect("insert");
            }
            (param, db)
        })
        .collect();
    let multi_engine_ingest_ns = measure(5, 1, || {
        let refs: BTreeMap<NetworkParameter, ReferenceDb> =
            multi_refs.iter().map(|(&p, db)| (p, db.snapshot())).collect();
        let mut engine = MultiEngine::builder()
            .spec(FusionSpec::all_equal())
            .config(multi_cfg.clone())
            .references(refs)
            .build()
            .expect("valid engine configuration");
        let mut decisions = 0usize;
        for frame in &engine_frames {
            decisions += engine.observe(frame).expect("in-order frame").len();
        }
        decisions += engine.finish().expect("first finish").len();
        std::hint::black_box(decisions);
    }) / engine_frames.len() as f64;
    let multi_engine_ingest_fps = 1e9 / multi_engine_ingest_ns;
    // How many single-parameter engines one fused pass costs; five
    // independent engines would sit at 5.0.
    let multi_vs_single = multi_engine_ingest_ns / engine_ingest_ns;

    // Supervised ingest front: the same fused stream submitted through
    // the bounded ring to the engine's worker thread under `Block`
    // (lossless back-pressure — bit-identical to the synchronous run).
    // The per-frame cost adds ring hand-off + ordered sequencing on top
    // of the fused engine work, so the fps floor gates the whole front.
    let build_multi = || {
        let refs: BTreeMap<NetworkParameter, ReferenceDb> =
            multi_refs.iter().map(|(&p, db)| (p, db.snapshot())).collect();
        MultiEngine::builder()
            .spec(FusionSpec::all_equal())
            .config(multi_cfg.clone())
            .references(refs)
            .build()
            .expect("valid engine configuration")
    };
    let ingest_pipeline_ns = measure(5, 1, || {
        let pipeline = IngestPipeline::spawn(build_multi(), IngestConfig::default())
            .expect("spawn supervised pipeline");
        for frame in &engine_frames {
            pipeline.submit(frame).expect("open pipeline");
        }
        let report = pipeline.finish().expect("pipeline terminates");
        assert!(report.is_reconciled(), "ledger must reconcile");
        std::hint::black_box(report.events.len());
    }) / engine_frames.len() as f64;
    let ingest_pipeline_fps = 1e9 / ingest_pipeline_ns;

    // Fixed overload configuration: a tiny ShedOldest ring against an
    // artificially slowed worker on a 50k-frame prefix. The shed rate
    // depends on real scheduling, so it is recorded for the trajectory
    // but not gated.
    let overload_frames = &engine_frames[..50_000];
    let overload_cfg = IngestConfig::default()
        .with_capacity(8)
        .with_overload(OverloadPolicy::ShedOldest)
        .with_sweep_delay(std::time::Duration::from_micros(5));
    let ingest_shed_rate = {
        let pipeline =
            IngestPipeline::spawn(build_multi(), overload_cfg).expect("spawn overload pipeline");
        for frame in overload_frames {
            pipeline.submit(frame).expect("open pipeline");
        }
        let report = pipeline.finish().expect("pipeline terminates");
        assert!(report.is_reconciled(), "overload ledger must reconcile");
        report.stats.shed_rate()
    };

    // Sharded sweeps at metropolis scale: the dense full sweep (every
    // shard, full similarity vector) versus the pruned top-5 sweep over
    // the same store, at 10^4 and 10^5 enrolled devices. The speedup is
    // a ratio of two measurements on the same hardware, so the gate
    // transfers across hosts better than absolute nanoseconds.
    let sharded_cfg = MatchConfig::default().with_shards(64);
    let mut sharded = Vec::new();
    let (mut bytes_per_device_f32, mut bytes_per_device_u8) = (0.0f64, 0.0f64);
    let (mut quant_f32_tile_ns, mut quant_u8_tile_ns) = (f64::NAN, f64::NAN);
    let mut pruned_fraction_k8 = 0.0f64;
    for devices in [10_000usize, 100_000] {
        let scenario = MetropolisScenario::with_devices(17, devices);
        let db = scenario.reference_db(sharded_cfg);
        let probes: Vec<Signature> =
            (0..8usize).map(|i| scenario.candidate((i * 997) % devices, 2)).collect();
        let mut scratch = MatchScratch::new();
        let dense_ns = measure(7, 1, || {
            for cand in &probes {
                let view =
                    db.match_signature_with(cand, SimilarityMeasure::Cosine, &mut scratch);
                std::hint::black_box(view.best());
            }
        }) / probes.len() as f64;
        let topk_ns = measure(7, 1, || {
            for cand in &probes {
                std::hint::black_box(db.match_topk(
                    cand,
                    5,
                    SimilarityMeasure::Cosine,
                    &mut scratch,
                ));
            }
        }) / probes.len() as f64;
        let (mut swept, mut pruned) = (0usize, 0usize);
        for cand in &probes {
            db.match_topk(cand, 5, SimilarityMeasure::Cosine, &mut scratch);
            let stats = scratch.prune_stats();
            swept += stats.swept_shards;
            pruned += stats.pruned_shards;
        }
        let fraction = pruned as f64 / (swept + pruned).max(1) as f64;
        sharded.push((devices, dense_ns, topk_ns, dense_ns / topk_ns, fraction));

        // Quantized tier at the 10⁵ operating point: the f32 dense
        // 8-wide tile sweep (every shard, every row, float kernels)
        // versus the u8 tile-wide pruned top-8 sweep over the same
        // population — the PR 9 headline. Both numbers are per tile of
        // 8 candidates, so the speedup folds storage (4× smaller rows),
        // integer kernels and tile-wide pruning into one ratio.
        if devices == 100_000 {
            let u8_db = scenario.reference_db(MatchConfig::quantized().with_shards(64));
            bytes_per_device_f32 = db.row_bytes() as f64 / devices as f64;
            bytes_per_device_u8 = u8_db.row_bytes() as f64 / devices as f64;
            assert!(
                bytes_per_device_u8 * 2.0 <= bytes_per_device_f32,
                "quantized rows must at most halve the f32 resident bytes"
            );
            quant_f32_tile_ns = measure(7, 1, || {
                let tile = db.match_tile(&probes, SimilarityMeasure::Cosine, &mut scratch);
                std::hint::black_box(tile.candidate(7).best());
            });
            quant_u8_tile_ns = measure(7, 1, || {
                std::hint::black_box(u8_db.match_topk_tile(
                    &probes,
                    8,
                    SimilarityMeasure::Cosine,
                    &mut scratch,
                ));
            });
            u8_db.match_topk_tile(&probes, 8, SimilarityMeasure::Cosine, &mut scratch);
            let stats = scratch.prune_stats();
            pruned_fraction_k8 = stats.pruned_fraction();
        }
    }
    let (_, sharded_dense_10k, sharded_topk_10k, sharded_speedup_10k, pruned_fraction_10k) =
        sharded[0];
    let (_, sharded_dense_ns, sharded_topk_ns, sharded_speedup, pruned_fraction) = sharded[1];
    let quant_tile_speedup = quant_f32_tile_ns / quant_u8_tile_ns;

    // Rotation linking at the headline operating point: a 1 000-device
    // metropolis slice rotating periodically (fresh MAC every 2
    // sightings), streamed through the RotationLinker cold. Throughput
    // is sightings/second through the pruned gallery sweeps; the
    // accuracy numbers are the same quantities the CI linking gate
    // pins, recorded here so the trajectory shows cost next to them.
    let link_trail = RotationScenario::new(
        MetropolisScenario::with_devices(20_120_711, 1000),
        RotationPolicy::Periodic { period: 2 },
    )
    .generate();
    let linker_ns = measure(5, 1, || {
        let mut linker =
            RotationLinker::new(metropolis_linker_config()).expect("valid linker configuration");
        let mut decided = 0usize;
        for s in &link_trail.sightings {
            let sigs = [(NetworkParameter::InterArrivalTime, s.signature.clone())];
            decided += usize::from(linker.link(s.mac, s.at, &sigs).identity().is_some());
        }
        std::hint::black_box(decided);
    }) / link_trail.sightings.len() as f64;
    let linker_throughput_fps = 1e9 / linker_ns;
    let link_point = evaluate_linking_trail(&link_trail, metropolis_linker_config())
        .expect("valid linker configuration");
    let linker_stats = link_point.stats;

    // Zero-copy wire ingest: a 60 000-record (~35 MB) radiotap capture
    // built in memory once, then (a) replayed through the borrowed-slice
    // path — records viewed in place, `WireFrame` header arithmetic,
    // zero copies and zero allocations, record bodies never read — and
    // (b) decoded through the materialized baseline: a fresh `Vec` per
    // record plus an owned `Frame` with its body copy, every byte
    // touched. The headline is their same-host ratio.
    let replay_records: u64 = 60_000;
    let capture = {
        let ap = MacAddr::from_index(0xA11);
        let mut file = Vec::with_capacity(40 << 20);
        let mut writer =
            Writer::new(&mut file, LinkType::Ieee80211Radiotap).expect("in-memory writer");
        for i in 0..replay_records {
            let dev = MacAddr::from_index(i % stream_devices);
            let frame = Frame::data_to_ds(dev, ap, ap, 200 + (i % 7) as usize * 100);
            let info = RxInfo {
                tsft_us: Some(25 * (i + 1)),
                rate: Some(Rate::R54M),
                signal_dbm: Some(-50),
                flags: RxFlags::FCS_INCLUDED,
                ..RxInfo::default()
            };
            let mut packet = info.to_radiotap();
            packet.extend_from_slice(&frame.to_bytes());
            writer
                .write_record(&Record::from_micros(25 * (i + 1), packet))
                .expect("in-memory write");
        }
        file
    };

    // Single-packet borrowed decode: radiotap header walk + WireFrame
    // header arithmetic on a mid-size data frame, no copies.
    let sample_packet = {
        let frame =
            Frame::data_to_ds(MacAddr::from_index(1), MacAddr::from_index(2), MacAddr::from_index(2), 500);
        let info = RxInfo {
            tsft_us: Some(1),
            rate: Some(Rate::R54M),
            signal_dbm: Some(-50),
            flags: RxFlags::FCS_INCLUDED,
            ..RxInfo::default()
        };
        let mut packet = info.to_radiotap();
        packet.extend_from_slice(&frame.to_bytes());
        packet
    };
    let wire_decode_ns = measure(15, 20_000, || {
        std::hint::black_box(
            CapturedFrame::from_radiotap_packet(&sample_packet, Nanos::ZERO).expect("valid packet"),
        );
    });

    // The borrowed-slice replay path: records are subslices of the
    // in-memory file, bodies are never touched, nothing allocates.
    let replay_ns = measure(15, 1, || {
        let mut replay = Replay::from_slice(&capture).expect("dlt 127");
        let mut decoded = 0u64;
        while let Some(frame) = replay.next_frame().expect("well-formed stream") {
            decoded += 1;
            std::hint::black_box(frame.size);
        }
        assert_eq!(decoded, replay_records);
    }) / replay_records as f64;
    let replay_fps = 1e9 / replay_ns;

    let materialized_ns = measure(15, 1, || {
        let mut reader = Reader::new(&capture[..]).expect("readable capture");
        let mut decoded = 0u64;
        while let Some(rec) = reader.next_record().expect("well-formed stream") {
            let (info, hdr_len) = RxInfo::from_radiotap(&rec.data).expect("valid header");
            let frame = Frame::parse(&rec.data[hdr_len..]).expect("valid frame");
            let cap = CapturedFrame::from_frame(
                &frame,
                info.rate.unwrap_or(Rate::R1M),
                info.tsft_us.map(Nanos::from_micros).unwrap_or(Nanos::from_nanos(rec.timestamp_nanos())),
                info.signal_dbm.unwrap_or(-70),
            );
            decoded += 1;
            std::hint::black_box(cap.size);
        }
        assert_eq!(decoded, replay_records);
    }) / replay_records as f64;
    let replay_vs_materialized = materialized_ns / replay_ns;

    let match_speedup = naive_ns / matrix_ns;
    let tile_speedup = matvec8_ns / tile_ns;
    let kernel_speedup = dot_f64_ns / dot_f32_ns;
    let batch_speedup = serial_ns / parallel_ns;
    let mut json = String::from("{\n");
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    // Host provenance: a 1-CPU container necessarily reports
    // batch_speedup ~ 1, and the OS kernel identifies the machine class
    // the absolute numbers came from.
    let host_kernel = std::fs::read_to_string("/proc/sys/kernel/osrelease")
        .map(|s| s.trim().to_owned())
        .unwrap_or_else(|_| "unknown".to_owned());
    let _ = writeln!(json, "  \"schema\": \"wifiprint-bench-snapshot-v9\",");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"host_os\": \"{}\",", std::env::consts::OS);
    let _ = writeln!(json, "  \"host_kernel\": \"{host_kernel}\",");
    let _ = writeln!(json, "  \"kernel\": \"{}\",", kernel::active());
    let _ = writeln!(json, "  \"int_kernel\": \"{}\",", kernel::active_int().as_str());
    let _ = writeln!(json, "  \"reference_devices\": 256,");
    let _ = writeln!(json, "  \"batch_windows\": 512,");
    let _ = writeln!(json, "  \"match_naive_ns\": {naive_ns:.0},");
    let _ = writeln!(json, "  \"match_matrix_ns\": {matrix_ns:.0},");
    let _ = writeln!(json, "  \"match_speedup\": {match_speedup:.2},");
    let _ = writeln!(json, "  \"tile_k\": 8,");
    let _ = writeln!(json, "  \"tile_matvec_ns\": {matvec8_ns:.0},");
    let _ = writeln!(json, "  \"tile_ns\": {tile_ns:.0},");
    let _ = writeln!(json, "  \"tile_speedup\": {tile_speedup:.2},");
    let _ = writeln!(json, "  \"dot_f64_ns\": {dot_f64_ns:.1},");
    let _ = writeln!(json, "  \"dot_f32_ns\": {dot_f32_ns:.1},");
    let _ = writeln!(json, "  \"kernel_speedup\": {kernel_speedup:.2},");
    let _ = writeln!(json, "  \"quant_dot_ns\": {quant_dot_ns:.1},");
    let _ = writeln!(json, "  \"insert_stream_ns_per_device\": {insert_ns:.0},");
    let _ = writeln!(json, "  \"batch_serial_ns\": {serial_ns:.0},");
    let _ = writeln!(json, "  \"batch_parallel_ns\": {parallel_ns:.0},");
    let _ = writeln!(json, "  \"batch_speedup\": {batch_speedup:.2},");
    let _ = writeln!(json, "  \"engine_stream_devices\": {stream_devices},");
    let _ = writeln!(json, "  \"engine_window_secs\": 1,");
    let _ = writeln!(json, "  \"engine_frames\": {},", engine_frames.len());
    let _ = writeln!(json, "  \"engine_ingest_ns_per_frame\": {engine_ingest_ns:.0},");
    let _ = writeln!(json, "  \"engine_ingest_fps\": {engine_ingest_fps:.0},");
    let _ = writeln!(json, "  \"shard_count\": 64,");
    let _ = writeln!(json, "  \"shard_strategy\": \"dominant-histogram\",");
    let _ = writeln!(json, "  \"sharded_topk\": 5,");
    let _ = writeln!(json, "  \"sharded_devices_10k\": 10000,");
    let _ = writeln!(json, "  \"sharded_dense_ns_10k\": {sharded_dense_10k:.0},");
    let _ = writeln!(json, "  \"sharded_topk_ns_10k\": {sharded_topk_10k:.0},");
    let _ = writeln!(json, "  \"sharded_sweep_speedup_10k\": {sharded_speedup_10k:.2},");
    let _ = writeln!(json, "  \"pruned_shard_fraction_10k\": {pruned_fraction_10k:.3},");
    let _ = writeln!(json, "  \"sharded_devices\": 100000,");
    let _ = writeln!(json, "  \"sharded_dense_ns\": {sharded_dense_ns:.0},");
    let _ = writeln!(json, "  \"sharded_topk_ns\": {sharded_topk_ns:.0},");
    let _ = writeln!(json, "  \"sharded_sweep_speedup\": {sharded_speedup:.2},");
    let _ = writeln!(json, "  \"pruned_shard_fraction\": {pruned_fraction:.3},");
    let _ = writeln!(json, "  \"quant_tile_k\": 8,");
    let _ = writeln!(json, "  \"quant_f32_tile_ns\": {quant_f32_tile_ns:.0},");
    let _ = writeln!(json, "  \"quant_u8_tile_topk_ns\": {quant_u8_tile_ns:.0},");
    let _ = writeln!(json, "  \"quant_tile_speedup\": {quant_tile_speedup:.2},");
    let _ = writeln!(json, "  \"pruned_shard_fraction_k8\": {pruned_fraction_k8:.3},");
    let _ = writeln!(json, "  \"bytes_per_device_f32\": {bytes_per_device_f32:.0},");
    let _ = writeln!(json, "  \"bytes_per_device_u8\": {bytes_per_device_u8:.0},");
    let _ = writeln!(json, "  \"multi_engine_parameters\": 5,");
    let _ = writeln!(json, "  \"multi_engine_ingest_ns_per_frame\": {multi_engine_ingest_ns:.0},");
    let _ = writeln!(json, "  \"multi_engine_ingest_fps\": {multi_engine_ingest_fps:.0},");
    let _ = writeln!(json, "  \"multi_vs_single_frame_cost\": {multi_vs_single:.2},");
    let _ = writeln!(json, "  \"ingest_ring_capacity\": 1024,");
    let _ = writeln!(json, "  \"ingest_pipeline_ns_per_frame\": {ingest_pipeline_ns:.0},");
    let _ = writeln!(json, "  \"ingest_pipeline_fps\": {ingest_pipeline_fps:.0},");
    let _ = writeln!(json, "  \"ingest_overload_frames\": {},", overload_frames.len());
    let _ = writeln!(json, "  \"ingest_shed_rate\": {ingest_shed_rate:.3},");
    let _ = writeln!(json, "  \"linker_devices\": 1000,");
    let _ = writeln!(json, "  \"linker_sightings\": {},", link_trail.sightings.len());
    let _ = writeln!(json, "  \"linker_ns_per_sighting\": {linker_ns:.0},");
    let _ = writeln!(json, "  \"linker_throughput_fps\": {linker_throughput_fps:.0},");
    let _ = writeln!(json, "  \"linker_precision_periodic\": {:.3},", link_point.precision());
    let _ = writeln!(json, "  \"linker_recall_periodic\": {:.3},", link_point.recall());
    let _ = writeln!(json, "  \"linker_merge_rate_periodic\": {:.3},", link_point.merge_rate());
    let _ = writeln!(json, "  \"linker_identities\": {},", link_point.identities_founded);
    let _ = writeln!(json, "  \"linker_pruned_fraction\": {:.3},", linker_stats.pruned_fraction());
    let _ = writeln!(json, "  \"replay_records\": {replay_records},");
    let _ = writeln!(json, "  \"wire_decode_ns\": {wire_decode_ns:.1},");
    let _ = writeln!(json, "  \"replay_ns_per_record\": {replay_ns:.0},");
    let _ = writeln!(json, "  \"replay_fps\": {replay_fps:.0},");
    let _ = writeln!(json, "  \"materialized_ns_per_record\": {materialized_ns:.0},");
    let _ = writeln!(json, "  \"replay_vs_materialized\": {replay_vs_materialized:.2}");
    json.push('}');

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");

    if let Some(baseline_path) = check_path {
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline_matrix = read_field(&baseline, "match_matrix_ns")
            .expect("baseline lacks match_matrix_ns");
        let limit = baseline_matrix * (1.0 + REGRESSION_BUDGET);
        if matrix_ns > limit {
            eprintln!(
                "PERF REGRESSION: match_matrix_ns {matrix_ns:.0} exceeds {limit:.0} \
                 (baseline {baseline_matrix:.0} + {:.0}%)",
                REGRESSION_BUDGET * 100.0
            );
            std::process::exit(1);
        }
        println!(
            "perf check ok: match_matrix_ns {matrix_ns:.0} within {:.0}% of baseline {baseline_matrix:.0}",
            REGRESSION_BUDGET * 100.0
        );
        // Pre-v4 baselines carry no multi-engine number; the matrix
        // gate above still applies.
        if let Some(baseline_fps) = read_field(&baseline, "multi_engine_ingest_fps") {
            let floor = baseline_fps * (1.0 - REGRESSION_BUDGET);
            if multi_engine_ingest_fps < floor {
                eprintln!(
                    "PERF REGRESSION: multi_engine_ingest_fps {multi_engine_ingest_fps:.0} \
                     below {floor:.0} (baseline {baseline_fps:.0} - {:.0}%)",
                    REGRESSION_BUDGET * 100.0
                );
                std::process::exit(1);
            }
            println!(
                "perf check ok: multi_engine_ingest_fps {multi_engine_ingest_fps:.0} within \
                 {:.0}% of baseline {baseline_fps:.0}",
                REGRESSION_BUDGET * 100.0
            );
        }
        // Pre-v6 baselines carry no supervised-ingest number.
        if let Some(baseline_fps) = read_field(&baseline, "ingest_pipeline_fps") {
            let floor = baseline_fps * (1.0 - REGRESSION_BUDGET);
            if ingest_pipeline_fps < floor {
                eprintln!(
                    "PERF REGRESSION: ingest_pipeline_fps {ingest_pipeline_fps:.0} below \
                     {floor:.0} (baseline {baseline_fps:.0} - {:.0}%)",
                    REGRESSION_BUDGET * 100.0
                );
                std::process::exit(1);
            }
            println!(
                "perf check ok: ingest_pipeline_fps {ingest_pipeline_fps:.0} within {:.0}% of \
                 baseline {baseline_fps:.0}",
                REGRESSION_BUDGET * 100.0
            );
        }
        // Pre-v7 baselines carry no linker number.
        if let Some(baseline_fps) = read_field(&baseline, "linker_throughput_fps") {
            let floor = baseline_fps * (1.0 - REGRESSION_BUDGET);
            if linker_throughput_fps < floor {
                eprintln!(
                    "PERF REGRESSION: linker_throughput_fps {linker_throughput_fps:.0} below \
                     {floor:.0} (baseline {baseline_fps:.0} - {:.0}%)",
                    REGRESSION_BUDGET * 100.0
                );
                std::process::exit(1);
            }
            println!(
                "perf check ok: linker_throughput_fps {linker_throughput_fps:.0} within {:.0}% \
                 of baseline {baseline_fps:.0}",
                REGRESSION_BUDGET * 100.0
            );
        }
        // Pre-v8 baselines carry no quantized-tier numbers. The tile
        // speedup is a ratio of two same-host measurements, so it gates
        // the integer kernels + tile-wide pruning without pinning
        // absolute nanoseconds.
        if let Some(baseline_speedup) = read_field(&baseline, "quant_tile_speedup") {
            let floor = baseline_speedup * (1.0 - REGRESSION_BUDGET);
            if quant_tile_speedup < floor {
                eprintln!(
                    "PERF REGRESSION: quant_tile_speedup {quant_tile_speedup:.2} below \
                     {floor:.2} (baseline {baseline_speedup:.2} - {:.0}%)",
                    REGRESSION_BUDGET * 100.0
                );
                std::process::exit(1);
            }
            println!(
                "perf check ok: quant_tile_speedup {quant_tile_speedup:.2} within {:.0}% of \
                 baseline {baseline_speedup:.2}",
                REGRESSION_BUDGET * 100.0
            );
        }
        if let Some(baseline_bytes) = read_field(&baseline, "bytes_per_device_u8") {
            // Storage is deterministic, not timing: any growth of the
            // quantized row footprint is a layout regression.
            if bytes_per_device_u8 > baseline_bytes * 1.01 {
                eprintln!(
                    "PERF REGRESSION: bytes_per_device_u8 {bytes_per_device_u8:.0} exceeds \
                     baseline {baseline_bytes:.0}"
                );
                std::process::exit(1);
            }
            println!(
                "perf check ok: bytes_per_device_u8 {bytes_per_device_u8:.0} at or below \
                 baseline {baseline_bytes:.0}"
            );
        }
        // Pre-v9 baselines carry no zero-copy replay numbers. The
        // replay_vs_materialized ratio is two same-host measurements, so
        // it gates the borrowed decode without pinning nanoseconds;
        // replay_fps additionally guards the absolute loop cost on the
        // (fixed) CI machine class.
        if let Some(baseline_fps) = read_field(&baseline, "replay_fps") {
            let floor = baseline_fps * (1.0 - REGRESSION_BUDGET);
            if replay_fps < floor {
                eprintln!(
                    "PERF REGRESSION: replay_fps {replay_fps:.0} below {floor:.0} \
                     (baseline {baseline_fps:.0} - {:.0}%)",
                    REGRESSION_BUDGET * 100.0
                );
                std::process::exit(1);
            }
            println!(
                "perf check ok: replay_fps {replay_fps:.0} within {:.0}% of baseline \
                 {baseline_fps:.0}",
                REGRESSION_BUDGET * 100.0
            );
        }
        if let Some(baseline_speedup) = read_field(&baseline, "replay_vs_materialized") {
            let floor = baseline_speedup * (1.0 - REGRESSION_BUDGET);
            if replay_vs_materialized < floor {
                eprintln!(
                    "PERF REGRESSION: replay_vs_materialized {replay_vs_materialized:.2} \
                     below {floor:.2} (baseline {baseline_speedup:.2} - {:.0}%)",
                    REGRESSION_BUDGET * 100.0
                );
                std::process::exit(1);
            }
            println!(
                "perf check ok: replay_vs_materialized {replay_vs_materialized:.2} within \
                 {:.0}% of baseline {baseline_speedup:.2}",
                REGRESSION_BUDGET * 100.0
            );
        }
        // Pre-v5 baselines carry no sharded-sweep number.
        if let Some(baseline_speedup) = read_field(&baseline, "sharded_sweep_speedup") {
            let floor = baseline_speedup * (1.0 - REGRESSION_BUDGET);
            if sharded_speedup < floor {
                eprintln!(
                    "PERF REGRESSION: sharded_sweep_speedup {sharded_speedup:.2} below \
                     {floor:.2} (baseline {baseline_speedup:.2} - {:.0}%)",
                    REGRESSION_BUDGET * 100.0
                );
                std::process::exit(1);
            }
            println!(
                "perf check ok: sharded_sweep_speedup {sharded_speedup:.2} within {:.0}% of \
                 baseline {baseline_speedup:.2}",
                REGRESSION_BUDGET * 100.0
            );
        }
    }
}
