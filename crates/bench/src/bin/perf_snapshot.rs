//! Emits a machine-readable perf snapshot (`BENCH_<n>.json`) so the
//! repository keeps a trajectory of matching-engine throughput across
//! PRs.
//!
//! Usage: `cargo run --release -p wifiprint-bench --bin perf_snapshot
//! [output.json]` (default `BENCH_1.json` in the current directory).
//!
//! The measurements mirror the headline benches in
//! `crates/bench/benches/fingerprint.rs`: naive-vs-matrix matching
//! against a 256-device reference DB, and serial-vs-parallel evaluation
//! of a 512-window candidate batch.

use std::fmt::Write as _;
use std::time::Instant;

use wifiprint_core::{
    EvalConfig, MatchScratch, NetworkParameter, ReferenceDb, Signature, SimilarityMeasure,
};
use wifiprint_ieee80211::{FrameKind, MacAddr};

fn synthetic_signature(seed: u64, obs: u64) -> Signature {
    let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime);
    let mut sig = Signature::new();
    for i in 0..obs {
        let v = ((seed * 131 + i * 37) % 2400) as f64;
        sig.record(FrameKind::Data, v, &cfg);
        if i % 5 == 0 {
            sig.record(FrameKind::ProbeReq, (seed * 17 % 500) as f64, &cfg);
        }
    }
    sig
}

/// Median per-iteration nanoseconds over `samples` timed samples.
fn measure<F: FnMut()>(samples: usize, iters_per_sample: usize, mut f: F) -> f64 {
    // Warm-up.
    for _ in 0..iters_per_sample {
        f();
    }
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                f();
            }
            start.elapsed().as_nanos() as f64 / iters_per_sample as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite time"));
    times[times.len() / 2]
}

fn main() {
    let out_path =
        std::env::args().nth(1).unwrap_or_else(|| "BENCH_1.json".to_owned());

    let mut db = ReferenceDb::new();
    for d in 0..256u64 {
        db.insert(MacAddr::from_index(d), synthetic_signature(d, 500));
    }
    let candidate = synthetic_signature(3, 500);
    let candidates: Vec<Signature> =
        (0..512u64).map(|w| synthetic_signature(w % 97, 200)).collect();

    let naive_ns = measure(15, 20, || {
        std::hint::black_box(db.match_signature_naive(&candidate, SimilarityMeasure::Cosine));
    });
    let mut scratch = MatchScratch::new();
    let matrix_ns = measure(15, 20, || {
        let view = db.match_signature_with(&candidate, SimilarityMeasure::Cosine, &mut scratch);
        std::hint::black_box(view.best());
    });

    let mut serial_scratch = MatchScratch::new();
    let serial_ns = measure(9, 1, || {
        let mut acc = 0.0f64;
        for cand in &candidates {
            let view =
                db.match_signature_with(cand, SimilarityMeasure::Cosine, &mut serial_scratch);
            acc += view.best().map_or(0.0, |(_, s)| s);
        }
        std::hint::black_box(acc);
    });
    let parallel_ns = measure(9, 1, || {
        std::hint::black_box(db.match_batch(&candidates, SimilarityMeasure::Cosine));
    });

    let match_speedup = naive_ns / matrix_ns;
    let batch_speedup = serial_ns / parallel_ns;
    let mut json = String::from("{\n");
    let cpus = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let _ = writeln!(json, "  \"schema\": \"wifiprint-bench-snapshot-v1\",");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"reference_devices\": 256,");
    let _ = writeln!(json, "  \"batch_windows\": 512,");
    let _ = writeln!(json, "  \"match_naive_ns\": {naive_ns:.0},");
    let _ = writeln!(json, "  \"match_matrix_ns\": {matrix_ns:.0},");
    let _ = writeln!(json, "  \"match_speedup\": {match_speedup:.2},");
    let _ = writeln!(json, "  \"batch_serial_ns\": {serial_ns:.0},");
    let _ = writeln!(json, "  \"batch_parallel_ns\": {parallel_ns:.0},");
    let _ = writeln!(json, "  \"batch_speedup\": {batch_speedup:.2}");
    json.push('}');

    std::fs::write(&out_path, &json).expect("write snapshot");
    println!("{json}");
    println!("wrote {out_path}");
}
