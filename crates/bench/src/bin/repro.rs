//! Reproduction harness: regenerates every table and figure of
//! *"An empirical study of passive 802.11 device fingerprinting"*
//! (Neumann, Heen, Onno — ICDCS workshops 2012).
//!
//! ```text
//! repro [--quick] [--seed N] [--out DIR] <experiment>
//!
//! experiments:
//!   table1   evaluation trace features
//!   table2   AUC of the similarity test
//!   table3   identification ratios at FPR 0.01 / 0.1
//!   fig1     sender-attribution worked example
//!   fig2     example inter-arrival histogram
//!   fig3     similarity curves (TPR vs FPR), all traces × parameters
//!   fig4     backoff implementation differences
//!   fig5     RTS threshold on/off
//!   fig6     rate-adaptation differences
//!   fig7     same-model netbooks, broadcast frames
//!   fig8     null-function (power save) frames
//!   baseline Pang-style broadcast-size identifier (§V-B2)
//!   fusion   multi-parameter combination (§VIII future work)
//!   attack   §VII-A mimicry attacker evaluation
//!   all      everything above
//! ```
//!
//! `--quick` shortens the two 7-hour traces to 2 hours. CSV series for
//! every figure/table are written under `--out` (default `target/repro`).

use std::fs;
use std::path::{Path, PathBuf};

use wifiprint_analysis::plot::{curve_csv, curve_plot, histogram_bars, histogram_csv};
use wifiprint_analysis::tables::{render_columns, table1, table2, table3, TraceFeatures};
use wifiprint_bench::experiments::{evaluate_scenario, TraceKind, TraceRun};
use wifiprint_bench::figures;
use wifiprint_core::NetworkParameter;

struct Options {
    quick: bool,
    seed: u64,
    out: PathBuf,
    experiment: String,
}

fn parse_args() -> Options {
    let mut quick = false;
    let mut seed = 1u64;
    let mut out = PathBuf::from("target/repro");
    let mut experiment = String::from("all");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed needs an integer"));
            }
            "--out" => {
                out = PathBuf::from(args.next().unwrap_or_else(|| die("--out needs a path")));
            }
            "--help" | "-h" => {
                println!("usage: repro [--quick] [--seed N] [--out DIR] <experiment>");
                println!("experiments: table1 table2 table3 fig1..fig8 baseline all");
                std::process::exit(0);
            }
            other if !other.starts_with('-') => experiment = other.to_owned(),
            other => die(&format!("unknown flag {other}")),
        }
    }
    Options { quick, seed, out, experiment }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

fn main() {
    let opts = parse_args();
    fs::create_dir_all(&opts.out).unwrap_or_else(|e| die(&format!("creating out dir: {e}")));

    let needs_traces = matches!(
        opts.experiment.as_str(),
        "table1" | "table2" | "table3" | "fig3" | "baseline" | "all"
    );
    let runs: Vec<TraceRun> = if needs_traces {
        TraceKind::ALL
            .into_iter()
            .map(|kind| {
                eprintln!(
                    "[repro] generating + evaluating {} ({}) ...",
                    kind.name(),
                    if opts.quick && kind.is_long() { "quick 2h" } else { "full" }
                );
                let run = evaluate_scenario(kind, opts.quick, opts.seed);
                eprintln!(
                    "[repro]   {}: {} train + {} validation frames, {} ref devices, {:.1}s",
                    kind.name(),
                    run.eval.train_frames,
                    run.eval.validation_frames,
                    run.eval.ref_devices,
                    run.wall_secs
                );
                run
            })
            .collect()
    } else {
        Vec::new()
    };

    match opts.experiment.as_str() {
        "table1" => print_table1(&runs, &opts),
        "table2" => print_table2(&runs, &opts),
        "table3" => print_table3(&runs, &opts),
        "fig1" => print_fig1(),
        "fig2" => print_fig2(&opts),
        "fig3" => print_fig3(&runs, &opts),
        "fig4" => print_histogram_figure(
            "fig4",
            "Fig. 4: backoff implementations (data @54 Mb/s, no retries)",
            figures::fig4_backoff(opts.seed),
            250.0,
            450.0,
            &opts,
        ),
        "fig5" => print_histogram_figure(
            "fig5",
            "Fig. 5: RTS settings (same device, busy lab)",
            figures::fig5_rts(opts.seed),
            0.0,
            2000.0,
            &opts,
        ),
        "fig6" => print_fig6(&opts),
        "fig7" => print_histogram_figure(
            "fig7",
            "Fig. 7: same-model netbooks, broadcast frames only",
            figures::fig7_services(opts.seed),
            0.0,
            2500.0,
            &opts,
        ),
        "fig8" => print_histogram_figure(
            "fig8",
            "Fig. 8: null-function (power save) frames only",
            figures::fig8_power_save(opts.seed),
            0.0,
            2500.0,
            &opts,
        ),
        "baseline" => print_baseline(&runs),
        "fusion" => print_fusion(&opts),
        "attack" => print_attack(&opts),
        "all" => {
            print_table1(&runs, &opts);
            print_table2(&runs, &opts);
            print_table3(&runs, &opts);
            print_fig1();
            print_fig2(&opts);
            print_fig3(&runs, &opts);
            print_histogram_figure(
                "fig4",
                "Fig. 4: backoff implementations (data @54 Mb/s, no retries)",
                figures::fig4_backoff(opts.seed),
                250.0,
                450.0,
                &opts,
            );
            print_histogram_figure(
                "fig5",
                "Fig. 5: RTS settings (same device, busy lab)",
                figures::fig5_rts(opts.seed),
                0.0,
                2000.0,
                &opts,
            );
            print_fig6(&opts);
            print_histogram_figure(
                "fig7",
                "Fig. 7: same-model netbooks, broadcast frames only",
                figures::fig7_services(opts.seed),
                0.0,
                2500.0,
                &opts,
            );
            print_histogram_figure(
                "fig8",
                "Fig. 8: null-function (power save) frames only",
                figures::fig8_power_save(opts.seed),
                0.0,
                2500.0,
                &opts,
            );
            print_baseline(&runs);
            print_fusion(&opts);
            print_attack(&opts);
        }
        other => die(&format!("unknown experiment {other}; try --help")),
    }
    eprintln!("[repro] CSV outputs in {}", opts.out.display());
}

fn write_out(out: &Path, name: &str, content: &str) {
    let path = out.join(name);
    if let Err(e) = fs::write(&path, content) {
        eprintln!("[repro] warning: could not write {}: {e}", path.display());
    }
}

fn print_table1(runs: &[TraceRun], opts: &Options) {
    let rows: Vec<TraceFeatures> = runs
        .iter()
        .map(|run| {
            let (total, reference, candidate, encryption) = run.kind.descriptions(opts.quick);
            TraceFeatures {
                name: run.kind.name().to_owned(),
                total: total.to_owned(),
                reference: reference.to_owned(),
                candidate: candidate.to_owned(),
                encryption: encryption.to_owned(),
                ref_devices: run.eval.ref_devices,
            }
        })
        .collect();
    let text = table1(&rows);
    println!("\n== Table I: evaluation trace features ==\n{text}");
    write_out(&opts.out, "table1.txt", &text);
}

fn print_table2(runs: &[TraceRun], opts: &Options) {
    let evals: Vec<(&str, &wifiprint_analysis::TraceEvaluation)> =
        runs.iter().map(|r| (r.kind.name(), &r.eval)).collect();
    let text = table2(&evals);
    println!("\n== Table II: AUC of the similarity test ==\n{text}");
    write_out(&opts.out, "table2.txt", &text);
}

fn print_table3(runs: &[TraceRun], opts: &Options) {
    let evals: Vec<(&str, &wifiprint_analysis::TraceEvaluation)> =
        runs.iter().map(|r| (r.kind.name(), &r.eval)).collect();
    let text = table3(&evals);
    println!("\n== Table III: identification ratios ==\n{text}");
    write_out(&opts.out, "table3.txt", &text);
}

fn print_fig1() {
    println!("\n== Fig. 1: sender attribution on the worked example ==");
    for line in figures::fig1_worked_example() {
        println!("  {line}");
    }
}

fn print_fig2(opts: &Options) {
    let (device, hist) = figures::fig2_example_histogram(opts.seed);
    println!("\n== Fig. 2: example inter-arrival histogram (device {device}) ==");
    println!("{}", histogram_bars(&hist, 0.0, 2500.0, 40, 50));
    write_out(&opts.out, "fig2.csv", &histogram_csv(&hist));
}

fn print_fig3(runs: &[TraceRun], opts: &Options) {
    println!("\n== Fig. 3: similarity curves (TPR vs FPR) ==");
    for run in runs {
        println!("\n--- {} ---", run.kind.name());
        for p in NetworkParameter::ALL {
            let outcome = &run.eval.outcomes[&p];
            println!("{} (AUC {:.1}%):", p.label(), 100.0 * outcome.auc());
            println!("{}", curve_plot(&outcome.curve.points, 60, 14));
            let name = format!(
                "fig3_{}_{}.csv",
                run.kind.name().to_lowercase().replace([' ', '.'], ""),
                p.slug()
            );
            write_out(&opts.out, &name, &curve_csv(&outcome.curve.points));
        }
    }
}

fn print_histogram_figure(
    tag: &str,
    title: &str,
    hists: Vec<(String, wifiprint_core::Histogram)>,
    min_x: f64,
    max_x: f64,
    opts: &Options,
) {
    println!("\n== {title} ==");
    for (label, hist) in &hists {
        println!("\n[{label}] ({} observations)", hist.total());
        println!("{}", histogram_bars(hist, min_x, max_x, 32, 46));
        let name = format!("{tag}_{}.csv", label.to_lowercase().replace([' ', '/'], "_"));
        write_out(&opts.out, &name, &histogram_csv(hist));
    }
}

fn print_fig6(opts: &Options) {
    println!("\n== Fig. 6: rate adaptation differences ==");
    for (label, hist, rates) in figures::fig6_rates(opts.seed) {
        println!("\n[{label}] inter-arrival histogram ({} observations)", hist.total());
        println!("{}", histogram_bars(&hist, 0.0, 1000.0, 32, 46));
        println!("[{label}] transmission-rate distribution:");
        let mut cols: Vec<Vec<String>> = vec![vec!["rate".into()], vec!["density".into()]];
        for (rate, share) in &rates {
            cols[0].push(rate.clone());
            cols[1].push(format!("{share:.3}"));
        }
        println!("{}", render_columns(&cols));
        let name = format!("fig6_{}.csv", label.to_lowercase().replace(['/', ' '], "_"));
        write_out(&opts.out, &name, &histogram_csv(&hist));
    }
}

fn print_fusion(opts: &Options) {
    use wifiprint_analysis::fusion::{FusionEvaluator, FusionSpec};
    use wifiprint_analysis::StreamingEvaluator;
    use wifiprint_scenarios::OfficeScenario;

    println!("\n== §VIII future work: combining network parameters ==");
    let cfg = wifiprint_analysis::PipelineConfig::short_trace();
    let mut single = StreamingEvaluator::new(&cfg).expect("valid pipeline configuration");
    let mut trio =
        FusionEvaluator::new(&cfg, FusionSpec::timing_trio()).expect("valid fusion spec");
    let mut all5 =
        FusionEvaluator::new(&cfg, FusionSpec::all_equal()).expect("valid fusion spec");
    OfficeScenario::office2(opts.seed).run_streaming(&mut |f| {
        single.push(f);
        trio.push(f);
        all5.push(f);
    });
    let single = single.finish().expect("engine run");
    let trio = trio.finish().expect("engine run");
    let all5 = all5.finish().expect("engine run");
    let mut cols: Vec<Vec<String>> = vec![
        vec!["Matcher".into()],
        vec!["AUC".into()],
        vec!["ident @ 0.01".into()],
        vec!["ident @ 0.1".into()],
    ];
    for p in NetworkParameter::ALL {
        let o = &single.outcomes[&p];
        cols[0].push(p.label().to_owned());
        cols[1].push(format!("{:.1}%", 100.0 * o.auc()));
        cols[2].push(format!("{:.1}%", 100.0 * o.identification_at_fpr(0.01)));
        cols[3].push(format!("{:.1}%", 100.0 * o.identification_at_fpr(0.1)));
    }
    for (name, o) in [("FUSION timing trio", &trio), ("FUSION all five", &all5)] {
        cols[0].push(name.to_owned());
        cols[1].push(format!("{:.1}%", 100.0 * o.auc()));
        cols[2].push(format!("{:.1}%", 100.0 * o.identification_at_fpr(0.01)));
        cols[3].push(format!("{:.1}%", 100.0 * o.identification_at_fpr(0.1)));
    }
    println!("{}", render_columns(&cols));
    println!("(office 2 trace; fusion rows combine per-parameter similarities)");
}

fn print_attack(opts: &Options) {
    use wifiprint_analysis::attacks::evaluate_mimicry;
    use wifiprint_devices::profile_catalog;
    use wifiprint_ieee80211::Nanos;
    use wifiprint_scenarios::{FaradayRig, FARADAY_AP, FARADAY_DEVICE};

    println!("\n== §VII-A: mimicry attack (replaying the victim's size distribution) ==");
    let catalog = profile_catalog();
    let training =
        FaradayRig::for_profile(&catalog[0], opts.seed, Nanos::from_secs(15)).run();
    let later =
        FaradayRig::for_profile(&catalog[0], opts.seed + 1, Nanos::from_secs(15)).run();
    let results = evaluate_mimicry(
        &training.frames,
        &later.frames,
        FARADAY_DEVICE,
        FARADAY_AP,
        opts.seed,
    );
    let mut cols: Vec<Vec<String>> = vec![
        vec!["Parameter".into()],
        vec!["genuine sim".into()],
        vec!["attacker sim".into()],
        vec!["forged?".into()],
    ];
    for r in &results {
        cols[0].push(r.parameter.label().to_owned());
        cols[1].push(format!("{:.3}", r.genuine_similarity));
        cols[2].push(format!("{:.3}", r.attacker_similarity));
        cols[3].push(if r.forged(0.7) { "YES".into() } else { "no".into() });
    }
    println!("{}", render_columns(&cols));
    println!("(size distributions forge easily; chipset/driver timing does not — §VII-A)");
}

fn print_baseline(runs: &[TraceRun]) {
    println!("\n== §V-B2 comparison: Pang-style broadcast-size identifier ==");
    let mut cols: Vec<Vec<String>> = vec![
        vec!["Trace".into()],
        vec!["ident @ FPR 0.01".into()],
        vec!["ident @ FPR 0.1".into()],
        vec!["candidates".into()],
    ];
    for run in runs {
        cols[0].push(run.kind.name().to_owned());
        cols[1].push(format!("{:.1}%", 100.0 * run.baseline.identification_at_fpr(0.01)));
        cols[2].push(format!("{:.1}%", 100.0 * run.baseline.identification_at_fpr(0.1)));
        cols[3].push(run.baseline.instances.to_string());
    }
    println!("{}", render_columns(&cols));
    println!("(Pang et al. report 5-23% at FPR 0.01 and 12-52% at FPR 0.1 on their traces;");
    println!(" the paper's inter-arrival method achieves comparable conference ratios.)");
}
