//! Replays a pcap capture through the zero-copy ingest path into a
//! fused [`MultiEngine`] and prints the per-file decode statistics.
//!
//! With a path argument it opens that file; without one it synthesises
//! a small two-device radiotap capture in memory so the example runs
//! self-contained:
//!
//! ```text
//! cargo run --release -p wifiprint-bench --example pcap_replay [capture.pcap]
//! ```

use std::fs::File;
use std::io::{BufReader, Read};

use wifiprint_core::{FusionSpec, MultiConfig, MultiEngine, MultiEvent};
use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
use wifiprint_pcap::{replay_into_multi, LinkType, Reader, Record, Replay, Writer};
use wifiprint_radiotap::{RxFlags, RxInfo};

/// Two stations talking to one AP with different packet cadences, so the
/// engine has something to enroll.
fn synthetic_capture() -> Vec<u8> {
    let ap = MacAddr::from_index(0xA0);
    let stations = [MacAddr::from_index(1), MacAddr::from_index(2)];
    let mut file = Vec::new();
    let mut writer = Writer::new(&mut file, LinkType::Ieee80211Radiotap)
        .expect("writing to a Vec cannot fail");
    for i in 0..2_000u64 {
        let sta = stations[(i % 2) as usize];
        let frame = Frame::data_to_ds(sta, ap, ap, 200 + (i % 2) as usize * 600);
        let ts_us = 2_000 * (i + 1);
        let info = RxInfo {
            tsft_us: Some(ts_us),
            rate: Some(Rate::R54M),
            signal_dbm: Some(if i % 2 == 0 { -48 } else { -61 }),
            flags: RxFlags::FCS_INCLUDED,
            ..RxInfo::default()
        };
        let mut packet = info.to_radiotap();
        packet.extend_from_slice(&frame.to_bytes());
        writer
            .write_record(&Record::from_micros(ts_us, packet))
            .expect("writing to a Vec cannot fail");
    }
    file
}

fn run<R: Read>(reader: Reader<R>) -> Result<(), Box<dyn std::error::Error>> {
    let mut replay = Replay::new(reader)?;
    println!("link type: {:?}", replay.link_type());

    let mut cfg = MultiConfig::default().with_min_observations(20);
    cfg.window = Nanos::from_secs(1);
    let mut engine = MultiEngine::builder()
        .spec(FusionSpec::all_equal())
        .config(cfg)
        .train_for(Nanos::from_secs(2))
        .build()?;

    let (mut events, stats) = replay_into_multi(&mut replay, &mut engine)?;
    events.extend(engine.finish()?);

    println!(
        "records: {} decoded, {} header errors, {} frame errors",
        stats.decoded, stats.header_errors, stats.frame_errors
    );
    println!(
        "defaulted fields: rate {}, signal {}, timestamp {}",
        stats.defaulted_rate, stats.defaulted_signal, stats.defaulted_timestamp
    );
    let enrolled: Vec<MacAddr> = events
        .iter()
        .filter_map(|e| match e {
            MultiEvent::Enrolled { device, .. } => Some(*device),
            _ => None,
        })
        .collect();
    println!("events: {} total, {} devices enrolled", events.len(), enrolled.len());
    for device in enrolled {
        println!("  enrolled {device}");
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    match std::env::args().nth(1) {
        Some(path) => {
            println!("replaying {path}");
            run(Reader::new(BufReader::new(File::open(path)?))?)
        }
        None => {
            println!("no capture given; replaying a synthetic two-station trace");
            let file = synthetic_capture();
            run(Reader::new(&file[..])?)
        }
    }
}
