//! Microbenchmarks of the fingerprinting pipeline: signature
//! construction, histogram similarity, and Algorithm 1 matching —
//! including the headline comparisons for the tiled f32 SIMD matching
//! engine:
//!
//! * `match_one_candidate/{naive,matrix}/N` — the per-call-allocation
//!   f64 baseline (`match_signature_naive`, the pre-SoA layout) against
//!   the f32 SIMD matrix sweep (`match_signature_with`) for growing
//!   reference-database sizes up to 256 devices;
//! * `dot_kernel/{f64_scalar,f32_portable,f32_dispatch}` — the f32-vs-f64
//!   kernel comparison on one reference-row-sized dot product (the
//!   dispatch name is printed by `perf_snapshot`);
//! * `match_tile/{matvec_x8,tile_x8}` — eight independent matrix–vector
//!   sweeps versus one matrix–matrix tile over the same eight windows;
//! * `db_insert_stream/{stream,bulk}/N` — incremental appends versus the
//!   one-shot pack (streaming inserts are no longer quadratic);
//! * `match_window_batch/{serial,parallel}` — one thread reusing a
//!   scratch versus the `parallel`-feature batch fan-out over a
//!   multi-window candidate set;
//! * `sharded_sweep/{dense_full,pruned_top5}` — the sharded store's
//!   dense full sweep versus the summary-pruned top-k sweep over a
//!   metropolis population (the large-population hot path);
//! * `quant_kernel/{u8_portable,u8_dispatch,f32_dispatch}` — the
//!   quantized 7-bit integer dot against the dispatched f32 kernel on
//!   one reference-row-sized product (the integer dispatch name is
//!   printed by `perf_snapshot` as `int_kernel`);
//! * `quant_tile/{f32_dense_tile,u8_pruned_topk}` — the f32 dense
//!   8-wide tile sweep versus the quantized tile-wide pruned top-8
//!   sweep over the same metropolis store (`perf_snapshot` reports the
//!   10⁵-device ratio as `quant_tile_speedup`);
//! * `engine_ingest/observe_48k_frames` — the streaming `Engine` end to
//!   end: extraction, windowing and per-window tiled matching, the
//!   online deployment's hot path;
//! * `multi_engine_ingest/{five_engines,fused}` — five independent
//!   single-parameter engines versus one fused `MultiEngine` over the
//!   identical stream: the fused path parses each frame and keeps the
//!   timing history **once** instead of five times.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::hint::black_box;
use wifiprint_core::{
    kernel, Engine, EvalConfig, FusionSpec, MatchConfig, MatchScratch, MultiConfig, MultiEngine,
    NetworkParameter, ReferenceDb, Signature, SignatureBuilder, SimilarityMeasure,
};
use wifiprint_ieee80211::{Frame, FrameKind, MacAddr, Nanos, Rate};
use wifiprint_radiotap::CapturedFrame;
use wifiprint_scenarios::MetropolisScenario;

fn synthetic_frames(n: usize, devices: u64) -> Vec<CapturedFrame> {
    let ap = MacAddr::from_index(0xFFFF);
    (0..n)
        .map(|i| {
            let dev = MacAddr::from_index(1 + (i as u64 % devices));
            let f = Frame::data_to_ds(dev, ap, ap, 200 + (i % 7) * 100);
            CapturedFrame::from_frame(
                &f,
                Rate::R54M,
                Nanos::from_micros(300 * (i as u64 + 1)),
                -50,
            )
        })
        .collect()
}

fn synthetic_signature(seed: u64, obs: u64) -> Signature {
    let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime);
    let mut sig = Signature::new();
    for i in 0..obs {
        let v = ((seed * 131 + i * 37) % 2400) as f64;
        sig.record(FrameKind::Data, v, &cfg);
        if i % 5 == 0 {
            sig.record(FrameKind::ProbeReq, (seed * 17 % 500) as f64, &cfg);
        }
    }
    sig
}

fn reference_db(devices: u64) -> ReferenceDb {
    let mut db = ReferenceDb::new();
    for d in 0..devices {
        db.insert(MacAddr::from_index(d), synthetic_signature(d, 500)).unwrap();
    }
    db
}

fn bench_signature_build(c: &mut Criterion) {
    let frames = synthetic_frames(20_000, 20);
    let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
        .with_min_observations(10);
    c.bench_function("signature_build_20k_frames", |b| {
        b.iter(|| {
            let mut builder = SignatureBuilder::new(&cfg);
            for f in &frames {
                builder.push(black_box(f));
            }
            black_box(builder.finish())
        })
    });
}

fn bench_similarity_measures(c: &mut Criterion) {
    let a = synthetic_signature(1, 2_000);
    let bvec = a.histogram(FrameKind::Data).unwrap().frequencies().to_vec();
    let avec = bvec.clone();
    let mut group = c.benchmark_group("similarity_250bins");
    for m in SimilarityMeasure::ALL {
        group.bench_function(m.to_string(), |b| {
            b.iter(|| black_box(m.compute(black_box(&avec), black_box(&bvec))))
        });
    }
    group.finish();
}

/// The headline tentpole comparison: naive per-call-allocation matching
/// (the seed's layout) versus the SoA matrix sweep with a reused scratch.
fn bench_matching_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("match_one_candidate");
    for db_size in [10u64, 50, 256] {
        let db = reference_db(db_size);
        let candidate = synthetic_signature(3, 500);
        group.bench_with_input(BenchmarkId::new("naive", db_size), &db_size, |b, _| {
            b.iter(|| black_box(db.match_signature_naive(&candidate, SimilarityMeasure::Cosine)))
        });
        group.bench_with_input(BenchmarkId::new("matrix", db_size), &db_size, |b, _| {
            let mut scratch = MatchScratch::new();
            b.iter(|| {
                let view =
                    db.match_signature_with(&candidate, SimilarityMeasure::Cosine, &mut scratch);
                black_box(view.best())
            })
        });
    }
    group.finish();
}

/// One reference-row-sized dot product per kernel: the f64 scalar
/// baseline (the PR-1 inner loop) against the portable and dispatched
/// f32 kernels.
fn bench_dot_kernels(c: &mut Criterion) {
    const BINS: usize = 251; // the inter-arrival row width
    let a64: Vec<f64> = (0..BINS).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
    let b64: Vec<f64> = (0..BINS).map(|i| ((i * 53) % 89) as f64 / 89.0).collect();
    let a32: Vec<f32> = a64.iter().map(|&v| v as f32).collect();
    let b32: Vec<f32> = b64.iter().map(|&v| v as f32).collect();
    let mut group = c.benchmark_group("dot_kernel");
    group.bench_function("f64_scalar", |b| {
        b.iter(|| black_box(kernel::dot_f64(black_box(&a64), black_box(&b64))))
    });
    group.bench_function("f32_portable", |b| {
        b.iter(|| black_box(kernel::dot_f32_portable(black_box(&a32), black_box(&b32))))
    });
    group.bench_function("f32_dispatch", |b| {
        b.iter(|| black_box(kernel::dot_f32(black_box(&a32), black_box(&b32))))
    });
    group.finish();
}

/// The tiling payoff: eight windows scored as eight matrix–vector sweeps
/// (eight passes over the reference rows) versus one matrix–matrix tile
/// (each row loaded once, dotted against all eight).
fn bench_match_tile(c: &mut Criterion) {
    let db = reference_db(256);
    let windows: Vec<Signature> = (0..8u64).map(|w| synthetic_signature(w * 11 + 3, 500)).collect();
    let mut group = c.benchmark_group("match_tile");
    group.bench_function("matvec_x8", |b| {
        let mut scratch = MatchScratch::new();
        b.iter(|| {
            let mut acc = 0.0f64;
            for cand in &windows {
                let view = db.match_signature_with(cand, SimilarityMeasure::Cosine, &mut scratch);
                acc += view.best().map_or(0.0, |(_, s)| s);
            }
            black_box(acc)
        })
    });
    group.bench_function("tile_x8", |b| {
        let mut scratch = MatchScratch::new();
        b.iter(|| {
            let tile = db.match_tile(&windows, SimilarityMeasure::Cosine, &mut scratch);
            let acc: f64 =
                tile.views().map(|v| v.best().map_or(0.0, |(_, s)| s)).sum();
            black_box(acc)
        })
    });
    group.finish();
}

/// Incremental growth: building a database by streaming inserts (now
/// amortised O(row) per insert) versus the one-shot bulk pack. Before
/// the append path, the stream variant repacked every block per insert —
/// quadratic in the device count.
fn bench_db_insert_stream(c: &mut Criterion) {
    let mut group = c.benchmark_group("db_insert_stream");
    for devices in [64u64, 256] {
        let sigs: Vec<(u64, Signature)> =
            (0..devices).map(|d| (d, synthetic_signature(d, 200))).collect();
        group.bench_with_input(BenchmarkId::new("stream", devices), &devices, |b, _| {
            b.iter(|| {
                let mut db = ReferenceDb::new();
                for (d, sig) in &sigs {
                    db.insert(MacAddr::from_index(*d), sig.clone()).unwrap();
                }
                black_box(db.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("bulk", devices), &devices, |b, _| {
            b.iter(|| {
                let map: BTreeMap<MacAddr, Signature> =
                    sigs.iter().map(|(d, s)| (MacAddr::from_index(*d), s.clone())).collect();
                black_box(ReferenceDb::from_signatures(map).len())
            })
        });
    }
    group.finish();
}

/// Serial versus parallel evaluation of a multi-window candidate batch
/// against a 256-device reference DB.
fn bench_window_batch(c: &mut Criterion) {
    let db = reference_db(256);
    let candidates: Vec<Signature> =
        (0..512u64).map(|w| synthetic_signature(w % 97, 200)).collect();
    let mut group = c.benchmark_group("match_window_batch");
    group.bench_function("serial", |b| {
        let mut scratch = MatchScratch::new();
        b.iter(|| {
            let mut acc = 0.0f64;
            for cand in &candidates {
                let view = db.match_signature_with(cand, SimilarityMeasure::Cosine, &mut scratch);
                acc += view.best().map_or(0.0, |(_, s)| s);
            }
            black_box(acc)
        })
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(db.match_batch(&candidates, SimilarityMeasure::Cosine)))
    });
    group.finish();
}

/// The sharded-store payoff: the dense full sweep (every shard, full
/// similarity vector) versus the pruned top-k sweep (shards in bound
/// order, most skipped) over a metropolis population of heterogeneous
/// traffic mixes. `perf_snapshot` reports the same comparison at 10⁴ and
/// 10⁵ devices as `sharded_sweep_speedup`.
fn bench_sharded_sweep(c: &mut Criterion) {
    let scenario = MetropolisScenario::with_devices(3, 8192);
    let db = scenario.reference_db(MatchConfig::default().with_shards(64));
    let candidates: Vec<Signature> =
        (0..4usize).map(|i| scenario.candidate(i * 619, 2)).collect();
    let mut group = c.benchmark_group("sharded_sweep");
    group.bench_function("dense_full", |b| {
        let mut scratch = MatchScratch::new();
        b.iter(|| {
            let mut acc = 0.0f64;
            for cand in &candidates {
                let view = db.match_signature_with(cand, SimilarityMeasure::Cosine, &mut scratch);
                acc += view.best().map_or(0.0, |(_, s)| s);
            }
            black_box(acc)
        })
    });
    group.bench_function("pruned_top5", |b| {
        let mut scratch = MatchScratch::new();
        b.iter(|| {
            let mut acc = 0.0f64;
            for cand in &candidates {
                let top = db.match_topk(cand, 5, SimilarityMeasure::Cosine, &mut scratch);
                acc += top.first().map_or(0.0, |&(_, s)| s);
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// The quantized integer kernel on one reference-row-sized dot: 7-bit
/// codes through the portable and dispatched u8 kernels, next to the
/// dispatched f32 kernel the `F32` tier runs.
fn bench_quant_kernels(c: &mut Criterion) {
    const BINS: usize = 251;
    let a64: Vec<f64> = (0..BINS).map(|i| ((i * 37) % 101) as f64 / 101.0).collect();
    let b64: Vec<f64> = (0..BINS).map(|i| ((i * 53) % 89) as f64 / 89.0).collect();
    let a32: Vec<f32> = a64.iter().map(|&v| v as f32).collect();
    let b32: Vec<f32> = b64.iter().map(|&v| v as f32).collect();
    let qa = wifiprint_core::QuantizedRow::from_frequencies(&a64);
    let qb = wifiprint_core::QuantizedRow::from_frequencies(&b64);
    let mut group = c.benchmark_group("quant_kernel");
    group.bench_function("u8_portable", |b| {
        b.iter(|| black_box(kernel::dot_u8_portable(black_box(qa.values()), black_box(qb.values()))))
    });
    group.bench_function("u8_dispatch", |b| {
        b.iter(|| black_box(kernel::dot_u8(black_box(qa.values()), black_box(qb.values()))))
    });
    group.bench_function("f32_dispatch", |b| {
        b.iter(|| black_box(kernel::dot_f32(black_box(&a32), black_box(&b32))))
    });
    group.finish();
}

/// The quantized-tier payoff at population scale: eight candidate
/// windows against a metropolis store, once as the f32 dense tile
/// (every shard, every row, float kernels) and once as the u8 tile-wide
/// pruned top-8 sweep (integer kernels, shards skipped per candidate by
/// envelope bound).
fn bench_quant_tile(c: &mut Criterion) {
    use wifiprint_core::RowPrecision;
    let scenario = MetropolisScenario::with_devices(3, 8192);
    let f32_db = scenario.reference_db(MatchConfig::default().with_shards(64));
    let u8_db = scenario
        .reference_db(MatchConfig::default().with_shards(64).with_precision(RowPrecision::U8));
    let probes: Vec<Signature> = (0..8usize).map(|i| scenario.candidate(i * 619, 2)).collect();
    let mut group = c.benchmark_group("quant_tile");
    group.bench_function("f32_dense_tile", |b| {
        let mut scratch = MatchScratch::new();
        b.iter(|| {
            let tile = f32_db.match_tile(&probes, SimilarityMeasure::Cosine, &mut scratch);
            black_box(tile.candidate(7).best())
        })
    });
    group.bench_function("u8_pruned_topk", |b| {
        let mut scratch = MatchScratch::new();
        b.iter(|| {
            black_box(u8_db.match_topk_tile(&probes, 8, SimilarityMeasure::Cosine, &mut scratch))
        })
    });
    group.finish();
}

/// The streaming `Engine` end to end: per-frame extraction + windowing
/// with one tiled match sweep per closed 1 s window, against a
/// 256-device frozen reference. This is the ingest hot path of an
/// online deployment (`perf_snapshot` reports it as frames/second).
fn bench_engine_ingest(c: &mut Criterion) {
    let db = reference_db(256);
    let cfg = {
        let mut cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
            .with_min_observations(30);
        cfg.window = Nanos::from_secs(1);
        cfg
    };
    // 48k frames, 25 µs apart = 1.2 s: one full window closes mid-run.
    let frames: Vec<CapturedFrame> = (0..48_000u64)
        .map(|i| {
            let dev = MacAddr::from_index(i % 64);
            let ap = MacAddr::from_index(0xA11);
            let f = Frame::data_to_ds(dev, ap, ap, 200 + (i % 7) as usize * 100);
            CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_micros(25 * (i + 1)), -50)
        })
        .collect();
    let mut group = c.benchmark_group("engine_ingest");
    group.bench_function("observe_48k_frames", |b| {
        b.iter(|| {
            let mut engine = Engine::builder()
                .config(cfg.clone())
                .reference(db.snapshot())
                .build()
                .expect("valid engine configuration");
            let mut decisions = 0usize;
            for frame in &frames {
                decisions += engine.observe(frame).expect("in-order frame").len();
            }
            decisions += engine.finish().expect("first finish").len();
            black_box(decisions)
        })
    });
    group.finish();
}

/// Five independent single-parameter engines versus one fused
/// `MultiEngine`, both fed the identical 48k-frame stream against
/// 256-device references. The fused path must come in well under the
/// five-engine fan-out: extraction and history bookkeeping happen once
/// per frame instead of five times.
fn bench_multi_engine_ingest(c: &mut Criterion) {
    let multi_cfg = MultiConfig::default()
        .with_min_observations(30)
        .with_window(Nanos::from_secs(1));
    let refs: BTreeMap<NetworkParameter, ReferenceDb> = NetworkParameter::ALL
        .into_iter()
        .map(|param| {
            let cfg = multi_cfg.eval_config(param);
            let mut db = ReferenceDb::new();
            for d in 0..256u64 {
                let mut sig = Signature::new();
                for i in 0..500u64 {
                    let v = match param {
                        NetworkParameter::TransmissionRate => {
                            Rate::ALL_BG[((d + i) % 12) as usize].mbps()
                        }
                        _ => ((d * 131 + i * 37) % 2400) as f64,
                    };
                    sig.record(FrameKind::Data, v, &cfg);
                }
                db.insert(MacAddr::from_index(d), sig).expect("insert");
            }
            (param, db)
        })
        .collect();
    let frames: Vec<CapturedFrame> = (0..48_000u64)
        .map(|i| {
            let dev = MacAddr::from_index(i % 64);
            let ap = MacAddr::from_index(0xA11);
            let f = Frame::data_to_ds(dev, ap, ap, 200 + (i % 7) as usize * 100);
            CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_micros(25 * (i + 1)), -50)
        })
        .collect();

    let mut group = c.benchmark_group("multi_engine_ingest");
    group.bench_function("five_engines", |b| {
        b.iter(|| {
            let mut engines: Vec<Engine> = NetworkParameter::ALL
                .into_iter()
                .map(|param| {
                    Engine::builder()
                        .config(multi_cfg.eval_config(param))
                        .reference(refs[&param].snapshot())
                        .build()
                        .expect("valid engine configuration")
                })
                .collect();
            let mut decisions = 0usize;
            for frame in &frames {
                for engine in &mut engines {
                    decisions += engine.observe(frame).expect("in-order frame").len();
                }
            }
            for engine in &mut engines {
                decisions += engine.finish().expect("first finish").len();
            }
            black_box(decisions)
        })
    });
    group.bench_function("fused", |b| {
        b.iter(|| {
            let snapshot: BTreeMap<NetworkParameter, ReferenceDb> =
                refs.iter().map(|(&p, db)| (p, db.snapshot())).collect();
            let mut engine = MultiEngine::builder()
                .spec(FusionSpec::all_equal())
                .config(multi_cfg.clone())
                .references(snapshot)
                .build()
                .expect("valid engine configuration");
            let mut decisions = 0usize;
            for frame in &frames {
                decisions += engine.observe(frame).expect("in-order frame").len();
            }
            decisions += engine.finish().expect("first finish").len();
            black_box(decisions)
        })
    });
    group.finish();
}

/// Rotation linking throughput: a periodic-rotation metropolis trail
/// streamed through a cold `RotationLinker` — founding, binding and
/// pruned gallery sweeps included — at two population sizes.
fn bench_rotation_linker(c: &mut Criterion) {
    use wifiprint_analysis::linking::metropolis_linker_config;
    use wifiprint_core::engine::linker::RotationLinker;
    use wifiprint_scenarios::{RotationPolicy, RotationScenario};

    let mut group = c.benchmark_group("rotation_linker");
    for devices in [250usize, 1000] {
        let trail = RotationScenario::new(
            MetropolisScenario::with_devices(20_120_711, devices),
            RotationPolicy::Periodic { period: 2 },
        )
        .generate();
        group.bench_function(BenchmarkId::new("periodic_p2", devices), |b| {
            b.iter(|| {
                let mut linker = RotationLinker::new(metropolis_linker_config())
                    .expect("valid linker configuration");
                for s in &trail.sightings {
                    let sigs = [(NetworkParameter::InterArrivalTime, s.signature.clone())];
                    black_box(linker.link(s.mac, s.at, &sigs));
                }
                black_box(linker.stats().identities_retained)
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(20).warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_signature_build, bench_similarity_measures, bench_matching_scaling,
        bench_dot_kernels, bench_match_tile, bench_db_insert_stream, bench_window_batch,
        bench_sharded_sweep, bench_quant_kernels, bench_quant_tile, bench_engine_ingest,
        bench_multi_engine_ingest, bench_rotation_linker
}
criterion_main!(benches);
