//! Codec throughput: 802.11 frame serialisation, Radiotap headers and
//! pcap record I/O.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use wifiprint_ieee80211::{Frame, MacAddr, Rate};
use wifiprint_pcap::{LinkType, Reader, Record, Writer};
use wifiprint_radiotap::{RxFlags, RxInfo};

fn bench_frame_codec(c: &mut Criterion) {
    let frame = Frame::data_to_ds(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        MacAddr::from_index(3),
        1460,
    );
    let bytes = frame.to_bytes();
    let mut group = c.benchmark_group("frame_codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("serialise_1460B", |b| b.iter(|| black_box(frame.to_bytes())));
    group.bench_function("parse_1460B", |b| {
        b.iter(|| black_box(Frame::parse(black_box(&bytes)).unwrap()))
    });
    group.finish();
}

fn bench_radiotap(c: &mut Criterion) {
    let info = RxInfo {
        tsft_us: Some(123_456_789),
        rate: Some(Rate::R54M),
        channel_mhz: Some(2437),
        signal_dbm: Some(-52),
        noise_dbm: Some(-95),
        antenna: Some(0),
        flags: RxFlags::FCS_INCLUDED,
    };
    let header = info.to_radiotap();
    c.bench_function("radiotap_encode", |b| b.iter(|| black_box(info.to_radiotap())));
    c.bench_function("radiotap_parse", |b| {
        b.iter(|| black_box(RxInfo::from_radiotap(black_box(&header)).unwrap()))
    });
}

fn bench_pcap(c: &mut Criterion) {
    let records: Vec<Record> =
        (0..1000).map(|i| Record::from_micros(i * 100, vec![0xAB; 200])).collect();
    let mut file = Vec::new();
    let mut w = Writer::new(&mut file, LinkType::Ieee80211Radiotap).unwrap();
    for r in &records {
        w.write_record(r).unwrap();
    }
    let mut group = c.benchmark_group("pcap");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("write_1000_records", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(file.len());
            let mut w = Writer::new(&mut buf, LinkType::Ieee80211Radiotap).unwrap();
            for r in &records {
                w.write_record(r).unwrap();
            }
            black_box(buf)
        })
    });
    group.bench_function("read_1000_records", |b| {
        b.iter(|| {
            let reader = Reader::new(black_box(&file[..])).unwrap();
            let n = reader.count();
            black_box(n)
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(30).warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_frame_codec, bench_radiotap, bench_pcap
}
criterion_main!(benches);
