//! Codec throughput: 802.11 frame serialisation, Radiotap headers and
//! pcap record I/O.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate, WireFrame};
use wifiprint_pcap::{LinkType, Reader, Record, Replay, Writer};
use wifiprint_radiotap::{CapturedFrame, RxFlags, RxInfo};

fn bench_frame_codec(c: &mut Criterion) {
    let frame = Frame::data_to_ds(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        MacAddr::from_index(3),
        1460,
    );
    let bytes = frame.to_bytes();
    let mut group = c.benchmark_group("frame_codec");
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.bench_function("serialise_1460B", |b| b.iter(|| black_box(frame.to_bytes())));
    group.bench_function("parse_1460B", |b| {
        b.iter(|| black_box(Frame::parse(black_box(&bytes)).unwrap()))
    });
    group.finish();
}

fn bench_radiotap(c: &mut Criterion) {
    let info = RxInfo {
        tsft_us: Some(123_456_789),
        rate: Some(Rate::R54M),
        channel_mhz: Some(2437),
        signal_dbm: Some(-52),
        noise_dbm: Some(-95),
        antenna: Some(0),
        flags: RxFlags::FCS_INCLUDED,
    };
    let header = info.to_radiotap();
    c.bench_function("radiotap_encode", |b| b.iter(|| black_box(info.to_radiotap())));
    c.bench_function("radiotap_parse", |b| {
        b.iter(|| black_box(RxInfo::from_radiotap(black_box(&header)).unwrap()))
    });
}

fn bench_pcap(c: &mut Criterion) {
    let records: Vec<Record> =
        (0..1000).map(|i| Record::from_micros(i * 100, vec![0xAB; 200])).collect();
    let mut file = Vec::new();
    let mut w = Writer::new(&mut file, LinkType::Ieee80211Radiotap).unwrap();
    for r in &records {
        w.write_record(r).unwrap();
    }
    let mut group = c.benchmark_group("pcap");
    group.throughput(Throughput::Elements(1000));
    group.bench_function("write_1000_records", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(file.len());
            let mut w = Writer::new(&mut buf, LinkType::Ieee80211Radiotap).unwrap();
            for r in &records {
                w.write_record(r).unwrap();
            }
            black_box(buf)
        })
    });
    group.bench_function("read_1000_records", |b| {
        b.iter(|| {
            let reader = Reader::new(black_box(&file[..])).unwrap();
            let n = reader.count();
            black_box(n)
        })
    });
    group.finish();
}

fn bench_wire_decode(c: &mut Criterion) {
    let frame = Frame::data_to_ds(
        MacAddr::from_index(1),
        MacAddr::from_index(2),
        MacAddr::from_index(3),
        1460,
    );
    let bytes = frame.to_bytes();
    let info = RxInfo {
        tsft_us: Some(123_456_789),
        rate: Some(Rate::R54M),
        signal_dbm: Some(-52),
        flags: RxFlags::FCS_INCLUDED,
        ..RxInfo::default()
    };
    let mut packet = info.to_radiotap();
    packet.extend_from_slice(&bytes);

    let mut group = c.benchmark_group("wire_decode");
    group.throughput(Throughput::Bytes(packet.len() as u64));
    // The borrowed header view alone: pure header arithmetic, no copy.
    group.bench_function("wire_view_1460B", |b| {
        b.iter(|| black_box(WireFrame::parse(black_box(&bytes)).unwrap().wire_len()))
    });
    // Full zero-copy packet decode: radiotap walk + WireFrame.
    group.bench_function("borrowed_captured_1460B", |b| {
        b.iter(|| {
            black_box(
                CapturedFrame::from_radiotap_packet(black_box(&packet), Nanos::ZERO).unwrap(),
            )
        })
    });
    // The materializing baseline it replaced: owned Frame, body copy.
    group.bench_function("materialized_captured_1460B", |b| {
        b.iter(|| {
            let (info, hdr_len) = RxInfo::from_radiotap(black_box(&packet)).unwrap();
            let frame = Frame::parse(&packet[hdr_len..]).unwrap();
            black_box(CapturedFrame::from_frame(
                &frame,
                info.rate.unwrap(),
                Nanos::ZERO,
                info.signal_dbm.unwrap(),
            ))
        })
    });
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    // A 1 000-record radiotap capture replayed through the
    // allocation-free loop.
    let mut file = Vec::new();
    let mut w = Writer::new(&mut file, LinkType::Ieee80211Radiotap).unwrap();
    for i in 0..1000u64 {
        let frame = Frame::data_to_ds(
            MacAddr::from_index(i % 16),
            MacAddr::from_index(99),
            MacAddr::from_index(99),
            200 + (i % 7) as usize * 100,
        );
        let info = RxInfo {
            tsft_us: Some(25 * (i + 1)),
            rate: Some(Rate::R54M),
            signal_dbm: Some(-50),
            flags: RxFlags::FCS_INCLUDED,
            ..RxInfo::default()
        };
        let mut packet = info.to_radiotap();
        packet.extend_from_slice(&frame.to_bytes());
        w.write_record(&Record::from_micros(25 * (i + 1), packet)).unwrap();
    }

    let mut group = c.benchmark_group("pcap_replay");
    group.throughput(Throughput::Elements(1000));
    // Streaming source: one reused buffer, zero steady-state allocations.
    group.bench_function("replay_read_1000_records", |b| {
        b.iter(|| {
            let mut replay = Replay::new(Reader::new(black_box(&file[..])).unwrap()).unwrap();
            let mut n = 0u64;
            while let Some(frame) = replay.next_frame().unwrap() {
                n += u64::from(frame.size > 0);
            }
            black_box(n)
        })
    });
    // Borrowed-slice source: records viewed in place, no copies at all.
    group.bench_function("replay_slice_1000_records", |b| {
        b.iter(|| {
            let mut replay = Replay::from_slice(black_box(&file[..])).unwrap();
            let mut n = 0u64;
            while let Some(frame) = replay.next_frame().unwrap() {
                n += u64::from(frame.size > 0);
            }
            black_box(n)
        })
    });
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(30).warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_frame_codec, bench_radiotap, bench_pcap, bench_wire_decode, bench_replay
}
criterion_main!(benches);
