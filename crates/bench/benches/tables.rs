//! End-to-end table/figure regeneration at reduced scale: times the full
//! pipeline (scenario → extraction → matching → metrics) behind each of
//! the paper's tables, plus the figure rigs. Absolute accuracy numbers
//! come from the `repro` binary; these benches track the cost.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wifiprint_analysis::{PipelineConfig, StreamingEvaluator};
use wifiprint_bench::figures;
use wifiprint_scenarios::{ConferenceScenario, OfficeScenario};

/// Tables I–III share one pipeline pass; bench it on miniature traces.
fn bench_tables_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables_pipeline");
    group.bench_function("office_mini", |b| {
        b.iter(|| {
            let cfg = PipelineConfig::miniature(30, 15, 30);
            let mut ev = StreamingEvaluator::new(&cfg).expect("valid pipeline configuration");
            OfficeScenario::small(3, 90, 10).run_streaming(&mut |f| ev.push(f));
            black_box(ev.finish().expect("engine run"))
        })
    });
    group.bench_function("conference_mini", |b| {
        b.iter(|| {
            let cfg = PipelineConfig::miniature(30, 15, 30);
            let mut ev = StreamingEvaluator::new(&cfg).expect("valid pipeline configuration");
            ConferenceScenario::small(3, 90, 14).run_streaming(&mut |f| ev.push(f));
            black_box(ev.finish().expect("engine run"))
        })
    });
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figure_rigs");
    group.bench_function("fig4_backoff", |b| b.iter(|| black_box(figures::fig4_backoff(1))));
    group.bench_function("fig5_rts", |b| b.iter(|| black_box(figures::fig5_rts(1))));
    group.bench_function("fig6_rates", |b| b.iter(|| black_box(figures::fig6_rates(1))));
    group.finish();
}

fn config() -> Criterion {
    Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_tables_pipeline, bench_figures
}
criterion_main!(benches);
