//! Simulator throughput: events and captured frames per second for the
//! office and conference scenario generators.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use wifiprint_scenarios::{ConferenceScenario, OfficeScenario};

fn bench_office(c: &mut Criterion) {
    c.bench_function("office_20s_12dev", |b| {
        b.iter(|| {
            let mut n = 0u64;
            OfficeScenario::small(7, 20, 12).run_streaming(&mut |_| n += 1);
            black_box(n)
        })
    });
}

fn bench_conference(c: &mut Criterion) {
    c.bench_function("conference_20s_20dev", |b| {
        b.iter(|| {
            let mut n = 0u64;
            ConferenceScenario::small(7, 20, 20).run_streaming(&mut |_| n += 1);
            black_box(n)
        })
    });
}

fn config() -> Criterion {
    Criterion::default().sample_size(10).warm_up_time(std::time::Duration::from_millis(300))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_office, bench_conference
}
criterion_main!(benches);
