//! Per-station configuration and MAC state.

use std::collections::VecDeque;

use wifiprint_ieee80211::timing::PhyTx;
use wifiprint_ieee80211::{MacAddr, Nanos, Rate, SequenceCounter};

use crate::behavior::{MacBehavior, RateController};
use crate::phy::LinkQuality;
use crate::rng::SimRng;
use crate::traffic::{Destination, Msdu, MsduKind, TrafficSource};

/// MAC header + LLC/SNAP + FCS overhead added to a data payload.
pub const DATA_OVERHEAD: usize = 24 + 8 + 4;
/// Management frame overhead (header + FCS).
pub const MGMT_OVERHEAD: usize = 24 + 4;
/// Null-function frame wire size.
pub const NULL_FRAME_SIZE: usize = 24 + 4;

/// Whether a station is a client or an access point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Role {
    /// An ordinary client station.
    Client,
    /// An access point: emits beacons, relays group-addressed uplink
    /// traffic, answers probe requests.
    Ap {
        /// Beacon body size in bytes (fixed fields + information
        /// elements).
        beacon_payload: usize,
    },
}

/// Everything needed to instantiate one station.
#[derive(Debug)]
pub struct StationConfig {
    /// The station's MAC address.
    pub addr: MacAddr,
    /// The BSS it belongs to.
    pub bssid: MacAddr,
    /// Client or AP.
    pub role: Role,
    /// MAC-timing personality.
    pub behavior: MacBehavior,
    /// Rate-adaptation algorithm.
    pub rate_controller: Box<dyn RateController>,
    /// Radio link state.
    pub link: LinkQuality,
    /// Traffic sources driving this station.
    pub sources: Vec<Box<dyn TrafficSource>>,
    /// Extra bytes per data frame from link-layer encryption (16 for
    /// WPA2/CCMP header+MIC, 0 for open networks).
    pub encryption_overhead: usize,
    /// Rate used for management frames (probes, beacons).
    pub mgmt_rate: Rate,
    /// Rate used for group-addressed data frames.
    pub broadcast_rate: Rate,
    /// When the station appears in the simulation.
    pub active_from: Nanos,
    /// When the station leaves (churn); `None` = stays to the end.
    pub active_until: Option<Nanos>,
}

impl StationConfig {
    /// A client with default behaviour and the given address/BSS/link.
    pub fn client(addr: MacAddr, bssid: MacAddr, link: LinkQuality) -> Self {
        StationConfig {
            addr,
            bssid,
            role: Role::Client,
            behavior: MacBehavior::default(),
            rate_controller: Box::new(crate::behavior::FixedRate(Rate::R54M)),
            link,
            sources: Vec::new(),
            encryption_overhead: 0,
            mgmt_rate: Rate::R1M,
            broadcast_rate: Rate::R1M,
            active_from: Nanos::ZERO,
            active_until: None,
        }
    }

    /// An AP with default behaviour.
    pub fn ap(addr: MacAddr, link: LinkQuality) -> Self {
        StationConfig {
            addr,
            bssid: addr,
            role: Role::Ap { beacon_payload: 90 },
            behavior: MacBehavior::default(),
            rate_controller: Box::new(crate::behavior::FixedRate(Rate::R54M)),
            link,
            sources: Vec::new(),
            encryption_overhead: 0,
            mgmt_rate: Rate::R1M,
            broadcast_rate: Rate::R1M,
            active_from: Nanos::ZERO,
            active_until: None,
        }
    }
}

/// One frame job queued at a station's MAC.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameJob {
    /// A data MSDU.
    Data {
        /// Payload bytes (before overheads).
        payload: usize,
        /// Destination.
        dest: Destination,
    },
    /// A null-function (power-save) frame.
    Null {
        /// Power-management bit.
        power_save: bool,
    },
    /// A probe request.
    ProbeReq {
        /// Management body size.
        payload: usize,
    },
    /// A probe response (AP only).
    ProbeResp {
        /// The requesting station.
        to: MacAddr,
        /// Management body size.
        payload: usize,
    },
    /// A beacon (AP only).
    Beacon {
        /// Beacon body size.
        payload: usize,
    },
}

/// A queued frame with its retry state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueuedFrame {
    /// The job.
    pub job: FrameJob,
    /// Retry flag (set after a failed attempt).
    pub retry: bool,
}

/// What response the station is waiting for after transmitting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Awaiting {
    /// An ACK for a unicast frame.
    Ack,
    /// A CTS for an RTS.
    Cts,
}

/// Where the station stands in the contention bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ContendState {
    /// Not trying to send (or mid-exchange).
    #[default]
    Idle,
    /// Enrolled in the contender set, backoff residue drawn.
    Contending,
}

/// Runtime state of one station.
#[derive(Debug)]
pub struct Station {
    /// Static configuration.
    pub addr: MacAddr,
    /// BSS identifier.
    pub bssid: MacAddr,
    /// Role.
    pub role: Role,
    /// MAC personality.
    pub behavior: MacBehavior,
    /// Rate controller.
    pub rate_ctrl: Box<dyn RateController>,
    /// Radio link.
    pub link: LinkQuality,
    /// Traffic sources (polled by the simulator).
    pub sources: Vec<Box<dyn TrafficSource>>,
    /// Per-frame encryption overhead.
    pub encryption_overhead: usize,
    /// Management frame rate.
    pub mgmt_rate: Rate,
    /// Broadcast data rate.
    pub broadcast_rate: Rate,
    /// Station's private random stream.
    pub rng: SimRng,
    /// Outgoing frame queue.
    pub queue: VecDeque<QueuedFrame>,
    /// Current contention window.
    pub cw: u32,
    /// Retry count of the head frame.
    pub retries: u32,
    /// Remaining (frozen) backoff wait after DIFS, if already drawn.
    pub backoff_remaining: Option<Nanos>,
    /// Invalidation counter for scheduled attempts.
    pub attempt_gen: u64,
    /// End of the DIFS period of the currently scheduled attempt.
    pub attempt_difs_end: Nanos,
    /// Instant the currently scheduled attempt fires.
    pub attempt_at: Nanos,
    /// Contention bookkeeping state.
    pub contend: ContendState,
    /// Response the station is waiting for.
    pub awaiting: Option<Awaiting>,
    /// Invalidation counter for response timeouts.
    pub ack_gen: u64,
    /// Sequence-number counter.
    pub seq: SequenceCounter,
    /// Next beacon target time (APs).
    pub beacon_target: Nanos,
    /// First activity instant.
    pub active_from: Nanos,
    /// Departure instant, if any.
    pub active_until: Option<Nanos>,
}

impl Station {
    /// Instantiates runtime state from a configuration, deriving the
    /// station's RNG stream from the scenario seed and its index.
    pub fn new(cfg: StationConfig, seed: u64, index: usize) -> Self {
        let cw = cfg.behavior.cw_min;
        Station {
            addr: cfg.addr,
            bssid: cfg.bssid,
            role: cfg.role,
            behavior: cfg.behavior,
            rate_ctrl: cfg.rate_controller,
            link: cfg.link,
            sources: cfg.sources,
            encryption_overhead: cfg.encryption_overhead,
            mgmt_rate: cfg.mgmt_rate,
            broadcast_rate: cfg.broadcast_rate,
            rng: SimRng::derive(seed, 0x5747_0000 + index as u64),
            queue: VecDeque::new(),
            cw,
            retries: 0,
            backoff_remaining: None,
            attempt_gen: 0,
            attempt_difs_end: Nanos::ZERO,
            attempt_at: Nanos::ZERO,
            contend: ContendState::Idle,
            awaiting: None,
            ack_gen: 0,
            seq: SequenceCounter::new(),
            beacon_target: Nanos::ZERO,
            active_from: cfg.active_from,
            active_until: cfg.active_until,
        }
    }

    /// `true` if the station is an AP.
    pub fn is_ap(&self) -> bool {
        matches!(self.role, Role::Ap { .. })
    }

    /// `true` if the station participates at time `now`.
    pub fn is_active(&self, now: Nanos) -> bool {
        now >= self.active_from && self.active_until.is_none_or(|u| now < u)
    }

    /// Converts an MSDU from a traffic source into a queued frame job.
    pub fn enqueue_msdu(&mut self, msdu: Msdu) {
        let job = match msdu.kind {
            MsduKind::Data => FrameJob::Data { payload: msdu.payload, dest: msdu.dest },
            MsduKind::Null { power_save } => FrameJob::Null { power_save },
            MsduKind::ProbeReq => FrameJob::ProbeReq { payload: msdu.payload },
        };
        self.queue.push_back(QueuedFrame { job, retry: false });
    }

    /// `true` when the station has something to send and is not
    /// mid-exchange.
    pub fn wants_medium(&self) -> bool {
        self.awaiting.is_none() && !self.queue.is_empty()
    }

    /// The on-air size in bytes of the head frame.
    pub fn head_wire_size(&self, job: &FrameJob) -> usize {
        match job {
            FrameJob::Data { payload, .. } => payload + self.encryption_overhead + DATA_OVERHEAD,
            FrameJob::Null { .. } => NULL_FRAME_SIZE,
            FrameJob::ProbeReq { payload }
            | FrameJob::ProbeResp { payload, .. }
            | FrameJob::Beacon { payload } => payload + MGMT_OVERHEAD,
        }
    }

    /// The PHY rate the head frame would use.
    ///
    /// Clients send group-addressed data uplink through the AP as a
    /// unicast transfer, so only APs (which put group frames directly on
    /// air) use the broadcast basic rate for them.
    pub fn head_rate(&self, job: &FrameJob) -> Rate {
        match job {
            FrameJob::Data { dest: Destination::Group(_), .. } if self.is_ap() => {
                self.broadcast_rate
            }
            FrameJob::Data { .. } => self.rate_ctrl.current_rate(),
            FrameJob::Null { .. } => {
                if self.behavior.null_frames_at_basic_rate {
                    self.broadcast_rate
                } else {
                    self.rate_ctrl.current_rate()
                }
            }
            FrameJob::ProbeReq { .. } | FrameJob::ProbeResp { .. } | FrameJob::Beacon { .. } => {
                self.mgmt_rate
            }
        }
    }

    /// Resets contention state after a delivered (or dropped) frame.
    pub fn reset_contention(&mut self) {
        self.retries = 0;
        self.cw = self.behavior.cw_min;
        self.backoff_remaining = None;
    }
}

/// The PHY parameters a device uses to transmit at `rate`.
pub fn phy_for(rate: Rate, short_preamble: bool) -> PhyTx {
    match rate.modulation() {
        wifiprint_ieee80211::Modulation::Ofdm => PhyTx::erp_ofdm(rate),
        wifiprint_ieee80211::Modulation::Dsss => {
            if short_preamble {
                PhyTx::dsss_short(rate)
            } else {
                PhyTx::dsss_long(rate)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::phy::LinkQuality;

    fn station() -> Station {
        let cfg = StationConfig::client(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            LinkQuality::static_link(30.0),
        );
        Station::new(cfg, 7, 0)
    }

    #[test]
    fn activity_window() {
        let mut s = station();
        s.active_from = Nanos::from_secs(10);
        s.active_until = Some(Nanos::from_secs(20));
        assert!(!s.is_active(Nanos::from_secs(5)));
        assert!(s.is_active(Nanos::from_secs(15)));
        assert!(!s.is_active(Nanos::from_secs(20)));
        s.active_until = None;
        assert!(s.is_active(Nanos::from_secs(1_000_000)));
    }

    #[test]
    fn enqueue_maps_msdu_kinds() {
        let mut s = station();
        s.enqueue_msdu(Msdu::uplink(100));
        s.enqueue_msdu(Msdu { payload: 0, dest: Destination::Ap, kind: MsduKind::Null { power_save: true } });
        s.enqueue_msdu(Msdu {
            payload: 60,
            dest: Destination::Group(MacAddr::BROADCAST),
            kind: MsduKind::ProbeReq,
        });
        assert_eq!(s.queue.len(), 3);
        assert!(matches!(s.queue[0].job, FrameJob::Data { payload: 100, .. }));
        assert!(matches!(s.queue[1].job, FrameJob::Null { power_save: true }));
        assert!(matches!(s.queue[2].job, FrameJob::ProbeReq { payload: 60 }));
        assert!(s.wants_medium());
    }

    #[test]
    fn wire_sizes_include_overheads() {
        let mut s = station();
        s.encryption_overhead = 16;
        assert_eq!(
            s.head_wire_size(&FrameJob::Data { payload: 1000, dest: Destination::Ap }),
            1000 + 16 + DATA_OVERHEAD
        );
        assert_eq!(s.head_wire_size(&FrameJob::Null { power_save: true }), NULL_FRAME_SIZE);
        assert_eq!(s.head_wire_size(&FrameJob::ProbeReq { payload: 62 }), 62 + MGMT_OVERHEAD);
    }

    #[test]
    fn head_rate_respects_frame_class() {
        let mut s = station();
        // Unicast data at the controller's rate.
        assert_eq!(
            s.head_rate(&FrameJob::Data { payload: 1, dest: Destination::Ap }),
            Rate::R54M
        );
        // Client group-addressed data goes uplink as unicast: normal rate.
        assert_eq!(
            s.head_rate(&FrameJob::Data {
                payload: 1,
                dest: Destination::Group(MacAddr::BROADCAST)
            }),
            Rate::R54M
        );
        // APs put group frames directly on air at the broadcast rate.
        s.role = Role::Ap { beacon_payload: 90 };
        assert_eq!(
            s.head_rate(&FrameJob::Data {
                payload: 1,
                dest: Destination::Group(MacAddr::BROADCAST)
            }),
            Rate::R1M
        );
        s.role = Role::Client;
        // Management at the management rate.
        assert_eq!(s.head_rate(&FrameJob::ProbeReq { payload: 1 }), Rate::R1M);
        // Null frames: controller rate unless the card forces basic.
        assert_eq!(s.head_rate(&FrameJob::Null { power_save: true }), Rate::R54M);
        s.behavior.null_frames_at_basic_rate = true;
        assert_eq!(s.head_rate(&FrameJob::Null { power_save: true }), Rate::R1M);
    }

    #[test]
    fn reset_contention_restores_cw() {
        let mut s = station();
        s.cw = 255;
        s.retries = 4;
        s.backoff_remaining = Some(Nanos::from_micros(60));
        s.reset_contention();
        assert_eq!(s.cw, s.behavior.cw_min);
        assert_eq!(s.retries, 0);
        assert_eq!(s.backoff_remaining, None);
    }

    #[test]
    fn phy_for_selects_preamble() {
        assert_eq!(phy_for(Rate::R54M, false), PhyTx::erp_ofdm(Rate::R54M));
        assert_eq!(phy_for(Rate::R11M, false), PhyTx::dsss_long(Rate::R11M));
        assert_eq!(phy_for(Rate::R11M, true), PhyTx::dsss_short(Rate::R11M));
        // Preamble flag is irrelevant for OFDM.
        assert_eq!(phy_for(Rate::R24M, true), PhyTx::erp_ofdm(Rate::R24M));
    }

    #[test]
    fn rng_streams_differ_per_station() {
        let cfg1 = StationConfig::client(
            MacAddr::from_index(1),
            MacAddr::from_index(9),
            LinkQuality::static_link(30.0),
        );
        let cfg2 = StationConfig::client(
            MacAddr::from_index(2),
            MacAddr::from_index(9),
            LinkQuality::static_link(30.0),
        );
        let mut s1 = Station::new(cfg1, 7, 0);
        let mut s2 = Station::new(cfg2, 7, 1);
        let a: Vec<u64> = (0..5).map(|_| s1.rng.below(1_000_000)).collect();
        let b: Vec<u64> = (0..5).map(|_| s2.rng.below(1_000_000)).collect();
        assert_ne!(a, b);
    }
}
