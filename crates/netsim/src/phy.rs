//! PHY-level channel model: SNR processes, mobility, and frame error
//! probability.
//!
//! The model is deliberately simple — a per-station slow SNR process plus
//! per-frame fast fading, and a logistic frame-success curve per rate —
//! but it carries the property the paper's evaluation hinges on: **rate
//! choice and loss track the station's radio environment (location), not
//! its identity**, which is why the transmission-rate fingerprint
//! collapses in the mobile conference setting (§V-B).

use wifiprint_ieee80211::{Nanos, Rate};

use crate::rng::SimRng;

/// Approximate SNR (dB) required to decode each 802.11b/g rate with ~50%
/// frame success at mid sizes; the logistic curve is centred here.
pub fn rate_snr_threshold_db(rate: Rate) -> f64 {
    match rate.to_raw() {
        2 => 2.0,    // 1M
        4 => 4.0,    // 2M
        11 => 6.0,   // 5.5M
        22 => 9.0,   // 11M
        12 => 7.0,   // 6M
        18 => 8.5,   // 9M
        24 => 10.0,  // 12M
        36 => 12.5,  // 18M
        48 => 16.0,  // 24M
        72 => 20.0,  // 36M
        96 => 24.0,  // 48M
        108 => 26.0, // 54M
        _ => 30.0,
    }
}

/// Probability that a frame of `len` bytes at `rate` is received intact at
/// the given SNR.
///
/// A logistic curve over the SNR margin, sharpened slightly and compounded
/// for longer frames (more bits at risk).
pub fn frame_success_probability(rate: Rate, snr_db: f64, len: usize) -> f64 {
    let margin = snr_db - rate_snr_threshold_db(rate);
    let base = 1.0 / (1.0 + (-1.1 * margin).exp());
    let length_factor = 0.5 + len as f64 / 1000.0;
    base.powf(length_factor.max(0.1)).clamp(0.0, 1.0)
}

/// How a station's slow SNR evolves over time.
#[derive(Debug, Clone, PartialEq)]
pub enum MobilityModel {
    /// Fixed position: SNR stays at the base value (office desktops,
    /// printers, APs).
    Static,
    /// Bounded random walk: every update the SNR moves by a Gaussian step
    /// and is clamped to `[min_db, max_db]`. Models people drifting around
    /// a conference hall.
    RandomWalk {
        /// Standard deviation of each step (dB).
        step_db: f64,
        /// Lower SNR bound.
        min_db: f64,
        /// Upper SNR bound.
        max_db: f64,
    },
    /// Random waypoint with occasional jumps: like `RandomWalk` but with
    /// probability `jump_p` per update the SNR is redrawn uniformly in the
    /// range (someone walks across the room or out the door).
    Waypoint {
        /// Standard deviation of each small step (dB).
        step_db: f64,
        /// Probability of a large jump per update.
        jump_p: f64,
        /// Lower SNR bound.
        min_db: f64,
        /// Upper SNR bound.
        max_db: f64,
    },
    /// A waypoint walk with a systematic per-update trend: the crowd
    /// grows, people disperse, and the average link degrades over the
    /// day. The trend is what makes rate references go stale between the
    /// training hour and later detection windows — the effect behind the
    /// transmission-rate AUC collapse in the paper's conference trace.
    DriftingCrowd {
        /// Standard deviation of each small step (dB).
        step_db: f64,
        /// Probability of a large jump per update.
        jump_p: f64,
        /// Lower SNR bound.
        min_db: f64,
        /// Upper SNR bound.
        max_db: f64,
        /// Added to the SNR on every update (usually negative).
        trend_db: f64,
    },
}

/// One station's radio link state: slow SNR toward its AP and toward the
/// monitor, updated periodically by the simulator.
#[derive(Debug, Clone)]
pub struct LinkQuality {
    /// Slow SNR toward the AP/receiver, dB.
    pub snr_ap_db: f64,
    /// Offset applied for the path toward the monitor, dB.
    pub monitor_offset_db: f64,
    /// Per-frame fast-fading standard deviation, dB.
    pub fading_std_db: f64,
    /// The slow-SNR evolution model.
    pub mobility: MobilityModel,
    /// Interval between slow-SNR updates.
    pub update_every: Nanos,
}

impl LinkQuality {
    /// A static link with the given SNR and mild fast fading.
    pub fn static_link(snr_db: f64) -> Self {
        LinkQuality {
            snr_ap_db: snr_db,
            monitor_offset_db: 0.0,
            fading_std_db: 1.0,
            mobility: MobilityModel::Static,
            update_every: Nanos::from_secs(10),
        }
    }

    /// Advances the slow SNR process one update step.
    pub fn step(&mut self, rng: &mut SimRng) {
        match self.mobility {
            MobilityModel::Static => {}
            MobilityModel::RandomWalk { step_db, min_db, max_db } => {
                self.snr_ap_db = (self.snr_ap_db + rng.gaussian(0.0, step_db)).clamp(min_db, max_db);
            }
            MobilityModel::Waypoint { step_db, jump_p, min_db, max_db } => {
                if rng.chance(jump_p) {
                    self.snr_ap_db = min_db + rng.f64() * (max_db - min_db);
                } else {
                    self.snr_ap_db =
                        (self.snr_ap_db + rng.gaussian(0.0, step_db)).clamp(min_db, max_db);
                }
            }
            MobilityModel::DriftingCrowd { step_db, jump_p, min_db, max_db, trend_db } => {
                if rng.chance(jump_p) {
                    self.snr_ap_db = min_db + rng.f64() * (max_db - min_db);
                } else {
                    self.snr_ap_db = (self.snr_ap_db + trend_db + rng.gaussian(0.0, step_db))
                        .clamp(min_db, max_db);
                }
            }
        }
    }

    /// Instantaneous SNR at the AP for one frame (slow SNR + fast fading).
    pub fn snr_at_ap(&self, rng: &mut SimRng) -> f64 {
        self.snr_ap_db + rng.gaussian(0.0, self.fading_std_db)
    }

    /// Instantaneous SNR at the monitor for one frame.
    pub fn snr_at_monitor(&self, rng: &mut SimRng) -> f64 {
        self.snr_ap_db + self.monitor_offset_db + rng.gaussian(0.0, self.fading_std_db)
    }

    /// The signal strength (dBm) the monitor would report for this link,
    /// assuming a −95 dBm noise floor.
    pub fn monitor_signal_dbm(&self, snr_at_monitor_db: f64) -> i8 {
        (-95.0 + snr_at_monitor_db).clamp(-110.0, -10.0) as i8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_increase_within_families() {
        let dsss: Vec<f64> = Rate::ALL_B.iter().map(|&r| rate_snr_threshold_db(r)).collect();
        for pair in dsss.windows(2) {
            assert!(pair[0] < pair[1]);
        }
        let ofdm: Vec<f64> = Rate::ALL_G.iter().map(|&r| rate_snr_threshold_db(r)).collect();
        for pair in ofdm.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }

    #[test]
    fn success_probability_monotone_in_snr() {
        for rate in Rate::ALL_BG {
            let mut last = 0.0;
            for snr in [-5.0, 0.0, 5.0, 10.0, 20.0, 30.0, 40.0] {
                let p = frame_success_probability(rate, snr, 1000);
                assert!(p >= last, "{rate} at {snr}");
                assert!((0.0..=1.0).contains(&p));
                last = p;
            }
        }
    }

    #[test]
    fn success_probability_antitone_in_length() {
        let p_short = frame_success_probability(Rate::R54M, 28.0, 100);
        let p_long = frame_success_probability(Rate::R54M, 28.0, 1500);
        assert!(p_short > p_long);
    }

    #[test]
    fn high_snr_saturates() {
        for rate in Rate::ALL_BG {
            assert!(frame_success_probability(rate, 45.0, 1500) > 0.97, "{rate}");
            assert!(frame_success_probability(rate, -20.0, 100) < 0.01, "{rate}");
        }
    }

    #[test]
    fn static_link_never_moves() {
        let mut link = LinkQuality::static_link(30.0);
        let mut rng = SimRng::root(1);
        for _ in 0..100 {
            link.step(&mut rng);
        }
        assert_eq!(link.snr_ap_db, 30.0);
    }

    #[test]
    fn random_walk_stays_in_bounds() {
        let mut link = LinkQuality::static_link(20.0);
        link.mobility = MobilityModel::RandomWalk { step_db: 3.0, min_db: 5.0, max_db: 35.0 };
        let mut rng = SimRng::root(2);
        let mut moved = false;
        for _ in 0..1000 {
            let before = link.snr_ap_db;
            link.step(&mut rng);
            assert!((5.0..=35.0).contains(&link.snr_ap_db));
            moved |= link.snr_ap_db != before;
        }
        assert!(moved);
    }

    #[test]
    fn waypoint_jumps_occasionally() {
        let mut link = LinkQuality::static_link(20.0);
        link.mobility =
            MobilityModel::Waypoint { step_db: 0.5, jump_p: 0.3, min_db: 0.0, max_db: 40.0 };
        let mut rng = SimRng::root(3);
        let mut big_jumps = 0;
        for _ in 0..500 {
            let before = link.snr_ap_db;
            link.step(&mut rng);
            if (link.snr_ap_db - before).abs() > 5.0 {
                big_jumps += 1;
            }
        }
        assert!(big_jumps > 50, "big jumps = {big_jumps}");
    }

    #[test]
    fn fading_fluctuates_per_frame() {
        let link = LinkQuality::static_link(25.0);
        let mut rng = SimRng::root(4);
        let a = link.snr_at_ap(&mut rng);
        let b = link.snr_at_ap(&mut rng);
        assert_ne!(a, b);
        let m = link.snr_at_monitor(&mut rng);
        assert!((m - 25.0).abs() < 6.0);
    }

    #[test]
    fn monitor_signal_is_plausible_dbm() {
        let link = LinkQuality::static_link(30.0);
        let dbm = link.monitor_signal_dbm(30.0);
        assert_eq!(dbm, -65);
        assert_eq!(link.monitor_signal_dbm(200.0), -10);
        assert_eq!(link.monitor_signal_dbm(-200.0), -110);
    }
}
