//! The discrete-event simulation engine: DCF contention, frame exchanges,
//! and the passive monitor tap.
//!
//! # Contention scheduling
//!
//! Backoff is event-lazy: instead of one timer event per contending
//! station (which thrashes under load), the simulator keeps the set of
//! contenders with their frozen backoff residues and schedules a **single
//! fire event** at the earliest attempt time of the current idle period.
//! Stations whose attempt falls within the clear-channel-assessment window
//! of a transmission that just started cannot sense it yet; they transmit
//! anyway and collide — that is how same-slot backoff draws become real
//! collisions.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use wifiprint_ieee80211::timing::{air_time, difs, eifs, Preamble, SlotTime, ACK_LEN, RTS_LEN, SIFS};
use wifiprint_ieee80211::{FrameKind, MacAddr, Nanos, Rate};
use wifiprint_radiotap::CapturedFrame;

use crate::medium::{ActiveTx, Medium, TxFrame};
use crate::monitor::{Monitor, MonitorStats};
use crate::phy::frame_success_probability;
use crate::rng::SimRng;
use crate::station::{
    phy_for, Awaiting, ContendState, FrameJob, QueuedFrame, Role, Station, StationConfig,
    DATA_OVERHEAD,
};
use crate::traffic::Destination;

/// Clear-channel-assessment window: a transmission that started less than
/// this long ago is not yet detectable by carrier sense.
const CCA_WINDOW: Nanos = Nanos::from_micros(4);

/// Global simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Root random seed; all streams derive from it.
    pub seed: u64,
    /// Slot-time regime of the channel.
    pub slot: SlotTime,
    /// The BSS basic rate set (control responses use the highest basic
    /// rate not above the data rate).
    pub basic_rates: Vec<Rate>,
    /// Beacon interval (the 802.11 default is 100 TU = 102.4 ms).
    pub beacon_interval: Nanos,
    /// Baseline monitor loss on top of SNR-driven loss.
    pub monitor_loss: f64,
    /// Probability that the earliest frame of an overlap survives it (the
    /// 802.11 capture effect); 0.0 makes every collision destroy all
    /// frames involved.
    pub capture_effect: f64,
    /// How long to simulate.
    pub duration: Nanos,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0,
            slot: SlotTime::Long,
            basic_rates: vec![Rate::R1M, Rate::R2M, Rate::R5_5M, Rate::R11M],
            beacon_interval: Nanos::from_micros(102_400),
            monitor_loss: 0.01,
            capture_effect: 0.6,
            duration: Nanos::from_secs(60),
        }
    }
}

/// Statistics reported at the end of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimStats {
    /// Monitor counters.
    pub monitor: MonitorStats,
    /// Transmissions started on the medium.
    pub transmissions: u64,
    /// Transmissions that collided.
    pub collisions: u64,
    /// Events processed.
    pub events: u64,
    /// The simulated end time.
    pub sim_time: Nanos,
}

#[derive(Debug)]
enum EventKind {
    Arrival { station: usize, source: usize },
    /// The earliest contender's backoff expires.
    ContentionFire { gen: u64 },
    /// A station inside the CCA race window transmits blindly.
    ForcedAttempt { station: usize, gen: u64 },
    TxEnd { tx_id: u64 },
    Response { station: usize, frame: Box<TxFrame> },
    RespTimeout { station: usize, gen: u64 },
    Beacon { station: usize },
    LinkUpdate { station: usize },
}

#[derive(Debug)]
struct Ev {
    at: Nanos,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Ev {}
impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// The 802.11 channel simulator.
///
/// Add stations with [`Simulator::add_station`], then call
/// [`Simulator::run`] with a sink receiving every frame the monitor
/// captures.
///
/// # Example
///
/// ```
/// use wifiprint_netsim::{
///     CbrSource, LinkQuality, SimConfig, Simulator, StationConfig,
/// };
/// use wifiprint_ieee80211::{MacAddr, Nanos};
///
/// let mut sim = Simulator::new(SimConfig {
///     duration: Nanos::from_secs(2),
///     ..SimConfig::default()
/// });
/// let ap = MacAddr::from_index(0xA9);
/// sim.add_station(StationConfig::ap(ap, LinkQuality::static_link(35.0)));
/// let mut sta = StationConfig::client(
///     MacAddr::from_index(1),
///     ap,
///     LinkQuality::static_link(30.0),
/// );
/// sta.sources.push(Box::new(CbrSource::new(Nanos::from_millis(20), 800)));
/// sim.add_station(sta);
///
/// let mut frames = Vec::new();
/// let stats = sim.run(&mut |f| frames.push(*f));
/// assert!(stats.monitor.captured > 0);
/// assert!(!frames.is_empty());
/// ```
#[derive(Debug)]
pub struct Simulator {
    cfg: SimConfig,
    now: Nanos,
    events: BinaryHeap<Reverse<Ev>>,
    seq: u64,
    stations: Vec<Station>,
    addr_index: HashMap<MacAddr, usize>,
    ap_indices: Vec<usize>,
    medium: Medium,
    medium_newest_start: Nanos,
    monitor: Monitor,
    delivery_rng: SimRng,
    next_tx_id: u64,
    /// Stations currently in contention (want the medium).
    contenders: Vec<usize>,
    /// Invalidates outstanding `ContentionFire` events.
    contention_gen: u64,
    events_processed: u64,
    contender_samples: u64,
    contender_sum: u64,
    contender_max: usize,
}

impl Simulator {
    /// A simulator with no stations yet.
    pub fn new(cfg: SimConfig) -> Self {
        let monitor = Monitor::new(cfg.seed, cfg.monitor_loss);
        let delivery_rng = SimRng::derive(cfg.seed, 0xDE11_4E55);
        Simulator {
            cfg,
            now: Nanos::ZERO,
            events: BinaryHeap::new(),
            seq: 0,
            stations: Vec::new(),
            addr_index: HashMap::new(),
            ap_indices: Vec::new(),
            medium: Medium::new(),
            medium_newest_start: Nanos::ZERO,
            monitor,
            delivery_rng,
            next_tx_id: 0,
            contenders: Vec::new(),
            contention_gen: 0,
            events_processed: 0,
            contender_samples: 0,
            contender_sum: 0,
            contender_max: 0,
        }
    }

    /// Registers a station; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if another station already uses the same MAC address.
    pub fn add_station(&mut self, cfg: StationConfig) -> usize {
        let idx = self.stations.len();
        let prev = self.addr_index.insert(cfg.addr, idx);
        assert!(prev.is_none(), "duplicate station address {}", cfg.addr);
        if matches!(cfg.role, Role::Ap { .. }) {
            self.ap_indices.push(idx);
        }
        self.stations.push(Station::new(cfg, self.cfg.seed, idx));
        idx
    }

    /// Number of registered stations.
    pub fn station_count(&self) -> usize {
        self.stations.len()
    }

    /// Attaches additional traffic sources to an existing station.
    ///
    /// Must be called before [`Simulator::run`]; sources added later are
    /// never scheduled. Useful for wiring AP downlink streams once client
    /// addresses are known.
    pub fn add_sources(
        &mut self,
        station: usize,
        sources: impl IntoIterator<Item = Box<dyn crate::traffic::TrafficSource>>,
    ) {
        self.stations[station].sources.extend(sources);
    }

    /// The MAC address of station `idx`.
    pub fn station_addr(&self, idx: usize) -> MacAddr {
        self.stations[idx].addr
    }

    /// Read access to the medium, for post-run diagnostics.
    pub fn medium(&self) -> &Medium {
        &self.medium
    }

    /// Diagnostic: (average, max) contender-pool size sampled at each
    /// contention fire.
    pub fn contender_pool_stats(&self) -> (f64, usize) {
        let avg = self.contender_sum as f64 / self.contender_samples.max(1) as f64;
        (avg, self.contender_max)
    }

    /// Runs the simulation to completion, delivering every monitor-captured
    /// frame to `sink` in timestamp order.
    pub fn run(&mut self, sink: &mut dyn FnMut(&CapturedFrame)) -> SimStats {
        self.bootstrap();
        let end = self.cfg.duration;
        while let Some(Reverse(ev)) = self.events.pop() {
            if ev.at > end {
                break;
            }
            self.now = ev.at;
            self.events_processed += 1;
            self.dispatch(ev.kind, sink);
        }
        self.now = end;
        SimStats {
            monitor: self.monitor.stats(),
            transmissions: self.medium.transmissions(),
            collisions: self.medium.collisions(),
            events: self.events_processed,
            sim_time: end,
        }
    }

    // ----- bootstrap -------------------------------------------------------

    fn bootstrap(&mut self) {
        for idx in 0..self.stations.len() {
            let from = self.stations[idx].active_from;
            for src in 0..self.stations[idx].sources.len() {
                let st = &mut self.stations[idx];
                let delay = st.sources[src].initial_delay(&mut st.rng);
                self.push_event(from + delay, EventKind::Arrival { station: idx, source: src });
            }
            if self.stations[idx].is_ap() {
                let offset = Nanos::from_micros(self.stations[idx].rng.below(100_000));
                self.stations[idx].beacon_target = from + offset;
                let at = self.stations[idx].beacon_target;
                self.push_event(at, EventKind::Beacon { station: idx });
            }
            let every = self.stations[idx].link.update_every;
            if every < self.cfg.duration {
                self.push_event(from + every, EventKind::LinkUpdate { station: idx });
            }
        }
    }

    fn push_event(&mut self, at: Nanos, kind: EventKind) {
        self.seq += 1;
        self.events.push(Reverse(Ev { at, seq: self.seq, kind }));
    }

    fn dispatch(&mut self, kind: EventKind, sink: &mut dyn FnMut(&CapturedFrame)) {
        match kind {
            EventKind::Arrival { station, source } => self.handle_arrival(station, source),
            EventKind::ContentionFire { gen } => self.handle_contention_fire(gen),
            EventKind::ForcedAttempt { station, gen } => self.handle_forced_attempt(station, gen),
            EventKind::TxEnd { tx_id } => self.handle_tx_end(tx_id, sink),
            EventKind::Response { station, frame } => self.start_transmission(station, *frame),
            EventKind::RespTimeout { station, gen } => self.handle_resp_timeout(station, gen),
            EventKind::Beacon { station } => self.handle_beacon(station),
            EventKind::LinkUpdate { station } => self.handle_link_update(station),
        }
    }

    // ----- traffic ---------------------------------------------------------

    fn handle_arrival(&mut self, s: usize, source: usize) {
        let now = self.now;
        {
            let st = &mut self.stations[s];
            if let Some(until) = st.active_until {
                if now >= until {
                    return; // station left; source dies
                }
            }
            let emission = st.sources[source].poll(now, &mut st.rng);
            for msdu in emission.msdus {
                st.enqueue_msdu(msdu);
            }
            if let Some(next) = emission.next_in {
                let at = now + next;
                self.push_event(at, EventKind::Arrival { station: s, source });
            }
        }
        self.request_medium(s);
    }

    fn handle_beacon(&mut self, s: usize) {
        let now = self.now;
        let payload = match self.stations[s].role {
            Role::Ap { beacon_payload } => beacon_payload,
            Role::Client => return,
        };
        if let Some(until) = self.stations[s].active_until {
            if now >= until {
                return;
            }
        }
        {
            let st = &mut self.stations[s];
            st.queue.push_back(QueuedFrame { job: FrameJob::Beacon { payload }, retry: false });
            let next = st.behavior.local_duration(self.cfg.beacon_interval);
            st.beacon_target += next;
        }
        let at = self.stations[s].beacon_target;
        self.push_event(at, EventKind::Beacon { station: s });
        self.request_medium(s);
    }

    fn handle_link_update(&mut self, s: usize) {
        let now = self.now;
        {
            let st = &mut self.stations[s];
            st.link.step(&mut st.rng);
            let snr = st.link.snr_ap_db;
            st.rate_ctrl.on_snr_hint(snr);
        }
        let every = self.stations[s].link.update_every;
        let still_active = self.stations[s].active_until.is_none_or(|u| now < u);
        if still_active {
            self.push_event(now + every, EventKind::LinkUpdate { station: s });
        }
    }

    // ----- contention ------------------------------------------------------

    /// Enrols a station into contention if it has traffic and is free.
    fn request_medium(&mut self, s: usize) {
        if self.stations[s].contend != ContendState::Idle || !self.stations[s].wants_medium() {
            return;
        }
        let base_ifs = self.current_ifs();
        {
            let st = &mut self.stations[s];
            st.contend = ContendState::Contending;
            // Not armed for any idle period yet; the sentinel keeps the
            // freeze/race logic from misreading stale values.
            st.attempt_difs_end = Nanos::MAX;
            st.attempt_at = Nanos::MAX;
            if st.backoff_remaining.is_none() {
                let w = st.behavior.backoff_wait(st.cw, self.cfg.slot.duration(), &mut st.rng);
                st.backoff_remaining = Some(w);
            }
        }
        self.contenders.push(s);
        if !self.medium.is_busy() {
            // DIFS counts from now for a fresh contender (it must observe
            // the medium idle for DIFS from when it has data).
            self.arm_contender(s, base_ifs);
            self.reschedule_fire();
        }
    }

    /// Sets a contender's DIFS end and attempt time for the current idle
    /// period, starting the DIFS at `self.now`.
    fn arm_contender(&mut self, s: usize, base_ifs: Nanos) {
        let st = &mut self.stations[s];
        let ifs = st.behavior.local_duration(base_ifs);
        st.attempt_difs_end = self.now + ifs;
        st.attempt_at = st.attempt_difs_end + st.backoff_remaining.unwrap_or(Nanos::ZERO);
    }

    fn current_ifs(&self) -> Nanos {
        if self.medium.last_frame_corrupted() {
            eifs(self.cfg.slot, self.lowest_basic(), Preamble::Long)
        } else {
            difs(self.cfg.slot)
        }
    }

    /// Schedules (or reschedules) the single contention-fire event at the
    /// earliest contender attempt.
    fn reschedule_fire(&mut self) {
        self.prune_contenders();
        let Some(earliest) = self
            .contenders
            .iter()
            .map(|&s| self.stations[s].attempt_at)
            .min()
        else {
            return;
        };
        self.contention_gen += 1;
        let gen = self.contention_gen;
        self.push_event(earliest.max(self.now), EventKind::ContentionFire { gen });
    }

    /// Drops contenders that no longer want the medium.
    fn prune_contenders(&mut self) {
        let stations = &mut self.stations;
        self.contenders.retain(|&s| {
            let keep = stations[s].contend == ContendState::Contending && stations[s].wants_medium();
            if !keep && stations[s].contend == ContendState::Contending {
                stations[s].contend = ContendState::Idle;
            }
            keep
        });
    }

    /// The earliest contender transmits; contenders within the CCA window
    /// of its start transmit blindly right after.
    fn handle_contention_fire(&mut self, gen: u64) {
        if gen != self.contention_gen || self.medium.is_busy() {
            return;
        }
        self.prune_contenders();
        self.contender_samples += 1;
        self.contender_sum += self.contenders.len() as u64;
        self.contender_max = self.contender_max.max(self.contenders.len());
        let Some(&winner) = self
            .contenders
            .iter()
            .min_by_key(|&&s| (self.stations[s].attempt_at, s))
        else {
            return;
        };
        let win_at = self.stations[winner].attempt_at;
        debug_assert!(win_at <= self.now + Nanos::from_nanos(1));
        self.unenrol(winner);
        self.transmit_head(winner);
        // start_transmission → on_medium_busy handles the CCA racers.
    }

    fn handle_forced_attempt(&mut self, s: usize, gen: u64) {
        if self.stations[s].attempt_gen != gen {
            return;
        }
        if self.stations[s].awaiting.is_some() || !self.stations[s].wants_medium() {
            return;
        }
        self.transmit_head(s);
    }

    /// Removes a station from the contender set.
    fn unenrol(&mut self, s: usize) {
        self.stations[s].contend = ContendState::Idle;
        if let Some(pos) = self.contenders.iter().position(|&x| x == s) {
            self.contenders.swap_remove(pos);
        }
    }

    /// Freezes contenders when the medium turns busy; contenders whose
    /// attempt is within the CCA window transmit blindly (collision).
    fn on_medium_busy(&mut self, busy_start: Nanos) {
        self.contention_gen += 1; // cancel any outstanding fire event
        let slot_ns = self.cfg.slot.duration().as_nanos();
        let mut racers = Vec::new();
        for i in 0..self.contenders.len() {
            let s = self.contenders[i];
            let st = &mut self.stations[s];
            if st.contend != ContendState::Contending {
                continue;
            }
            if st.attempt_difs_end == Nanos::MAX {
                continue; // enrolled while busy: no DIFS countdown yet
            }
            if st.attempt_at <= busy_start + CCA_WINDOW {
                racers.push(s);
                continue;
            }
            // Freeze: consume the whole slots elapsed after DIFS.
            if let Some(rem) = st.backoff_remaining {
                let elapsed = busy_start.saturating_sub(st.attempt_difs_end).as_nanos();
                let consumed = (elapsed / slot_ns) * slot_ns;
                st.backoff_remaining = Some(rem.saturating_sub(Nanos::from_nanos(consumed)));
            }
            // De-arm until the next idle period.
            st.attempt_difs_end = Nanos::MAX;
            st.attempt_at = Nanos::MAX;
        }
        for s in racers {
            let at = self.stations[s].attempt_at.max(busy_start);
            self.unenrol(s);
            let gen = {
                let st = &mut self.stations[s];
                st.attempt_gen += 1;
                st.attempt_gen
            };
            self.push_event(at, EventKind::ForcedAttempt { station: s, gen });
        }
    }

    /// Re-arms contention when the medium goes idle.
    fn on_medium_idle(&mut self) {
        let base_ifs = self.current_ifs();
        for i in 0..self.contenders.len() {
            let s = self.contenders[i];
            if self.stations[s].contend == ContendState::Contending {
                self.arm_contender(s, base_ifs);
            }
        }
        self.reschedule_fire();
    }

    // ----- transmission ----------------------------------------------------

    fn transmit_head(&mut self, s: usize) {
        let frame = self.build_head_frame(s, true);
        self.stations[s].backoff_remaining = None;
        self.start_transmission(s, frame);
    }

    /// Builds the on-air frame for the queue head. With `allow_rts`, a
    /// unicast data frame above the RTS threshold becomes an RTS instead
    /// (the data frame itself is built with `allow_rts = false` once the
    /// CTS arrives).
    fn build_head_frame(&mut self, s: usize, allow_rts: bool) -> TxFrame {
        let basic = self.cfg.basic_rates.clone();
        let st = &mut self.stations[s];
        let head = st.queue.front().expect("transmit_head with empty queue").clone();
        let retry = head.retry;
        let size = st.head_wire_size(&head.job);
        let rate = st.head_rate(&head.job);
        let is_ap = st.is_ap();

        // RTS/CTS above the device's threshold (unicast data only, §VI-A2).
        let unicast_data = matches!(
            &head.job,
            FrameJob::Data { dest: Destination::Ap | Destination::Station(_), .. }
        );
        if allow_rts && unicast_data && st.behavior.rts_threshold.is_some_and(|thr| size > thr) {
            let data_air = air_time(phy_for(rate, st.behavior.short_preamble), size);
            let rts_rate = rate.clamp_to_set(&basic);
            let receiver = match &head.job {
                FrameJob::Data { dest: Destination::Station(a), .. } => *a,
                _ => st.bssid,
            };
            return TxFrame {
                kind: FrameKind::Rts,
                transmitter: Some(st.addr),
                receiver,
                dest_group: false,
                size: RTS_LEN,
                rate: rts_rate,
                retry,
                to_ds: false,
                from_ds: false,
                needs_ack: false,
                duration_field: st.behavior.duration_model.rts_duration(data_air, rts_rate),
                seq: st.seq.peek(),
                power_mgmt: false,
            };
        }

        let seq = st.seq.next();
        let (kind, receiver, dest_group, needs_ack, to_ds, from_ds, power_mgmt) = match &head.job {
            FrameJob::Data { dest, .. } => match dest {
                Destination::Ap => (FrameKind::Data, st.bssid, false, true, !is_ap, false, false),
                Destination::Group(g) => {
                    if is_ap {
                        // APs put group traffic directly on air.
                        (FrameKind::Data, *g, true, false, false, true, false)
                    } else {
                        // Clients send group traffic uplink through the AP.
                        (FrameKind::Data, st.bssid, true, true, true, false, false)
                    }
                }
                Destination::Station(a) => {
                    (FrameKind::Data, *a, false, true, !is_ap, is_ap, false)
                }
            },
            FrameJob::Null { power_save } => {
                (FrameKind::NullFunction, st.bssid, false, true, true, false, *power_save)
            }
            FrameJob::ProbeReq { .. } => {
                (FrameKind::ProbeReq, MacAddr::BROADCAST, true, false, false, false, false)
            }
            FrameJob::ProbeResp { to, .. } => {
                (FrameKind::ProbeResp, *to, false, true, false, false, false)
            }
            FrameJob::Beacon { .. } => {
                (FrameKind::Beacon, MacAddr::BROADCAST, true, false, false, false, false)
            }
        };
        let duration_field = if needs_ack {
            st.behavior.duration_model.data_frame_duration(rate, &basic, false)
        } else {
            0
        };
        TxFrame {
            kind,
            transmitter: Some(st.addr),
            receiver,
            dest_group,
            size,
            rate,
            retry,
            to_ds,
            from_ds,
            needs_ack,
            duration_field,
            seq,
            power_mgmt,
        }
    }

    fn start_transmission(&mut self, s: usize, frame: TxFrame) {
        let sp = self.stations[s].behavior.short_preamble;
        let air = air_time(phy_for(frame.rate, sp), frame.size);
        let t_end = self.now + air;
        let tx_id = self.next_tx_id;
        self.next_tx_id += 1;
        let first_captures =
            self.medium.is_busy() && self.delivery_rng.chance(self.cfg.capture_effect);
        let was_idle = self.medium.start_tx(
            ActiveTx { tx_id, station: s, frame, t_start: self.now, t_end, collided: false },
            first_captures,
        );
        self.medium_newest_start = self.now;
        if was_idle {
            self.on_medium_busy(self.now);
        }
        self.push_event(t_end, EventKind::TxEnd { tx_id });
    }

    fn handle_tx_end(&mut self, tx_id: u64, sink: &mut dyn FnMut(&CapturedFrame)) {
        let (tx, idle_now) = self.medium.finish_tx(tx_id, self.now);
        let s = tx.station;

        // 1. The passive monitor's view.
        let sp = self.stations[s].behavior.short_preamble;
        if let Some(cf) = self.monitor.observe(&tx, &self.stations[s].link, sp) {
            sink(&cf);
        }

        // 2. Transmitter follow-up.
        match tx.frame.kind {
            FrameKind::Rts => {
                let timeout = self.response_timeout(tx.frame.rate);
                let gen = {
                    let st = &mut self.stations[s];
                    st.awaiting = Some(Awaiting::Cts);
                    st.ack_gen += 1;
                    st.ack_gen
                };
                self.push_event(self.now + timeout, EventKind::RespTimeout { station: s, gen });
            }
            FrameKind::Ack | FrameKind::Cts => {}
            _ if tx.frame.needs_ack => {
                let timeout = self.response_timeout(tx.frame.rate);
                let gen = {
                    let st = &mut self.stations[s];
                    st.awaiting = Some(Awaiting::Ack);
                    st.ack_gen += 1;
                    st.ack_gen
                };
                self.push_event(self.now + timeout, EventKind::RespTimeout { station: s, gen });
            }
            _ => {
                // Unacknowledged frame (broadcast data, probe request,
                // beacon): complete immediately.
                let st = &mut self.stations[s];
                st.queue.pop_front();
                st.reset_contention();
            }
        }

        // 3. Receiver processing.
        if !tx.collided {
            self.deliver(&tx);
        }

        // 4. Idle transition re-arms contention; the transmitter itself
        // re-enrols if it still has traffic.
        self.request_medium(s);
        if idle_now {
            self.on_medium_idle();
        }
    }

    fn response_timeout(&self, data_rate: Rate) -> Nanos {
        let ack_rate = data_rate.clamp_to_set(&self.cfg.basic_rates);
        let ack_air = air_time(phy_for(ack_rate, false), ACK_LEN);
        SIFS + ack_air + self.cfg.slot.duration() * 2
    }

    fn lowest_basic(&self) -> Rate {
        self.cfg.basic_rates.iter().copied().min().unwrap_or(Rate::R1M)
    }

    // ----- reception -------------------------------------------------------

    fn deliver(&mut self, tx: &ActiveTx) {
        if tx.frame.kind == FrameKind::ProbeReq {
            self.deliver_probe_req(tx);
            return;
        }
        let Some(&r_idx) = self.addr_index.get(&tx.frame.receiver) else {
            return; // group-addressed or outside the simulation
        };
        if r_idx == tx.station || !self.stations[r_idx].is_active(self.now) {
            return;
        }

        // Reception roll: client↔AP links are symmetric; use the client
        // side's link state for either direction.
        let link_owner = if self.stations[r_idx].is_ap() { tx.station } else { r_idx };
        let snr = self.stations[link_owner].link.snr_at_ap(&mut self.delivery_rng);
        let p = frame_success_probability(tx.frame.rate, snr, tx.frame.size);
        if !self.delivery_rng.chance(p) {
            return;
        }

        match tx.frame.kind {
            FrameKind::Rts => self.respond_cts(r_idx, tx),
            FrameKind::Cts => self.on_cts_received(r_idx),
            FrameKind::Ack => self.on_ack_received(r_idx),
            kind if tx.frame.needs_ack => {
                self.respond_ack(r_idx, tx);
                if self.stations[r_idx].is_ap()
                    && tx.frame.to_ds
                    && tx.frame.dest_group
                    && kind.carries_data()
                {
                    self.relay_group_frame(r_idx, tx);
                }
            }
            _ => {}
        }
    }

    fn deliver_probe_req(&mut self, tx: &ActiveTx) {
        let Some(sender) = tx.frame.transmitter else { return };
        for i in 0..self.ap_indices.len() {
            let ap = self.ap_indices[i];
            if !self.stations[ap].is_active(self.now) {
                continue;
            }
            let snr = self.stations[tx.station].link.snr_at_ap(&mut self.delivery_rng);
            let p = frame_success_probability(tx.frame.rate, snr, tx.frame.size);
            if !self.delivery_rng.chance(p) {
                continue;
            }
            let payload = match self.stations[ap].role {
                Role::Ap { beacon_payload } => beacon_payload,
                Role::Client => continue,
            };
            self.stations[ap].queue.push_back(QueuedFrame {
                job: FrameJob::ProbeResp { to: sender, payload },
                retry: false,
            });
            self.request_medium(ap);
        }
    }

    fn respond_cts(&mut self, r_idx: usize, tx: &ActiveTx) {
        let Some(rts_sender) = tx.frame.transmitter else { return };
        let (delay, frame) = {
            let st = &mut self.stations[r_idx];
            let delay = st.behavior.response_delay(SIFS, &mut st.rng);
            let cts_air = air_time(phy_for(tx.frame.rate, false), ACK_LEN);
            let spent = (SIFS + cts_air).as_micros() as u16;
            let frame = TxFrame {
                kind: FrameKind::Cts,
                transmitter: None,
                receiver: rts_sender,
                dest_group: false,
                size: ACK_LEN,
                rate: tx.frame.rate,
                retry: false,
                to_ds: false,
                from_ds: false,
                needs_ack: false,
                duration_field: tx.frame.duration_field.saturating_sub(spent),
                seq: 0,
                power_mgmt: false,
            };
            (delay, frame)
        };
        let at = self.now + delay;
        self.push_event(at, EventKind::Response { station: r_idx, frame: Box::new(frame) });
    }

    fn respond_ack(&mut self, r_idx: usize, tx: &ActiveTx) {
        let Some(data_sender) = tx.frame.transmitter else { return };
        let ack_rate = tx.frame.rate.clamp_to_set(&self.cfg.basic_rates);
        let (delay, frame) = {
            let st = &mut self.stations[r_idx];
            let delay = st.behavior.response_delay(SIFS, &mut st.rng);
            let frame = TxFrame {
                kind: FrameKind::Ack,
                transmitter: None,
                receiver: data_sender,
                dest_group: false,
                size: ACK_LEN,
                rate: ack_rate,
                retry: false,
                to_ds: false,
                from_ds: false,
                needs_ack: false,
                duration_field: 0,
                seq: 0,
                power_mgmt: false,
            };
            (delay, frame)
        };
        let at = self.now + delay;
        self.push_event(at, EventKind::Response { station: r_idx, frame: Box::new(frame) });
    }

    fn on_cts_received(&mut self, r_idx: usize) {
        if self.stations[r_idx].awaiting != Some(Awaiting::Cts) {
            return;
        }
        {
            let st = &mut self.stations[r_idx];
            st.ack_gen += 1; // cancel the CTS timeout
            st.awaiting = None;
        }
        // Send the protected data frame after SIFS, bypassing contention.
        let frame = self.build_head_frame(r_idx, false);
        let delay = {
            let st = &mut self.stations[r_idx];
            st.behavior.response_delay(SIFS, &mut st.rng)
        };
        let at = self.now + delay;
        self.push_event(at, EventKind::Response { station: r_idx, frame: Box::new(frame) });
    }

    fn on_ack_received(&mut self, r_idx: usize) {
        if self.stations[r_idx].awaiting != Some(Awaiting::Ack) {
            return;
        }
        let st = &mut self.stations[r_idx];
        st.ack_gen += 1; // cancel the ACK timeout
        st.awaiting = None;
        st.rate_ctrl.on_success();
        st.queue.pop_front();
        st.reset_contention();
        self.request_medium(r_idx);
    }

    fn relay_group_frame(&mut self, ap_idx: usize, tx: &ActiveTx) {
        let payload = tx
            .frame
            .size
            .saturating_sub(DATA_OVERHEAD + self.stations[tx.station].encryption_overhead);
        let group = MacAddr::BROADCAST;
        self.stations[ap_idx].queue.push_back(QueuedFrame {
            job: FrameJob::Data { payload, dest: Destination::Group(group) },
            retry: false,
        });
        self.request_medium(ap_idx);
    }

    fn handle_resp_timeout(&mut self, s: usize, gen: u64) {
        if self.stations[s].ack_gen != gen || self.stations[s].awaiting.is_none() {
            return;
        }
        {
            let st = &mut self.stations[s];
            st.awaiting = None;
            st.rate_ctrl.on_failure();
            st.retries += 1;
            if st.retries > st.behavior.retry_limit {
                st.queue.pop_front();
                st.reset_contention();
            } else {
                if let Some(head) = st.queue.front_mut() {
                    head.retry = true;
                }
                st.cw = st.behavior.next_cw(st.cw);
                st.backoff_remaining = None; // redraw with the larger window
            }
        }
        self.request_medium(s);
    }
}
