//! Traffic sources: the application- and OS-level behaviour that drives a
//! station's transmissions.
//!
//! §VI-C of the paper shows that the *services* running on a device (SSDP,
//! LLMNR, IGMPv3, …) shape its broadcast traffic and therefore its
//! inter-arrival histogram; applications shape the bulk of the data
//! traffic. Sources are composed per device by the `wifiprint-devices`
//! crate.

use core::fmt;

use wifiprint_ieee80211::{MacAddr, Nanos};

use crate::rng::SimRng;

/// What a generated MSDU is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsduKind {
    /// Ordinary data payload.
    Data,
    /// Null-function frame; the flag is the new power-save state.
    Null {
        /// Power-management bit value.
        power_save: bool,
    },
    /// Probe request (management, broadcast, not acknowledged).
    ProbeReq,
}

/// Where an MSDU is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Destination {
    /// Unicast through the AP (uplink).
    Ap,
    /// Group-addressed (broadcast/multicast): sent uplink ToDS, relayed by
    /// the AP.
    Group(MacAddr),
    /// Unicast to a specific station (downlink; AP sources only).
    Station(MacAddr),
}

/// One MSDU handed to the MAC queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msdu {
    /// Payload length in bytes **before** MAC header / encryption
    /// overhead.
    pub payload: usize,
    /// Destination.
    pub dest: Destination,
    /// Payload semantics.
    pub kind: MsduKind,
}

impl Msdu {
    /// A data MSDU to the AP.
    pub fn uplink(payload: usize) -> Self {
        Msdu { payload, dest: Destination::Ap, kind: MsduKind::Data }
    }

    /// A broadcast data MSDU.
    pub fn broadcast(payload: usize) -> Self {
        Msdu { payload, dest: Destination::Group(MacAddr::BROADCAST), kind: MsduKind::Data }
    }
}

/// What a source produces when polled: zero or more MSDUs now, and the
/// delay until it should be polled again (`None` stops the source).
#[derive(Debug, Clone, PartialEq)]
pub struct Emission {
    /// MSDUs to enqueue immediately.
    pub msdus: Vec<Msdu>,
    /// Delay until the next poll.
    pub next_in: Option<Nanos>,
}

/// A generator of MSDUs over time.
///
/// The simulator polls each source once at its start time and then at each
/// returned `next_in` delay. Implementations must be deterministic given
/// the same RNG stream.
pub trait TrafficSource: fmt::Debug + Send {
    /// Produces the MSDUs for this poll instant.
    fn poll(&mut self, now: Nanos, rng: &mut SimRng) -> Emission;

    /// Delay before the first poll (defaults to an immediate start).
    fn initial_delay(&self, rng: &mut SimRng) -> Nanos {
        let _ = rng;
        Nanos::ZERO
    }
}

/// Constant-bit-rate traffic (the paper's `iperf` UDP streams): a fixed
/// payload every `interval`, with optional jitter.
#[derive(Debug, Clone)]
pub struct CbrSource {
    /// Inter-packet interval.
    pub interval: Nanos,
    /// Payload bytes per packet.
    pub payload: usize,
    /// Uniform jitter applied to each interval (± half of this).
    pub jitter: Nanos,
    /// Destination of the stream.
    pub dest: Destination,
    /// Stop after this many packets (`None` = unbounded).
    pub limit: Option<u64>,
    sent: u64,
}

impl CbrSource {
    /// A CBR stream to the AP.
    pub fn new(interval: Nanos, payload: usize) -> Self {
        CbrSource {
            interval,
            payload,
            jitter: Nanos::ZERO,
            dest: Destination::Ap,
            limit: None,
            sent: 0,
        }
    }
}

impl TrafficSource for CbrSource {
    fn poll(&mut self, _now: Nanos, rng: &mut SimRng) -> Emission {
        self.sent += 1;
        let done = self.limit.is_some_and(|l| self.sent >= l);
        let jitter = if self.jitter.is_zero() {
            Nanos::ZERO
        } else {
            Nanos::from_nanos(rng.below(self.jitter.as_nanos()))
        };
        let next = self.interval.saturating_sub(self.jitter / 2) + jitter;
        Emission {
            msdus: vec![Msdu { payload: self.payload, dest: self.dest, kind: MsduKind::Data }],
            next_in: (!done).then_some(next),
        }
    }

    fn initial_delay(&self, rng: &mut SimRng) -> Nanos {
        Nanos::from_nanos(rng.below(self.interval.as_nanos().max(1)))
    }
}

/// Poisson packet arrivals with a size distribution — background unicast
/// traffic (web, ssh, chat).
#[derive(Debug, Clone)]
pub struct PoissonSource {
    /// Mean inter-arrival time.
    pub mean_interval: Nanos,
    /// Candidate payload sizes.
    pub sizes: Vec<usize>,
    /// Weights over `sizes`.
    pub size_weights: Vec<f64>,
    /// Uniform per-frame size noise (± half of this), so histograms are
    /// realistic plateaus rather than razor-sharp spikes.
    pub size_noise: usize,
    /// Probability that an arrival is a short packet train instead of a
    /// single frame (request/response exchanges queue back to back).
    pub train_p: f64,
    /// Mean length of a "session": every session the size mixture is
    /// re-modulated (the user switches activities), so detection windows
    /// see varying size distributions — the non-stationarity that keeps
    /// frame sizes from becoming a unique identifier.
    pub session_every: Nanos,
    session_factors: Vec<f64>,
    next_session_at: Nanos,
}

impl PoissonSource {
    /// A background source with typical noise, train and session settings.
    pub fn new(mean_interval: Nanos, sizes: Vec<usize>, size_weights: Vec<f64>) -> Self {
        let n = sizes.len();
        PoissonSource {
            mean_interval,
            sizes,
            size_weights,
            size_noise: 96,
            train_p: 0.3,
            session_every: Nanos::from_secs(480),
            session_factors: vec![1.0; n],
            next_session_at: Nanos::ZERO,
        }
    }

    fn draw_size(&self, rng: &mut SimRng) -> usize {
        let weights: Vec<f64> = self
            .size_weights
            .iter()
            .zip(&self.session_factors)
            .map(|(w, f)| w * f)
            .collect();
        let base = self.sizes[rng.pick_weighted(&weights)];
        if self.size_noise == 0 {
            base
        } else {
            let noise = rng.below(self.size_noise as u64 + 1) as i64 - self.size_noise as i64 / 2;
            (base as i64 + noise).max(20) as usize
        }
    }

    fn maybe_roll_session(&mut self, now: Nanos, rng: &mut SimRng) {
        if self.session_every.is_zero() || now < self.next_session_at {
            return;
        }
        for f in &mut self.session_factors {
            *f = rng.gaussian(0.0, 0.9).exp();
        }
        let gap = rng.exponential(self.session_every.as_nanos() as f64).max(1.0) as u64;
        self.next_session_at = now + Nanos::from_nanos(gap);
    }
}

impl TrafficSource for PoissonSource {
    fn poll(&mut self, now: Nanos, rng: &mut SimRng) -> Emission {
        self.maybe_roll_session(now, rng);
        let count = if rng.chance(self.train_p) { 2 + rng.below(3) } else { 1 };
        let msdus = (0..count).map(|_| Msdu::uplink(self.draw_size(rng))).collect();
        let delay = rng.exponential(self.mean_interval.as_nanos() as f64);
        Emission { msdus, next_in: Some(Nanos::from_nanos(delay.max(1.0) as u64)) }
    }

    fn initial_delay(&self, rng: &mut SimRng) -> Nanos {
        Nanos::from_nanos(rng.below(self.mean_interval.as_nanos().max(1)))
    }
}

/// On/off bursty traffic (web browsing): Pareto-ish on-periods of packet
/// bursts separated by idle thinking time.
#[derive(Debug, Clone)]
pub struct OnOffSource {
    /// Mean packets per burst.
    pub burst_packets: f64,
    /// Payload per packet.
    pub payload: usize,
    /// Uniform per-frame payload noise (± half of this).
    pub payload_noise: usize,
    /// Gap between packets inside a burst.
    pub intra_gap: Nanos,
    /// Mean off (thinking) time between bursts.
    pub mean_off: Nanos,
    in_burst_remaining: u32,
    burst_payload: usize,
}

impl OnOffSource {
    /// A browsing-like source.
    pub fn new(burst_packets: f64, payload: usize, intra_gap: Nanos, mean_off: Nanos) -> Self {
        OnOffSource {
            burst_packets,
            payload,
            payload_noise: 120,
            intra_gap,
            mean_off,
            in_burst_remaining: 0,
            burst_payload: payload,
        }
    }
}

impl TrafficSource for OnOffSource {
    fn poll(&mut self, _now: Nanos, rng: &mut SimRng) -> Emission {
        if self.in_burst_remaining == 0 {
            // Start a new burst: heavy-tailed with mean `burst_packets`
            // (the Pareto scale is normalised so E[X] = 1). Each burst is
            // a different transfer: re-centre the payload around the
            // device's preference.
            const SHAPE: f64 = 1.3;
            let unit_mean = rng.pareto((SHAPE - 1.0) / SHAPE, SHAPE);
            self.in_burst_remaining =
                (unit_mean * self.burst_packets).clamp(1.0, 500.0) as u32;
            if self.payload_noise > 0 {
                let shift = rng.below(2 * self.payload_noise as u64 + 1) as i64
                    - self.payload_noise as i64;
                self.burst_payload = (self.payload as i64 + 2 * shift).max(60) as usize;
            } else {
                self.burst_payload = self.payload;
            }
        }
        self.in_burst_remaining -= 1;
        let next = if self.in_burst_remaining > 0 {
            self.intra_gap
        } else {
            Nanos::from_nanos(rng.exponential(self.mean_off.as_nanos() as f64).max(1.0) as u64)
        };
        let payload = if self.payload_noise == 0 {
            self.burst_payload
        } else {
            let noise =
                rng.below(self.payload_noise as u64 + 1) as i64 - self.payload_noise as i64 / 2;
            (self.burst_payload as i64 + noise).max(20) as usize
        };
        Emission { msdus: vec![Msdu::uplink(payload)], next_in: Some(next) }
    }

    fn initial_delay(&self, rng: &mut SimRng) -> Nanos {
        Nanos::from_nanos(rng.below(self.mean_off.as_nanos().max(1)))
    }
}

/// A periodic broadcast service (SSDP, mDNS, LLMNR, IGMPv3, ARP, …):
/// a burst of group-addressed frames of characteristic sizes every period.
#[derive(Debug, Clone)]
pub struct PeriodicBroadcast {
    /// Service period.
    pub period: Nanos,
    /// Uniform jitter on the period.
    pub jitter: Nanos,
    /// Frame payload sizes emitted per period (one MSDU each).
    pub payloads: Vec<usize>,
    /// Multicast/broadcast group address.
    pub group: MacAddr,
}

impl TrafficSource for PeriodicBroadcast {
    fn poll(&mut self, _now: Nanos, rng: &mut SimRng) -> Emission {
        let msdus = self
            .payloads
            .iter()
            .map(|&p| Msdu { payload: p, dest: Destination::Group(self.group), kind: MsduKind::Data })
            .collect();
        let jitter = if self.jitter.is_zero() {
            Nanos::ZERO
        } else {
            Nanos::from_nanos(rng.below(self.jitter.as_nanos()))
        };
        Emission { msdus, next_in: Some(self.period.saturating_sub(self.jitter / 2) + jitter) }
    }

    fn initial_delay(&self, rng: &mut SimRng) -> Nanos {
        Nanos::from_nanos(rng.below(self.period.as_nanos().max(1)))
    }
}

/// Driver probe-request scanning: bursts of `burst` probe requests with a
/// small intra-burst gap, repeated every `period` (Franklin et al.'s
/// driver-specific cadence).
#[derive(Debug, Clone)]
pub struct ProbeScanner {
    /// Scan period.
    pub period: Nanos,
    /// Probes per scan burst.
    pub burst: u32,
    /// Management payload size (SSID + rates elements).
    pub payload: usize,
    /// Uniform jitter on the period.
    pub jitter: Nanos,
}

impl TrafficSource for ProbeScanner {
    fn poll(&mut self, _now: Nanos, rng: &mut SimRng) -> Emission {
        let msdus = (0..self.burst.max(1))
            .map(|_| Msdu {
                payload: self.payload,
                dest: Destination::Group(MacAddr::BROADCAST),
                kind: MsduKind::ProbeReq,
            })
            .collect();
        let jitter = if self.jitter.is_zero() {
            Nanos::ZERO
        } else {
            Nanos::from_nanos(rng.below(self.jitter.as_nanos()))
        };
        Emission { msdus, next_in: Some(self.period.saturating_sub(self.jitter / 2) + jitter) }
    }

    fn initial_delay(&self, rng: &mut SimRng) -> Nanos {
        Nanos::from_nanos(rng.below(self.period.as_nanos().max(1)))
    }
}

/// Power-save signalling: alternating null-function frames entering and
/// leaving doze (Fig. 8's "Data null function" traffic).
#[derive(Debug, Clone)]
pub struct PowerSaveNulls {
    /// Time spent awake before dozing.
    pub awake: Nanos,
    /// Time spent dozing before waking.
    pub doze: Nanos,
    /// Uniform jitter applied to both periods.
    pub jitter: Nanos,
    asleep: bool,
}

impl PowerSaveNulls {
    /// A power-save cycle with the given awake/doze durations.
    pub fn new(awake: Nanos, doze: Nanos, jitter: Nanos) -> Self {
        PowerSaveNulls { awake, doze, jitter, asleep: false }
    }
}

impl TrafficSource for PowerSaveNulls {
    fn poll(&mut self, _now: Nanos, rng: &mut SimRng) -> Emission {
        self.asleep = !self.asleep;
        let base = if self.asleep { self.doze } else { self.awake };
        let jitter = if self.jitter.is_zero() {
            Nanos::ZERO
        } else {
            Nanos::from_nanos(rng.below(self.jitter.as_nanos()))
        };
        Emission {
            msdus: vec![Msdu {
                payload: 0,
                dest: Destination::Ap,
                kind: MsduKind::Null { power_save: self.asleep },
            }],
            next_in: Some(base.saturating_sub(self.jitter / 2) + jitter),
        }
    }

    fn initial_delay(&self, rng: &mut SimRng) -> Nanos {
        Nanos::from_nanos(rng.below(self.awake.as_nanos().max(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::root(5)
    }

    /// Drives a source for `polls` rounds, returning (msdus, intervals).
    fn drive(src: &mut dyn TrafficSource, polls: usize) -> (Vec<Msdu>, Vec<Nanos>) {
        let mut r = rng();
        let mut msdus = Vec::new();
        let mut gaps = Vec::new();
        let mut now = src.initial_delay(&mut r);
        for _ in 0..polls {
            let e = src.poll(now, &mut r);
            msdus.extend(e.msdus);
            match e.next_in {
                Some(d) => {
                    gaps.push(d);
                    now += d;
                }
                None => break,
            }
        }
        (msdus, gaps)
    }

    #[test]
    fn cbr_emits_fixed_interval_and_respects_limit() {
        let mut src = CbrSource::new(Nanos::from_millis(10), 1470);
        src.limit = Some(5);
        let (msdus, gaps) = drive(&mut src, 100);
        assert_eq!(msdus.len(), 5);
        assert_eq!(gaps.len(), 4);
        assert!(gaps.iter().all(|&g| g == Nanos::from_millis(10)));
        assert!(msdus.iter().all(|m| m.payload == 1470 && m.dest == Destination::Ap));
    }

    #[test]
    fn cbr_jitter_varies_interval() {
        let mut src = CbrSource::new(Nanos::from_millis(10), 100);
        src.jitter = Nanos::from_millis(2);
        let (_, gaps) = drive(&mut src, 50);
        assert!(gaps.iter().any(|&g| g != gaps[0]));
        for &g in &gaps {
            assert!(g >= Nanos::from_millis(9) && g <= Nanos::from_millis(11), "{g}");
        }
    }

    #[test]
    fn poisson_draws_sizes_from_distribution() {
        let mut src = PoissonSource::new(
            Nanos::from_millis(5),
            vec![100, 1400],
            vec![9.0, 1.0],
        );
        src.size_noise = 0;
        src.train_p = 0.0;
        src.session_every = Nanos::ZERO;
        let (msdus, gaps) = drive(&mut src, 2000);
        let small = msdus.iter().filter(|m| m.payload == 100).count();
        assert!(small > 1600, "small = {small}");
        let mean_gap =
            gaps.iter().map(|g| g.as_nanos()).sum::<u64>() as f64 / gaps.len() as f64;
        assert!((mean_gap / 5e6 - 1.0).abs() < 0.15, "mean gap = {mean_gap}");
    }

    #[test]
    fn onoff_bursts_then_idles() {
        let mut src = OnOffSource::new(
            5.0,
            600,
            Nanos::from_micros(500),
            Nanos::from_secs(2),
        );
        let (_, gaps) = drive(&mut src, 500);
        let intra = gaps.iter().filter(|&&g| g == Nanos::from_micros(500)).count();
        let idle = gaps.iter().filter(|&&g| g > Nanos::from_millis(100)).count();
        assert!(intra > 100, "intra = {intra}");
        assert!(idle > 10, "idle = {idle}");
    }

    #[test]
    fn broadcast_service_emits_all_payloads_to_group() {
        let group = MacAddr::new([0x01, 0x00, 0x5e, 0, 0, 0xfb]);
        let mut src = PeriodicBroadcast {
            period: Nanos::from_secs(30),
            jitter: Nanos::ZERO,
            payloads: vec![170, 230],
            group,
        };
        let (msdus, gaps) = drive(&mut src, 3);
        assert_eq!(msdus.len(), 6);
        assert!(msdus.iter().all(|m| m.dest == Destination::Group(group)));
        assert!(gaps.iter().all(|&g| g == Nanos::from_secs(30)));
        assert_eq!(msdus[0].payload, 170);
        assert_eq!(msdus[1].payload, 230);
    }

    #[test]
    fn probe_scanner_bursts() {
        let mut src = ProbeScanner {
            period: Nanos::from_secs(60),
            burst: 3,
            payload: 60,
            jitter: Nanos::ZERO,
        };
        let (msdus, _) = drive(&mut src, 2);
        assert_eq!(msdus.len(), 6);
        assert!(msdus.iter().all(|m| m.kind == MsduKind::ProbeReq));
        assert!(msdus
            .iter()
            .all(|m| m.dest == Destination::Group(MacAddr::BROADCAST)));
    }

    #[test]
    fn power_save_alternates() {
        let mut src =
            PowerSaveNulls::new(Nanos::from_millis(200), Nanos::from_millis(800), Nanos::ZERO);
        let (msdus, gaps) = drive(&mut src, 6);
        let states: Vec<bool> = msdus
            .iter()
            .map(|m| match m.kind {
                MsduKind::Null { power_save } => power_save,
                _ => panic!("expected null frames"),
            })
            .collect();
        assert_eq!(states, vec![true, false, true, false, true, false]);
        // After entering doze the next event comes after the doze period.
        assert_eq!(gaps[0], Nanos::from_millis(800));
        assert_eq!(gaps[1], Nanos::from_millis(200));
    }

    #[test]
    fn initial_delays_randomise_phase() {
        let src = CbrSource::new(Nanos::from_millis(10), 100);
        let mut r1 = SimRng::derive(1, 1);
        let mut r2 = SimRng::derive(1, 2);
        let d1 = src.initial_delay(&mut r1);
        let d2 = src.initial_delay(&mut r2);
        assert!(d1 < Nanos::from_millis(10));
        assert_ne!(d1, d2);
    }
}
