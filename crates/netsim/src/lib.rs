//! A discrete-event simulator of one IEEE 802.11b/g channel.
//!
//! This crate is the measurement substrate of the wifiprint suite: it
//! replaces the paper's real-world captures (the CRAWDAD Sigcomm 2008
//! conference trace, the authors' office traces, and their Faraday-cage
//! experiments) with a faithful, seeded simulation producing the exact
//! observables a passive monitor sees.
//!
//! Modelled mechanisms:
//!
//! * **DCF contention** — DIFS/EIFS deferral, slotted random backoff with
//!   freezing, contention-window doubling, retry limits, and per-device
//!   backoff quirks ([`BackoffQuirk`]),
//! * **frame exchanges** — data/ACK, RTS/CTS/data/ACK above the RTS
//!   threshold, SIFS-timed responses with per-device jitter and clock
//!   skew,
//! * **rate adaptation** — pluggable controllers ([`RateController`]:
//!   fixed, ARF, SNR-driven) over per-device rate sets,
//! * **PHY/channel** — per-station SNR processes with mobility models,
//!   logistic frame-error curves, collisions with a CCA race window,
//! * **AP behaviour** — beacons, probe responses, ACKs, relay of
//!   group-addressed uplink traffic,
//! * **traffic** — composable sources ([`TrafficSource`]): CBR (iperf),
//!   Poisson, bursty on/off, periodic broadcast services, probe scanning
//!   and power-save null frames,
//! * **the monitor** — an SNR- and loss-aware passive tap emitting
//!   [`wifiprint_radiotap::CapturedFrame`]s in timestamp order.
//!
//! See [`Simulator`] for a runnable example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod behavior;
mod medium;
mod monitor;
pub mod phy;
mod rng;
mod sim;
mod station;
mod traffic;

pub use behavior::{Arf, BackoffQuirk, FixedRate, MacBehavior, RateController, SnrSticky};
pub use medium::{ActiveTx, Medium, TxFrame};
pub use monitor::{Monitor, MonitorStats};
pub use phy::{frame_success_probability, rate_snr_threshold_db, LinkQuality, MobilityModel};
pub use rng::SimRng;
pub use sim::{SimConfig, SimStats, Simulator};
pub use station::{phy_for, FrameJob, Role, Station, StationConfig};
pub use traffic::{
    CbrSource, Destination, Emission, Msdu, MsduKind, OnOffSource, PeriodicBroadcast,
    PoissonSource, PowerSaveNulls, ProbeScanner, TrafficSource,
};
