//! Deterministic random-number streams.
//!
//! Every stochastic component (station backoff, traffic sources, channel
//! fading, monitor loss) draws from its own ChaCha8 stream derived from the
//! scenario seed, so simulations are bit-reproducible regardless of event
//! interleaving changes elsewhere.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A seeded random stream for one simulation component.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// The root stream for a scenario seed.
    pub fn root(seed: u64) -> Self {
        SimRng { inner: ChaCha8Rng::seed_from_u64(seed) }
    }

    /// Derives an independent stream for component `id` under `seed`.
    ///
    /// Streams with different `(seed, id)` pairs are statistically
    /// independent; the same pair always yields the same stream.
    pub fn derive(seed: u64, id: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        rng.set_stream(id.wrapping_add(1)); // stream 0 is the root
        SimRng { inner: rng }
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// Uniform integer in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.inner.random_range(0..bound)
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            lo
        } else {
            self.inner.random_range(lo..=hi)
        }
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.random::<f64>() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.random::<f64>().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Gaussian draw via Box–Muller.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.inner.random::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = self.inner.random();
        mean + std_dev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Pareto-distributed value with the given scale (minimum) and shape.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        let u: f64 = self.inner.random::<f64>().max(f64::MIN_POSITIVE);
        scale / u.powf(1.0 / shape)
    }

    /// Picks a uniformly random element of a nonempty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        let idx = self.below(items.len() as u64) as usize;
        &items[idx]
    }

    /// Picks an index according to (unnormalised) weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_streams_are_deterministic_and_distinct() {
        let mut a1 = SimRng::derive(42, 7);
        let mut a2 = SimRng::derive(42, 7);
        let mut b = SimRng::derive(42, 8);
        let xs1: Vec<u64> = (0..10).map(|_| a1.below(1000)).collect();
        let xs2: Vec<u64> = (0..10).map(|_| a2.below(1000)).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.below(1000)).collect();
        assert_eq!(xs1, xs2);
        assert_ne!(xs1, ys);
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::root(1);
        for _ in 0..1000 {
            assert!(r.f64() < 1.0);
            assert!(r.below(5) < 5);
            let v = r.range_inclusive(3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.range_inclusive(4, 4), 4);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::root(2);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::root(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(50.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 50.0).abs() < 2.5, "mean = {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SimRng::root(4);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian(10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.7, "var = {var}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::root(5);
        for _ in 0..1000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_pick_follows_weights() {
        let mut r = SimRng::root(6);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.pick_weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0], "{counts:?}");
        assert!((counts[2] as f64 / 30_000.0 - 0.7).abs() < 0.03);
    }

    #[test]
    fn pick_returns_member() {
        let mut r = SimRng::root(7);
        let items = ["a", "b", "c"];
        for _ in 0..20 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}
