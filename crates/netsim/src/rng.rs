//! Deterministic random-number streams.
//!
//! Every stochastic component (station backoff, traffic sources, channel
//! fading, monitor loss) draws from its own ChaCha8 stream derived from the
//! scenario seed, so simulations are bit-reproducible regardless of event
//! interleaving changes elsewhere.

/// An in-repo ChaCha8 block generator (the build environment is offline,
/// so `rand_chacha` is not available). 8 double-rounds over the usual
/// 16-word state: constants, 256-bit key, 64-bit block counter and a
/// 64-bit stream id — distinct `(key, stream)` pairs give independent
/// keystreams.
#[derive(Debug, Clone)]
struct ChaCha8 {
    key: [u32; 8],
    stream: u64,
    counter: u64,
    block: [u32; 16],
    next_word: usize,
}

impl ChaCha8 {
    fn new(seed: u64, stream: u64) -> Self {
        // Expand the 64-bit seed into a 256-bit key with SplitMix64.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = next();
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        ChaCha8 { key, stream, counter: 0, block: [0; 16], next_word: 16 }
    }

    fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(16);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(12);
        state[a] = state[a].wrapping_add(state[b]);
        state[d] = (state[d] ^ state[a]).rotate_left(8);
        state[c] = state[c].wrapping_add(state[d]);
        state[b] = (state[b] ^ state[c]).rotate_left(7);
    }

    fn refill(&mut self) {
        let mut state = [
            0x6170_7865,
            0x3320_646E,
            0x7962_2D32,
            0x6B20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            self.stream as u32,
            (self.stream >> 32) as u32,
        ];
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column then diagonal).
            Self::quarter_round(&mut state, 0, 4, 8, 12);
            Self::quarter_round(&mut state, 1, 5, 9, 13);
            Self::quarter_round(&mut state, 2, 6, 10, 14);
            Self::quarter_round(&mut state, 3, 7, 11, 15);
            Self::quarter_round(&mut state, 0, 5, 10, 15);
            Self::quarter_round(&mut state, 1, 6, 11, 12);
            Self::quarter_round(&mut state, 2, 7, 8, 13);
            Self::quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.next_word = 0;
    }

    fn next_u32(&mut self) -> u32 {
        if self.next_word >= 16 {
            self.refill();
        }
        let w = self.block[self.next_word];
        self.next_word += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

/// A seeded random stream for one simulation component.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha8,
}

impl SimRng {
    /// The root stream for a scenario seed.
    pub fn root(seed: u64) -> Self {
        SimRng { inner: ChaCha8::new(seed, 0) }
    }

    /// Derives an independent stream for component `id` under `seed`.
    ///
    /// Streams with different `(seed, id)` pairs are statistically
    /// independent; the same pair always yields the same stream.
    pub fn derive(seed: u64, id: u64) -> Self {
        SimRng { inner: ChaCha8::new(seed, id.wrapping_add(1)) } // stream 0 is the root
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.inner.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            ((self.inner.next_u64() as u128 * bound as u128) >> 64) as u64
        }
    }

    /// Uniform integer in `[lo, hi]` inclusive.
    pub fn range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        if lo >= hi {
            lo
        } else if hi - lo == u64::MAX {
            // Full-width range: hi - lo + 1 would overflow.
            self.inner.next_u64()
        } else {
            lo + self.below(hi - lo + 1)
        }
    }

    /// Bernoulli draw.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Exponentially distributed value with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.f64().max(f64::MIN_POSITIVE);
        -mean * u.ln()
    }

    /// Gaussian draw via Box–Muller.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        let u1: f64 = self.f64().max(f64::MIN_POSITIVE);
        let u2: f64 = self.f64();
        mean + std_dev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Pareto-distributed value with the given scale (minimum) and shape.
    pub fn pareto(&mut self, scale: f64, shape: f64) -> f64 {
        let u: f64 = self.f64().max(f64::MIN_POSITIVE);
        scale / u.powf(1.0 / shape)
    }

    /// Picks a uniformly random element of a nonempty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        let idx = self.below(items.len() as u64) as usize;
        &items[idx]
    }

    /// Picks an index according to (unnormalised) weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn pick_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x <= 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_streams_are_deterministic_and_distinct() {
        let mut a1 = SimRng::derive(42, 7);
        let mut a2 = SimRng::derive(42, 7);
        let mut b = SimRng::derive(42, 8);
        let xs1: Vec<u64> = (0..10).map(|_| a1.below(1000)).collect();
        let xs2: Vec<u64> = (0..10).map(|_| a2.below(1000)).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.below(1000)).collect();
        assert_eq!(xs1, xs2);
        assert_ne!(xs1, ys);
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::root(1);
        for _ in 0..1000 {
            assert!(r.f64() < 1.0);
            assert!(r.below(5) < 5);
            let v = r.range_inclusive(3, 9);
            assert!((3..=9).contains(&v));
        }
        assert_eq!(r.below(0), 0);
        assert_eq!(r.range_inclusive(4, 4), 4);
        // Full-width range must not overflow.
        let _ = r.range_inclusive(0, u64::MAX);
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::root(2);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = SimRng::root(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exponential(50.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 50.0).abs() < 2.5, "mean = {mean}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SimRng::root(4);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.gaussian(10.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.2, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.7, "var = {var}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::root(5);
        for _ in 0..1000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn weighted_pick_follows_weights() {
        let mut r = SimRng::root(6);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[r.pick_weighted(&[1.0, 2.0, 7.0])] += 1;
        }
        assert!(counts[2] > counts[1] && counts[1] > counts[0], "{counts:?}");
        assert!((counts[2] as f64 / 30_000.0 - 0.7).abs() < 0.03);
    }

    #[test]
    fn pick_returns_member() {
        let mut r = SimRng::root(7);
        let items = ["a", "b", "c"];
        for _ in 0..20 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}
