//! The passive monitoring device: converts on-air transmissions into
//! [`CapturedFrame`]s, subject to reception loss.

use wifiprint_ieee80211::timing::air_time;
use wifiprint_ieee80211::Nanos;
use wifiprint_radiotap::CapturedFrame;

use crate::medium::ActiveTx;
use crate::phy::{frame_success_probability, LinkQuality};
use crate::rng::SimRng;
use crate::station::phy_for;

/// Counters describing what the monitor saw.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Frames delivered to the sink.
    pub captured: u64,
    /// Frames missed due to radio conditions or the base loss rate.
    pub lost: u64,
    /// Frames that were corrupted by collisions (never capturable).
    pub collided: u64,
}

/// The passive capture device of §III: a standard wireless card in monitor
/// mode on the observed channel.
#[derive(Debug)]
pub struct Monitor {
    loss_base: f64,
    rng: SimRng,
    stats: MonitorStats,
}

impl Monitor {
    /// A monitor with the given baseline loss probability (applied on top
    /// of SNR-driven reception loss).
    pub fn new(seed: u64, loss_base: f64) -> Self {
        Monitor {
            loss_base: loss_base.clamp(0.0, 1.0),
            rng: SimRng::derive(seed, 0x4D4F_4E00),
            stats: MonitorStats::default(),
        }
    }

    /// Capture statistics so far.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Processes a completed transmission; returns the captured frame if
    /// the monitor received it intact.
    ///
    /// `link` is the transmitting station's radio link (used to derive the
    /// monitor-side SNR and reported signal strength).
    pub fn observe(
        &mut self,
        tx: &ActiveTx,
        link: &LinkQuality,
        short_preamble: bool,
    ) -> Option<CapturedFrame> {
        if tx.collided {
            self.stats.collided += 1;
            return None;
        }
        let snr = link.snr_at_monitor(&mut self.rng);
        let p_rx = frame_success_probability(tx.frame.rate, snr, tx.frame.size)
            * (1.0 - self.loss_base);
        if !self.rng.chance(p_rx) {
            self.stats.lost += 1;
            return None;
        }
        self.stats.captured += 1;
        let air = air_time(phy_for(tx.frame.rate, short_preamble), tx.frame.size);
        Some(CapturedFrame {
            t_end: tx.t_end,
            air_time: air.min(tx.t_end.saturating_sub(Nanos::ZERO)),
            rate: tx.frame.rate,
            size: tx.frame.size,
            kind: tx.frame.kind,
            transmitter: tx.frame.transmitter,
            receiver: tx.frame.receiver,
            dest_group: tx.frame.dest_group,
            retry: tx.frame.retry,
            signal_dbm: link.monitor_signal_dbm(snr),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::medium::TxFrame;
    use wifiprint_ieee80211::{FrameKind, MacAddr, Rate};

    fn tx(collided: bool) -> ActiveTx {
        ActiveTx {
            tx_id: 1,
            station: 0,
            frame: TxFrame {
                kind: FrameKind::QosData,
                transmitter: Some(MacAddr::from_index(1)),
                receiver: MacAddr::from_index(2),
                dest_group: false,
                size: 1000,
                rate: Rate::R54M,
                retry: true,
                to_ds: true,
                from_ds: false,
                needs_ack: true,
                duration_field: 44,
                seq: 7,
                power_mgmt: false,
            },
            t_start: Nanos::from_micros(1000),
            t_end: Nanos::from_micros(1200),
            collided,
        }
    }

    #[test]
    fn captures_clean_frames_at_high_snr() {
        let mut mon = Monitor::new(1, 0.0);
        let link = LinkQuality::static_link(40.0);
        let cap = mon.observe(&tx(false), &link, false).expect("captured");
        assert_eq!(cap.t_end, Nanos::from_micros(1200));
        assert_eq!(cap.kind, FrameKind::QosData);
        assert_eq!(cap.size, 1000);
        assert!(cap.retry);
        assert!(!cap.dest_group);
        assert!(cap.signal_dbm > -70);
        assert_eq!(mon.stats().captured, 1);
    }

    #[test]
    fn collided_frames_are_never_captured() {
        let mut mon = Monitor::new(1, 0.0);
        let link = LinkQuality::static_link(40.0);
        assert!(mon.observe(&tx(true), &link, false).is_none());
        assert_eq!(mon.stats().collided, 1);
        assert_eq!(mon.stats().captured, 0);
    }

    #[test]
    fn low_snr_loses_frames() {
        let mut mon = Monitor::new(1, 0.0);
        let link = LinkQuality::static_link(-10.0);
        let mut lost = 0;
        for _ in 0..100 {
            if mon.observe(&tx(false), &link, false).is_none() {
                lost += 1;
            }
        }
        assert!(lost > 95, "lost {lost}");
    }

    #[test]
    fn base_loss_applies_even_at_perfect_snr() {
        let mut mon = Monitor::new(1, 0.5);
        let link = LinkQuality::static_link(60.0);
        let captured = (0..2000).filter(|_| mon.observe(&tx(false), &link, false).is_some()).count();
        assert!((800..1200).contains(&captured), "captured {captured}");
    }

    #[test]
    fn loss_base_is_clamped() {
        let mon = Monitor::new(1, 7.5);
        assert_eq!(mon.loss_base, 1.0);
    }
}
