//! The shared wireless medium: transmission tracking, carrier sense and
//! collision detection for one channel.

use wifiprint_ieee80211::{MacAddr, Nanos, Rate};
use wifiprint_ieee80211::FrameKind;

/// A frame in flight (or just finished) on the medium, at MAC metadata
/// granularity — bodies are never materialised in the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TxFrame {
    /// Frame kind (type + subtype).
    pub kind: FrameKind,
    /// Transmitter address (absent for ACK/CTS).
    pub transmitter: Option<MacAddr>,
    /// Receiver address (addr1).
    pub receiver: MacAddr,
    /// `true` if the logical destination (DA) is group-addressed.
    pub dest_group: bool,
    /// On-air size in bytes, including FCS.
    pub size: usize,
    /// PHY rate.
    pub rate: Rate,
    /// Retry flag.
    pub retry: bool,
    /// ToDS flag (uplink).
    pub to_ds: bool,
    /// FromDS flag (downlink).
    pub from_ds: bool,
    /// Whether the receiver should acknowledge.
    pub needs_ack: bool,
    /// NAV duration field value (µs).
    pub duration_field: u16,
    /// Sequence number (data/management frames).
    pub seq: u16,
    /// Power-management bit.
    pub power_mgmt: bool,
}

/// One active transmission on the medium.
#[derive(Debug, Clone)]
pub struct ActiveTx {
    /// Simulator-wide transmission id.
    pub tx_id: u64,
    /// Index of the transmitting station.
    pub station: usize,
    /// The frame metadata.
    pub frame: TxFrame,
    /// Start of transmission.
    pub t_start: Nanos,
    /// End of transmission.
    pub t_end: Nanos,
    /// Set when another transmission overlapped this one.
    pub collided: bool,
}

/// The single simulated channel.
#[derive(Debug, Default)]
pub struct Medium {
    active: Vec<ActiveTx>,
    /// When the medium last transitioned to idle.
    idle_since: Nanos,
    /// Whether the most recent completed frame was corrupted (EIFS rule).
    last_frame_corrupted: bool,
    collisions: u64,
    transmissions: u64,
    /// Diagnostic: kinds of frames that initiated an overlap.
    collision_initiators: std::collections::BTreeMap<FrameKind, u64>,
    /// Diagnostic: cumulative air time per frame kind.
    air_by_kind: std::collections::BTreeMap<FrameKind, Nanos>,
}

impl Medium {
    /// A fresh, idle medium.
    pub fn new() -> Self {
        Medium::default()
    }

    /// `true` while at least one transmission is in the air.
    pub fn is_busy(&self) -> bool {
        !self.active.is_empty()
    }

    /// The instant the medium last became idle (meaningful only while
    /// idle).
    pub fn idle_since(&self) -> Nanos {
        self.idle_since
    }

    /// `true` if the last completed frame ended corrupted — receivers must
    /// defer EIFS instead of DIFS.
    pub fn last_frame_corrupted(&self) -> bool {
        self.last_frame_corrupted
    }

    /// Total transmissions started.
    pub fn transmissions(&self) -> u64 {
        self.transmissions
    }

    /// Transmissions that ended up collided.
    pub fn collisions(&self) -> u64 {
        self.collisions
    }

    /// Starts a transmission; marks collisions with anything already in
    /// the air. Returns whether the medium transitioned busy (i.e. this is
    /// the only active transmission).
    ///
    /// The newcomer always loses (its receiver is already mid-reception of
    /// something else). With `first_captures` the earliest-started active
    /// frame *survives* the overlap — the 802.11 capture effect, where the
    /// receiver keeps its preamble lock on the stronger/earlier frame.
    pub fn start_tx(&mut self, mut tx: ActiveTx, first_captures: bool) -> bool {
        self.transmissions += 1;
        let was_idle = self.active.is_empty();
        if !was_idle {
            tx.collided = true;
            self.collisions += 1;
            *self.collision_initiators.entry(tx.frame.kind).or_insert(0) += 1;
            let first = self
                .active
                .iter()
                .enumerate()
                .min_by_key(|(_, t)| t.t_start)
                .map(|(i, _)| i)
                .expect("active nonempty");
            for (i, other) in self.active.iter_mut().enumerate() {
                if i == first && first_captures {
                    continue;
                }
                if !other.collided {
                    other.collided = true;
                    self.collisions += 1;
                }
            }
        }
        self.active.push(tx);
        was_idle
    }

    /// Diagnostic: how many collisions each frame kind *initiated* (the
    /// overlapping transmission's kind).
    pub fn collision_initiators(&self) -> &std::collections::BTreeMap<FrameKind, u64> {
        &self.collision_initiators
    }

    /// Diagnostic: cumulative air time per frame kind.
    pub fn air_by_kind(&self) -> &std::collections::BTreeMap<FrameKind, Nanos> {
        &self.air_by_kind
    }

    /// Completes a transmission; returns the record and whether the medium
    /// transitioned to idle at `now`.
    ///
    /// # Panics
    ///
    /// Panics if `tx_id` is not active (a simulator logic error).
    pub fn finish_tx(&mut self, tx_id: u64, now: Nanos) -> (ActiveTx, bool) {
        let idx = self
            .active
            .iter()
            .position(|t| t.tx_id == tx_id)
            .expect("finish_tx of unknown transmission");
        let tx = self.active.swap_remove(idx);
        *self.air_by_kind.entry(tx.frame.kind).or_insert(Nanos::ZERO) +=
            tx.t_end.saturating_sub(tx.t_start);
        let idle_now = self.active.is_empty();
        if idle_now {
            self.idle_since = now;
        }
        self.last_frame_corrupted = tx.collided;
        (tx, idle_now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> TxFrame {
        TxFrame {
            kind: FrameKind::Data,
            transmitter: Some(MacAddr::from_index(1)),
            receiver: MacAddr::from_index(2),
            dest_group: false,
            size: 100,
            rate: Rate::R11M,
            retry: false,
            to_ds: true,
            from_ds: false,
            needs_ack: true,
            duration_field: 0,
            seq: 0,
            power_mgmt: false,
        }
    }

    fn tx(id: u64, start_us: u64, end_us: u64) -> ActiveTx {
        ActiveTx {
            tx_id: id,
            station: id as usize,
            frame: frame(),
            t_start: Nanos::from_micros(start_us),
            t_end: Nanos::from_micros(end_us),
            collided: false,
        }
    }

    #[test]
    fn single_transmission_lifecycle() {
        let mut m = Medium::new();
        assert!(!m.is_busy());
        assert!(m.start_tx(tx(1, 0, 100), false));
        assert!(m.is_busy());
        let (done, idle) = m.finish_tx(1, Nanos::from_micros(100));
        assert!(idle);
        assert!(!done.collided);
        assert!(!m.is_busy());
        assert_eq!(m.idle_since(), Nanos::from_micros(100));
        assert!(!m.last_frame_corrupted());
        assert_eq!(m.transmissions(), 1);
        assert_eq!(m.collisions(), 0);
    }

    #[test]
    fn overlap_collides_both() {
        let mut m = Medium::new();
        assert!(m.start_tx(tx(1, 0, 100), false));
        assert!(!m.start_tx(tx(2, 50, 150), false));
        let (a, idle_a) = m.finish_tx(1, Nanos::from_micros(100));
        assert!(a.collided);
        assert!(!idle_a, "second tx still in flight");
        let (b, idle_b) = m.finish_tx(2, Nanos::from_micros(150));
        assert!(b.collided);
        assert!(idle_b);
        assert!(m.last_frame_corrupted());
        assert_eq!(m.collisions(), 2);
    }

    #[test]
    fn three_way_collision_counts_each_frame_once() {
        let mut m = Medium::new();
        m.start_tx(tx(1, 0, 100), false);
        m.start_tx(tx(2, 10, 90), false);
        m.start_tx(tx(3, 20, 80), false);
        assert_eq!(m.collisions(), 3);
        for (id, at) in [(3u64, 80u64), (2, 90), (1, 100)] {
            let (t, _) = m.finish_tx(id, Nanos::from_micros(at));
            assert!(t.collided);
        }
        assert!(!m.is_busy());
    }

    #[test]
    fn back_to_back_transmissions_do_not_collide() {
        let mut m = Medium::new();
        m.start_tx(tx(1, 0, 100), false);
        m.finish_tx(1, Nanos::from_micros(100));
        m.start_tx(tx(2, 110, 200), false);
        let (b, _) = m.finish_tx(2, Nanos::from_micros(200));
        assert!(!b.collided);
        assert_eq!(m.collisions(), 0);
        assert!(!m.last_frame_corrupted());
    }

    #[test]
    #[should_panic(expected = "unknown transmission")]
    fn finishing_unknown_tx_panics() {
        let mut m = Medium::new();
        m.finish_tx(99, Nanos::ZERO);
    }
}
