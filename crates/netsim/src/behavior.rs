//! Per-device MAC behaviour: the implementation quirks that make devices
//! fingerprintable.
//!
//! §VI of the paper attributes the distinctiveness of inter-arrival
//! histograms to (a) random-backoff implementation differences
//! (Gopinath et al., Berger-Sabbatel et al.), (b) RTS threshold handling,
//! (c) rate-adaptation behaviour and (d) timer/feature details of the
//! card and driver. This module parameterises exactly that quirk space.

use core::fmt;

use wifiprint_ieee80211::duration::DurationModel;
use wifiprint_ieee80211::{Nanos, Rate};

use crate::rng::SimRng;

/// How a card draws its random backoff, given the current contention
/// window `cw` (a draw of `k` waits `k` slot times after DIFS).
///
/// Fig. 4 of the paper shows two devices whose backoff combs differ: one
/// "adds one small additional slot before the 16 slots defined by the
/// standard", and the per-slot distribution differs between the two.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BackoffQuirk {
    /// Standard-conformant: uniform over `0..=cw`.
    Uniform,
    /// An extra "early" slot: with probability `p`, transmit after only a
    /// fraction of a slot (the additional pre-slot peak of Fig. 4a).
    ExtraEarlySlot {
        /// Probability of using the early slot.
        p: f64,
        /// Fraction of a slot the early transmission waits (0.0–1.0).
        fraction: f64,
    },
    /// Skewed toward low slot numbers: `floor((cw+1) · u^k)` with `k > 1`
    /// (aggressive cards observed by Gopinath et al.).
    SkewedLow(
        /// Skew exponent; larger means more aggressive.
        f64,
    ),
    /// With probability `p` the device transmits in slot 0 regardless of
    /// the draw (Berger-Sabbatel et al.: "devices that systematically send
    /// frames during the first slot").
    FirstSlotBias(
        /// Probability of forcing slot 0.
        f64,
    ),
}

impl BackoffQuirk {
    /// Draws a backoff duration in units of **milli-slots** (1/1000 slot),
    /// allowing sub-slot quirks.
    pub fn draw_millislots(&self, cw: u32, rng: &mut SimRng) -> u64 {
        match *self {
            BackoffQuirk::Uniform => rng.range_inclusive(0, cw as u64) * 1000,
            BackoffQuirk::ExtraEarlySlot { p, fraction } => {
                if rng.chance(p) {
                    (fraction.clamp(0.0, 1.0) * 1000.0) as u64
                } else {
                    rng.range_inclusive(0, cw as u64) * 1000
                }
            }
            BackoffQuirk::SkewedLow(k) => {
                let u = rng.f64();
                let slots = ((cw as f64 + 1.0) * u.powf(k.max(1.0))) as u64;
                slots.min(cw as u64) * 1000
            }
            BackoffQuirk::FirstSlotBias(p) => {
                if rng.chance(p) {
                    0
                } else {
                    rng.range_inclusive(0, cw as u64) * 1000
                }
            }
        }
    }
}

/// The complete MAC-timing personality of one device.
#[derive(Debug, Clone, PartialEq)]
pub struct MacBehavior {
    /// Minimum contention window (15 for OFDM cards, 31 for DSSS; some
    /// vendors deviate).
    pub cw_min: u32,
    /// Maximum contention window.
    pub cw_max: u32,
    /// Backoff-distribution quirk.
    pub backoff: BackoffQuirk,
    /// The card rounds its timer expirations up to a multiple of this
    /// granularity (0 disables). Produces device-specific comb offsets.
    pub timer_granularity: Nanos,
    /// Clock skew in parts per million; scales every locally-timed
    /// interval (backoff, SIFS responses, periodic timers).
    pub clock_skew_ppm: f64,
    /// Gaussian jitter (std dev) applied to SIFS-timed responses.
    pub sifs_jitter: Nanos,
    /// RTS threshold in bytes: frames strictly larger use RTS/CTS.
    /// `None` disables virtual carrier sensing entirely.
    pub rts_threshold: Option<usize>,
    /// Retransmission limit before a frame is dropped.
    pub retry_limit: u32,
    /// Whether null-function (power-save) frames go out at a basic rate
    /// instead of the current data rate — differs per card (Fig. 8).
    pub null_frames_at_basic_rate: bool,
    /// Whether DSSS transmissions use the short (96 µs) preamble instead
    /// of the long (192 µs) one — a card capability visible in every
    /// transmission-time and inter-arrival histogram.
    pub short_preamble: bool,
    /// How the card computes the NAV duration field (Cache 2006 quirks).
    pub duration_model: DurationModel,
    /// Fixed host-side latency added before every contention attempt:
    /// interrupt service, bus transfer and driver queueing on the host CPU
    /// differ per machine, shifting the whole backoff comb by a few
    /// microseconds per device.
    pub host_latency: Nanos,
}

impl Default for MacBehavior {
    fn default() -> Self {
        MacBehavior {
            cw_min: 15,
            cw_max: 1023,
            backoff: BackoffQuirk::Uniform,
            timer_granularity: Nanos::ZERO,
            clock_skew_ppm: 0.0,
            sifs_jitter: Nanos::ZERO,
            rts_threshold: None,
            retry_limit: 7,
            null_frames_at_basic_rate: false,
            short_preamble: false,
            duration_model: DurationModel::Standard,
            host_latency: Nanos::ZERO,
        }
    }
}

impl MacBehavior {
    /// Applies clock skew and timer granularity to a locally-timed
    /// duration.
    pub fn local_duration(&self, nominal: Nanos) -> Nanos {
        let skewed = nominal.as_nanos() as f64 * (1.0 + self.clock_skew_ppm * 1e-6);
        let mut ns = skewed.round().max(0.0) as u64;
        let g = self.timer_granularity.as_nanos();
        if g > 0 {
            ns = ns.div_ceil(g) * g;
        }
        Nanos::from_nanos(ns)
    }

    /// Draws the full backoff wait (after DIFS) for the given contention
    /// window, applying quirk, skew, granularity and host latency.
    pub fn backoff_wait(&self, cw: u32, slot: Nanos, rng: &mut SimRng) -> Nanos {
        let millislots = self.backoff.draw_millislots(cw, rng);
        let ns = (slot.as_nanos() as u128 * millislots as u128 / 1000) as u64;
        self.host_latency + self.local_duration(Nanos::from_nanos(ns))
    }

    /// The SIFS response delay including jitter and skew.
    pub fn response_delay(&self, sifs: Nanos, rng: &mut SimRng) -> Nanos {
        let jitter = if self.sifs_jitter.is_zero() {
            0.0
        } else {
            rng.gaussian(0.0, self.sifs_jitter.as_nanos() as f64)
        };
        let base = sifs.as_nanos() as f64 + jitter;
        self.local_duration(Nanos::from_nanos(base.max(1_000.0) as u64))
    }

    /// Doubles a contention window after a failed attempt, clamped to
    /// `cw_max`.
    pub fn next_cw(&self, cw: u32) -> u32 {
        (((cw + 1) * 2) - 1).min(self.cw_max)
    }
}

/// Rate-adaptation algorithm run by a device's driver.
///
/// Implementations must be deterministic given the same call sequence.
pub trait RateController: fmt::Debug + Send {
    /// The rate the next data frame would be sent at.
    fn current_rate(&self) -> Rate;
    /// Called when a unicast frame was acknowledged.
    fn on_success(&mut self);
    /// Called when a unicast frame exhausted an attempt without an ACK.
    fn on_failure(&mut self);
    /// Periodic hint of the current link SNR (dB); SNR-driven controllers
    /// use it, ARF-style controllers ignore it.
    fn on_snr_hint(&mut self, _snr_db: f64) {}
}

/// A card locked to a single rate (or a driver configured `rate fixed`).
#[derive(Debug, Clone)]
pub struct FixedRate(pub Rate);

impl RateController for FixedRate {
    fn current_rate(&self) -> Rate {
        self.0
    }
    fn on_success(&mut self) {}
    fn on_failure(&mut self) {}
}

/// Automatic Rate Fallback: step up after `up_after` consecutive
/// successes, step down after `down_after` consecutive failures.
#[derive(Debug, Clone)]
pub struct Arf {
    rates: Vec<Rate>,
    idx: usize,
    successes: u32,
    failures: u32,
    /// Consecutive successes required to move up.
    pub up_after: u32,
    /// Consecutive failures required to move down.
    pub down_after: u32,
}

impl Arf {
    /// An ARF controller over the given (ascending) rate set, starting at
    /// the middle rate.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty.
    pub fn new(rates: Vec<Rate>, up_after: u32, down_after: u32) -> Self {
        assert!(!rates.is_empty(), "rate set must not be empty");
        let idx = rates.len() / 2;
        Arf { rates, idx, successes: 0, failures: 0, up_after: up_after.max(1), down_after: down_after.max(1) }
    }
}

impl RateController for Arf {
    fn current_rate(&self) -> Rate {
        self.rates[self.idx]
    }

    fn on_success(&mut self) {
        self.failures = 0;
        self.successes += 1;
        if self.successes >= self.up_after && self.idx + 1 < self.rates.len() {
            self.idx += 1;
            self.successes = 0;
        }
    }

    fn on_failure(&mut self) {
        self.successes = 0;
        self.failures += 1;
        if self.failures >= self.down_after && self.idx > 0 {
            self.idx -= 1;
            self.failures = 0;
        }
    }
}

/// An SNR-driven controller that picks the fastest rate whose SNR
/// threshold is satisfied with a hysteresis margin, holding rates sticky
/// between SNR hints. Models firmware that tracks signal quality rather
/// than loss (and makes rate choice follow *location*, the effect that
/// ruins the transmission-rate fingerprint in the conference trace).
#[derive(Debug, Clone)]
pub struct SnrSticky {
    rates: Vec<Rate>,
    idx: usize,
    /// The rate index the last SNR hint selected; successes climb back
    /// toward it after failure-driven fallbacks.
    hint_idx: usize,
    /// Extra dB of SNR required beyond the decode threshold.
    pub margin_db: f64,
}

impl SnrSticky {
    /// A controller over the given (ascending) rate set.
    ///
    /// # Panics
    ///
    /// Panics if `rates` is empty.
    pub fn new(rates: Vec<Rate>, margin_db: f64) -> Self {
        assert!(!rates.is_empty(), "rate set must not be empty");
        SnrSticky { rates, idx: 0, hint_idx: 0, margin_db }
    }
}

impl RateController for SnrSticky {
    fn current_rate(&self) -> Rate {
        self.rates[self.idx]
    }

    fn on_success(&mut self) {
        // Recover toward the SNR-selected rate (collision losses must not
        // permanently depress the rate).
        if self.idx < self.hint_idx {
            self.idx += 1;
        }
    }

    fn on_failure(&mut self) {
        if self.idx > 0 {
            self.idx -= 1;
        }
    }

    fn on_snr_hint(&mut self, snr_db: f64) {
        let mut best = 0;
        for (i, &rate) in self.rates.iter().enumerate() {
            if crate::phy::rate_snr_threshold_db(rate) + self.margin_db <= snr_db {
                best = i;
            }
        }
        self.hint_idx = best;
        self.idx = best;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_ieee80211::timing::SlotTime;

    fn rng() -> SimRng {
        SimRng::root(99)
    }

    #[test]
    fn uniform_backoff_within_cw() {
        let mut r = rng();
        for _ in 0..2000 {
            let ms = BackoffQuirk::Uniform.draw_millislots(15, &mut r);
            assert!(ms <= 15_000);
            assert_eq!(ms % 1000, 0);
        }
    }

    #[test]
    fn extra_early_slot_produces_subslot_values() {
        let mut r = rng();
        let quirk = BackoffQuirk::ExtraEarlySlot { p: 0.5, fraction: 0.4 };
        let draws: Vec<u64> = (0..2000).map(|_| quirk.draw_millislots(15, &mut r)).collect();
        let early = draws.iter().filter(|&&d| d == 400).count();
        assert!(early > 600, "early slot used {early} times");
        assert!(draws.iter().all(|&d| d == 400 || d % 1000 == 0));
    }

    #[test]
    fn skewed_low_prefers_small_slots() {
        let mut r = rng();
        let quirk = BackoffQuirk::SkewedLow(3.0);
        let draws: Vec<u64> = (0..5000).map(|_| quirk.draw_millislots(15, &mut r)).collect();
        let mean = draws.iter().sum::<u64>() as f64 / draws.len() as f64 / 1000.0;
        assert!(mean < 4.5, "mean slot = {mean}");
        assert!(draws.iter().all(|&d| d <= 15_000));
    }

    #[test]
    fn first_slot_bias_spikes_zero() {
        let mut r = rng();
        let quirk = BackoffQuirk::FirstSlotBias(0.6);
        let zeros = (0..5000).filter(|_| quirk.draw_millislots(15, &mut r) == 0).count();
        // 0.6 + 0.4/16 ≈ 0.625 expected.
        assert!((2800..3500).contains(&zeros), "zeros = {zeros}");
    }

    #[test]
    fn local_duration_applies_skew_and_granularity() {
        let b = MacBehavior {
            clock_skew_ppm: 100.0,
            timer_granularity: Nanos::from_micros(2),
            ..MacBehavior::default()
        };
        // 1 ms at +100 ppm = 1_000_100 ns, rounded up to 2 µs multiple.
        let d = b.local_duration(Nanos::from_millis(1));
        assert_eq!(d.as_nanos(), 1_002_000);
        // Zero granularity leaves the skewed value untouched.
        let b2 = MacBehavior { clock_skew_ppm: -100.0, ..MacBehavior::default() };
        assert_eq!(b2.local_duration(Nanos::from_millis(1)).as_nanos(), 999_900);
    }

    #[test]
    fn backoff_wait_bounded_by_cw() {
        let b = MacBehavior::default();
        let slot = SlotTime::Long.duration();
        let mut r = rng();
        for _ in 0..500 {
            let w = b.backoff_wait(15, slot, &mut r);
            assert!(w <= slot * 15);
        }
    }

    #[test]
    fn response_delay_near_sifs() {
        let b = MacBehavior { sifs_jitter: Nanos::from_nanos(500), ..MacBehavior::default() };
        let mut r = rng();
        for _ in 0..500 {
            let d = b.response_delay(Nanos::from_micros(10), &mut r);
            assert!(d >= Nanos::from_micros(7) && d <= Nanos::from_micros(13), "{d}");
        }
    }

    #[test]
    fn cw_doubling_clamps() {
        let b = MacBehavior { cw_min: 15, cw_max: 255, ..MacBehavior::default() };
        let mut cw = 15;
        let seq: Vec<u32> = (0..6)
            .map(|_| {
                cw = b.next_cw(cw);
                cw
            })
            .collect();
        assert_eq!(seq, vec![31, 63, 127, 255, 255, 255]);
    }

    #[test]
    fn arf_walks_up_and_down() {
        let mut arf = Arf::new(Rate::ALL_G.to_vec(), 3, 2);
        let start = arf.current_rate();
        for _ in 0..3 {
            arf.on_success();
        }
        assert!(arf.current_rate() > start);
        for _ in 0..2 {
            arf.on_failure();
        }
        assert_eq!(arf.current_rate(), start);
        // Can't go below the bottom.
        for _ in 0..50 {
            arf.on_failure();
        }
        assert_eq!(arf.current_rate(), Rate::R6M);
        // Or above the top.
        for _ in 0..200 {
            arf.on_success();
        }
        assert_eq!(arf.current_rate(), Rate::R54M);
    }

    #[test]
    fn snr_sticky_follows_hints() {
        let mut rc = SnrSticky::new(Rate::ALL_G.to_vec(), 3.0);
        rc.on_snr_hint(40.0);
        assert_eq!(rc.current_rate(), Rate::R54M);
        rc.on_snr_hint(12.0);
        assert!(rc.current_rate() < Rate::R54M);
        rc.on_snr_hint(-10.0);
        assert_eq!(rc.current_rate(), Rate::R6M);
        // Failures nudge down.
        rc.on_snr_hint(40.0);
        rc.on_failure();
        assert_eq!(rc.current_rate(), Rate::R48M);
    }

    #[test]
    fn fixed_rate_never_moves() {
        let mut rc = FixedRate(Rate::R11M);
        rc.on_success();
        rc.on_failure();
        rc.on_snr_hint(50.0);
        assert_eq!(rc.current_rate(), Rate::R11M);
    }
}
