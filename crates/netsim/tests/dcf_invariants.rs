//! Integration tests: the simulator's captures must satisfy 802.11 DCF
//! timing invariants and be deterministic under seeding.

use wifiprint_ieee80211::{FrameKind, MacAddr, Nanos, Rate};
use wifiprint_netsim::{
    Arf, BackoffQuirk, CbrSource, LinkQuality, MobilityModel, PowerSaveNulls, ProbeScanner,
    SimConfig, Simulator, StationConfig,
};
use wifiprint_radiotap::CapturedFrame;

fn ap_addr() -> MacAddr {
    MacAddr::from_index(0xFF00)
}

fn base_sim(seed: u64, secs: u64) -> Simulator {
    let mut sim = Simulator::new(SimConfig {
        seed,
        duration: Nanos::from_secs(secs),
        monitor_loss: 0.0,
        ..SimConfig::default()
    });
    let mut ap = StationConfig::ap(ap_addr(), LinkQuality::static_link(40.0));
    ap.behavior.sifs_jitter = Nanos::from_nanos(300);
    sim.add_station(ap);
    sim
}

fn cbr_client(i: u64, interval_ms: u64, payload: usize) -> StationConfig {
    let mut c = StationConfig::client(
        MacAddr::from_index(i),
        ap_addr(),
        LinkQuality::static_link(35.0),
    );
    c.sources.push(Box::new(CbrSource::new(Nanos::from_millis(interval_ms), payload)));
    c
}

fn run(sim: &mut Simulator) -> Vec<CapturedFrame> {
    let mut frames = Vec::new();
    sim.run(&mut |f| frames.push(*f));
    frames
}

#[test]
fn captures_are_in_timestamp_order_and_non_overlapping() {
    let mut sim = base_sim(1, 10);
    for i in 1..=5 {
        sim.add_station(cbr_client(i, 15, 700));
    }
    let frames = run(&mut sim);
    assert!(frames.len() > 500, "got {} frames", frames.len());
    for pair in frames.windows(2) {
        assert!(pair[1].t_end > pair[0].t_end, "timestamps must increase");
        // Captured (non-collided) frames never overlap on the air.
        assert!(
            pair[1].t_start() >= pair[0].t_end,
            "overlap: {} starts before {} ends",
            pair[1].t_start(),
            pair[0].t_end
        );
    }
}

#[test]
fn unicast_data_is_acked_at_sifs() {
    let mut sim = base_sim(2, 5);
    sim.add_station(cbr_client(1, 10, 900));
    let frames = run(&mut sim);
    let mut acked = 0;
    let mut checked = 0;
    for pair in frames.windows(2) {
        if pair[0].kind == FrameKind::Data && !pair[0].dest_group
            && pair[1].kind == FrameKind::Ack {
                acked += 1;
                let gap = pair[1].t_start().saturating_sub(pair[0].t_end);
                // SIFS (10 µs) ± jitter and skew; far below DIFS (50 µs).
                assert!(
                    gap >= Nanos::from_micros(7) && gap <= Nanos::from_micros(14),
                    "ACK gap {gap}"
                );
                checked += 1;
            }
    }
    assert!(acked > 100, "only {acked} ACKed data frames");
    assert!(checked > 100);
}

#[test]
fn contended_frames_wait_at_least_difs() {
    let mut sim = base_sim(3, 5);
    sim.add_station(cbr_client(1, 10, 400));
    let frames = run(&mut sim);
    // Gaps before *data* frames (which contend) must be >= DIFS (50 µs with
    // long slots), modulo the early-slot quirk which is off here.
    let mut checked = 0;
    for pair in frames.windows(2) {
        if pair[1].kind == FrameKind::Data && !pair[1].retry {
            let gap = pair[1].t_start().saturating_sub(pair[0].t_end);
            assert!(gap >= Nanos::from_micros(49), "pre-data gap {gap} < DIFS");
            checked += 1;
        }
    }
    assert!(checked > 200, "checked {checked}");
}

#[test]
fn backoff_slots_form_a_comb() {
    // A single saturated sender: gaps between ACK end and next data start
    // are DIFS + k·20 µs for k in 0..=15. Saturation (interval below the
    // exchange time) guarantees the queue is never empty at ACK time.
    let mut sim = base_sim(4, 10);
    let mut c = StationConfig::client(
        MacAddr::from_index(1),
        ap_addr(),
        LinkQuality::static_link(35.0),
    );
    c.sources.push(Box::new(CbrSource::new(Nanos::from_micros(400), 1200)));
    sim.add_station(c);
    let frames = run(&mut sim);
    let mut offsets = Vec::new();
    for pair in frames.windows(2) {
        if pair[0].kind == FrameKind::Ack && pair[1].kind == FrameKind::Data && !pair[1].retry {
            let gap = pair[1].t_start().saturating_sub(pair[0].t_end);
            let over_difs = gap.saturating_sub(Nanos::from_micros(50));
            offsets.push(over_difs.as_nanos());
        }
    }
    assert!(offsets.len() > 500, "n = {}", offsets.len());
    // Each offset is a whole number of 20 µs slots (tolerance 1 µs).
    let mut slots_seen = std::collections::BTreeSet::new();
    for &off in &offsets {
        let slot = (off as f64 / 20_000.0).round() as u64;
        let rem = off as i64 - (slot * 20_000) as i64;
        assert!(rem.abs() < 1_000, "offset {off} is not slot-aligned");
        assert!(slot <= 15, "slot {slot} beyond CWmin");
        slots_seen.insert(slot);
    }
    // The comb should cover most of the 16 slots.
    assert!(slots_seen.len() >= 12, "only {} distinct slots", slots_seen.len());
}

#[test]
fn rts_threshold_triggers_rts_cts_exchange() {
    let mut sim = base_sim(5, 5);
    let mut c = cbr_client(1, 10, 1400);
    c.behavior.rts_threshold = Some(1000);
    sim.add_station(c);
    let frames = run(&mut sim);
    let rts = frames.iter().filter(|f| f.kind == FrameKind::Rts).count();
    let cts = frames.iter().filter(|f| f.kind == FrameKind::Cts).count();
    assert!(rts > 100, "rts = {rts}");
    assert!(cts > 100, "cts = {cts}");
    // Find an RTS → CTS → Data → ACK sequence with SIFS spacing.
    let mut full_exchanges = 0;
    for w in frames.windows(4) {
        if w[0].kind == FrameKind::Rts
            && w[1].kind == FrameKind::Cts
            && w[2].kind == FrameKind::Data
            && w[3].kind == FrameKind::Ack
        {
            full_exchanges += 1;
            for pair in w.windows(2) {
                let gap = pair[1].t_start().saturating_sub(pair[0].t_end);
                assert!(gap <= Nanos::from_micros(14), "intra-exchange gap {gap}");
            }
        }
    }
    assert!(full_exchanges > 50, "full exchanges = {full_exchanges}");
    // Small frames below the threshold go without RTS.
    let mut sim2 = base_sim(5, 5);
    let mut c2 = cbr_client(1, 10, 400);
    c2.behavior.rts_threshold = Some(1000);
    sim2.add_station(c2);
    let frames2 = run(&mut sim2);
    assert_eq!(frames2.iter().filter(|f| f.kind == FrameKind::Rts).count(), 0);
}

#[test]
fn same_seed_is_bit_identical_different_seed_is_not() {
    let build = |seed| {
        let mut sim = base_sim(seed, 3);
        for i in 1..=3 {
            sim.add_station(cbr_client(i, 12, 600));
        }
        run(&mut sim)
    };
    let a = build(7);
    let b = build(7);
    let c = build(8);
    assert_eq!(a, b, "same seed must reproduce the identical capture");
    assert_ne!(a, c, "different seeds must differ");
    assert!(!a.is_empty());
}

#[test]
fn collisions_occur_under_contention() {
    let mut sim = base_sim(6, 5);
    for i in 1..=12 {
        sim.add_station(cbr_client(i, 3, 900));
    }
    let mut count = 0usize;
    let stats = sim.run(&mut |_f| count += 1);
    assert!(stats.collisions > 0, "no collisions among 12 saturated stations");
    assert!(count > 0);
    // Retries appear in the capture as retry-flagged frames.
    let mut sim2 = base_sim(6, 5);
    for i in 1..=12 {
        sim2.add_station(cbr_client(i, 3, 900));
    }
    let frames = run(&mut sim2);
    assert!(frames.iter().any(|f| f.retry), "expected retry frames");
}

#[test]
fn beacons_arrive_near_the_target_interval() {
    let mut sim = base_sim(7, 5);
    sim.add_station(cbr_client(1, 50, 300));
    let frames = run(&mut sim);
    let beacon_times: Vec<Nanos> = frames
        .iter()
        .filter(|f| f.kind == FrameKind::Beacon)
        .map(|f| f.t_end)
        .collect();
    assert!(beacon_times.len() > 40, "beacons = {}", beacon_times.len());
    for pair in beacon_times.windows(2) {
        let gap = pair[1] - pair[0];
        // 102.4 ms nominal; allow contention-induced slack.
        assert!(
            gap > Nanos::from_micros(95_000) && gap < Nanos::from_micros(130_000),
            "beacon gap {gap}"
        );
    }
}

#[test]
fn probe_requests_draw_probe_responses() {
    let mut sim = base_sim(8, 20);
    let mut c = StationConfig::client(
        MacAddr::from_index(1),
        ap_addr(),
        LinkQuality::static_link(30.0),
    );
    c.sources.push(Box::new(ProbeScanner {
        period: Nanos::from_secs(2),
        burst: 2,
        payload: 60,
        jitter: Nanos::from_millis(100),
    }));
    sim.add_station(c);
    let frames = run(&mut sim);
    let preq = frames.iter().filter(|f| f.kind == FrameKind::ProbeReq).count();
    let presp = frames.iter().filter(|f| f.kind == FrameKind::ProbeResp).count();
    assert!(preq >= 16, "probe requests = {preq}");
    assert!(presp >= 10, "probe responses = {presp}");
    // Probe requests carry the sender (unlike ACK/CTS) and go to broadcast.
    let p = frames.iter().find(|f| f.kind == FrameKind::ProbeReq).unwrap();
    assert_eq!(p.transmitter, Some(MacAddr::from_index(1)));
    assert!(p.dest_group);
}

#[test]
fn power_save_nulls_are_captured_with_sender() {
    let mut sim = base_sim(9, 30);
    let mut c = StationConfig::client(
        MacAddr::from_index(1),
        ap_addr(),
        LinkQuality::static_link(35.0),
    );
    c.sources.push(Box::new(PowerSaveNulls::new(
        Nanos::from_millis(300),
        Nanos::from_millis(700),
        Nanos::from_millis(50),
    )));
    sim.add_station(c);
    let frames = run(&mut sim);
    let nulls: Vec<_> =
        frames.iter().filter(|f| f.kind == FrameKind::NullFunction).collect();
    assert!(nulls.len() > 30, "nulls = {}", nulls.len());
    assert!(nulls.iter().all(|f| f.transmitter == Some(MacAddr::from_index(1))));
}

#[test]
fn churn_station_goes_quiet_after_departure() {
    let mut sim = base_sim(10, 10);
    let mut c = cbr_client(1, 5, 500);
    c.active_until = Some(Nanos::from_secs(4));
    sim.add_station(c);
    let frames = run(&mut sim);
    let last_data = frames
        .iter()
        .filter(|f| f.transmitter == Some(MacAddr::from_index(1)))
        .map(|f| f.t_end)
        .max()
        .unwrap();
    // Allow the in-flight queue to drain briefly past the departure.
    assert!(last_data < Nanos::from_secs(5), "device still talking at {last_data}");
}

#[test]
fn group_uplink_is_relayed_by_the_ap() {
    let mut sim = base_sim(11, 5);
    let mut c = StationConfig::client(
        MacAddr::from_index(1),
        ap_addr(),
        LinkQuality::static_link(35.0),
    );
    let mut cbr = CbrSource::new(Nanos::from_millis(50), 200);
    cbr.dest = wifiprint_netsim::Destination::Group(MacAddr::BROADCAST);
    c.sources.push(Box::new(cbr));
    sim.add_station(c);
    let frames = run(&mut sim);
    // Uplink copies: ToDS, sender = client, group-destined.
    let uplink = frames
        .iter()
        .filter(|f| f.transmitter == Some(MacAddr::from_index(1)) && f.dest_group)
        .count();
    // Relayed copies: sender = AP, receiver = broadcast.
    let relayed = frames
        .iter()
        .filter(|f| {
            f.transmitter == Some(ap_addr())
                && f.receiver.is_broadcast()
                && f.kind == FrameKind::Data
        })
        .count();
    assert!(uplink > 50, "uplink = {uplink}");
    assert!(relayed > 40, "relayed = {relayed}");
}

#[test]
fn early_slot_quirk_shifts_the_comb() {
    // With the extra-early-slot quirk, some data frames follow the previous
    // frame after less than DIFS + one slot.
    let run_quirk = |quirk| {
        let mut sim = base_sim(12, 10);
        let mut c = StationConfig::client(
            MacAddr::from_index(1),
            ap_addr(),
            LinkQuality::static_link(35.0),
        );
        c.sources.push(Box::new(CbrSource::new(Nanos::from_micros(400), 1200)));
        c.behavior.backoff = quirk;
        sim.add_station(c);
        let frames = run(&mut sim);
        let mut sub_slot = 0usize;
        let mut total = 0usize;
        for pair in frames.windows(2) {
            if pair[0].kind == FrameKind::Ack && pair[1].kind == FrameKind::Data {
                let gap = pair[1].t_start().saturating_sub(pair[0].t_end);
                let over = gap.saturating_sub(Nanos::from_micros(50));
                total += 1;
                if over > Nanos::from_micros(2) && over < Nanos::from_micros(18) {
                    sub_slot += 1;
                }
            }
        }
        (sub_slot, total)
    };
    let (sub_quirky, total_q) =
        run_quirk(BackoffQuirk::ExtraEarlySlot { p: 0.4, fraction: 0.4 });
    let (sub_standard, _) = run_quirk(BackoffQuirk::Uniform);
    assert!(total_q > 300);
    assert!(
        sub_quirky > total_q / 5,
        "early-slot frames {sub_quirky} of {total_q}"
    );
    assert_eq!(sub_standard, 0, "standard backoff has no sub-slot gaps");
}

#[test]
fn arf_rate_adapts_to_link_quality() {
    // Marginal link: ARF should spread transmissions over several rates.
    let mut sim = base_sim(13, 10);
    let mut c = StationConfig::client(
        MacAddr::from_index(1),
        ap_addr(),
        LinkQuality {
            snr_ap_db: 17.0,
            monitor_offset_db: 10.0, // keep the monitor reliable
            fading_std_db: 2.5,
            mobility: MobilityModel::Static,
            update_every: Nanos::from_secs(1),
        },
    );
    c.rate_controller = Box::new(Arf::new(Rate::ALL_G.to_vec(), 8, 2));
    c.sources.push(Box::new(CbrSource::new(Nanos::from_millis(5), 800)));
    sim.add_station(c);
    let frames = run(&mut sim);
    let rates: std::collections::BTreeSet<Rate> = frames
        .iter()
        .filter(|f| f.kind == FrameKind::Data)
        .map(|f| f.rate)
        .collect();
    assert!(rates.len() >= 3, "ARF used only {rates:?}");
}
