//! Faraday-cage rigs: controlled single-device experiments reproducing the
//! setups of §VI (Figs. 4–8).
//!
//! The paper placed a device in a Faraday cage (or a quiet corner of the
//! lab) and streamed UDP with `iperf` while a monitor captured the
//! exchange. Here the cage is a perfect channel: very high SNR, no
//! external stations, no monitor loss.

use std::collections::BTreeMap;

use wifiprint_devices::{AppProfile, DeviceProfile, InstanceRng};
use wifiprint_ieee80211::{MacAddr, Nanos};
use wifiprint_netsim::{
    LinkQuality, SimConfig, Simulator, StationConfig,
};
use wifiprint_radiotap::CapturedFrame;

use crate::trace::{run_collect, Trace};

/// The device address used in Faraday rigs.
pub const FARADAY_DEVICE: MacAddr = MacAddr::new([0x02, 0xFA, 0xDA, 0x00, 0x00, 0x01]);
/// The AP address used in Faraday rigs.
pub const FARADAY_AP: MacAddr = MacAddr::new([0x02, 0xFA, 0xDA, 0x00, 0x00, 0xFE]);

/// A controlled single-device experiment.
#[derive(Debug)]
pub struct FaradayRig {
    /// Root seed.
    pub seed: u64,
    /// Capture duration.
    pub duration: Nanos,
    /// The device under test.
    pub station: StationConfig,
    /// Extra background stations (Fig. 5 ran in a *busy* lab; keep empty
    /// for the clean-cage experiments).
    pub background: Vec<StationConfig>,
}

impl FaradayRig {
    /// A rig for `profile` streaming iperf-style UDP, per the paper's
    /// §VI-A experiments.
    ///
    /// The rig disables the profile's probe/power-save side traffic
    /// variation — the experiments isolate data-frame timing — but keeps
    /// the device's MAC personality intact.
    pub fn for_profile(profile: &DeviceProfile, seed: u64, duration: Nanos) -> Self {
        let mut rng = InstanceRng::new(seed, 0xFA);
        let mut station = profile.instantiate(
            FARADAY_DEVICE,
            FARADAY_AP,
            cage_link(),
            &[AppProfile::IperfUdp {
                interval: Nanos::from_millis(2),
                payload: 1470,
            }],
            0,
            false,
            &mut rng,
        );
        // The cage experiments stream continuously; drop the service and
        // power-save chatter so the data comb is clean (the paper filters
        // to data frames anyway; this keeps the run fast).
        station.sources.retain(|_s| true);
        FaradayRig { seed, duration, station, background: Vec::new() }
    }

    /// A rig from an explicit station configuration (full control over
    /// behaviour, rates and traffic).
    pub fn for_station(station: StationConfig, seed: u64, duration: Nanos) -> Self {
        FaradayRig { seed, duration, station, background: Vec::new() }
    }

    /// Adds contending background stations (the "busy lab" of Fig. 5).
    #[must_use]
    pub fn with_background(mut self, n: usize) -> Self {
        for i in 0..n {
            let mut c = StationConfig::client(
                MacAddr::from_index(0xB6_0000 + i as u64),
                FARADAY_AP,
                LinkQuality::static_link(30.0),
            );
            c.sources.push(Box::new(wifiprint_netsim::PoissonSource::new(
                Nanos::from_millis(6),
                vec![200, 800, 1460],
                vec![3.0, 2.0, 2.0],
            )));
            self.background.push(c);
        }
        self
    }

    /// Runs the rig, collecting every captured frame.
    pub fn run(self) -> Trace {
        let mut sim = Simulator::new(SimConfig {
            seed: self.seed,
            duration: self.duration,
            monitor_loss: 0.0,
            ..SimConfig::default()
        });
        let mut ap = StationConfig::ap(FARADAY_AP, cage_link());
        ap.behavior.sifs_jitter = Nanos::from_nanos(200);
        sim.add_station(ap);
        let mut profiles = BTreeMap::new();
        profiles.insert(self.station.addr, "device-under-test".to_owned());
        sim.add_station(self.station);
        for bg in self.background {
            profiles.insert(bg.addr, "background".to_owned());
            sim.add_station(bg);
        }
        run_collect(sim, self.duration, profiles, vec![FARADAY_AP])
    }
}

/// The cage channel: extremely clean and stable.
fn cage_link() -> LinkQuality {
    let mut link = LinkQuality::static_link(42.0);
    link.fading_std_db = 0.4;
    link.monitor_offset_db = 0.0;
    link
}

/// Frames from the device under test only.
pub fn device_frames(trace: &Trace) -> impl Iterator<Item = &CapturedFrame> {
    trace.frames.iter().filter(|f| f.transmitter == Some(FARADAY_DEVICE))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_devices::profile_catalog;
    use wifiprint_ieee80211::FrameKind;

    #[test]
    fn cage_run_is_clean_and_saturated() {
        let profile = &profile_catalog()[0];
        let trace = FaradayRig::for_profile(profile, 1, Nanos::from_secs(5)).run();
        assert_eq!(trace.report.stats.collisions, 0, "cage must be collision-free");
        let data = device_frames(&trace).filter(|f| f.kind == FrameKind::Data).count();
        assert!(data > 1000, "data frames = {data}");
    }

    #[test]
    fn background_stations_create_contention() {
        let profile = &profile_catalog()[0];
        let trace = FaradayRig::for_profile(profile, 2, Nanos::from_secs(5))
            .with_background(4)
            .run();
        assert!(trace.report.stats.collisions > 0, "busy lab should collide sometimes");
    }

    #[test]
    fn different_profiles_yield_different_timing() {
        let cat = profile_catalog();
        let run = |p: &DeviceProfile| {
            let trace = FaradayRig::for_profile(p, 3, Nanos::from_secs(4)).run();
            // Median inter-arrival of the device's data frames.
            let times: Vec<u64> = trace
                .frames
                .iter()
                .filter(|f| f.transmitter == Some(FARADAY_DEVICE))
                .map(|f| f.t_end.as_nanos())
                .collect();
            let mut gaps: Vec<u64> = times.windows(2).map(|w| w[1] - w[0]).collect();
            gaps.sort_unstable();
            gaps[gaps.len() / 2]
        };
        // aero5210 (uniform backoff) vs wavemax23 (early slot + 2 µs
        // timers): medians must differ measurably.
        let a = run(&cat[0]);
        let b = run(&cat[2]);
        assert_ne!(a, b);
    }
}
