//! Deterministic fault injection for degraded-capture experiments.
//!
//! The paper's vantage point is a *passive* sniffer, where frame loss,
//! duplication, reordering and truncation are the normal operating
//! condition — not an exception. This module degrades any frame stream
//! the way a real monitor-mode capture path does, **reproducibly from a
//! seed**, so the engines' resilience layer
//! (`wifiprint_core::ResilienceConfig`) can be evaluated against known
//! fault counts:
//!
//! * **loss** — i.i.d. per-frame drops or bursty two-state
//!   Gilbert–Elliott loss ([`LossModel`]),
//! * **duplication** — drivers re-delivering a frame (the copy arrives
//!   adjacent to the original, as real re-deliveries do),
//! * **bounded reordering** — frames displaced by at most
//!   [`FaultPlan::reorder_depth`] positions, the USB/ring-buffer batching
//!   pattern,
//! * **timestamp jitter and clock skew** — Gaussian perturbation plus a
//!   linear ppm drift of the capture clock,
//! * **truncation** — captures cut to runt length (caught by the
//!   engines' minimum-size gate) and silent **field mangling** (retry
//!   bit, signal) the gate cannot see,
//! * **chaff** — garbage broadcast frames from transmitters outside the
//!   scenario population,
//! * **poison frames** — frames re-attributed to a marked transmitter
//!   range ([`POISON_DEVICE_BASE`], [`is_poison_frame`]) so a chaos
//!   harness can arm the ingest pipeline's `panic_probe` against them
//!   and exercise panic isolation with real, identifiable frames,
//! * **source stalls** — deterministic periodic silent windows
//!   ([`FaultPlan::with_stalls`]): the capture source delivers nothing
//!   for `stall_len` out of every `stall_every`, the failure mode a
//!   stall watchdog must survive,
//! * **overload bursts** — a monotone piecewise time warp
//!   ([`FaultPlan::with_bursts`]) that compresses `burst_len` of every
//!   `burst_every` by `burst_factor`, so the same frames arrive
//!   `burst_factor`× faster during the burst — the offered-load shape
//!   that forces an ingest ring into its overload policy.
//!
//! Every applied fault is tallied in a [`FaultLog`], so a test can
//! reconcile the engine's `EngineHealth` counters *exactly* against what
//! was injected; the ledger identity is
//! `emitted = input - lost - stalled + duplicated + chaff`.
//!
//! # Example
//!
//! ```
//! use wifiprint_scenarios::{FaultInjector, FaultPlan, LossModel, OfficeScenario};
//!
//! let trace = OfficeScenario::small(7, 30, 4).run_collect();
//! let plan = FaultPlan::clean()
//!     .with_loss(LossModel::Iid { rate: 0.1 })
//!     .with_reordering(8, 0.2);
//! let (degraded, log) = FaultInjector::new(plan, 42).degrade(&trace.frames);
//! assert_eq!(log.input, trace.frames.len() as u64);
//! assert_eq!(log.emitted as usize, degraded.len());
//! assert_eq!(log.input, log.emitted + log.lost - log.duplicated - log.chaff);
//! ```

use std::collections::VecDeque;

use wifiprint_devices::InstanceRng;
use wifiprint_ieee80211::{FrameKind, MacAddr, Nanos, Rate};
use wifiprint_radiotap::CapturedFrame;

/// Transmitter index base for injected chaff frames — far outside any
/// scenario's device population, so ground-truth checks can identify
/// (and a fingerprinting engine will enroll nothing for) chaff senders.
pub const CHAFF_DEVICE_BASE: u64 = 0x00C4_AFF0;

/// Transmitter index base for poison frames — a marked range (outside
/// every scenario population and distinct from chaff) that
/// [`is_poison_frame`] recognises, so a chaos harness can arm
/// `IngestConfig::panic_probe` with it.
pub const POISON_DEVICE_BASE: u64 = 0x00DE_AD00;

/// `true` when `frame` was marked poison by a [`FaultInjector`]
/// ([`FaultPlan::with_poison`]). A plain `fn`, so it can be passed
/// directly as an ingest pipeline's `panic_probe`.
#[must_use]
pub fn is_poison_frame(frame: &CapturedFrame) -> bool {
    frame.transmitter.is_some_and(|t| {
        (0..8).any(|k| t == MacAddr::from_index(POISON_DEVICE_BASE + k))
    })
}

/// The frame-loss process a [`FaultInjector`] applies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LossModel {
    /// No loss.
    None,
    /// Independent per-frame loss with probability `rate`.
    Iid {
        /// Per-frame drop probability in `[0, 1]`.
        rate: f64,
    },
    /// Two-state Gilbert–Elliott burst loss: a Markov chain alternating
    /// between a *good* and a *bad* (burst) state, with a per-state drop
    /// probability. The classic model for ring-buffer overflow bursts.
    GilbertElliott {
        /// Probability of entering the bad state from the good state,
        /// per frame.
        enter_bad: f64,
        /// Probability of leaving the bad state, per frame.
        exit_bad: f64,
        /// Drop probability while in the good state (usually ~0).
        loss_good: f64,
        /// Drop probability while in the bad state (usually high).
        loss_bad: f64,
    },
}

impl LossModel {
    /// The stationary expected loss rate of the model.
    #[must_use]
    pub fn expected_rate(&self) -> f64 {
        match *self {
            LossModel::None => 0.0,
            LossModel::Iid { rate } => rate,
            LossModel::GilbertElliott { enter_bad, exit_bad, loss_good, loss_bad } => {
                // Stationary bad-state occupancy of the two-state chain.
                let denom = enter_bad + exit_bad;
                if denom <= 0.0 {
                    return loss_good;
                }
                let p_bad = enter_bad / denom;
                (1.0 - p_bad) * loss_good + p_bad * loss_bad
            }
        }
    }
}

/// The composable fault mix a [`FaultInjector`] applies. Every knob
/// defaults to *off* ([`FaultPlan::clean`] — the identity transform);
/// compose with the `with_*` builders.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Frame-loss process (default [`LossModel::None`]).
    pub loss: LossModel,
    /// Fraction of surviving frames re-delivered as an adjacent exact
    /// duplicate.
    pub duplicate_rate: f64,
    /// Maximum positional displacement of a reordered frame; `0`
    /// disables reordering. An engine reorder buffer with
    /// `max_lateness >= reorder_depth` restores the stream exactly.
    pub reorder_depth: usize,
    /// Fraction of surviving frames given a random displacement in
    /// `[1, reorder_depth]`.
    pub reorder_rate: f64,
    /// Standard deviation of zero-mean Gaussian timestamp jitter, in
    /// nanoseconds; `0` disables.
    pub jitter_ns: f64,
    /// Linear capture-clock skew in parts per million (may be negative).
    pub skew_ppm: f64,
    /// Fraction of surviving frames truncated to a runt (< 8 on-air
    /// bytes) — detectable by the engines' minimum-size gate.
    pub corruption_rate: f64,
    /// Fraction of surviving frames with silently mangled header fields
    /// (retry bit flipped, signal shifted) — *not* detectable by any
    /// gate; these poison parameter extraction instead.
    pub mangle_rate: f64,
    /// Expected chaff frames injected per input frame.
    pub chaff_rate: f64,
    /// Fraction of surviving frames re-attributed to the poison
    /// transmitter range ([`POISON_DEVICE_BASE`]); `0` disables.
    pub poison_rate: f64,
    /// Period of the deterministic source-stall cycle;
    /// [`Nanos::ZERO`] disables stalls.
    pub stall_every: Nanos,
    /// Silent tail of each stall period: frames whose (warped) elapsed
    /// time lands in the last `stall_len` of a `stall_every` cycle are
    /// swallowed by the stalled source.
    pub stall_len: Nanos,
    /// Period of the overload-burst time warp; [`Nanos::ZERO`]
    /// disables bursts.
    pub burst_every: Nanos,
    /// Leading slice of each burst period that is compressed: frames in
    /// it arrive [`FaultPlan::burst_factor`]× faster.
    pub burst_len: Nanos,
    /// Time-compression factor inside a burst (`>= 1`; `1` disables).
    pub burst_factor: f64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::clean()
    }
}

impl FaultPlan {
    /// The identity plan: no faults of any kind.
    #[must_use]
    pub fn clean() -> Self {
        FaultPlan {
            loss: LossModel::None,
            duplicate_rate: 0.0,
            reorder_depth: 0,
            reorder_rate: 0.0,
            jitter_ns: 0.0,
            skew_ppm: 0.0,
            corruption_rate: 0.0,
            mangle_rate: 0.0,
            chaff_rate: 0.0,
            poison_rate: 0.0,
            stall_every: Nanos::ZERO,
            stall_len: Nanos::ZERO,
            burst_every: Nanos::ZERO,
            burst_len: Nanos::ZERO,
            burst_factor: 1.0,
        }
    }

    /// A moderately hostile capture path: 10 % i.i.d. loss, 2 %
    /// duplicates, 8-deep reordering of 20 % of frames, 1 % truncation.
    #[must_use]
    pub fn noisy() -> Self {
        FaultPlan::clean()
            .with_loss(LossModel::Iid { rate: 0.10 })
            .with_duplicates(0.02)
            .with_reordering(8, 0.20)
            .with_corruption(0.01)
    }

    /// Returns a copy with a different loss model.
    #[must_use]
    pub fn with_loss(mut self, loss: LossModel) -> Self {
        self.loss = loss;
        self
    }

    /// Returns a copy with a different duplication rate.
    #[must_use]
    pub fn with_duplicates(mut self, rate: f64) -> Self {
        self.duplicate_rate = rate;
        self
    }

    /// Returns a copy reordering `rate` of frames by up to `depth`
    /// positions.
    #[must_use]
    pub fn with_reordering(mut self, depth: usize, rate: f64) -> Self {
        self.reorder_depth = depth;
        self.reorder_rate = rate;
        self
    }

    /// Returns a copy with Gaussian timestamp jitter of the given
    /// standard deviation (nanoseconds).
    #[must_use]
    pub fn with_jitter_ns(mut self, std_dev: f64) -> Self {
        self.jitter_ns = std_dev;
        self
    }

    /// Returns a copy with a linear clock skew (ppm).
    #[must_use]
    pub fn with_skew_ppm(mut self, ppm: f64) -> Self {
        self.skew_ppm = ppm;
        self
    }

    /// Returns a copy truncating `rate` of frames to runts.
    #[must_use]
    pub fn with_corruption(mut self, rate: f64) -> Self {
        self.corruption_rate = rate;
        self
    }

    /// Returns a copy silently mangling `rate` of frames.
    #[must_use]
    pub fn with_mangling(mut self, rate: f64) -> Self {
        self.mangle_rate = rate;
        self
    }

    /// Returns a copy injecting chaff at the given per-frame rate.
    #[must_use]
    pub fn with_chaff(mut self, rate: f64) -> Self {
        self.chaff_rate = rate;
        self
    }

    /// Returns a copy re-attributing `rate` of surviving frames to the
    /// poison transmitter range ([`is_poison_frame`]).
    #[must_use]
    pub fn with_poison(mut self, rate: f64) -> Self {
        self.poison_rate = rate;
        self
    }

    /// Returns a copy with deterministic periodic source stalls: the
    /// source delivers nothing for the last `len` of every `every`.
    #[must_use]
    pub fn with_stalls(mut self, every: Nanos, len: Nanos) -> Self {
        self.stall_every = every;
        self.stall_len = len;
        self
    }

    /// Returns a copy with periodic overload bursts: the first `len` of
    /// every `every` is time-compressed by `factor` (frames arrive
    /// `factor`× faster), a monotone warp — capture order is preserved.
    #[must_use]
    pub fn with_bursts(mut self, every: Nanos, len: Nanos, factor: f64) -> Self {
        self.burst_every = every;
        self.burst_len = len;
        self.burst_factor = factor;
        self
    }

    /// `true` if this plan applies no fault at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.loss == LossModel::None
            && self.duplicate_rate == 0.0
            && (self.reorder_depth == 0 || self.reorder_rate == 0.0)
            && self.jitter_ns == 0.0
            && self.skew_ppm == 0.0
            && self.corruption_rate == 0.0
            && self.mangle_rate == 0.0
            && self.chaff_rate == 0.0
            && self.poison_rate == 0.0
            && (self.stall_every == Nanos::ZERO || self.stall_len == Nanos::ZERO)
            && (self.burst_every == Nanos::ZERO
                || self.burst_len == Nanos::ZERO
                || self.burst_factor == 1.0)
    }
}

/// Per-category tally of every fault a [`FaultInjector`] applied — the
/// injector-side ledger an engine's `EngineHealth` counters reconcile
/// against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// Frames read from the wrapped stream.
    pub input: u64,
    /// Frames emitted downstream (survivors + duplicates + chaff).
    pub emitted: u64,
    /// Frames dropped by the loss model (never emitted).
    pub lost: u64,
    /// Exact adjacent duplicates emitted.
    pub duplicated: u64,
    /// Frames given a positional reorder displacement.
    pub displaced: u64,
    /// Emitted frames whose timestamp is behind the running maximum —
    /// the inversions an engine's reorder buffer must absorb (matches
    /// `EngineHealth::frames_reordered` on a reorder-only plan).
    pub inversions: u64,
    /// Frames truncated to runt length (emitted, but detectably
    /// corrupt).
    pub corrupted: u64,
    /// Frames with silently mangled fields.
    pub mangled: u64,
    /// Chaff frames injected.
    pub chaff: u64,
    /// Frames re-attributed to the poison transmitter range (emitted —
    /// an armed `panic_probe` will panic on each one).
    pub poisoned: u64,
    /// Frames swallowed by a stalled source (never emitted).
    pub stalled: u64,
    /// Emitted frames that landed inside a compressed burst segment.
    pub burst: u64,
}

/// A seeded, deterministic fault injector: the same `(plan, seed)` pair
/// degrades the same stream identically, every run (see the
/// [module docs](self)).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
}

impl FaultInjector {
    /// Creates an injector applying `plan`, reproducible from `seed`.
    #[must_use]
    pub fn new(plan: FaultPlan, seed: u64) -> Self {
        FaultInjector { plan, seed }
    }

    /// The plan this injector applies.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Wraps a frame stream, degrading it lazily with bounded buffering
    /// (at most `reorder_depth` + a handful of frames in flight). Read
    /// the [`FaultLog`] off the stream once it is exhausted.
    #[must_use]
    pub fn stream<I>(&self, inner: I) -> FaultedStream<I::IntoIter>
    where
        I: IntoIterator<Item = CapturedFrame>,
    {
        FaultedStream {
            inner: inner.into_iter(),
            plan: self.plan.clone(),
            rng: InstanceRng::new(self.seed, 0xFA01),
            buffer: VecDeque::new(),
            index: 0,
            seq: 0,
            origin: None,
            bad_state: false,
            t_max_emitted: None,
            exhausted: false,
            log: FaultLog::default(),
        }
    }

    /// Degrades a collected trace in one call, returning the degraded
    /// frames and the fault ledger.
    #[must_use]
    pub fn degrade(&self, frames: &[CapturedFrame]) -> (Vec<CapturedFrame>, FaultLog) {
        let mut stream = self.stream(frames.iter().copied());
        let mut out = Vec::with_capacity(frames.len());
        for f in stream.by_ref() {
            out.push(f);
        }
        (out, *stream.log())
    }
}

/// The lazily-degrading iterator [`FaultInjector::stream`] returns.
#[derive(Debug)]
pub struct FaultedStream<I> {
    inner: I,
    plan: FaultPlan,
    rng: InstanceRng,
    /// Pending emissions, sorted ascending by `(emit_key, seq)`. The
    /// emit key is the frame's input position plus its displacement, so
    /// a frame is held until every earlier-keyed frame has arrived.
    buffer: VecDeque<(u64, u64, CapturedFrame)>,
    /// Input frames consumed so far (the next input's position).
    index: u64,
    /// Global emission sequence (tie-break among equal keys, preserving
    /// enqueue order — duplicates stay adjacent to their original).
    seq: u64,
    origin: Option<Nanos>,
    /// Gilbert–Elliott burst state.
    bad_state: bool,
    /// Largest timestamp emitted, for counting inversions.
    t_max_emitted: Option<Nanos>,
    exhausted: bool,
    log: FaultLog,
}

impl<I: Iterator<Item = CapturedFrame>> FaultedStream<I> {
    /// The fault ledger so far (complete once the stream is exhausted).
    pub fn log(&self) -> &FaultLog {
        &self.log
    }

    /// Sorted insert by `(key, seq)`; `seq` is strictly increasing, so
    /// inserting after all entries with `key <=` ours is stable.
    fn enqueue(&mut self, key: u64, frame: CapturedFrame) {
        let seq = self.seq;
        self.seq += 1;
        let pos = self.buffer.partition_point(|&(k, _, _)| k <= key);
        self.buffer.insert(pos, (key, seq, frame));
    }

    /// The burst time warp: a monotone piecewise-linear map of elapsed
    /// nanoseconds that compresses the first `burst_len` of every
    /// `burst_every` by `burst_factor`. Returns the warped elapsed time
    /// and whether `elapsed` fell inside a burst segment.
    fn burst_warp(&self, elapsed: u64) -> (u64, bool) {
        let every = self.plan.burst_every.as_nanos();
        let len = self.plan.burst_len.as_nanos().min(every);
        if every == 0 || len == 0 || self.plan.burst_factor <= 1.0 {
            return (elapsed, false);
        }
        let compressed_len = (len as f64 / self.plan.burst_factor).round() as u64;
        let warped_period = compressed_len + (every - len);
        let period = elapsed / every;
        let rem = elapsed % every;
        let in_burst = rem < len;
        let within = if in_burst {
            (rem as f64 / self.plan.burst_factor).round() as u64
        } else {
            compressed_len + (rem - len)
        };
        (period * warped_period + within, in_burst)
    }

    /// Applies the per-frame fault pipeline to one input frame:
    /// burst warp → skew/jitter → stall → loss →
    /// poison/corruption/mangling → reorder key → enqueue (+ adjacent
    /// duplicate, + chaff).
    fn consume(&mut self, frame: &CapturedFrame) {
        let i = self.index;
        self.index += 1;
        self.log.input += 1;
        let mut f = *frame;
        let origin = *self.origin.get_or_insert(f.t_end);

        let (warped, in_burst) =
            self.burst_warp(f.t_end.saturating_sub(origin).as_nanos());
        if in_burst {
            self.log.burst += 1;
        }
        f.t_end = Nanos::from_nanos(origin.as_nanos() + warped);

        if self.plan.skew_ppm != 0.0 || self.plan.jitter_ns > 0.0 {
            let elapsed = f.t_end.saturating_sub(origin).as_nanos() as f64;
            let skewed = elapsed * (1.0 + self.plan.skew_ppm * 1e-6);
            let jitter =
                if self.plan.jitter_ns > 0.0 { self.rng.gaussian(0.0, self.plan.jitter_ns) } else { 0.0 };
            let t = origin.as_nanos() as f64 + skewed + jitter;
            f.t_end = Nanos::from_nanos(if t <= 0.0 { 0 } else { t.round() as u64 });
        }

        // A stalled source swallows everything in the silent window —
        // no survivor, no duplicate, no chaff.
        let stall_every = self.plan.stall_every.as_nanos();
        let stall_len = self.plan.stall_len.as_nanos().min(stall_every);
        if stall_every > 0 && stall_len > 0 {
            let elapsed = f.t_end.saturating_sub(origin).as_nanos();
            if elapsed % stall_every >= stall_every - stall_len {
                self.log.stalled += 1;
                return;
            }
        }

        let lost = match self.plan.loss {
            LossModel::None => false,
            LossModel::Iid { rate } => rate > 0.0 && self.rng.chance(rate),
            LossModel::GilbertElliott { enter_bad, exit_bad, loss_good, loss_bad } => {
                if self.bad_state {
                    if self.rng.chance(exit_bad) {
                        self.bad_state = false;
                    }
                } else if self.rng.chance(enter_bad) {
                    self.bad_state = true;
                }
                let p = if self.bad_state { loss_bad } else { loss_good };
                p > 0.0 && self.rng.chance(p)
            }
        };

        if lost {
            self.log.lost += 1;
        } else {
            if self.plan.poison_rate > 0.0 && self.rng.chance(self.plan.poison_rate) {
                // Re-attribute to the marked poison range; the frame is
                // otherwise intact, so only an armed `panic_probe`
                // (not any ingest gate) reacts to it.
                f.transmitter =
                    Some(MacAddr::from_index(POISON_DEVICE_BASE + self.rng.below(8)));
                self.log.poisoned += 1;
            } else if self.plan.corruption_rate > 0.0 && self.rng.chance(self.plan.corruption_rate) {
                // Truncate below any plausible on-air length: the
                // engines' runt gate (min_frame_size >= 8) always
                // catches these.
                f.size = self.rng.below(8) as usize;
                self.log.corrupted += 1;
            } else if self.plan.mangle_rate > 0.0 && self.rng.chance(self.plan.mangle_rate) {
                f.retry = !f.retry;
                f.signal_dbm = f.signal_dbm.saturating_sub(20);
                self.log.mangled += 1;
            }
            let mut key = i;
            if self.plan.reorder_depth > 0
                && self.plan.reorder_rate > 0.0
                && self.rng.chance(self.plan.reorder_rate)
            {
                key = i + 1 + self.rng.below(self.plan.reorder_depth as u64);
                self.log.displaced += 1;
            }
            self.enqueue(key, f);
            if self.plan.duplicate_rate > 0.0 && self.rng.chance(self.plan.duplicate_rate) {
                self.log.duplicated += 1;
                self.enqueue(key, f);
            }
        }

        if self.plan.chaff_rate > 0.0 && self.rng.chance(self.plan.chaff_rate) {
            let chaff = self.chaff_frame(f.t_end);
            self.log.chaff += 1;
            self.enqueue(i, chaff);
        }
    }

    /// A plausible-but-garbage broadcast frame near timestamp `near`,
    /// from a transmitter outside any scenario population.
    fn chaff_frame(&mut self, near: Nanos) -> CapturedFrame {
        CapturedFrame {
            t_end: near.saturating_add(Nanos::from_nanos(self.rng.below(200_000))),
            air_time: Nanos::from_micros(100 + self.rng.below(400)),
            rate: Rate::R1M,
            size: 60 + self.rng.below(400) as usize,
            kind: FrameKind::Data,
            transmitter: Some(MacAddr::from_index(CHAFF_DEVICE_BASE + self.rng.below(8))),
            receiver: MacAddr::BROADCAST,
            dest_group: true,
            retry: false,
            signal_dbm: -90,
        }
    }
}

impl<I: Iterator<Item = CapturedFrame>> Iterator for FaultedStream<I> {
    type Item = CapturedFrame;

    fn next(&mut self) -> Option<CapturedFrame> {
        loop {
            // An entry keyed before the next input position can no
            // longer be preceded by anything: emit it. Once the inner
            // stream is exhausted, everything drains in key order.
            if let Some(&(key, _, _)) = self.buffer.front() {
                if self.exhausted || key < self.index {
                    let (_, _, f) = self.buffer.pop_front().expect("checked front");
                    if self.t_max_emitted.is_some_and(|m| f.t_end < m) {
                        self.log.inversions += 1;
                    }
                    self.t_max_emitted =
                        Some(self.t_max_emitted.map_or(f.t_end, |m| m.max(f.t_end)));
                    self.log.emitted += 1;
                    return Some(f);
                }
            } else if self.exhausted {
                return None;
            }
            match self.inner.next() {
                Some(frame) => self.consume(&frame),
                None => self.exhausted = true,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_ieee80211::Frame;

    fn frames(n: u64) -> Vec<CapturedFrame> {
        (0..n)
            .map(|i| {
                let sta = MacAddr::from_index(1 + i % 3);
                let ap = MacAddr::from_index(99);
                let f = Frame::data_to_ds(sta, ap, ap, 200 + (i % 5) as usize * 100);
                CapturedFrame::from_frame(&f, Rate::R24M, Nanos::from_micros(1_000 + i * 500), -55)
            })
            .collect()
    }

    #[test]
    fn clean_plan_is_the_identity() {
        let input = frames(500);
        let (out, log) = FaultInjector::new(FaultPlan::clean(), 7).degrade(&input);
        assert_eq!(out, input);
        assert_eq!(log.input, 500);
        assert_eq!(log.emitted, 500);
        assert_eq!(log.lost + log.duplicated + log.corrupted + log.chaff + log.inversions, 0);
    }

    #[test]
    fn same_seed_same_degradation_different_seed_different() {
        let input = frames(400);
        let injector = FaultInjector::new(FaultPlan::noisy(), 11);
        let (a, log_a) = injector.degrade(&input);
        let (b, log_b) = injector.degrade(&input);
        assert_eq!(a, b, "same (plan, seed) is bit-identical");
        assert_eq!(log_a, log_b);
        let (c, _) = FaultInjector::new(FaultPlan::noisy(), 12).degrade(&input);
        assert_ne!(a, c, "a different seed degrades differently");
    }

    #[test]
    fn the_ledger_balances() {
        let input = frames(2_000);
        let plan = FaultPlan::noisy().with_chaff(0.05).with_mangling(0.02);
        let (out, log) = FaultInjector::new(plan, 3).degrade(&input);
        assert_eq!(log.input, 2_000);
        assert_eq!(log.emitted as usize, out.len());
        // input - lost survivors, each emitted once, plus duplicates and
        // chaff.
        assert_eq!(log.emitted, log.input - log.lost + log.duplicated + log.chaff);
        assert!(log.lost > 100, "10% of 2000: {}", log.lost);
        assert!(log.duplicated > 0 && log.corrupted > 0 && log.chaff > 0 && log.mangled > 0);
    }

    #[test]
    fn reorder_displacement_is_bounded() {
        let input = frames(1_000);
        let plan = FaultPlan::clean().with_reordering(6, 0.5);
        let (out, log) = FaultInjector::new(plan, 19).degrade(&input);
        assert_eq!(out.len(), input.len());
        assert!(log.displaced > 300, "half the frames displaced: {}", log.displaced);
        assert!(log.inversions > 0, "displacement produced real inversions");
        // Same multiset, and no frame moved more than `depth` positions
        // from its original index.
        let mut sorted = out.clone();
        sorted.sort_by_key(|f| f.t_end);
        assert_eq!(sorted, input);
        for (j, f) in out.iter().enumerate() {
            let i = input.iter().position(|g| g == f).expect("same frames");
            assert!(i.abs_diff(j) <= 6, "frame {i} landed at {j}");
        }
    }

    #[test]
    fn gilbert_elliott_losses_come_in_bursts() {
        let input = frames(5_000);
        let model = LossModel::GilbertElliott {
            enter_bad: 0.01,
            exit_bad: 0.2,
            loss_good: 0.0,
            loss_bad: 0.9,
        };
        let plan = FaultPlan::clean().with_loss(model);
        let (out, log) = FaultInjector::new(plan, 23).degrade(&input);
        assert!(log.lost > 0);
        assert_eq!(out.len() as u64 + log.lost, 5_000);
        // Burstiness: the longest run of consecutive losses is well
        // beyond what i.i.d. loss at the same rate would produce.
        let survivors: std::collections::BTreeSet<u64> =
            out.iter().map(|f| f.t_end.as_nanos()).collect();
        let mut longest = 0u32;
        let mut run = 0u32;
        for f in &input {
            if survivors.contains(&f.t_end.as_nanos()) {
                run = 0;
            } else {
                run += 1;
                longest = longest.max(run);
            }
        }
        assert!(longest >= 4, "expected a loss burst, longest run {longest}");
        let expected = model.expected_rate();
        assert!((0.0..=1.0).contains(&expected));
    }

    #[test]
    fn corruption_truncates_to_runts_and_chaff_is_identifiable() {
        let input = frames(1_000);
        let plan = FaultPlan::clean().with_corruption(0.1).with_chaff(0.1);
        let (out, log) = FaultInjector::new(plan, 31).degrade(&input);
        let runts = out.iter().filter(|f| f.size < 8).count();
        assert_eq!(runts as u64, log.corrupted);
        let chaff = out
            .iter()
            .filter(|f| {
                f.transmitter
                    .is_some_and(|t| (0..8).any(|k| t == MacAddr::from_index(CHAFF_DEVICE_BASE + k)))
            })
            .count();
        assert_eq!(chaff as u64, log.chaff);
    }

    #[test]
    fn skew_and_jitter_perturb_timestamps() {
        let input = frames(200);
        let plan = FaultPlan::clean().with_skew_ppm(50_000.0); // 5% fast
        let (out, _) = FaultInjector::new(plan, 5).degrade(&input);
        // First frame anchors the clock; later frames drift ahead.
        assert_eq!(out[0].t_end, input[0].t_end);
        let last_in = input.last().unwrap().t_end.as_nanos() - input[0].t_end.as_nanos();
        let last_out = out.last().unwrap().t_end.as_nanos() - out[0].t_end.as_nanos();
        let drift = last_out as f64 / last_in as f64;
        assert!((drift - 1.05).abs() < 1e-6, "5% skew, got {drift}");

        let jittered = FaultInjector::new(FaultPlan::clean().with_jitter_ns(5_000.0), 5)
            .degrade(&input)
            .0;
        assert!(jittered.iter().zip(&input).any(|(a, b)| a.t_end != b.t_end));
    }

    #[test]
    fn poison_frames_are_marked_counted_and_otherwise_intact() {
        let input = frames(1_000);
        let plan = FaultPlan::clean().with_poison(0.05);
        assert!(!plan.is_clean());
        let (out, log) = FaultInjector::new(plan, 37).degrade(&input);
        assert_eq!(out.len(), input.len(), "poison frames still emit");
        let marked = out.iter().filter(|f| is_poison_frame(f)).count();
        assert_eq!(marked as u64, log.poisoned);
        assert!(log.poisoned > 20, "5% of 1000: {}", log.poisoned);
        // Only attribution changes — timestamps and sizes are intact, so
        // no ingest gate reacts to a poison frame; only an armed
        // `panic_probe` does.
        for (a, b) in out.iter().zip(&input) {
            assert_eq!(a.t_end, b.t_end);
            assert_eq!(a.size, b.size);
        }
        assert!(input.iter().all(|f| !is_poison_frame(f)));
    }

    #[test]
    fn stalled_windows_swallow_their_frames() {
        // frames(2000) spans ~1 s at 500 µs spacing; a 30 ms silent tail
        // per 100 ms cycle swallows ~30% of it.
        let input = frames(2_000);
        let plan = FaultPlan::clean()
            .with_stalls(Nanos::from_millis(100), Nanos::from_millis(30));
        assert!(!plan.is_clean());
        let (out, log) = FaultInjector::new(plan, 41).degrade(&input);
        assert!(log.stalled > 0);
        assert_eq!(log.emitted + log.stalled, log.input);
        let rate = log.stalled as f64 / log.input as f64;
        assert!((rate - 0.30).abs() < 0.05, "stall rate {rate}");
        // The silence is real: nothing emitted lands inside a stall
        // window.
        let origin = input[0].t_end;
        for f in &out {
            let e = f.t_end.saturating_sub(origin).as_nanos();
            assert!(e % 100_000_000 < 70_000_000, "frame inside a stall window");
        }
    }

    #[test]
    fn bursts_compress_time_monotonically() {
        // 50 ms of every 100 ms compressed 10×: the warped span is
        // ~(5 + 50)/100 = 55% of the original, order is preserved.
        let input = frames(2_000);
        let plan = FaultPlan::clean()
            .with_bursts(Nanos::from_millis(100), Nanos::from_millis(50), 10.0);
        assert!(!plan.is_clean());
        let (out, log) = FaultInjector::new(plan, 43).degrade(&input);
        assert_eq!(out.len(), input.len());
        assert!(log.burst > 0, "burst segments saw frames");
        assert!(
            out.windows(2).all(|w| w[0].t_end <= w[1].t_end),
            "the warp is monotone"
        );
        let span_in = input.last().unwrap().t_end.as_nanos() - input[0].t_end.as_nanos();
        let span_out = out.last().unwrap().t_end.as_nanos() - out[0].t_end.as_nanos();
        let ratio = span_out as f64 / span_in as f64;
        assert!((ratio - 0.55).abs() < 0.02, "warped span ratio {ratio}");
    }

    #[test]
    fn the_extended_ledger_balances_with_every_knob_armed() {
        let input = frames(4_000);
        let plan = FaultPlan::noisy()
            .with_chaff(0.05)
            .with_mangling(0.02)
            .with_poison(0.02)
            .with_stalls(Nanos::from_millis(200), Nanos::from_millis(40))
            .with_bursts(Nanos::from_millis(150), Nanos::from_millis(50), 5.0);
        let (out, log) = FaultInjector::new(plan, 47).degrade(&input);
        assert_eq!(log.emitted as usize, out.len());
        assert_eq!(
            log.emitted,
            log.input - log.lost - log.stalled + log.duplicated + log.chaff
        );
        assert!(log.poisoned > 0 && log.stalled > 0 && log.burst > 0);
    }

    #[test]
    fn streaming_and_batch_paths_agree() {
        let input = frames(800);
        let injector = FaultInjector::new(FaultPlan::noisy().with_chaff(0.03), 13);
        let (batch, log) = injector.degrade(&input);
        let streamed: Vec<CapturedFrame> = injector.stream(input.clone()).collect();
        assert_eq!(batch, streamed);
        assert!(log.emitted > 0);
    }
}
