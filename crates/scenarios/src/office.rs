//! The office scenario: a static, WPA-protected enterprise network,
//! reproducing the shape of the paper's *office 1* (7 h) and *office 2*
//! (1 h) traces.

use std::collections::BTreeMap;

use wifiprint_devices::{
    apply_churn, sample_population, Environment, InstanceRng, PopulationConfig,
};
use wifiprint_ieee80211::{MacAddr, Nanos};
use wifiprint_netsim::{
    CbrSource, Destination, LinkQuality, MobilityModel, SimConfig, Simulator, StationConfig,
};
use wifiprint_radiotap::CapturedFrame;

use crate::trace::{run_collect, run_engine, run_multi_engine, run_streaming, Trace, TraceReport};

/// Configuration of an office capture.
#[derive(Debug, Clone)]
pub struct OfficeScenario {
    /// Root seed.
    pub seed: u64,
    /// Capture duration.
    pub duration: Nanos,
    /// Number of client devices.
    pub devices: usize,
    /// Number of APs.
    pub aps: usize,
    /// Per-frame encryption overhead (WPA/CCMP adds 16 bytes).
    pub encryption_overhead: usize,
    /// Baseline monitor loss.
    pub monitor_loss: f64,
}

impl OfficeScenario {
    /// The paper's *office 1* shape: 7 hours, WPA (158 reference devices
    /// were extracted from it at the 50-observation floor).
    pub fn office1(seed: u64) -> Self {
        OfficeScenario {
            seed,
            duration: Nanos::from_secs(7 * 3600),
            devices: 170,
            aps: 3,
            encryption_overhead: 16,
            monitor_loss: 0.01,
        }
    }

    /// The paper's *office 2* shape: 1 hour, WPA (120 reference devices).
    pub fn office2(seed: u64) -> Self {
        OfficeScenario {
            seed,
            duration: Nanos::from_secs(3600),
            devices: 135,
            aps: 3,
            encryption_overhead: 16,
            monitor_loss: 0.01,
        }
    }

    /// A miniature office for tests and examples.
    pub fn small(seed: u64, secs: u64, devices: usize) -> Self {
        OfficeScenario {
            seed,
            duration: Nanos::from_secs(secs),
            devices,
            aps: 1,
            encryption_overhead: 16,
            monitor_loss: 0.0,
        }
    }

    fn build(&self) -> (Simulator, BTreeMap<MacAddr, String>, Vec<MacAddr>) {
        let mut sim = Simulator::new(SimConfig {
            seed: self.seed,
            duration: self.duration,
            monitor_loss: self.monitor_loss,
            // An 802.11g office: OFDM basic rates keep control responses
            // short (ACKs at 24 Mb/s rather than 11 Mb/s CCK).
            basic_rates: vec![
                wifiprint_ieee80211::Rate::R6M,
                wifiprint_ieee80211::Rate::R12M,
                wifiprint_ieee80211::Rate::R24M,
            ],
            ..SimConfig::default()
        });

        // APs: static, strong links, occasional downlink streams.
        let ap_addrs: Vec<MacAddr> =
            (0..self.aps).map(|i| MacAddr::from_index(0xAC_0000 + i as u64)).collect();
        for (i, &addr) in ap_addrs.iter().enumerate() {
            let mut link = LinkQuality::static_link(36.0 + i as f64 * 2.0);
            link.monitor_offset_db = -2.0;
            let mut ap = StationConfig::ap(addr, link);
            ap.encryption_overhead = self.encryption_overhead;
            sim.add_station(ap);
        }

        // Client population: static links, office application mixes, mild
        // churn (people come and go over a workday).
        let pop_cfg = PopulationConfig {
            devices: self.devices,
            seed: self.seed,
            environment: Environment::Office,
            encryption_overhead: self.encryption_overhead,
            addr_base: 0x0F_0000,
        };
        let n_aps = ap_addrs.len();
        let ap_for = {
            let ap_addrs = ap_addrs.clone();
            move |i: usize, _rng: &mut InstanceRng| ap_addrs[i % n_aps]
        };
        let mut devices = sample_population(
            &pop_cfg,
            |_, rng| {
                // Desk positions: stable SNR between 18 and 38 dB with a
                // device-specific monitor offset and a gentle walk (lids
                // open and close, people shift, doors move).
                let snr = 12.0 + rng.f64() * 26.0;
                let mut link = LinkQuality::static_link(snr);
                link.monitor_offset_db = -6.0 + rng.f64() * 12.0;
                link.fading_std_db = 1.6;
                link.mobility = MobilityModel::RandomWalk {
                    step_db: 0.5,
                    min_db: (snr - 5.0).max(8.0),
                    max_db: snr + 5.0,
                };
                link.update_every = Nanos::from_secs(20);
                link
            },
            ap_for,
        );
        apply_churn(
            &mut devices,
            self.seed,
            self.duration,
            // Most devices are present from the start in an office: joins
            // spread over the first tenth of the capture.
            self.duration / 10,
            0.10,
            Nanos::from_secs(1200).min(self.duration / 2),
        );

        let mut profiles = BTreeMap::new();
        let client_addrs: Vec<MacAddr> = devices.iter().map(|d| d.station.addr).collect();
        for dev in devices {
            profiles.insert(dev.station.addr, dev.profile_name.clone());
            sim.add_station(dev.station);
        }

        // Downlink streams from each AP to a few clients (file servers,
        // intranet video) so APs have data-frame signatures too.
        for i in 0..ap_addrs.len() {
            let mut rng = InstanceRng::new(self.seed ^ 0xD0_0000, i as u64);
            let mut down_sources: Vec<Box<dyn wifiprint_netsim::TrafficSource>> = Vec::new();
            for k in 0..3usize {
                if client_addrs.is_empty() {
                    break;
                }
                let target = client_addrs
                    [(rng.below(client_addrs.len() as u64) as usize + k) % client_addrs.len()];
                let mut cbr = CbrSource::new(
                    Nanos::from_millis(40 + rng.below(120)),
                    600 + rng.below(800) as usize,
                );
                cbr.dest = Destination::Station(target);
                down_sources.push(Box::new(cbr));
            }
            sim.add_sources(i, down_sources);
        }

        (sim, profiles, ap_addrs)
    }

    /// Runs the scenario, collecting every captured frame.
    pub fn run_collect(&self) -> Trace {
        let (sim, profiles, aps) = self.build();
        run_collect(sim, self.duration, profiles, aps)
    }

    /// Runs the scenario, streaming captures into `sink`.
    pub fn run_streaming(&self, sink: &mut dyn FnMut(&CapturedFrame)) -> TraceReport {
        let (sim, profiles, aps) = self.build();
        run_streaming(sim, self.duration, profiles, aps, sink)
    }

    /// Runs the scenario, streaming every capture straight into a
    /// fingerprinting engine (see [`run_engine`]).
    ///
    /// # Errors
    ///
    /// The first `Engine::observe` error, after the simulation
    /// completes.
    pub fn run_engine(
        &self,
        engine: &mut wifiprint_core::Engine,
    ) -> Result<(Vec<wifiprint_core::Event>, TraceReport), wifiprint_core::EngineError> {
        let (sim, profiles, aps) = self.build();
        run_engine(sim, self.duration, profiles, aps, engine)
    }

    /// Runs the scenario, streaming every capture straight into a fused
    /// five-parameter engine (see [`run_multi_engine`]).
    ///
    /// # Errors
    ///
    /// The first `MultiEngine::observe` error, after the simulation
    /// completes.
    pub fn run_multi_engine(
        &self,
        engine: &mut wifiprint_core::MultiEngine,
    ) -> Result<(Vec<wifiprint_core::MultiEvent>, TraceReport), wifiprint_core::EngineError> {
        let (sim, profiles, aps) = self.build();
        run_multi_engine(sim, self.duration, profiles, aps, engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_ieee80211::FrameKind;

    #[test]
    fn small_office_produces_heterogeneous_traffic() {
        let trace = OfficeScenario::small(42, 30, 12).run_collect();
        assert!(trace.frames.len() > 300, "frames = {}", trace.frames.len());
        let kinds: std::collections::BTreeSet<_> =
            trace.frames.iter().map(|f| f.kind).collect();
        assert!(kinds.contains(&FrameKind::Data));
        assert!(kinds.contains(&FrameKind::Beacon));
        assert!(kinds.contains(&FrameKind::Ack));
        // Most clients speak within 30 s.
        let speakers = trace.transmitters();
        assert!(speakers.len() >= 8, "speakers = {}", speakers.len());
    }

    #[test]
    fn office_is_seed_deterministic() {
        let a = OfficeScenario::small(7, 10, 5).run_collect();
        let b = OfficeScenario::small(7, 10, 5).run_collect();
        assert_eq!(a.frames, b.frames);
        let c = OfficeScenario::small(8, 10, 5).run_collect();
        assert_ne!(a.frames, c.frames);
    }

    #[test]
    fn encrypted_frames_are_bigger_than_open() {
        let mut open = OfficeScenario::small(3, 15, 6);
        open.encryption_overhead = 0;
        let wpa = OfficeScenario::small(3, 15, 6);
        let open_trace = open.run_collect();
        let wpa_trace = wpa.run_collect();
        let mean_data = |t: &Trace| {
            let sizes: Vec<usize> = t
                .frames
                .iter()
                .filter(|f| f.kind == FrameKind::Data && !f.dest_group)
                .map(|f| f.size)
                .collect();
            sizes.iter().sum::<usize>() as f64 / sizes.len().max(1) as f64
        };
        assert!(mean_data(&wpa_trace) > mean_data(&open_trace));
    }
}
