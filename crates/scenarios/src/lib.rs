//! Capture scenarios reproducing the traces of Neumann et al. (ICDCS 2012).
//!
//! The paper evaluates on four traces (Table I) plus a set of controlled
//! Faraday-cage experiments (§VI). This crate regenerates all of them on
//! top of the [`wifiprint-netsim`] simulator and the [`wifiprint-devices`]
//! profile library:
//!
//! * [`OfficeScenario`] — static WPA network (*office 1*: 7 h,
//!   *office 2*: 1 h),
//! * [`ConferenceScenario`] — open network with mobility and churn
//!   (*conference 1*: 7 h, *conference 2*: 1 h),
//! * [`FaradayRig`] — single-device rigs for the Fig. 4–8 experiments,
//! * [`export`] — Radiotap pcap export/import so traces interoperate with
//!   standard tooling.
//!
//! Every scenario also runs straight into the streaming fingerprinting
//! engines — the fused five-parameter `MultiEngine`
//! ([`run_multi_engine`], `OfficeScenario::run_multi_engine`,
//! `ConferenceScenario::run_multi_engine`) or a single-parameter
//! `Engine` ([`run_engine`]): monitor → engine, the online deployment
//! shape, with no trace collection in between.
//!
//! Every scenario is fully deterministic in its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod conference;
pub mod export;
mod faraday;
mod office;
mod trace;

pub use conference::ConferenceScenario;
pub use faraday::{device_frames, FaradayRig, FARADAY_AP, FARADAY_DEVICE};
pub use office::OfficeScenario;
pub use trace::{run_collect, run_engine, run_multi_engine, run_streaming, Trace, TraceReport};
