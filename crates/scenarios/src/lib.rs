//! Capture scenarios reproducing the traces of Neumann et al. (ICDCS 2012).
//!
//! The paper evaluates on four traces (Table I) plus a set of controlled
//! Faraday-cage experiments (§VI). This crate regenerates all of them on
//! top of the [`wifiprint-netsim`] simulator and the [`wifiprint-devices`]
//! profile library:
//!
//! * [`OfficeScenario`] — static WPA network (*office 1*: 7 h,
//!   *office 2*: 1 h),
//! * [`ConferenceScenario`] — open network with mobility and churn
//!   (*conference 1*: 7 h, *conference 2*: 1 h),
//! * [`FaradayRig`] — single-device rigs for the Fig. 4–8 experiments,
//! * [`MetropolisScenario`] — far beyond the paper: a ~50 000-device
//!   population of heterogeneous traffic mixes, the stress workload for
//!   the sharded reference store's pruned sweeps,
//! * [`rotation`] — MAC-randomization policies (periodic,
//!   per-association burst, per-SSID stable) layered on the scenarios
//!   above, with an exact [`RotationLedger`] of ground truth for
//!   linking experiments,
//! * [`faults`] — a deterministic, seeded [`FaultInjector`] that wraps
//!   any trace or scenario stream with composable capture degradations
//!   (burst loss, duplication, bounded reordering, jitter/skew,
//!   truncation, chaff) for resilience experiments,
//! * [`export`] — Radiotap pcap export/import so traces interoperate with
//!   standard tooling.
//!
//! Every scenario also runs straight into the streaming fingerprinting
//! engines — the fused five-parameter `MultiEngine`
//! ([`run_multi_engine`], `OfficeScenario::run_multi_engine`,
//! `ConferenceScenario::run_multi_engine`) or a single-parameter
//! `Engine` ([`run_engine`]): monitor → engine, the online deployment
//! shape, with no trace collection in between.
//!
//! Every scenario is fully deterministic in its seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
#![warn(clippy::pedantic)]
// Pedantic lints this crate opts out of, mirroring wifiprint-core:
#![allow(
    // Device counts, seeds and bin indices stay far below 2^52; casts
    // into f64 for rates and shares are deliberate.
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    // Exact float compares pin sentinel values in tests.
    clippy::float_cmp,
    // Getter-heavy scenario types: #[must_use] everywhere is noise.
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    // Public items are re-exported from the crate root, so
    // module-qualified names repeat the module name.
    clippy::module_name_repetitions
)]

mod conference;
pub mod export;
mod faraday;
pub mod faults;
mod metropolis;
mod office;
pub mod rotation;
mod trace;

pub use conference::ConferenceScenario;
pub use faraday::{device_frames, FaradayRig, FARADAY_AP, FARADAY_DEVICE};
pub use faults::{
    is_poison_frame, FaultInjector, FaultLog, FaultPlan, FaultedStream, LossModel,
    CHAFF_DEVICE_BASE, POISON_DEVICE_BASE,
};
pub use metropolis::MetropolisScenario;
pub use office::OfficeScenario;
pub use rotation::{
    rotate_frames, RotatedSighting, RotationLedger, RotationPolicy, RotationScenario,
    RotationTrail,
};
pub use trace::{run_collect, run_engine, run_multi_engine, run_streaming, Trace, TraceReport};
