//! MAC-rotation scenarios: randomization policies layered on the
//! capture scenarios, with an exact rotation ledger.
//!
//! The paper's §VII spoofing experiments assume the attacker changes
//! addresses; modern clients do it *by default* (iOS/Android/Windows
//! privacy addresses). This module layers the three policy shapes those
//! stacks actually ship on top of the existing scenarios:
//!
//! * [`RotationPolicy::Never`] — a burned-in, universally-administered
//!   address (the control group; a linker must be the identity map here),
//! * [`RotationPolicy::Periodic`] — a fresh randomized address every
//!   `period` sightings (timer-driven rotation),
//! * [`RotationPolicy::PerAssociation`] — a fresh randomized address per
//!   association, each association emitting a `burst` of sightings that
//!   share it,
//! * [`RotationPolicy::PerSsid`] — one stable randomized address per
//!   network, cycled as the device hops between `ssids` networks (the
//!   iOS/Android default).
//!
//! [`RotationScenario`] drives a [`MetropolisScenario`] population
//! through a policy and emits a [`RotationTrail`]: an interleaved,
//! timestamped stream of [`RotatedSighting`]s (each carrying the fresh
//! per-sighting candidate signature the detection window would hand a
//! linker) plus a [`RotationLedger`] — the exact ground-truth map
//! between every emitted MAC and the device behind it, so linking
//! accuracy is measured against truth, not heuristics.
//! [`rotate_frames`] applies the same policies at the frame level to any
//! collected trace (e.g. [`OfficeScenario`](crate::OfficeScenario)
//! output), rewriting transmitter addresses window by window.
//!
//! Everything is deterministic in the scenario seed.

use std::collections::BTreeMap;

use wifiprint_core::Signature;
use wifiprint_ieee80211::{MacAddr, Nanos};
use wifiprint_radiotap::CapturedFrame;

use crate::metropolis::MetropolisScenario;

/// When (and how) a device replaces its transmitter address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RotationPolicy {
    /// No randomization: the device keeps one universally-administered
    /// (burned-in) address for the whole trail.
    Never,
    /// Timer-driven: a fresh randomized address every `period`
    /// sightings (`period = 1` rotates on every single sighting).
    Periodic {
        /// Sightings between rotations (min 1).
        period: u64,
    },
    /// A fresh randomized address per association; each association
    /// emits `burst` sightings sharing it. Structurally a period of
    /// `burst`, but named separately because the linker only pays a
    /// gallery sweep once per association — the rest re-link by MAC.
    PerAssociation {
        /// Sightings per association (min 1).
        burst: u64,
    },
    /// One stable randomized address per network, cycled round-robin as
    /// the device hops between `ssids` networks. Revisiting a network
    /// reuses its address, so the emitted-MAC set is small and closed.
    PerSsid {
        /// Distinct networks the device cycles through (min 1).
        ssids: u64,
    },
}

impl RotationPolicy {
    /// A short stable label for tables and bench IDs.
    pub fn label(self) -> &'static str {
        match self {
            RotationPolicy::Never => "never",
            RotationPolicy::Periodic { .. } => "periodic",
            RotationPolicy::PerAssociation { .. } => "per-assoc",
            RotationPolicy::PerSsid { .. } => "per-ssid",
        }
    }

    /// Which rotation epoch sighting `s` of a device falls in: sightings
    /// in the same epoch share an address, a new epoch means a fresh
    /// (or, for [`RotationPolicy::PerSsid`], a *revisited*) one.
    fn epoch(self, s: u64) -> u64 {
        match self {
            RotationPolicy::Never => 0,
            RotationPolicy::Periodic { period } => s / period.max(1),
            RotationPolicy::PerAssociation { burst } => s / burst.max(1),
            RotationPolicy::PerSsid { ssids } => s % ssids.max(1),
        }
    }
}

/// One observation of one device in a rotation trail: what a closed
/// detection window hands the linker, plus the ground truth.
#[derive(Debug, Clone)]
pub struct RotatedSighting {
    /// Ground-truth device index in the base population.
    pub true_device: usize,
    /// The transmitter address emitted under the rotation policy.
    pub mac: MacAddr,
    /// Sighting time on the trail clock.
    pub at: Nanos,
    /// The fresh candidate signature of this sighting (per-sighting
    /// observation noise over the device's stable traffic mix).
    pub signature: Signature,
}

/// Exact ground truth of a rotation trail: every emitted address mapped
/// back to the device that used it.
#[derive(Debug, Clone, Default)]
pub struct RotationLedger {
    /// Emitted address → true device index. Exact: collisions are
    /// re-derived away at generation time, so the map is a function.
    owner: BTreeMap<MacAddr, usize>,
    /// Per device: its distinct emitted addresses in first-use order.
    macs: Vec<Vec<MacAddr>>,
    /// Total sightings in the trail.
    pub sightings: usize,
    /// Total rotations — sightings whose address differs from the
    /// device's previous sighting's address.
    pub rotations: usize,
}

impl RotationLedger {
    /// The true device behind an emitted address, if the trail emitted it.
    pub fn owner_of(&self, mac: &MacAddr) -> Option<usize> {
        self.owner.get(mac).copied()
    }

    /// A device's distinct emitted addresses, first-use order (the
    /// first entry is its first sighting's address).
    pub fn macs_of(&self, device: usize) -> &[MacAddr] {
        self.macs.get(device).map_or(&[], Vec::as_slice)
    }

    /// Devices in the trail.
    pub fn devices(&self) -> usize {
        self.macs.len()
    }

    /// Distinct addresses emitted across the whole trail.
    pub fn distinct_macs(&self) -> usize {
        self.owner.len()
    }

    /// Rotations per sighting in `[0, 1]`: `0` means every device kept
    /// one address, `→1` means nearly every sighting changed address.
    pub fn rotation_rate(&self) -> f64 {
        if self.sightings == 0 {
            0.0
        } else {
            self.rotations as f64 / self.sightings as f64
        }
    }
}

/// A generated rotation trail: the sighting stream plus its ledger.
#[derive(Debug, Clone)]
pub struct RotationTrail {
    /// Sightings in timestamp order, devices interleaved round-robin.
    pub sightings: Vec<RotatedSighting>,
    /// Exact MAC ↔ device ground truth.
    pub ledger: RotationLedger,
    /// The policy that produced the trail.
    pub policy: RotationPolicy,
}

impl RotationTrail {
    /// Reconciles the trail against its ledger, exactly: every
    /// sighting's address must resolve to its true device, every
    /// ledgered address must have been sighted, and the counters must
    /// agree.
    ///
    /// # Errors
    ///
    /// A description of the first mismatch found.
    pub fn reconcile(&self) -> Result<(), String> {
        if self.ledger.sightings != self.sightings.len() {
            return Err(format!(
                "ledger counts {} sightings, trail holds {}",
                self.ledger.sightings,
                self.sightings.len()
            ));
        }
        let mut seen: BTreeMap<MacAddr, usize> = BTreeMap::new();
        let mut rotations = 0usize;
        let mut last: BTreeMap<usize, MacAddr> = BTreeMap::new();
        let mut at = Nanos::ZERO;
        for s in &self.sightings {
            if s.at < at {
                return Err(format!("sighting at {:?} out of order", s.at));
            }
            at = s.at;
            match self.ledger.owner_of(&s.mac) {
                Some(owner) if owner == s.true_device => {}
                Some(owner) => {
                    return Err(format!(
                        "ledger owns {} by device {owner}, trail sighted it from {}",
                        s.mac, s.true_device
                    ));
                }
                None => return Err(format!("address {} missing from the ledger", s.mac)),
            }
            seen.insert(s.mac, s.true_device);
            match last.insert(s.true_device, s.mac) {
                Some(prev) if prev != s.mac => rotations += 1,
                _ => {}
            }
        }
        if seen.len() != self.ledger.distinct_macs() {
            return Err(format!(
                "trail emitted {} distinct addresses, ledger holds {}",
                seen.len(),
                self.ledger.distinct_macs()
            ));
        }
        if rotations != self.ledger.rotations {
            return Err(format!(
                "trail rotated {rotations} times, ledger counts {}",
                self.ledger.rotations
            ));
        }
        for (device, macs) in self.ledger.macs.iter().enumerate() {
            for mac in macs {
                if seen.get(mac) != Some(&device) {
                    return Err(format!("ledger lists unsighted address {mac} for {device}"));
                }
            }
        }
        Ok(())
    }
}

/// Drives a [`MetropolisScenario`] population through a
/// [`RotationPolicy`] (see the [module docs](self)).
#[derive(Debug, Clone)]
pub struct RotationScenario {
    /// The base population: devices, traffic mixes, observation noise.
    pub base: MetropolisScenario,
    /// The randomization policy every device follows.
    pub policy: RotationPolicy,
    /// Sightings emitted per device (interleaved round-robin).
    pub sightings_per_device: usize,
    /// Gap between consecutive sightings on the trail clock.
    pub sighting_gap: Nanos,
}

impl RotationScenario {
    /// A trail over `base` under `policy`, 6 sightings per device,
    /// 50 ms apart.
    pub fn new(base: MetropolisScenario, policy: RotationPolicy) -> Self {
        RotationScenario {
            base,
            policy,
            sightings_per_device: 6,
            sighting_gap: Nanos::from_millis(50),
        }
    }

    /// Returns a copy emitting a different number of sightings per
    /// device.
    #[must_use]
    pub fn with_sightings(mut self, sightings_per_device: usize) -> Self {
        self.sightings_per_device = sightings_per_device;
        self
    }

    /// Generates the trail: for each round-robin round, every device
    /// emits one sighting — its policy-mapped address plus a fresh
    /// candidate signature — and the ledger records the ground truth.
    ///
    /// Deterministic in the base seed; address collisions between
    /// devices (46-bit birthday at ~10⁵ emitted addresses) are
    /// re-derived away so the ledger stays an exact function.
    pub fn generate(&self) -> RotationTrail {
        let devices = self.base.devices;
        let rounds = self.sightings_per_device;
        let mut ledger = RotationLedger {
            owner: BTreeMap::new(),
            macs: vec![Vec::new(); devices],
            sightings: 0,
            rotations: 0,
        };
        // Per device: epoch → assigned address (PerSsid revisits epochs).
        let mut assigned: Vec<BTreeMap<u64, MacAddr>> = vec![BTreeMap::new(); devices];
        let mut last_mac: Vec<Option<MacAddr>> = vec![None; devices];
        let mut sightings = Vec::with_capacity(devices * rounds);
        let mut tick = 0u64;
        for round in 0..rounds {
            for idx in 0..devices {
                let epoch = self.policy.epoch(round as u64);
                let mac = match self.policy {
                    RotationPolicy::Never => MacAddr::universal_from_index(idx as u64 + 1),
                    _ => *assigned[idx].entry(epoch).or_insert_with(|| {
                        derive_mac(&ledger.owner, self.base.seed, idx, epoch)
                    }),
                };
                if !ledger.macs[idx].contains(&mac) {
                    ledger.owner.insert(mac, idx);
                    ledger.macs[idx].push(mac);
                }
                if last_mac[idx].replace(mac).is_some_and(|p| p != mac) {
                    ledger.rotations += 1;
                }
                ledger.sightings += 1;
                let at = Nanos::from_nanos(tick * self.sighting_gap.as_nanos());
                tick += 1;
                sightings.push(RotatedSighting {
                    true_device: idx,
                    mac,
                    at,
                    signature: self.base.candidate(idx, round as u64),
                });
            }
        }
        RotationTrail { sightings, ledger, policy: self.policy }
    }
}

/// Derives a device's randomized address for an epoch, re-deriving past
/// any address another device already owns so the ledger stays exact.
fn derive_mac(owner: &BTreeMap<MacAddr, usize>, seed: u64, idx: usize, epoch: u64) -> MacAddr {
    let mut salt = 0u64;
    loop {
        let mixed = seed
            ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ epoch.wrapping_mul(0xC2B2_AE3D_27D4_EB4F)
            ^ salt.wrapping_mul(0x1656_67B1_9E37_79F9);
        let mac = MacAddr::randomized(mixed);
        if !owner.contains_key(&mac) {
            return mac;
        }
        salt += 1;
    }
}

/// Applies a rotation policy to a collected frame trace (e.g.
/// [`OfficeScenario`](crate::OfficeScenario) output): each transmitter's
/// frames are re-addressed window by window — frame time divided by
/// `window` is the sighting index the policy epochs over — and the
/// returned ledger maps every rewritten address back to the original
/// transmitter (device indices in first-seen order; ACK/CTS frames with
/// no transmitter pass through). [`RotationPolicy::Never`] leaves
/// addresses untouched.
pub fn rotate_frames(
    frames: &mut [CapturedFrame],
    policy: RotationPolicy,
    seed: u64,
    window: Nanos,
) -> RotationLedger {
    let window = window.as_nanos().max(1);
    let mut index_of: BTreeMap<MacAddr, usize> = BTreeMap::new();
    let mut assigned: Vec<BTreeMap<u64, MacAddr>> = Vec::new();
    let mut ledger = RotationLedger::default();
    let mut last: BTreeMap<usize, MacAddr> = BTreeMap::new();
    for frame in frames.iter_mut() {
        let Some(original) = frame.transmitter else { continue };
        let next = index_of.len();
        let idx = *index_of.entry(original).or_insert(next);
        if idx == next {
            assigned.push(BTreeMap::new());
            ledger.macs.push(Vec::new());
        }
        let epoch = policy.epoch(frame.t_end.as_nanos() / window);
        let mac = match policy {
            RotationPolicy::Never => original,
            _ => *assigned[idx]
                .entry(epoch)
                .or_insert_with(|| derive_mac(&ledger.owner, seed, idx, epoch)),
        };
        if !ledger.macs[idx].contains(&mac) {
            ledger.owner.insert(mac, idx);
            ledger.macs[idx].push(mac);
        }
        if last.insert(idx, mac).is_some_and(|p| p != mac) {
            ledger.rotations += 1;
        }
        ledger.sightings += 1;
        frame.transmitter = Some(mac);
    }
    ledger
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn never_policy_is_rotation_free_and_universal() {
        let trail = RotationScenario::new(
            MetropolisScenario::with_devices(11, 40),
            RotationPolicy::Never,
        )
        .generate();
        trail.reconcile().unwrap();
        assert_eq!(trail.ledger.rotation_rate(), 0.0);
        assert_eq!(trail.ledger.distinct_macs(), 40);
        assert!(trail.sightings.iter().all(|s| s.mac.is_universally_administered()));
        assert_eq!(trail.sightings.len(), 40 * 6);
    }

    #[test]
    fn periodic_policy_rotates_on_schedule() {
        let trail = RotationScenario::new(
            MetropolisScenario::with_devices(12, 25),
            RotationPolicy::Periodic { period: 2 },
        )
        .with_sightings(6)
        .generate();
        trail.reconcile().unwrap();
        // 6 sightings at period 2 → 3 addresses per device, 2 rotations.
        assert_eq!(trail.ledger.distinct_macs(), 25 * 3);
        assert_eq!(trail.ledger.rotations, 25 * 2);
        assert!(trail.sightings.iter().all(|s| s.mac.is_locally_administered()));
        assert!((trail.ledger.rotation_rate() - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn per_ssid_policy_reuses_a_closed_address_set() {
        let trail = RotationScenario::new(
            MetropolisScenario::with_devices(13, 10),
            RotationPolicy::PerSsid { ssids: 2 },
        )
        .with_sightings(6)
        .generate();
        trail.reconcile().unwrap();
        // Round-robin over 2 networks: 2 addresses per device, and every
        // revisit after the first two sightings rotates back and forth.
        assert_eq!(trail.ledger.distinct_macs(), 10 * 2);
        assert_eq!(trail.ledger.rotations, 10 * 5);
        for device in 0..10 {
            assert_eq!(trail.ledger.macs_of(device).len(), 2);
        }
    }

    #[test]
    fn trails_are_deterministic_in_the_seed() {
        let make = || {
            RotationScenario::new(
                MetropolisScenario::with_devices(77, 15),
                RotationPolicy::PerAssociation { burst: 3 },
            )
            .generate()
        };
        let a = make();
        let b = make();
        assert_eq!(a.sightings.len(), b.sightings.len());
        for (x, y) in a.sightings.iter().zip(&b.sightings) {
            assert_eq!(x.mac, y.mac);
            assert_eq!(x.at, y.at);
            assert_eq!(x.true_device, y.true_device);
            assert_eq!(x.signature, y.signature);
        }
    }

    #[test]
    fn ledger_owner_lookup_matches_ground_truth() {
        let trail = RotationScenario::new(
            MetropolisScenario::with_devices(5, 20),
            RotationPolicy::Periodic { period: 1 },
        )
        .with_sightings(4)
        .generate();
        trail.reconcile().unwrap();
        for s in &trail.sightings {
            assert_eq!(trail.ledger.owner_of(&s.mac), Some(s.true_device));
        }
        assert_eq!(trail.ledger.owner_of(&MacAddr::BROADCAST), None);
        assert_eq!(trail.ledger.devices(), 20);
    }

    #[test]
    fn rotate_frames_rewrites_and_ledgers_transmitters() {
        let trace = crate::OfficeScenario::small(42, 30, 4).run_collect();
        let mut frames = trace.frames.clone();
        let ledger =
            rotate_frames(&mut frames, RotationPolicy::Periodic { period: 1 }, 9, Nanos::from_secs(5));
        assert!(ledger.sightings > 0);
        assert!(ledger.rotations > 0, "30 s / 5 s windows must rotate");
        for (orig, rot) in trace.frames.iter().zip(&frames) {
            match (orig.transmitter, rot.transmitter) {
                (None, None) => {}
                (Some(_), Some(m)) => {
                    assert!(m.is_locally_administered());
                    assert!(ledger.owner_of(&m).is_some());
                }
                other => panic!("transmitter presence changed: {other:?}"),
            }
            assert_eq!(orig.t_end, rot.t_end);
            assert_eq!(orig.size, rot.size);
        }
        // Never: untouched.
        let mut untouched = trace.frames.clone();
        let l = rotate_frames(&mut untouched, RotationPolicy::Never, 9, Nanos::from_secs(5));
        assert_eq!(l.rotations, 0);
        for (orig, same) in trace.frames.iter().zip(&untouched) {
            assert_eq!(orig.transmitter, same.transmitter);
        }
    }
}
