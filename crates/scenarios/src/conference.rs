//! The conference scenario: an open network with mobile, churning
//! attendees, reproducing the shape of the paper's *conference 1* (7 h)
//! and *conference 2* (1 h) subsets of the Sigcomm 2008 trace.
//!
//! The decisive difference from the office: devices **move**, so their SNR
//! — and with it the rate-adaptation choice and loss pattern — drifts over
//! the capture. That is what collapses the transmission-rate fingerprint
//! (Table II: AUC 4.0 % on conference 1) while the inter-arrival
//! fingerprint survives.

use std::collections::BTreeMap;

use wifiprint_devices::{
    apply_churn, sample_population, Environment, InstanceRng, PopulationConfig,
};
use wifiprint_ieee80211::{MacAddr, Nanos};
use wifiprint_netsim::{LinkQuality, MobilityModel, SimConfig, Simulator, StationConfig};
use wifiprint_radiotap::CapturedFrame;

use crate::trace::{run_collect, run_engine, run_multi_engine, run_streaming, Trace, TraceReport};

/// Configuration of a conference capture.
#[derive(Debug, Clone)]
pub struct ConferenceScenario {
    /// Root seed.
    pub seed: u64,
    /// Capture duration.
    pub duration: Nanos,
    /// Number of client devices.
    pub devices: usize,
    /// Number of APs.
    pub aps: usize,
    /// Baseline monitor loss (crowded rooms are harder to monitor).
    pub monitor_loss: f64,
    /// Fraction of devices that leave before the end.
    pub churn: f64,
}

impl ConferenceScenario {
    /// The paper's *conference 1* shape: the full 7-hour Sigcomm capture
    /// (188 reference devices), open network.
    pub fn conference1(seed: u64) -> Self {
        ConferenceScenario {
            seed,
            duration: Nanos::from_secs(7 * 3600),
            devices: 230,
            aps: 4,
            monitor_loss: 0.03,
            churn: 0.6,
        }
    }

    /// The paper's *conference 2* shape: the first hour only (97 reference
    /// devices).
    pub fn conference2(seed: u64) -> Self {
        ConferenceScenario {
            seed,
            duration: Nanos::from_secs(3600),
            devices: 140,
            aps: 4,
            monitor_loss: 0.03,
            churn: 0.45,
        }
    }

    /// A miniature conference for tests and examples.
    pub fn small(seed: u64, secs: u64, devices: usize) -> Self {
        ConferenceScenario {
            seed,
            duration: Nanos::from_secs(secs),
            devices,
            aps: 2,
            monitor_loss: 0.0,
            churn: 0.3,
        }
    }

    fn build(&self) -> (Simulator, BTreeMap<MacAddr, String>, Vec<MacAddr>) {
        let mut sim = Simulator::new(SimConfig {
            seed: self.seed,
            duration: self.duration,
            monitor_loss: self.monitor_loss,
            // Mixed b/g conference network with OFDM basics for control
            // responses (the 2008 Sigcomm network ran 802.11g).
            basic_rates: vec![
                wifiprint_ieee80211::Rate::R6M,
                wifiprint_ieee80211::Rate::R12M,
                wifiprint_ieee80211::Rate::R24M,
            ],
            ..SimConfig::default()
        });

        let ap_addrs: Vec<MacAddr> =
            (0..self.aps).map(|i| MacAddr::from_index(0xCA_0000 + i as u64)).collect();
        for (i, &addr) in ap_addrs.iter().enumerate() {
            let mut link = LinkQuality::static_link(34.0 + (i % 3) as f64 * 3.0);
            link.monitor_offset_db = -3.0;
            sim.add_station(StationConfig::ap(addr, link));
        }

        let pop_cfg = PopulationConfig {
            devices: self.devices,
            seed: self.seed,
            environment: Environment::Conference,
            encryption_overhead: 0, // open network
            addr_base: 0xC0_0000,
        };
        let n_aps = ap_addrs.len();
        let ap_for = {
            let ap_addrs = ap_addrs.clone();
            move |i: usize, rng: &mut InstanceRng| {
                // Attendees associate with a random AP, roughly balanced.
                ap_addrs[(i + rng.below(2) as usize) % n_aps]
            }
        };
        let mut devices = sample_population(
            &pop_cfg,
            |_, rng| {
                // Attendees start near the front (good links during the
                // training hour) and disperse as the day goes on: waypoint
                // mobility with a negative SNR trend. The systematic drift
                // is what makes transmission-rate references go stale —
                // the paper's conference-trace rate collapse.
                let snr = 22.0 + rng.f64() * 12.0;
                let update_every = Nanos::from_millis(1500 + rng.below(1500));
                // Scale the per-update trend so the expected decline over
                // the capture is ~12–18 dB regardless of update cadence.
                let updates_per_capture =
                    self.duration.as_secs_f64() / update_every.as_secs_f64();
                let trend_db = -(18.0 + rng.f64() * 10.0) / updates_per_capture;
                LinkQuality {
                    snr_ap_db: snr,
                    monitor_offset_db: -8.0 + rng.f64() * 14.0,
                    fading_std_db: 2.6,
                    mobility: MobilityModel::DriftingCrowd {
                        step_db: 2.4,
                        jump_p: 0.002,
                        min_db: 2.0,
                        max_db: 36.0,
                        trend_db,
                    },
                    update_every,
                }
            },
            ap_for,
        );
        apply_churn(
            &mut devices,
            self.seed,
            self.duration,
            // Arrivals spread over the first two thirds of the capture.
            self.duration * 2 / 3,
            self.churn,
            Nanos::from_secs(600).min(self.duration / 3),
        );

        let mut profiles = BTreeMap::new();
        for dev in devices {
            profiles.insert(dev.station.addr, dev.profile_name.clone());
            sim.add_station(dev.station);
        }
        (sim, profiles, ap_addrs)
    }

    /// Runs the scenario, collecting every captured frame.
    pub fn run_collect(&self) -> Trace {
        let (sim, profiles, aps) = self.build();
        run_collect(sim, self.duration, profiles, aps)
    }

    /// Runs the scenario, streaming captures into `sink`.
    pub fn run_streaming(&self, sink: &mut dyn FnMut(&CapturedFrame)) -> TraceReport {
        let (sim, profiles, aps) = self.build();
        run_streaming(sim, self.duration, profiles, aps, sink)
    }

    /// Runs the scenario, streaming every capture straight into a
    /// fingerprinting engine (see [`run_engine`]).
    ///
    /// # Errors
    ///
    /// The first `Engine::observe` error, after the simulation
    /// completes.
    pub fn run_engine(
        &self,
        engine: &mut wifiprint_core::Engine,
    ) -> Result<(Vec<wifiprint_core::Event>, TraceReport), wifiprint_core::EngineError> {
        let (sim, profiles, aps) = self.build();
        run_engine(sim, self.duration, profiles, aps, engine)
    }

    /// Runs the scenario, streaming every capture straight into a fused
    /// five-parameter engine (see [`run_multi_engine`]).
    ///
    /// # Errors
    ///
    /// The first `MultiEngine::observe` error, after the simulation
    /// completes.
    pub fn run_multi_engine(
        &self,
        engine: &mut wifiprint_core::MultiEngine,
    ) -> Result<(Vec<wifiprint_core::MultiEvent>, TraceReport), wifiprint_core::EngineError> {
        let (sim, profiles, aps) = self.build();
        run_multi_engine(sim, self.duration, profiles, aps, engine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_ieee80211::FrameKind;

    #[test]
    fn small_conference_runs_with_probes_and_churn() {
        let trace = ConferenceScenario::small(21, 60, 20).run_collect();
        assert!(trace.frames.len() > 200, "frames = {}", trace.frames.len());
        let probes =
            trace.frames.iter().filter(|f| f.kind == FrameKind::ProbeReq).count();
        assert!(probes > 5, "probes = {probes}");
    }

    #[test]
    fn conference_rates_drift_over_time() {
        // The same device's rate distribution early vs late should differ
        // for at least some mobile SNR-driven devices.
        let trace = ConferenceScenario::small(5, 120, 16).run_collect();
        let half = Nanos::from_secs(60);
        let mut early: BTreeMap<MacAddr, Vec<f64>> = BTreeMap::new();
        let mut late: BTreeMap<MacAddr, Vec<f64>> = BTreeMap::new();
        for f in &trace.frames {
            if f.kind != FrameKind::Data {
                continue;
            }
            let Some(t) = f.transmitter else { continue };
            let bucket = if f.t_end < half { &mut early } else { &mut late };
            bucket.entry(t).or_default().push(f.rate.mbps());
        }
        let mut drifted = 0;
        for (dev, e) in &early {
            let Some(l) = late.get(dev) else { continue };
            if e.len() < 10 || l.len() < 10 {
                continue;
            }
            let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
            if (mean(e) - mean(l)).abs() > 3.0 {
                drifted += 1;
            }
        }
        assert!(drifted >= 1, "no device showed rate drift");
    }

    #[test]
    fn open_network_has_no_encryption_overhead() {
        let trace = ConferenceScenario::small(9, 20, 8).run_collect();
        assert!(!trace.frames.is_empty());
        // Deterministic reruns.
        let again = ConferenceScenario::small(9, 20, 8).run_collect();
        assert_eq!(trace.frames.len(), again.frames.len());
    }
}
