//! The metropolis scenario: a large-population stress workload for the
//! sharded reference store.
//!
//! The paper's traces top out at a few hundred devices; the ROADMAP's
//! north star is a monitor fleet covering a metropolitan population —
//! the regime where `wifiprint_core`'s sharded [`ReferenceDb`] and its
//! pruned [`ReferenceDb::match_topk`] sweep earn their keep. This
//! scenario synthesises that population *directly at the signature
//! level* (running a discrete-event simulation of 50 000 stations for
//! long enough to enroll them would dominate every benchmark run):
//! every device draws a deterministic **traffic-mix archetype** — bulk
//! transfer, `VoIP`-like periodic bursts, web browsing, `IoT` beaconing,
//! streaming video, background chatter — and a device-specific timing
//! centre, then renders it into an inter-arrival-time [`Signature`]
//! with per-run observation noise. [`MetropolisScenario::candidate`]
//! re-observes the same device on a different "day" (fresh noise over
//! the same mix), which is exactly the re-identification workload the
//! detection phase runs.
//!
//! Everything is deterministic in the seed, and the archetype mixes are
//! heterogeneous on purpose: tight single-peak `IoT` devices shard far
//! from broad video mixes, so shard summaries stay tight and the pruned
//! sweep's win is measurable end-to-end (`perf_snapshot`'s
//! `sharded_sweep_speedup`).

use std::collections::BTreeMap;

use wifiprint_core::{
    BinSpec, EvalConfig, Histogram, MatchConfig, NetworkParameter, ReferenceDb, Signature,
};
use wifiprint_devices::InstanceRng;
use wifiprint_ieee80211::{FrameKind, MacAddr};

/// One timing cluster of a device's traffic mix: `share` of its
/// observations land around `value` (µs).
#[derive(Debug, Clone, Copy)]
struct Cluster {
    value: f64,
    share: f64,
}

/// Configuration of a metropolis population.
#[derive(Debug, Clone)]
pub struct MetropolisScenario {
    /// Root seed; the whole population is deterministic in it.
    pub seed: u64,
    /// Number of enrolled devices.
    pub devices: usize,
    /// Capture-loss fraction in `[0, 1)` applied to every *observation*
    /// (reference and candidate alike): the monitor misses this share of
    /// each cluster's frames, thinning the rendered histograms the way a
    /// lossy vantage point would. `0.0` (the default) is the pristine
    /// capture.
    pub capture_loss: f64,
}

impl MetropolisScenario {
    /// The headline shape: 50 000 enrolled devices.
    pub fn metropolis(seed: u64) -> Self {
        MetropolisScenario { seed, devices: 50_000, capture_loss: 0.0 }
    }

    /// A population of explicit size (tests and benchmarks scale it from
    /// a few thousand to 10⁵).
    pub fn with_devices(seed: u64, devices: usize) -> Self {
        MetropolisScenario { seed, devices, capture_loss: 0.0 }
    }

    /// Returns a copy observing through a lossy capture path: `loss` of
    /// every cluster's observations are missed (clamped to `[0, 0.95]`).
    /// Cluster positions are unaffected — loss thins evidence, it does
    /// not move timing peaks — so degraded candidates stay comparable
    /// against a pristine (or equally degraded) reference database.
    #[must_use]
    pub fn with_capture_loss(mut self, loss: f64) -> Self {
        self.capture_loss = loss.clamp(0.0, 0.95);
        self
    }

    /// The evaluation configuration metropolis signatures are binned
    /// with: inter-arrival time over 0–2500 µs in 25 µs bins — coarser
    /// than the paper's 10 µs default so a 10⁵-device store stays
    /// memory-friendly while the sweep stays row-shaped like the real
    /// one.
    pub fn config() -> EvalConfig {
        EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
            .with_bins(BinSpec::uniform_to(2500.0, 25.0))
    }

    /// The address of enrolled device `idx` (`0..devices`).
    pub fn device(&self, idx: usize) -> MacAddr {
        // Spread the index across the OUI octets so MAC-prefix sharding
        // sees a realistic vendor spread, not one prefix.
        MacAddr::from_index((idx as u64).wrapping_mul(0x0001_0001) + 1)
    }

    /// Device `idx`'s reference signature (enrollment-day observation).
    pub fn signature(&self, idx: usize) -> Signature {
        self.observe(idx, 0)
    }

    /// A fresh observation of device `idx` on a later `day`: the same
    /// traffic mix rendered with different noise — similar to, but not
    /// identical with, its reference signature. This is the candidate a
    /// detection window would hand the matcher.
    pub fn candidate(&self, idx: usize, day: u64) -> Signature {
        self.observe(idx, day.wrapping_add(1))
    }

    /// Builds the enrolled reference database under a given shard
    /// layout. Insertion streams device by device (the store's amortised
    /// append path), exactly like online enrollment would.
    ///
    /// # Panics
    ///
    /// Never in practice: every generated signature carries
    /// observations, so enrollment cannot be rejected.
    pub fn reference_db(&self, match_config: MatchConfig) -> ReferenceDb {
        let mut db = ReferenceDb::with_config(match_config);
        for idx in 0..self.devices {
            db.insert(self.device(idx), self.signature(idx)).expect("non-empty signature");
        }
        db
    }

    /// The device's stable traffic mix: archetype, timing clusters and
    /// probe-request share. Deterministic in `(seed, idx)` — observation
    /// noise lives in [`MetropolisScenario::observe`], not here.
    fn mix(&self, idx: usize) -> (Vec<Cluster>, f64) {
        let mut rng = InstanceRng::new(self.seed ^ 0x4D45_5452_4F00, idx as u64);
        let archetype = rng.below(6);
        // Device-specific dominant timing centre, spread over the bin
        // range: this is what the dominant-histogram shard key localises.
        let center = 60.0 + rng.f64() * 2300.0;
        let near = |rng: &mut InstanceRng, spread: f64| {
            (center + (rng.f64() - 0.5) * spread).clamp(5.0, 2490.0)
        };
        let far = |rng: &mut InstanceRng| 60.0 + rng.f64() * 2300.0;
        let (clusters, probe_share) = match archetype {
            // Bulk transfer: one tight peak plus a retransmission tail.
            0 => (vec![Cluster { value: center, share: 0.9 }, Cluster { value: far(&mut rng), share: 0.1 }], 0.0),
            // VoIP-like: two nearby periodic peaks plus scatter.
            1 => (
                vec![
                    Cluster { value: center, share: 0.6 },
                    Cluster { value: near(&mut rng, 200.0), share: 0.3 },
                    Cluster { value: far(&mut rng), share: 0.1 },
                ],
                0.0,
            ),
            // Web browsing: dominant peak, one far secondary, probes.
            2 => (
                vec![
                    Cluster { value: center, share: 0.7 },
                    Cluster { value: far(&mut rng), share: 0.2 },
                ],
                0.1,
            ),
            // IoT beaconing: essentially one spike.
            3 => (vec![Cluster { value: center, share: 0.97 }, Cluster { value: far(&mut rng), share: 0.03 }], 0.0),
            // Streaming video: a broad dominant region (two adjacent
            // clusters) plus a service peak.
            4 => (
                vec![
                    Cluster { value: center, share: 0.5 },
                    Cluster { value: near(&mut rng, 120.0), share: 0.4 },
                    Cluster { value: far(&mut rng), share: 0.1 },
                ],
                0.0,
            ),
            // Background chatter: dominant but diffuse, with probes.
            _ => (
                vec![
                    Cluster { value: center, share: 0.65 },
                    Cluster { value: near(&mut rng, 400.0), share: 0.2 },
                    Cluster { value: far(&mut rng), share: 0.15 },
                ],
                0.05,
            ),
        };
        (clusters, probe_share)
    }

    /// Renders one observation run of device `idx`'s mix into a
    /// signature (`run` 0 is the reference; later runs are candidates).
    ///
    /// Cluster *positions* belong to the mix and are stable across runs
    /// — a device's periodic timing does not drift day to day — while
    /// the per-cluster observation *counts* carry the run noise, the way
    /// real detection windows see the same behaviour with different
    /// sample counts.
    fn observe(&self, idx: usize, run: u64) -> Signature {
        let (clusters, probe_share) = self.mix(idx);
        let mut noise = InstanceRng::new(
            self.seed ^ 0x0B5E_52E5 ^ run.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            idx as u64,
        );
        let bins = Self::config().bins;
        let total = 200 + noise.below(60);
        // A lossy capture path misses `capture_loss` of every cluster's
        // frames: the histograms thin uniformly (peak positions stay),
        // exactly like sniffer-side loss on periodic traffic.
        let captured = 1.0 - self.capture_loss;
        let mut data = Histogram::new(bins.clone());
        for cluster in &clusters {
            let n = (total as f64) * cluster.share * captured;
            // Each cluster straddles three fixed sub-positions (the slot
            // comb of periodic traffic); the run noise perturbs how many
            // observations land on each, not where they land.
            for (offset, weight) in [(-12.0, 0.25), (0.0, 0.5), (12.0, 0.25)] {
                let count = (n * weight * (0.8 + 0.4 * noise.f64())).round().max(1.0) as u64;
                data.add_n((cluster.value + offset).clamp(0.0, 2499.0), count);
            }
        }
        let mut hists = BTreeMap::new();
        if probe_share > 0.0 {
            let mut probe = Histogram::new(bins);
            let n = ((total as f64) * probe_share * captured * (0.8 + 0.4 * noise.f64()))
                .round()
                .max(1.0);
            probe.add_n((clusters[0].value * 0.5).clamp(0.0, 2499.0), n as u64);
            hists.insert(FrameKind::ProbeReq, probe);
        }
        hists.insert(FrameKind::Data, data);
        Signature::from_histograms(hists)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_core::{MatchScratch, RowPrecision, SimilarityMeasure};

    /// The CI smoke test for the sharded store at (scaled-down)
    /// metropolis scale: pruned top-k decisions equal the dense sweep's
    /// on every probe, most shards are actually pruned, and
    /// re-observation still identifies the right device.
    #[test]
    fn metropolis_pruned_sweep_matches_dense_and_prunes() {
        let scenario = MetropolisScenario::with_devices(11, 2000);
        let db = scenario.reference_db(MatchConfig::default().with_shards(32));
        assert_eq!(db.len(), 2000);
        let mut scratch = MatchScratch::new();
        let mut pruned_total = 0usize;
        let mut swept_total = 0usize;
        let mut self_hits = 0usize;
        for probe_idx in (0..2000).step_by(97) {
            let cand = scenario.candidate(probe_idx, 3);
            let top = db.match_topk(&cand, 5, SimilarityMeasure::Cosine, &mut scratch);
            let stats = scratch.prune_stats();
            pruned_total += stats.pruned_shards;
            swept_total += stats.swept_shards;
            let dense = db.match_signature(&cand, SimilarityMeasure::Cosine);
            assert_eq!(top, dense.top(5), "probe {probe_idx}: pruned ≠ dense");
            if top.first().map(|&(d, _)| d) == Some(scenario.device(probe_idx)) {
                self_hits += 1;
            }
        }
        assert!(
            pruned_total > swept_total,
            "expected most shards pruned at metropolis scale: {pruned_total} pruned vs {swept_total} swept"
        );
        // Re-observations of heterogeneous mixes identify themselves in
        // the vast majority of cases (clusters can collide by chance).
        assert!(self_hits >= 17, "only {self_hits}/21 probes self-identified");
    }

    /// The tile-wide pruned sweep at the detection phase's natural
    /// width: a full K=8 tile of probes over a metropolis slice must
    /// skip at least half of the (candidate, shard) work — in both
    /// precision tiers — while every candidate's top-k still equals its
    /// dense ranking.
    #[test]
    fn metropolis_tile_sweep_prunes_half_at_k8() {
        let scenario = MetropolisScenario::with_devices(11, 2000);
        for precision in [RowPrecision::F32, RowPrecision::U8] {
            let db = scenario.reference_db(
                MatchConfig::default().with_shards(32).with_precision(precision),
            );
            let mut scratch = MatchScratch::new();
            let cands: Vec<Signature> =
                (0..8).map(|i| scenario.candidate(i * 251, 3)).collect();
            let tiled = db.match_topk_tile(&cands, 8, SimilarityMeasure::Cosine, &mut scratch);
            let stats = scratch.prune_stats();
            for (ci, (cand, got)) in cands.iter().zip(&tiled).enumerate() {
                let dense = db.match_signature(cand, SimilarityMeasure::Cosine);
                assert_eq!(got, &dense.top(8), "{precision:?}: candidate {ci}");
            }
            assert!(
                stats.pruned_fraction() >= 0.5,
                "{precision:?}: K=8 tile pruned only {:.3} of shard visits ({stats:?})",
                stats.pruned_fraction()
            );
        }
    }

    #[test]
    fn metropolis_is_seed_deterministic() {
        let a = MetropolisScenario::with_devices(5, 50);
        let b = MetropolisScenario::with_devices(5, 50);
        for idx in [0usize, 7, 49] {
            assert_eq!(a.signature(idx), b.signature(idx));
            assert_eq!(a.candidate(idx, 2), b.candidate(idx, 2));
            // Candidates differ from references (fresh noise) but not
            // beyond recognition.
            assert_ne!(a.signature(idx), a.candidate(idx, 2));
        }
        let c = MetropolisScenario::with_devices(6, 50);
        assert_ne!(a.signature(3), c.signature(3));
    }

    /// The degraded-capture variant of the metropolis smoke: candidates
    /// observed through 50 % capture loss, matched against the pristine
    /// reference store. Identification survives because loss thins
    /// evidence without moving timing peaks — the similarity measure is
    /// scale-normalised.
    #[test]
    fn metropolis_candidates_survive_heavy_capture_loss() {
        let clean = MetropolisScenario::with_devices(11, 1000);
        let degraded = clean.clone().with_capture_loss(0.5);
        assert_eq!(degraded.capture_loss, 0.5);
        // The degraded observation really is thinner.
        assert!(
            degraded.candidate(0, 3).observation_count() < clean.candidate(0, 3).observation_count()
        );
        // Loss 0 is bit-identical to the pristine scenario.
        assert_eq!(clean.clone().with_capture_loss(0.0).signature(7), clean.signature(7));

        let db = clean.reference_db(MatchConfig::default().with_shards(16));
        let mut scratch = MatchScratch::new();
        let mut self_hits = 0usize;
        let probes: Vec<usize> = (0..1000).step_by(97).collect();
        for &probe_idx in &probes {
            let cand = degraded.candidate(probe_idx, 3);
            let top = db.match_topk(&cand, 1, SimilarityMeasure::Cosine, &mut scratch);
            if top.first().map(|&(d, _)| d) == Some(clean.device(probe_idx)) {
                self_hits += 1;
            }
        }
        assert!(
            self_hits * 10 >= probes.len() * 8,
            "degraded identification floor: {self_hits}/{} probes self-identified",
            probes.len()
        );
    }

    #[test]
    fn metropolis_shape_is_the_headline_population() {
        let m = MetropolisScenario::metropolis(1);
        assert_eq!(m.devices, 50_000);
        // Distinct, stable addresses across the population.
        assert_ne!(m.device(0), m.device(1));
        assert_eq!(m.device(42), MetropolisScenario::metropolis(9).device(42));
    }
}
