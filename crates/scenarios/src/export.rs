//! pcap export and import: turning simulated captures into standard
//! Radiotap pcap files and back.
//!
//! Exported files are readable by tcpdump/Wireshark and by the paper's own
//! libpcap tooling. Frames are reconstructed with synthetic (zero-filled)
//! bodies of the correct length; all fingerprint-relevant observables —
//! timestamps, rates, sizes, addresses, types, flags — round-trip exactly.

use std::path::Path;

use wifiprint_ieee80211::{Frame, FrameControl, FrameKind, MacAddr, Nanos};
use wifiprint_pcap::{LinkType, PcapError, Reader, Record, Writer};
use wifiprint_radiotap::{CapturedFrame, RxFlags, RxInfo};

/// Reconstructs a wire-format frame from capture metadata.
///
/// Bodies are zero-filled to the captured size; the FCS is freshly
/// computed, matching the `FCS_INCLUDED` Radiotap flag we set.
pub fn reconstruct_frame(cf: &CapturedFrame) -> Frame {
    let anon = MacAddr::ZERO;
    let tx = cf.transmitter.unwrap_or(anon);
    let header_and_fcs = |base: usize| cf.size.saturating_sub(base);
    let frame = match cf.kind {
        FrameKind::Ack => Frame::ack(cf.receiver),
        FrameKind::Cts => Frame::cts(cf.receiver, 0),
        FrameKind::Rts => Frame::rts(cf.receiver, tx, 0),
        FrameKind::Beacon => Frame::beacon(tx, vec![0; header_and_fcs(28)]),
        FrameKind::ProbeReq => Frame::probe_req(tx, vec![0; header_and_fcs(28)]),
        FrameKind::ProbeResp => Frame::management(
            FrameKind::ProbeResp,
            cf.receiver,
            tx,
            tx,
            vec![0; header_and_fcs(28)],
        ),
        FrameKind::NullFunction => Frame::null_function(tx, cf.receiver, false),
        _ => {
            // Data-family frames: reconstruct the DS direction from the
            // receiver (group-addressed receivers mean a FromDS relay).
            let body = vec![0; header_and_fcs(28)];
            if cf.receiver.is_multicast() {
                Frame::data_from_ds(cf.receiver, tx, tx, body.len())
            } else if cf.dest_group {
                Frame::data_to_ds(tx, cf.receiver, MacAddr::BROADCAST, body.len())
            } else {
                Frame::data_to_ds(tx, cf.receiver, cf.receiver, body.len())
            }
        }
    };
    let fc = frame.frame_control();
    let with_retry: FrameControl = fc.with_retry(cf.retry);
    frame.with_fc(with_retry)
}

/// Converts one captured frame into a Radiotap pcap record.
pub fn to_pcap_record(cf: &CapturedFrame) -> Record {
    let info = RxInfo {
        tsft_us: Some(cf.t_end.as_micros()),
        rate: Some(cf.rate),
        channel_mhz: Some(RxInfo::channel_to_mhz(6)),
        signal_dbm: Some(cf.signal_dbm),
        noise_dbm: Some(-95),
        antenna: Some(0),
        flags: RxFlags::FCS_INCLUDED,
    };
    let mut bytes = info.to_radiotap();
    bytes.extend_from_slice(&reconstruct_frame(cf).to_bytes());
    Record::from_micros(cf.t_end.as_micros(), bytes)
}

/// Writes captured frames to a Radiotap pcap file.
///
/// # Errors
///
/// Any I/O error from the filesystem.
pub fn write_pcap<P: AsRef<Path>>(path: P, frames: &[CapturedFrame]) -> Result<(), PcapError> {
    let file = std::fs::File::create(path)?;
    let mut writer = Writer::new(std::io::BufWriter::new(file), LinkType::Ieee80211Radiotap)?;
    for cf in frames {
        writer.write_record(&to_pcap_record(cf))?;
    }
    writer.flush()
}

/// Reads a Radiotap pcap file back into captured frames.
///
/// Records that fail to decode (foreign link types, corrupt frames) are
/// skipped; the second return value counts them.
///
/// # Errors
///
/// I/O or pcap-format errors. Decoding errors of individual packets are
/// not fatal.
pub fn read_pcap<P: AsRef<Path>>(path: P) -> Result<(Vec<CapturedFrame>, usize), PcapError> {
    let file = std::fs::File::open(path)?;
    let mut reader = Reader::new(std::io::BufReader::new(file))?;
    let mut frames = Vec::new();
    let mut skipped = 0usize;
    while let Some(record) = reader.next_record()? {
        let fallback = Nanos::from_micros(record.timestamp_micros());
        match CapturedFrame::from_radiotap_packet(&record.data, fallback) {
            Ok(cf) => frames.push(cf),
            Err(_) => skipped += 1,
        }
    }
    Ok((frames, skipped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conference::ConferenceScenario;
    use crate::office::OfficeScenario;
    use proptest::prelude::*;

    #[test]
    fn pcap_round_trip_preserves_observables() {
        let trace = OfficeScenario::small(17, 10, 5).run_collect();
        assert!(!trace.frames.is_empty());
        let dir = std::env::temp_dir().join("wifiprint-scenarios-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("office-small.pcap");
        write_pcap(&path, &trace.frames).unwrap();

        let (back, skipped) = read_pcap(&path).unwrap();
        assert_eq!(skipped, 0);
        assert_eq!(back.len(), trace.frames.len());
        for (orig, rt) in trace.frames.iter().zip(&back) {
            assert_eq!(rt.t_end.as_micros(), orig.t_end.as_micros());
            assert_eq!(rt.rate, orig.rate);
            assert_eq!(rt.size, orig.size, "size mismatch for {:?}", orig.kind);
            assert_eq!(rt.kind, orig.kind);
            assert_eq!(rt.transmitter, orig.transmitter);
            assert_eq!(rt.receiver, orig.receiver);
            assert_eq!(rt.retry, orig.retry);
            assert_eq!(rt.signal_dbm, orig.signal_dbm);
        }
        std::fs::remove_file(&path).ok();
    }

    // Property test: write → read preserves EVERY CapturedFrame field,
    // on office and conference traces across arbitrary seeds and sizes.
    // Timestamps are compared at pcap's microsecond resolution (the
    // simulator's sub-µs remainder is the one quantisation the format
    // imposes); air_time is re-derived from (rate, size) on decode, so
    // field-equality follows from rate/size equality.
    proptest! {
        #[test]
        fn pcap_round_trip_preserves_every_field(
            seed in 0u64..1000,
            conference in any::<bool>(),
            secs in 5u64..12,
            devices in 3usize..7,
        ) {
            let trace = if conference {
                ConferenceScenario::small(seed, secs, devices).run_collect()
            } else {
                OfficeScenario::small(seed, secs, devices).run_collect()
            };
            prop_assert!(!trace.frames.is_empty());

            let dir = std::env::temp_dir().join("wifiprint-scenarios-proptest");
            std::fs::create_dir_all(&dir).unwrap();
            let path = dir.join(format!("roundtrip-{seed}-{conference}-{secs}-{devices}.pcap"));
            write_pcap(&path, &trace.frames).unwrap();
            let (back, skipped) = read_pcap(&path).unwrap();
            std::fs::remove_file(&path).ok();

            prop_assert_eq!(skipped, 0);
            prop_assert_eq!(back.len(), trace.frames.len());
            for (orig, rt) in trace.frames.iter().zip(&back) {
                let mut want = *orig;
                // The pcap timestamp (and the Radiotap TSFT we emit) is
                // microseconds; truncate the original to the format's
                // resolution before demanding *whole-struct* equality.
                want.t_end = Nanos::from_micros(orig.t_end.as_micros());
                // air_time is derived, not stored: recompute it the way
                // the decoder does.
                want.air_time =
                    CapturedFrame::from_frame(&reconstruct_frame(orig), orig.rate, want.t_end, orig.signal_dbm)
                        .air_time;
                prop_assert_eq!(rt, &want, "seed {} kind {:?}", seed, orig.kind);
            }
        }
    }

    #[test]
    fn reconstructed_frames_have_valid_fcs() {
        let trace = OfficeScenario::small(18, 5, 3).run_collect();
        for cf in trace.frames.iter().take(200) {
            let bytes = reconstruct_frame(cf).to_bytes();
            assert!(Frame::verify_fcs(&bytes), "{:?}", cf.kind);
            assert_eq!(bytes.len(), cf.size, "wire length for {:?}", cf.kind);
        }
    }
}
