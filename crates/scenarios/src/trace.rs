//! Common trace infrastructure: scenario output types and the sim
//! runners — including [`run_engine`], which streams a simulation
//! straight into a fingerprinting [`Engine`] without collecting the
//! trace.

use std::collections::BTreeMap;

use wifiprint_core::{Engine, EngineError, Event, MultiEngine, MultiEvent};
use wifiprint_ieee80211::{MacAddr, Nanos};
use wifiprint_netsim::{SimStats, Simulator};
use wifiprint_radiotap::CapturedFrame;

/// Ground truth and statistics for a generated trace.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Simulator statistics.
    pub stats: SimStats,
    /// Device address → profile name, for ground-truth checks.
    pub device_profiles: BTreeMap<MacAddr, String>,
    /// The APs present in the trace.
    pub aps: Vec<MacAddr>,
    /// The trace duration.
    pub duration: Nanos,
}

/// A fully collected trace: every captured frame in timestamp order plus
/// the report.
///
/// For very long scenarios prefer the streaming entry points, which avoid
/// holding millions of frames in memory.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Captured frames in timestamp order.
    pub frames: Vec<CapturedFrame>,
    /// Ground truth and statistics.
    pub report: TraceReport,
}

impl Trace {
    /// The set of transmitter addresses appearing in the trace.
    pub fn transmitters(&self) -> BTreeMap<MacAddr, usize> {
        let mut out = BTreeMap::new();
        for f in &self.frames {
            if let Some(t) = f.transmitter {
                *out.entry(t).or_insert(0) += 1;
            }
        }
        out
    }
}

/// Runs a prepared simulator, streaming captures into `sink`.
pub fn run_streaming(
    mut sim: Simulator,
    duration: Nanos,
    device_profiles: BTreeMap<MacAddr, String>,
    aps: Vec<MacAddr>,
    sink: &mut dyn FnMut(&CapturedFrame),
) -> TraceReport {
    let stats = sim.run(sink);
    TraceReport { stats, device_profiles, aps, duration }
}

/// Runs a prepared simulator, collecting all captures.
pub fn run_collect(
    sim: Simulator,
    duration: Nanos,
    device_profiles: BTreeMap<MacAddr, String>,
    aps: Vec<MacAddr>,
) -> Trace {
    let mut frames = Vec::new();
    let report = run_streaming(sim, duration, device_profiles, aps, &mut |f| frames.push(*f));
    Trace { frames, report }
}

/// Runs a prepared simulator, streaming every capture straight into a
/// fingerprinting [`Engine`] — the online deployment shape: monitor →
/// engine, no trace collection. The engine is *not* finished, so a
/// caller can run several scenarios into one engine before sealing the
/// final window with [`Engine::finish`].
///
/// Built on [`run_streaming`]: the sink observes each frame and latches
/// the first engine error (subsequent frames are dropped, as a live
/// capture would drop them once its consumer died).
///
/// # Errors
///
/// The first [`Engine::observe`] error, after the simulation completes.
pub fn run_engine(
    sim: Simulator,
    duration: Nanos,
    device_profiles: BTreeMap<MacAddr, String>,
    aps: Vec<MacAddr>,
    engine: &mut Engine,
) -> Result<(Vec<Event>, TraceReport), EngineError> {
    let mut events = Vec::new();
    let mut failure: Option<EngineError> = None;
    let report = run_streaming(sim, duration, device_profiles, aps, &mut |f| {
        if failure.is_none() {
            match engine.observe(f) {
                Ok(mut ev) => events.append(&mut ev),
                Err(e) => failure = Some(e),
            }
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok((events, report)),
    }
}

/// Runs a prepared simulator, streaming every capture straight into a
/// fused five-parameter [`MultiEngine`] — one header parse per frame
/// feeding every network parameter, fused decisions as windows close.
/// Like [`run_engine`], the engine is *not* finished, so a caller can
/// run several scenarios into one engine before sealing the final window
/// with [`MultiEngine::finish`].
///
/// # Errors
///
/// The first [`MultiEngine::observe`] error, after the simulation
/// completes.
pub fn run_multi_engine(
    sim: Simulator,
    duration: Nanos,
    device_profiles: BTreeMap<MacAddr, String>,
    aps: Vec<MacAddr>,
    engine: &mut MultiEngine,
) -> Result<(Vec<MultiEvent>, TraceReport), EngineError> {
    let mut events = Vec::new();
    let mut failure: Option<EngineError> = None;
    let report = run_streaming(sim, duration, device_profiles, aps, &mut |f| {
        if failure.is_none() {
            match engine.observe(f) {
                Ok(mut ev) => events.append(&mut ev),
                Err(e) => failure = Some(e),
            }
        }
    });
    match failure {
        Some(e) => Err(e),
        None => Ok((events, report)),
    }
}
