//! Common trace infrastructure: scenario output types and the sim runner.

use std::collections::BTreeMap;

use wifiprint_ieee80211::{MacAddr, Nanos};
use wifiprint_netsim::{SimStats, Simulator};
use wifiprint_radiotap::CapturedFrame;

/// Ground truth and statistics for a generated trace.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Simulator statistics.
    pub stats: SimStats,
    /// Device address → profile name, for ground-truth checks.
    pub device_profiles: BTreeMap<MacAddr, String>,
    /// The APs present in the trace.
    pub aps: Vec<MacAddr>,
    /// The trace duration.
    pub duration: Nanos,
}

/// A fully collected trace: every captured frame in timestamp order plus
/// the report.
///
/// For very long scenarios prefer the streaming entry points, which avoid
/// holding millions of frames in memory.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Captured frames in timestamp order.
    pub frames: Vec<CapturedFrame>,
    /// Ground truth and statistics.
    pub report: TraceReport,
}

impl Trace {
    /// The set of transmitter addresses appearing in the trace.
    pub fn transmitters(&self) -> BTreeMap<MacAddr, usize> {
        let mut out = BTreeMap::new();
        for f in &self.frames {
            if let Some(t) = f.transmitter {
                *out.entry(t).or_insert(0) += 1;
            }
        }
        out
    }
}

/// Runs a prepared simulator, streaming captures into `sink`.
pub fn run_streaming(
    mut sim: Simulator,
    duration: Nanos,
    device_profiles: BTreeMap<MacAddr, String>,
    aps: Vec<MacAddr>,
    sink: &mut dyn FnMut(&CapturedFrame),
) -> TraceReport {
    let stats = sim.run(sink);
    TraceReport { stats, device_profiles, aps, duration }
}

/// Runs a prepared simulator, collecting all captures.
pub fn run_collect(
    sim: Simulator,
    duration: Nanos,
    device_profiles: BTreeMap<MacAddr, String>,
    aps: Vec<MacAddr>,
) -> Trace {
    let mut frames = Vec::new();
    let report = run_streaming(sim, duration, device_profiles, aps, &mut |f| frames.push(*f));
    Trace { frames, report }
}
