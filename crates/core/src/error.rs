//! The crate-wide error hierarchy.
//!
//! [`CoreError`] covers the data-level failures of the fingerprinting
//! primitives (configuration, signature building, reference-database
//! lifecycle); [`EngineError`](crate::engine::EngineError) wraps it with
//! the streaming-ingest failures of the [`engine`](crate::engine) facade.
//! Both replace the previous mix of panics and silent `Option`s so
//! callers can distinguish "bad input" from "no data".

use std::fmt;

use wifiprint_ieee80211::MacAddr;

use crate::db::DbCodecError;

/// A data-level failure of the fingerprinting primitives.
#[derive(Debug)]
#[non_exhaustive]
pub enum CoreError {
    /// An [`EvalConfig`](crate::EvalConfig) that cannot drive an
    /// evaluation (zero-length detection window, empty bin spec, …).
    InvalidConfig {
        /// What makes the configuration unusable.
        reason: &'static str,
    },
    /// A signature with zero observations was offered to the reference
    /// database; an all-zero row can never match anything.
    EmptySignature {
        /// The device whose signature was empty.
        device: MacAddr,
    },
    /// A learning phase ended with no device meeting the minimum
    /// observation floor, so there is nothing to enroll.
    NoQualifiedDevices {
        /// Devices that were observed at all.
        tracked: usize,
        /// The configured observation floor none of them reached.
        min_observations: u64,
    },
    /// A matching or evaluation step needs a non-empty reference
    /// database.
    EmptyDatabase,
    /// A mutation was attempted on a reference database that has been
    /// frozen for the detection phase
    /// (see [`ReferenceDb::freeze`](crate::ReferenceDb::freeze)).
    FrozenDatabase {
        /// The device the rejected mutation concerned.
        device: Option<MacAddr>,
    },
    /// Encoding or decoding a persisted database failed.
    Codec(DbCodecError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            CoreError::EmptySignature { device } => {
                write!(f, "signature for {device} has no observations")
            }
            CoreError::NoQualifiedDevices { tracked, min_observations } => write!(
                f,
                "no device qualified for enrollment ({tracked} tracked, \
                 {min_observations}-observation floor)"
            ),
            CoreError::EmptyDatabase => write!(f, "reference database is empty"),
            CoreError::FrozenDatabase { device: Some(d) } => {
                write!(f, "reference database is frozen; cannot mutate entry for {d}")
            }
            CoreError::FrozenDatabase { device: None } => {
                write!(f, "reference database is frozen")
            }
            CoreError::Codec(e) => write!(f, "database codec: {e}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DbCodecError> for CoreError {
    fn from(e: DbCodecError) -> Self {
        CoreError::Codec(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(CoreError, &str)> = vec![
            (CoreError::InvalidConfig { reason: "zero-length window" }, "zero-length window"),
            (
                CoreError::EmptySignature { device: MacAddr::from_index(3) },
                "no observations",
            ),
            (
                CoreError::NoQualifiedDevices { tracked: 4, min_observations: 50 },
                "4 tracked",
            ),
            (CoreError::EmptyDatabase, "empty"),
            (CoreError::FrozenDatabase { device: None }, "frozen"),
            (
                CoreError::FrozenDatabase { device: Some(MacAddr::from_index(1)) },
                "cannot mutate",
            ),
        ];
        for (err, needle) in cases {
            let msg = err.to_string();
            assert!(msg.contains(needle), "{msg:?} should contain {needle:?}");
        }
    }

    #[test]
    fn codec_errors_chain_their_source() {
        let codec = DbCodecError::Parse { line: 7, message: "bad header".into() };
        let err = CoreError::from(codec);
        assert!(err.to_string().contains("line 7"));
        assert!(std::error::Error::source(&err).is_some());
    }
}
