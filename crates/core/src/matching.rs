//! The reference database and Algorithm 1 (signature matching).
//!
//! # Structure-of-arrays layout
//!
//! Matching one candidate against `N` references evaluates
//! `Σ_{ftype} weight^ftype(rᵢ) · sim(P^ftype(c), P^ftype(rᵢ))` for every
//! reference `rᵢ` — the `O(windows × devices × bins)` hot path of the
//! whole pipeline. To make that sweep cache-friendly, [`ReferenceDb`]
//! does **not** score against per-device `BTreeMap`s. Instead it packs,
//! for each frame kind, every device's frequency vector into one
//! contiguous row-major matrix:
//!
//! ```text
//! KindBlock(Data):   rows  = [ dev₀ bins… | dev₁ bins… | … | devₙ bins… ]
//!                    weights = [ w₀, w₁, …, wₙ ]      (reference weights)
//! KindBlock(Beacon): rows  = [ … ]
//! ```
//!
//! Devices missing a kind hold weight 0 and an all-zero row; the sweep
//! skips them by the weight test alone, so the per-pair kernel
//! ([`SimilarityMeasure`]'s dense form) runs without per-row zero scans
//! or length checks. Each block also stores the precomputed L2 norm of
//! every row, so for the paper's cosine measure the per-pair kernel
//! collapses to a single unrolled dot product (the candidate's norm is
//! hoisted out of the device loop). One candidate is then matched by
//! walking each block linearly — a matrix–vector sweep that stays in
//! cache and feeds the FPU independent accumulator chains.
//!
//! # Scratch buffers: allocation-free steady state
//!
//! [`ReferenceDb::match_signature_with`] writes scores into a caller-owned
//! [`MatchScratch`] and returns a borrowed [`MatchView`]. After the first
//! call warms the scratch's capacity, matching performs **no heap
//! allocation**: candidate frequency vectors are cached borrows
//! ([`Histogram::frequencies`](crate::Histogram::frequencies)), scores
//! accumulate into the reused buffer, and the view borrows rather than
//! copies. Use one scratch per worker thread:
//!
//! ```
//! use wifiprint_core::{EvalConfig, MatchScratch, NetworkParameter, ReferenceDb, Signature,
//!     SimilarityMeasure};
//! use wifiprint_ieee80211::{FrameKind, MacAddr};
//!
//! let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize);
//! let mut sig = Signature::new();
//! for _ in 0..60 { sig.record(FrameKind::Data, 1000.0, &cfg); }
//! let mut db = ReferenceDb::new();
//! db.insert(MacAddr::from_index(1), sig.clone());
//!
//! let mut scratch = MatchScratch::new();
//! for _window in 0..3 {
//!     let view = db.match_signature_with(&sig, SimilarityMeasure::Cosine, &mut scratch);
//!     assert_eq!(view.best().unwrap().0, MacAddr::from_index(1));
//! }
//! ```
//!
//! [`ReferenceDb::match_signature`] remains as a convenience that owns its
//! result (one allocation per call); [`ReferenceDb::match_batch`] scores
//! many candidates at once and, with the `parallel` feature (default),
//! fans the batch out across threads with one scratch per worker.

use std::collections::BTreeMap;

use wifiprint_ieee80211::{FrameKind, MacAddr};

use crate::signature::Signature;
use crate::similarity::SimilarityMeasure;

/// One frame kind's slice of the reference matrix: every device's
/// frequency vector for that kind, packed row-major, plus the reference
/// weights `weight^ftype(rᵢ)`.
#[derive(Debug, Clone)]
struct KindBlock {
    kind: FrameKind,
    /// Row width. Blocks are keyed on `(kind, bins)`: references binned
    /// with a different spec for the same kind land in a sibling block,
    /// so heterogeneous databases still score every compatible pair.
    bins: usize,
    /// `weights[i]` is device `i`'s weight for this kind (0 ⇒ skip row).
    weights: Vec<f64>,
    /// `rows[i*bins..(i+1)*bins]` is device `i`'s frequency vector.
    rows: Vec<f64>,
    /// `norms[i]` is the L2 norm of row `i`, precomputed at pack time so
    /// the cosine sweep reduces to one dot product per pair.
    norms: Vec<f64>,
}

/// The reference database of the learning phase (§IV-B): one signature per
/// known device, packed into per-frame-kind matrices (see the [module
/// docs](self)).
///
/// # Example
///
/// ```
/// use wifiprint_core::{EvalConfig, NetworkParameter, ReferenceDb, Signature, SimilarityMeasure};
/// use wifiprint_ieee80211::{FrameKind, MacAddr};
///
/// let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize);
/// let mut sig = Signature::new();
/// for _ in 0..60 { sig.record(FrameKind::Data, 1000.0, &cfg); }
///
/// let mut db = ReferenceDb::new();
/// let dev = MacAddr::from_index(1);
/// db.insert(dev, sig.clone());
///
/// let outcome = db.match_signature(&sig, SimilarityMeasure::Cosine);
/// assert_eq!(outcome.best().unwrap().0, dev);
/// assert!((outcome.best().unwrap().1 - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReferenceDb {
    /// Reference devices in ascending address order; `signatures` and the
    /// block rows are parallel to this.
    devices: Vec<MacAddr>,
    signatures: Vec<Signature>,
    /// Per-frame-kind matrices, ascending by kind.
    blocks: Vec<KindBlock>,
}

impl ReferenceDb {
    /// An empty database.
    pub fn new() -> Self {
        ReferenceDb::default()
    }

    /// Builds a database from per-device signatures (e.g. the output of
    /// [`SignatureBuilder::finish`](crate::SignatureBuilder::finish)),
    /// packing the reference matrix once.
    pub fn from_signatures(signatures: BTreeMap<MacAddr, Signature>) -> Self {
        let mut db = ReferenceDb::new();
        for (device, sig) in signatures {
            // Entries arrive in ascending order, so each lands at the end.
            db.devices.push(device);
            db.signatures.push(sig);
        }
        db.rebuild();
        db
    }

    /// Inserts or replaces a device's reference signature, repacking the
    /// reference matrix.
    ///
    /// Returns the previous signature if the device was already present.
    /// Each insert repacks in `O(total bins)`; to build a large database,
    /// prefer [`ReferenceDb::from_signatures`], which packs once.
    pub fn insert(&mut self, device: MacAddr, signature: Signature) -> Option<Signature> {
        let previous = match self.devices.binary_search(&device) {
            Ok(i) => Some(std::mem::replace(&mut self.signatures[i], signature)),
            Err(i) => {
                self.devices.insert(i, device);
                self.signatures.insert(i, signature);
                None
            }
        };
        self.rebuild();
        previous
    }

    /// Removes a device, returning its signature.
    pub fn remove(&mut self, device: &MacAddr) -> Option<Signature> {
        match self.devices.binary_search(device) {
            Ok(i) => {
                self.devices.remove(i);
                let sig = self.signatures.remove(i);
                self.rebuild();
                Some(sig)
            }
            Err(_) => None,
        }
    }

    /// The signature of a device, if present.
    pub fn get(&self, device: &MacAddr) -> Option<&Signature> {
        self.devices.binary_search(device).ok().map(|i| &self.signatures[i])
    }

    /// `true` if the device has a reference signature.
    pub fn contains(&self, device: &MacAddr) -> bool {
        self.devices.binary_search(device).is_ok()
    }

    /// Number of reference devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Iterates `(device, signature)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (MacAddr, &Signature)> {
        self.devices.iter().copied().zip(&self.signatures)
    }

    /// The devices in the database, in address order.
    pub fn devices(&self) -> impl Iterator<Item = MacAddr> + '_ {
        self.devices.iter().copied()
    }

    /// Repacks the per-kind matrices from the current signatures.
    fn rebuild(&mut self) {
        self.blocks.clear();
        let n = self.devices.len();
        // One block per observed (kind, row width): databases mixing bin
        // specs for the same kind keep every reference scoreable.
        let mut kinds: BTreeMap<(FrameKind, usize), ()> = BTreeMap::new();
        for sig in &self.signatures {
            for (kind, hist) in sig.iter() {
                kinds.insert((kind, hist.frequencies().len()), ());
            }
        }
        for (kind, bins) in kinds.into_keys() {
            let mut weights = vec![0.0; n];
            let mut rows = vec![0.0; n * bins];
            let mut norms = vec![0.0; n];
            for (i, sig) in self.signatures.iter().enumerate() {
                if let Some(hist) = sig.histogram(kind) {
                    let freqs = hist.frequencies();
                    if freqs.len() == bins && hist.total() > 0 {
                        weights[i] = sig.weight(kind);
                        rows[i * bins..(i + 1) * bins].copy_from_slice(freqs);
                        norms[i] = dot(freqs, freqs).sqrt();
                    }
                }
            }
            self.blocks.push(KindBlock { kind, bins, weights, rows, norms });
        }
    }

    /// Algorithm 1: matches a candidate signature against every reference.
    ///
    /// For each reference `rᵢ` the score is
    /// `simᵢ = Σ_{ftype ∈ Sig(c)} weight^ftype(rᵢ) · sim(hist^ftype(c), hist^ftype(rᵢ))`,
    /// i.e. the per-frame-type histogram similarities weighted by the
    /// **reference's** frame-type distribution. Scores lie in `[0, 1]`.
    ///
    /// Convenience form that allocates its outcome; the hot path is
    /// [`ReferenceDb::match_signature_with`].
    pub fn match_signature(&self, candidate: &Signature, measure: SimilarityMeasure) -> MatchOutcome {
        let mut scratch = MatchScratch::new();
        self.match_signature_with(candidate, measure, &mut scratch);
        MatchOutcome { sims: std::mem::take(&mut scratch.pairs) }
    }

    /// Algorithm 1 without per-call allocation: scores accumulate into
    /// `scratch` (reused across calls) and the returned [`MatchView`]
    /// borrows from it.
    pub fn match_signature_with<'s>(
        &self,
        candidate: &Signature,
        measure: SimilarityMeasure,
        scratch: &'s mut MatchScratch,
    ) -> MatchView<'s> {
        let n = self.devices.len();
        scratch.scores.clear();
        scratch.scores.resize(n, 0.0);
        for (kind, hist) in candidate.iter() {
            if hist.total() == 0 {
                continue; // an empty candidate histogram matches nothing
            }
            let cand = hist.frequencies();
            // Blocks are sorted by (kind, bins); only the block matching
            // the candidate's row width can score (incompatible binning
            // carries no information).
            let Ok(block_idx) = self
                .blocks
                .binary_search_by(|b| (b.kind, b.bins).cmp(&(kind, cand.len())))
            else {
                continue;
            };
            let block = &self.blocks[block_idx];
            // The matrix–vector sweep: one linear pass over this kind's
            // packed rows. Zero-weight rows are absent devices.
            if measure == SimilarityMeasure::Cosine {
                // Row norms were fixed at pack time and the candidate norm
                // is invariant across rows, so the per-pair kernel is one
                // dot product.
                let cand_norm = dot(cand, cand).sqrt();
                for (i, (&weight, row)) in
                    block.weights.iter().zip(block.rows.chunks_exact(block.bins)).enumerate()
                {
                    if weight == 0.0 {
                        continue;
                    }
                    let cos = (dot(cand, row) / (cand_norm * block.norms[i])).clamp(0.0, 1.0);
                    scratch.scores[i] += weight * cos;
                }
            } else {
                for (i, (&weight, row)) in
                    block.weights.iter().zip(block.rows.chunks_exact(block.bins)).enumerate()
                {
                    if weight == 0.0 {
                        continue;
                    }
                    scratch.scores[i] += weight * measure.compute_dense(cand, row);
                }
            }
        }
        scratch.pairs.clear();
        scratch
            .pairs
            .extend(self.devices.iter().copied().zip(scratch.scores.iter().copied()));
        MatchView { sims: &scratch.pairs }
    }

    /// Matches a batch of candidate signatures, returning one outcome per
    /// candidate in order. With the `parallel` feature (default) the batch
    /// is split across threads, one [`MatchScratch`] per worker; without
    /// it the batch runs serially on one reused scratch.
    pub fn match_batch(
        &self,
        candidates: &[Signature],
        measure: SimilarityMeasure,
    ) -> Vec<MatchOutcome> {
        crate::batch::map_with_scratch(candidates, MatchScratch::new, |scratch, cand| {
            self.match_signature_with(cand, measure, scratch);
            MatchOutcome { sims: scratch.pairs.clone() }
        })
    }

    /// The pre-SoA matching path: per-call candidate frequency allocation
    /// and per-device frame-kind lookups, kept only so benchmarks can
    /// quantify what the matrix layout buys. Equivalent output to
    /// [`ReferenceDb::match_signature`].
    #[cfg(any(test, feature = "bench-baseline"))]
    pub fn match_signature_naive(
        &self,
        candidate: &Signature,
        measure: SimilarityMeasure,
    ) -> MatchOutcome {
        let cand_freqs: Vec<(FrameKind, Vec<f64>)> =
            candidate.iter().map(|(kind, hist)| (kind, hist.frequency_vec())).collect();
        let mut sims = Vec::with_capacity(self.devices.len());
        for (&device, sig) in self.devices.iter().zip(&self.signatures) {
            let mut sim = 0.0;
            for (kind, cand_freq) in &cand_freqs {
                if let Some(hist) = sig.histogram(*kind) {
                    sim += sig.weight(*kind) * measure.compute(cand_freq, hist.frequencies());
                }
            }
            sims.push((device, sim));
        }
        MatchOutcome { sims }
    }
}

/// Reusable buffers for [`ReferenceDb::match_signature_with`]: create one
/// per worker, reuse it for every window. Capacity grows to the database
/// size on first use and is retained afterwards, making the steady state
/// allocation-free.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Per-device accumulators, indexed like `ReferenceDb::devices`.
    scores: Vec<f64>,
    /// The `(device, similarity)` pairs the returned view exposes.
    pairs: Vec<(MacAddr, f64)>,
}

impl MatchScratch {
    /// Empty scratch; buffers are sized lazily by the first match.
    pub fn new() -> Self {
        MatchScratch::default()
    }
}

/// A borrowed view of one match's similarity vector (the zero-allocation
/// counterpart of [`MatchOutcome`]).
#[derive(Debug, Clone, Copy)]
pub struct MatchView<'a> {
    sims: &'a [(MacAddr, f64)],
}

impl MatchView<'_> {
    /// All `(reference device, similarity)` pairs, in database order.
    pub fn similarities(&self) -> &[(MacAddr, f64)] {
        self.sims
    }

    /// The similarity to one specific reference device.
    pub fn similarity_to(&self, device: &MacAddr) -> Option<f64> {
        similarity_to(self.sims, device)
    }

    /// The similarity test (§IV-B): references whose similarity is at
    /// least `threshold`.
    pub fn above_threshold(&self, threshold: f64) -> impl Iterator<Item = (MacAddr, f64)> + '_ {
        self.sims.iter().copied().filter(move |&(_, s)| s >= threshold)
    }

    /// The identification test (§IV-B): the single closest reference.
    ///
    /// Ties break toward the lower MAC address for determinism.
    pub fn best(&self) -> Option<(MacAddr, f64)> {
        best_of(self.sims)
    }

    /// An owned copy of this view.
    pub fn to_outcome(&self) -> MatchOutcome {
        MatchOutcome { sims: self.sims.to_vec() }
    }
}

/// The similarity vector `<sim₁, …, sim_N>` returned by Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOutcome {
    sims: Vec<(MacAddr, f64)>,
}

impl MatchOutcome {
    /// All `(reference device, similarity)` pairs, in database order.
    pub fn similarities(&self) -> &[(MacAddr, f64)] {
        &self.sims
    }

    /// The similarity to one specific reference device.
    pub fn similarity_to(&self, device: &MacAddr) -> Option<f64> {
        similarity_to(&self.sims, device)
    }

    /// The similarity test (§IV-B): references whose similarity is at
    /// least `threshold`.
    pub fn above_threshold(&self, threshold: f64) -> impl Iterator<Item = (MacAddr, f64)> + '_ {
        self.sims.iter().copied().filter(move |&(_, s)| s >= threshold)
    }

    /// The identification test (§IV-B): the single closest reference.
    ///
    /// Ties break toward the lower MAC address for determinism.
    pub fn best(&self) -> Option<(MacAddr, f64)> {
        best_of(&self.sims)
    }
}

/// Four-accumulator dot product: independent partial sums give the
/// backend the instruction-level parallelism a single-chain reduction
/// denies it (f64 adds cannot be reordered automatically).
#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    let chunks = a.len() / 4 * 4;
    for (ca, cb) in a[..chunks].chunks_exact(4).zip(b[..chunks].chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    for (x, y) in a[chunks..].iter().zip(&b[chunks..]) {
        acc[0] += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

fn similarity_to(sims: &[(MacAddr, f64)], device: &MacAddr) -> Option<f64> {
    // The vector is in ascending device order (database order).
    sims.binary_search_by(|(d, _)| d.cmp(device)).ok().map(|i| sims[i].1)
}

fn best_of(sims: &[(MacAddr, f64)]) -> Option<(MacAddr, f64)> {
    sims.iter().copied().max_by(|a, b| {
        a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(b.0.cmp(&a.0))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::params::NetworkParameter;

    fn cfg() -> EvalConfig {
        EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
    }

    fn sig_with(values: &[(FrameKind, f64, u64)]) -> Signature {
        let c = cfg();
        let mut sig = Signature::new();
        for &(kind, value, n) in values {
            for _ in 0..n {
                sig.record(kind, value, &c);
            }
        }
        sig
    }

    #[test]
    fn identical_signature_scores_one() {
        let sig = sig_with(&[(FrameKind::Data, 500.0, 30), (FrameKind::ProbeReq, 100.0, 10)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), sig.clone());
        let outcome = db.match_signature(&sig, SimilarityMeasure::Cosine);
        let (_, score) = outcome.best().unwrap();
        assert!((score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_histograms_score_zero() {
        let a = sig_with(&[(FrameKind::Data, 100.0, 10)]);
        let b = sig_with(&[(FrameKind::Data, 2000.0, 10)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), a);
        let outcome = db.match_signature(&b, SimilarityMeasure::Cosine);
        assert_eq!(outcome.best().unwrap().1, 0.0);
    }

    #[test]
    fn missing_frame_types_contribute_nothing() {
        // Reference only has Data; candidate only has ProbeReq.
        let r = sig_with(&[(FrameKind::Data, 100.0, 10)]);
        let c = sig_with(&[(FrameKind::ProbeReq, 100.0, 10)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), r);
        let outcome = db.match_signature(&c, SimilarityMeasure::Cosine);
        assert_eq!(outcome.similarities()[0].1, 0.0);
    }

    #[test]
    fn weights_come_from_the_reference() {
        // Reference: 90% Data at 100 µs, 10% ProbeReq at 200 µs.
        let r = sig_with(&[(FrameKind::Data, 100.0, 90), (FrameKind::ProbeReq, 200.0, 10)]);
        // Candidate matches only the ProbeReq histogram.
        let c = sig_with(&[(FrameKind::ProbeReq, 200.0, 50)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), r);
        let outcome = db.match_signature(&c, SimilarityMeasure::Cosine);
        // Score = weight_ref(ProbeReq) × 1.0 = 0.1.
        assert!((outcome.similarities()[0].1 - 0.1).abs() < 1e-9);
    }

    #[test]
    fn best_picks_highest_similarity() {
        let near = sig_with(&[(FrameKind::Data, 500.0, 40), (FrameKind::Data, 525.0, 10)]);
        let far = sig_with(&[(FrameKind::Data, 1500.0, 50)]);
        let probe = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut db = ReferenceDb::new();
        let d_near = MacAddr::from_index(1);
        let d_far = MacAddr::from_index(2);
        db.insert(d_near, near);
        db.insert(d_far, far);
        let outcome = db.match_signature(&probe, SimilarityMeasure::Cosine);
        assert_eq!(outcome.best().unwrap().0, d_near);
        assert!(outcome.similarity_to(&d_far).unwrap() < outcome.similarity_to(&d_near).unwrap());
    }

    #[test]
    fn above_threshold_filters() {
        let base = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), base.clone());
        db.insert(MacAddr::from_index(2), sig_with(&[(FrameKind::Data, 2200.0, 50)]));
        let outcome = db.match_signature(&base, SimilarityMeasure::Cosine);
        let hits: Vec<_> = outcome.above_threshold(0.9).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, MacAddr::from_index(1));
        assert_eq!(outcome.above_threshold(0.0).count(), 2);
    }

    #[test]
    fn db_crud_operations() {
        let mut db = ReferenceDb::new();
        assert!(db.is_empty());
        let dev = MacAddr::from_index(7);
        let sig = sig_with(&[(FrameKind::Data, 1.0, 5)]);
        assert!(db.insert(dev, sig.clone()).is_none());
        assert!(db.contains(&dev));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(&dev), Some(&sig));
        assert_eq!(db.devices().collect::<Vec<_>>(), vec![dev]);
        let replaced = db.insert(dev, sig_with(&[(FrameKind::Data, 2.0, 5)]));
        assert_eq!(replaced, Some(sig));
        assert!(db.remove(&dev).is_some());
        assert!(db.is_empty());
    }

    #[test]
    fn empty_db_matches_nothing() {
        let db = ReferenceDb::new();
        let outcome =
            db.match_signature(&sig_with(&[(FrameKind::Data, 1.0, 5)]), SimilarityMeasure::Cosine);
        assert!(outcome.best().is_none());
        assert!(outcome.similarities().is_empty());
    }

    #[test]
    fn tie_breaks_toward_lower_address() {
        let sig = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(5), sig.clone());
        db.insert(MacAddr::from_index(3), sig.clone());
        let outcome = db.match_signature(&sig, SimilarityMeasure::Cosine);
        assert_eq!(outcome.best().unwrap().0, MacAddr::from_index(3));
    }

    #[test]
    fn scratch_view_equals_owned_outcome() {
        let mut db = ReferenceDb::new();
        for i in 1..=5u64 {
            db.insert(
                MacAddr::from_index(i),
                sig_with(&[(FrameKind::Data, 100.0 * i as f64, 30), (FrameKind::Beacon, 50.0, 5)]),
            );
        }
        let cand = sig_with(&[(FrameKind::Data, 250.0, 40)]);
        let mut scratch = MatchScratch::new();
        for m in SimilarityMeasure::ALL {
            let owned = db.match_signature(&cand, m);
            let view = db.match_signature_with(&cand, m, &mut scratch);
            assert_eq!(view.similarities(), owned.similarities(), "{m}");
            assert_eq!(view.best(), owned.best(), "{m}");
            assert_eq!(view.to_outcome(), owned, "{m}");
        }
    }

    #[test]
    fn matrix_sweep_agrees_with_naive_baseline() {
        let mut db = ReferenceDb::new();
        for i in 1..=16u64 {
            let kinds: &[(FrameKind, f64, u64)] = &[
                (FrameKind::Data, 37.0 * i as f64, 40 + i),
                (FrameKind::ProbeReq, 11.0 * i as f64, i),
                (FrameKind::Beacon, 500.0, 3),
            ];
            db.insert(MacAddr::from_index(i), sig_with(kinds));
        }
        let cand =
            sig_with(&[(FrameKind::Data, 370.0, 55), (FrameKind::ProbeReq, 110.0, 7)]);
        for m in SimilarityMeasure::ALL {
            let fast = db.match_signature(&cand, m);
            let naive = db.match_signature_naive(&cand, m);
            assert_eq!(fast.similarities().len(), naive.similarities().len());
            for (f, n) in fast.similarities().iter().zip(naive.similarities()) {
                assert_eq!(f.0, n.0);
                assert!((f.1 - n.1).abs() < 1e-12, "{m}: {} vs {}", f.1, n.1);
            }
        }
    }

    #[test]
    fn match_batch_preserves_order_and_scores() {
        let mut db = ReferenceDb::new();
        for i in 1..=8u64 {
            db.insert(MacAddr::from_index(i), sig_with(&[(FrameKind::Data, 90.0 * i as f64, 50)]));
        }
        let candidates: Vec<Signature> =
            (1..=20u64).map(|i| sig_with(&[(FrameKind::Data, 90.0 * (i % 8 + 1) as f64, 50)])).collect();
        let batch = db.match_batch(&candidates, SimilarityMeasure::Cosine);
        assert_eq!(batch.len(), candidates.len());
        for (cand, outcome) in candidates.iter().zip(&batch) {
            assert_eq!(outcome, &db.match_signature(cand, SimilarityMeasure::Cosine));
        }
    }

    #[test]
    fn mixed_bin_specs_keep_every_reference_scoreable() {
        // Two references binned differently for the same kind: each must
        // still score against a candidate with its own spec (sibling
        // blocks keyed on (kind, bins)).
        let fine = cfg(); // 10 µs bins
        let coarse = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
            .with_bins(crate::histogram::BinSpec::uniform_to(2500.0, 50.0));
        let build = |c: &EvalConfig| {
            let mut s = Signature::new();
            for _ in 0..50 {
                s.record(FrameKind::Data, 400.0, c);
            }
            s
        };
        let mut db = ReferenceDb::new();
        let d_fine = MacAddr::from_index(1);
        let d_coarse = MacAddr::from_index(2);
        db.insert(d_fine, build(&fine));
        db.insert(d_coarse, build(&coarse));
        for (cand_cfg, expect_dev) in [(&fine, d_fine), (&coarse, d_coarse)] {
            let outcome = db.match_signature(&build(cand_cfg), SimilarityMeasure::Cosine);
            assert!((outcome.similarity_to(&expect_dev).unwrap() - 1.0).abs() < 1e-9);
            let naive = db.match_signature_naive(&build(cand_cfg), SimilarityMeasure::Cosine);
            assert_eq!(outcome.similarities(), naive.similarities());
        }
    }

    #[test]
    fn incompatible_bin_widths_score_zero_not_panic() {
        // Reference built with the default inter-arrival bins; candidate
        // with a coarser spec ⇒ different bin counts for the same kind.
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), sig_with(&[(FrameKind::Data, 100.0, 50)]));
        let coarse = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
            .with_bins(crate::histogram::BinSpec::uniform_to(2500.0, 100.0));
        let mut cand = Signature::new();
        for _ in 0..50 {
            cand.record(FrameKind::Data, 100.0, &coarse);
        }
        let outcome = db.match_signature(&cand, SimilarityMeasure::Cosine);
        assert_eq!(outcome.similarities()[0].1, 0.0);
    }
}
