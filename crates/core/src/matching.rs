//! The sharded reference database and Algorithm 1 (signature matching).
//!
//! # Structure-of-arrays layout, in `f32`
//!
//! Matching one candidate against `N` references evaluates
//! `Σ_{ftype} weight^ftype(rᵢ) · sim(P^ftype(c), P^ftype(rᵢ))` for every
//! reference `rᵢ` — the `O(windows × devices × bins)` hot path of the
//! whole pipeline. To make that sweep cache-friendly, [`ReferenceDb`]
//! does **not** score against per-device `BTreeMap`s. Instead it packs,
//! for each frame kind, every device's frequency vector into contiguous
//! row-major matrices:
//!
//! ```text
//! KindBlock(Data):   rows  = [ dev₀ bins… | dev₁ bins… | … | devₙ bins… ]  (f32)
//!                    weights   = [ w₀, w₁, …, wₙ ]   (f32 reference weights)
//!                    inv_norms = [ 1/‖r₀‖, …, 1/‖rₙ‖ ]  (f32, 0 ⇒ empty row)
//! KindBlock(Beacon): rows  = [ … ]
//! ```
//!
//! Rows, weights and norms are stored as **`f32`**: histogram frequencies
//! carry nowhere near 53 bits of information, and halving the row width
//! doubles the rows per cache line and per SIMD lane. Devices missing a
//! kind hold weight 0 and an all-zero row; the sweep skips them by the
//! weight test alone. Per-device *scores* still accumulate in `f64`, so
//! the only precision loss is the one-off `f64 → f32` quantisation of the
//! stored rows — bounded by [`F32_SCORE_TOLERANCE`] and enforced against
//! the `f64` baseline by property tests and an AUC-drift check in the
//! analysis crate.
//!
//! # Precision tiers
//!
//! `f32` is the middle of three storage tiers selected by
//! [`MatchConfig::with_precision`] ([`RowPrecision`]); scores accumulate
//! in `f64` in every tier, so the tier only chooses what the inner dot
//! products read:
//!
//! * **`f64`** — the naive baseline (per-device `BTreeMap`s, full
//!   doubles). Not a packed layout; kept behind `bench-baseline` as
//!   ground truth.
//! * **`f32`** ([`RowPrecision::F32`], the default) — packed rows,
//!   floating-point SIMD dots, drift ≤ [`F32_SCORE_TOLERANCE`] vs `f64`.
//! * **`u8`** ([`RowPrecision::U8`]) — each row quantized once at
//!   insert to 7-bit codes with a per-row scale
//!   ([`Histogram::frequencies_u8`](crate::Histogram::frequencies_u8));
//!   cosine is scale-invariant, so the sweep dots raw codes with the
//!   **exact** integer kernels
//!   ([`kernel::dot_u8_multi`](crate::kernel::dot_u8_multi)) and folds
//!   the code norms in at the end. Drift ≤ [`U8_SCORE_TOLERANCE`] vs
//!   `f32`, pinned by parity proptests here and an AUC-drift gate in the
//!   analysis crate.
//!
//! Resident bytes per device per (kind, bins) block, at the default
//! 251-bin inter-arrival spec ([`ReferenceDb::row_bytes`] reports the
//! exact total; per-block envelope bytes amortise across residents):
//!
//! | tier  | row            | per-row metadata               | ≈ bytes/device |
//! |-------|----------------|--------------------------------|----------------|
//! | `f64` | 251 × 8 B      | `BTreeMap` nodes + weights     | > 2008         |
//! | `f32` | 251 × 4 B      | weight + inv-norm (8 B)        | 1012           |
//! | `u8`  | 251 × 1 B      | weight + inv-norm + scale (12 B) | 263          |
//!
//! Halving the bytes again (4× vs `f32` on the rows themselves) doubles
//! the rows per cache line a second time, and the integer microkernel
//! ([`kernel::MICRO_TILE`](crate::kernel::MICRO_TILE)) dots one
//! reference row against a whole candidate tile per pass with partial
//! sums held in registers.
//!
//! # The sharded store
//!
//! One flat matrix per kind stops scaling past ~10⁵ devices: every sweep
//! touches every row. [`ReferenceDb`] therefore buckets its rows into
//! **shards** ([`MatchConfig`]): by default a locality-sensitive key of
//! each device's *dominant* histogram (its centre of mass — devices whose
//! heaviest histogram concentrates probability in the same region share a
//! shard), with the MAC prefix (OUI hash) as a fallback strategy for
//! enrolments where histogram locality is unwanted
//! ([`ShardStrategy::MacPrefix`]). Each shard keeps its own `SoA` blocks
//! plus a **prune summary** per block: the elementwise upper envelope of
//! its normalised rows and the maximum reference weight. For the cosine
//! measure (frequencies are non-negative) the envelope yields an
//! *admissible* upper bound on any resident device's score against a
//! given candidate — one dot product per (shard, kind) instead of one per
//! device. (A mean-centroid summary would need a radius term and is
//! strictly looser for non-negative rows, so the envelope is the summary
//! of choice.)
//!
//! Two sweeps sit on top of that layout:
//!
//! * the **dense** sweep ([`ReferenceDb::match_tile`],
//!   [`ReferenceDb::match_signature_with`]) visits every shard and is
//!   *bit-for-bit* the flat sweep — per device the same per-pair
//!   arithmetic accumulates in the same (ascending frame kind) order, so
//!   public argmax/order semantics are unchanged and property-tested
//!   equal to a flat (`shards == 1`) database;
//! * the **pruned** sweep ([`ReferenceDb::match_topk`]) processes shards
//!   in descending bound order and skips every shard whose best possible
//!   score cannot beat the current `k`-th best — at 10⁵ enrolled devices
//!   this prunes most of the matrix before the dense SIMD inner loop
//!   runs. [`MatchScratch::prune_stats`] reports the pruned fraction of
//!   the last sweep.
//!
//! # The SIMD dot kernel
//!
//! For the paper's cosine measure the per-pair kernel collapses to a
//! single dense dot product (row norms are fixed at pack time, the
//! candidate norm is hoisted out of the device loop). That dot runs
//! through [`kernel`](crate::kernel): an AVX2+FMA path selected at
//! runtime on x86, a NEON path on aarch64, and an unrolled portable
//! fallback — all property-tested equivalent. The dispatch is resolved to
//! a function pointer once per sweep, not once per pair.
//!
//! # Multi-candidate tiling: matrix–matrix, not K × matrix–vector
//!
//! Detection evaluates whole windows of candidates against the same
//! database. [`ReferenceDb::match_tile`] scores a tile of `K` candidates
//! in **one** pass over the reference rows: each row is loaded once and
//! dotted against all `K` candidate rows while it is hot in L1, turning K
//! matrix–vector sweeps (K full passes over the matrix) into one
//! matrix–matrix sweep. [`MATCH_TILE`] is the tile width the batch paths
//! ([`ReferenceDb::match_batch`], `metrics::match_candidates`, and through
//! it the analysis pipeline) use.
//!
//! # Scratch buffers: allocation-free steady state
//!
//! [`ReferenceDb::match_signature_with`] and [`ReferenceDb::match_tile`]
//! write scores into a caller-owned [`MatchScratch`] and return borrowed
//! views. After the first call warms the scratch's capacity, matching
//! performs **no heap allocation**: candidate frequency vectors are cached
//! borrows ([`Histogram::frequencies_f32`](crate::Histogram::frequencies_f32)),
//! scores accumulate into reused buffers, and the views borrow rather
//! than copy. Use one scratch per worker thread:
//!
//! ```
//! use wifiprint_core::{EvalConfig, MatchScratch, NetworkParameter, ReferenceDb, Signature,
//!     SimilarityMeasure};
//! use wifiprint_ieee80211::{FrameKind, MacAddr};
//!
//! let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize);
//! let mut sig = Signature::new();
//! for _ in 0..60 { sig.record(FrameKind::Data, 1000.0, &cfg); }
//! let mut db = ReferenceDb::new();
//! db.insert(MacAddr::from_index(1), sig.clone()).unwrap();
//!
//! let mut scratch = MatchScratch::new();
//! for _window in 0..3 {
//!     let view = db.match_signature_with(&sig, SimilarityMeasure::Cosine, &mut scratch);
//!     assert_eq!(view.best().unwrap().0, MacAddr::from_index(1));
//! }
//! // A whole tile of windows in one row pass:
//! let windows = vec![sig.clone(), sig.clone(), sig.clone()];
//! let tile = db.match_tile(&windows, SimilarityMeasure::Cosine, &mut scratch);
//! assert_eq!(tile.candidate_count(), 3);
//! assert_eq!(tile.candidate(2).best().unwrap().0, MacAddr::from_index(1));
//! // And the pruned top-k sweep (what a 10⁵-device deployment runs):
//! let top = db.match_topk(&sig, 1, SimilarityMeasure::Cosine, &mut scratch);
//! assert_eq!(top[0].0, MacAddr::from_index(1));
//! ```
//!
//! # Incremental growth
//!
//! [`ReferenceDb::insert`] appends one row to the device's shard
//! (amortised `O(row)`) instead of repacking, so streaming database
//! growth is linear in the data, not quadratic. Internally rows live in
//! insertion order with a sorted index on top; shard membership, the
//! per-shard slots and the sorted address index stay consistent across
//! any interleaving of [`ReferenceDb::insert`] / [`ReferenceDb::remove`]
//! (re-inserting a changed signature migrates the device to its new
//! shard). Every public API still reports devices in ascending address
//! order.

use std::borrow::Borrow;
use std::collections::BTreeMap;

use wifiprint_ieee80211::{FrameKind, MacAddr};

use crate::error::CoreError;
use crate::histogram::Histogram;
use crate::kernel;
use crate::signature::Signature;
use crate::similarity::SimilarityMeasure;

/// Worst-case drift of a matching score computed over the packed `f32`
/// rows relative to the same score in full `f64`.
///
/// Scores lie in `[0, 1]`. Rows are `f64` frequencies rounded once to
/// `f32` (relative error ≤ 2⁻²⁴ per element), dots and norms run in
/// `f32`, and everything downstream (weighting, accumulation across frame
/// kinds) is `f64`. For the ≤ ~500-bin rows this crate produces, the
/// accumulated error stays ≳ an order of magnitude below this bound;
/// property tests and the analysis crate's AUC-drift check enforce it.
pub const F32_SCORE_TOLERANCE: f64 = 1e-4;

/// Worst-case drift of a matching score computed over quantized `u8`
/// rows ([`RowPrecision::U8`]) relative to the same score over `f32`
/// rows.
///
/// Quantization rounds each normalised row to 7-bit codes relative to its
/// maximum element ([`kernel::QUANT_MAX`](crate::kernel::QUANT_MAX)), so
/// the stored *direction* moves by up to `~0.5/127 · √(occupied bins)`
/// relative to the row maximum. For the adversarial case property tests
/// construct — tens of near-equal tiny bins on both sides of the dot —
/// the cosine can drift by a few times `1e-2`; realistic traffic
/// histograms concentrate their mass and stay well under `1e-2` (the
/// AUC-drift gate in the analysis crate pins the *application* drift two
/// orders tighter). Integer dots themselves are exact, so unlike the
/// `f32` tier none of this budget is spent on kernel association order.
pub const U8_SCORE_TOLERANCE: f64 = 5e-2;

/// Tile width for multi-candidate matching: how many candidate windows
/// [`ReferenceDb::match_batch`] (and the metrics/analysis paths built on
/// it) score per pass over the reference rows.
///
/// Eight rows of ≤ ~500 `f32` bins (≤ 16 KiB) fit in L1 alongside the
/// reference row being swept, which is the point: each reference row is
/// loaded from memory once per tile instead of once per candidate.
pub const MATCH_TILE: usize = 8;

/// Default shard count of a [`MatchConfig`]. Sixteen shards keep the
/// per-sweep summary overhead negligible at conference scale while
/// already pruning most of the matrix at 10⁴–10⁵ devices; large
/// deployments raise it via [`MatchConfig::with_shards`].
pub const DEFAULT_SHARDS: usize = 16;

/// Hard ceiling on the configured shard count (the shard directory is
/// allocated eagerly).
const MAX_SHARDS: usize = 1024;

/// Safety slack added to every shard's score upper bound before the
/// prune test. The bound and the true scores run through the same `f32`
/// kernels but accumulate differently, so their floating-point error is
/// not ordered; one [`F32_SCORE_TOLERANCE`] of slack makes the bound
/// admissible under rounding (a shard is only pruned when its best
/// possible score is below the current `k`-th best by more than the
/// documented score tolerance).
const PRUNE_BOUND_SLACK: f64 = F32_SCORE_TOLERANCE;

/// How devices are bucketed into shards (see [`MatchConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardStrategy {
    /// Locality-sensitive key of the device's **dominant** (highest
    /// weight) histogram: its centre of mass, quantised over the shard
    /// count. Devices whose heaviest histogram concentrates probability
    /// in the same region share a shard, which keeps each shard's upper
    /// envelope tight and makes the pruned sweep effective.
    #[default]
    DominantHistogram,
    /// A hash of the MAC address's OUI (first three octets). Not
    /// locality-sensitive in score space — pruning bounds stay
    /// admissible but looser — useful as a fallback when enrolment is
    /// adversarial or signatures churn faster than shard residency
    /// should.
    MacPrefix,
}

/// Storage width of the packed reference rows — the **precision tier**
/// of a [`ReferenceDb`] (see the [module docs](self#precision-tiers)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RowPrecision {
    /// `f32` rows swept by the floating-point SIMD kernels. Scores track
    /// the `f64` baseline within [`F32_SCORE_TOLERANCE`].
    #[default]
    F32,
    /// Quantized `u8` rows (7-bit codes with a per-row scale, zero-point
    /// fixed at 0) swept by the exact integer kernels
    /// ([`kernel::dot_u8_multi`](crate::kernel::dot_u8_multi)). Quarter
    /// the row bytes of `f32`; scores track the `f32` tier within
    /// [`U8_SCORE_TOLERANCE`].
    U8,
}

impl RowPrecision {
    /// A short stable name for logs and bench snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            RowPrecision::F32 => "f32",
            RowPrecision::U8 => "u8",
        }
    }
}

/// Configuration of the sharded reference store: how rows are bucketed,
/// into how many shards, and at which storage precision. `shards == 1`
/// degenerates to the flat single-matrix layout ([`MatchConfig::flat`]),
/// which the sharded dense sweep is property-tested bit-for-bit equal to
/// (per precision tier).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatchConfig {
    /// The shard-key strategy.
    pub strategy: ShardStrategy,
    /// Number of shards (clamped to `1..=1024` when the database is
    /// built).
    pub shards: usize,
    /// Storage width of the packed rows (see [`RowPrecision`]).
    pub precision: RowPrecision,
}

impl Default for MatchConfig {
    /// Dominant-histogram bucketing over [`DEFAULT_SHARDS`] shards,
    /// `f32` rows.
    fn default() -> Self {
        MatchConfig {
            strategy: ShardStrategy::DominantHistogram,
            shards: DEFAULT_SHARDS,
            precision: RowPrecision::F32,
        }
    }
}

impl MatchConfig {
    /// The flat (unsharded) layout: one shard holding every row. The
    /// parity baseline for the sharded sweeps, and the right choice for
    /// small (< a few hundred devices) databases.
    pub fn flat() -> Self {
        MatchConfig::default().with_shards(1)
    }

    /// The quantized tier at the default shard layout: `u8` rows behind
    /// the integer kernels — what a metropolis-scale (≥ 10⁵ devices)
    /// deployment runs.
    pub fn quantized() -> Self {
        MatchConfig::default().with_precision(RowPrecision::U8)
    }

    /// Returns a copy with a different shard count.
    #[must_use]
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Returns a copy with a different shard-key strategy.
    #[must_use]
    pub fn with_strategy(mut self, strategy: ShardStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Returns a copy with a different row precision.
    #[must_use]
    pub fn with_precision(mut self, precision: RowPrecision) -> Self {
        self.precision = precision;
        self
    }

    /// The effective shard count (clamped).
    fn effective_shards(&self) -> usize {
        self.shards.clamp(1, MAX_SHARDS)
    }
}

/// The packed row storage of a [`KindBlock`] — one variant per
/// [`RowPrecision`], so the `u8` tier genuinely holds one byte per bin
/// (plus one `f32` scale per row) rather than shadowing an `f32` copy.
#[derive(Debug, Clone)]
enum RowStore {
    /// `rows[slot*bins..(slot+1)*bins]` is the device's `f32` frequency
    /// vector.
    F32(Vec<f32>),
    /// Quantized rows: `rows[slot*bins..(slot+1)*bins]` are the device's
    /// 7-bit codes ([`Histogram::frequencies_u8`]) and `scales[slot]`
    /// dequantizes them (`frequency ≈ code · scale`). The cosine sweep
    /// never touches the scale — cosine is scale-invariant, so it works
    /// on the raw codes with `inv_norms` computed over the codes — but
    /// the non-cosine fallback dequantizes through it.
    U8 { rows: Vec<u8>, scales: Vec<f32> },
}

/// One frame kind's slice of a shard's reference matrix: every resident
/// device's frequency vector for that kind, packed row-major at the
/// database's [`RowPrecision`], plus the reference weights
/// `weight^ftype(rᵢ)`, reciprocal row norms, and the prune summary
/// (upper envelope of the normalised rows + max weight).
#[derive(Debug, Clone)]
struct KindBlock {
    kind: FrameKind,
    /// Row width. Blocks are keyed on `(kind, bins)`: references binned
    /// with a different spec for the same kind land in a sibling block,
    /// so heterogeneous databases still score every compatible pair.
    bins: usize,
    /// `weights[slot]` is the resident device's weight for this kind
    /// (0 ⇒ skip row).
    weights: Vec<f32>,
    /// The packed rows at the configured precision.
    store: RowStore,
    /// `inv_norms[slot]` is `1 / ‖row‖₂` of the *stored* row (`f32`
    /// frequencies or `u8` codes — whichever the sweep dots against),
    /// precomputed at pack time so the cosine sweep reduces to one dot
    /// product and two multiplies per pair (0.0 for absent rows, which
    /// weight 0 already skips).
    inv_norms: Vec<f32>,
    /// Elementwise maximum of the *normalised* resident rows: because
    /// frequencies (and quantized codes) are non-negative,
    /// `ĉ · envelope ≥ ĉ · r̂ᵢ` for every resident row, so one dot
    /// against the envelope upper-bounds every per-device cosine in the
    /// block. Always `f32`, in both tiers.
    envelope: Vec<f32>,
    /// Maximum reference weight over resident rows (the other half of
    /// the shard score bound).
    wmax: f32,
}

impl KindBlock {
    fn empty(kind: FrameKind, bins: usize, slots: usize, precision: RowPrecision) -> KindBlock {
        KindBlock {
            kind,
            bins,
            weights: vec![0.0; slots],
            store: match precision {
                RowPrecision::F32 => RowStore::F32(vec![0.0; slots * bins]),
                RowPrecision::U8 => {
                    RowStore::U8 { rows: vec![0; slots * bins], scales: vec![0.0; slots] }
                }
            },
            inv_norms: vec![0.0; slots],
            envelope: vec![0.0; bins],
            wmax: 0.0,
        }
    }

    /// Appends one absent-device slot.
    fn push_empty_slot(&mut self) {
        self.weights.push(0.0);
        self.inv_norms.push(0.0);
        match &mut self.store {
            RowStore::F32(rows) => rows.resize(rows.len() + self.bins, 0.0),
            RowStore::U8 { rows, scales } => {
                rows.resize(rows.len() + self.bins, 0);
                scales.push(0.0);
            }
        }
    }

    /// Removes one slot, shifting the later ones down.
    fn remove_slot(&mut self, slot: usize) {
        self.weights.remove(slot);
        self.inv_norms.remove(slot);
        match &mut self.store {
            RowStore::F32(rows) => {
                rows.drain(slot * self.bins..(slot + 1) * self.bins);
            }
            RowStore::U8 { rows, scales } => {
                rows.drain(slot * self.bins..(slot + 1) * self.bins);
                scales.remove(slot);
            }
        }
    }

    /// Writes a device's row into `slot` at the block's precision and
    /// absorbs it into the prune summary (the envelope only grows here;
    /// shrinking happens in [`KindBlock::rebuild_summary`] after
    /// removals).
    fn set_slot(&mut self, slot: usize, hist: &Histogram, weight: f32) {
        let KindBlock { bins, weights, store, inv_norms, envelope, wmax, .. } = self;
        let bins = *bins;
        weights[slot] = weight;
        *wmax = wmax.max(weight);
        match store {
            RowStore::F32(rows) => {
                let freqs = hist.frequencies_f32();
                debug_assert_eq!(freqs.len(), bins);
                rows[slot * bins..(slot + 1) * bins].copy_from_slice(freqs);
                let inv = inv_norm(freqs);
                inv_norms[slot] = inv;
                for (e, &f) in envelope.iter_mut().zip(freqs) {
                    *e = e.max(f * inv);
                }
            }
            RowStore::U8 { rows, scales } => {
                let q = hist.frequencies_u8();
                debug_assert_eq!(q.values().len(), bins);
                rows[slot * bins..(slot + 1) * bins].copy_from_slice(q.values());
                scales[slot] = q.scale();
                let inv = q.inv_norm();
                inv_norms[slot] = inv;
                for (e, &c) in envelope.iter_mut().zip(q.values()) {
                    *e = e.max(f32::from(c) * inv);
                }
            }
        }
    }

    /// Recomputes the envelope and max weight from the resident rows
    /// (after a removal the incremental summary would be stale-loose).
    fn rebuild_summary(&mut self) {
        let KindBlock { bins, weights, store, inv_norms, envelope, wmax, .. } = self;
        let bins = *bins;
        envelope.fill(0.0);
        *wmax = 0.0;
        match store {
            RowStore::F32(rows) => {
                for (slot, row) in rows.chunks_exact(bins).enumerate() {
                    let weight = weights[slot];
                    if weight == 0.0 {
                        continue;
                    }
                    *wmax = wmax.max(weight);
                    let inv = inv_norms[slot];
                    for (e, &f) in envelope.iter_mut().zip(row) {
                        *e = e.max(f * inv);
                    }
                }
            }
            RowStore::U8 { rows, .. } => {
                for (slot, row) in rows.chunks_exact(bins).enumerate() {
                    let weight = weights[slot];
                    if weight == 0.0 {
                        continue;
                    }
                    *wmax = wmax.max(weight);
                    let inv = inv_norms[slot];
                    for (e, &c) in envelope.iter_mut().zip(row) {
                        *e = e.max(f32::from(c) * inv);
                    }
                }
            }
        }
    }

    /// Bytes held by this block's packed rows and per-row/summary
    /// metadata (capacity excluded — this measures the resident layout).
    fn row_bytes(&self) -> usize {
        let store = match &self.store {
            RowStore::F32(rows) => std::mem::size_of_val(rows.as_slice()),
            RowStore::U8 { rows, scales } => {
                std::mem::size_of_val(rows.as_slice()) + std::mem::size_of_val(scales.as_slice())
            }
        };
        store
            + std::mem::size_of_val(self.weights.as_slice())
            + std::mem::size_of_val(self.inv_norms.as_slice())
            + std::mem::size_of_val(self.envelope.as_slice())
    }
}

/// One bucket of the sharded store: which global rows live here and
/// their per-kind matrices (indexed by **slot**, the local row number).
#[derive(Debug, Clone, Default)]
struct Shard {
    /// `rows[slot]` is the global (insertion-order) row of the device in
    /// that slot.
    rows: Vec<u32>,
    /// Per-frame-kind matrices, ascending by `(kind, bins)`.
    blocks: Vec<KindBlock>,
}

impl Shard {
    fn block(&self, kind: FrameKind, bins: usize) -> Option<&KindBlock> {
        self.blocks
            .binary_search_by(|b| (b.kind, b.bins).cmp(&(kind, bins)))
            .ok()
            .map(|i| &self.blocks[i])
    }
}

/// Where a global row lives: its shard and local slot.
#[derive(Debug, Clone, Copy, Default)]
struct Placement {
    shard: u16,
    slot: u32,
}

/// The sharded reference database of the learning phase (§IV-B): one
/// signature per known device, bucketed into shards and packed into
/// per-frame-kind `f32` matrices (see the [module docs](self)).
///
/// # Example
///
/// ```
/// use wifiprint_core::{EvalConfig, MatchConfig, NetworkParameter, ReferenceDb, Signature,
///     SimilarityMeasure};
/// use wifiprint_ieee80211::{FrameKind, MacAddr};
///
/// let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize);
/// let mut sig = Signature::new();
/// for _ in 0..60 { sig.record(FrameKind::Data, 1000.0, &cfg); }
///
/// // Default: dominant-histogram sharding; MatchConfig selects the
/// // strategy and shard count.
/// let mut db = ReferenceDb::with_config(MatchConfig::default().with_shards(8));
/// let dev = MacAddr::from_index(1);
/// db.insert(dev, sig.clone()).unwrap();
///
/// let outcome = db.match_signature(&sig, SimilarityMeasure::Cosine);
/// assert_eq!(outcome.best().unwrap().0, dev);
/// assert!((outcome.best().unwrap().1 - 1.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone)]
pub struct ReferenceDb {
    /// The (normalised) shard configuration.
    config: MatchConfig,
    /// Reference devices in **insertion order**; `signatures` and
    /// `placement` are parallel to this, so inserts append instead of
    /// repacking.
    devices: Vec<MacAddr>,
    signatures: Vec<Signature>,
    /// Row indices sorted by ascending device address: the lookup index,
    /// and the order every public API reports devices in.
    order: Vec<u32>,
    /// Global row → (shard, slot).
    placement: Vec<Placement>,
    /// Every `(kind, bins)` key any shard holds, ascending — the outer
    /// loop of the sweeps, so candidate tiles are packed once per kind,
    /// not once per (shard, kind).
    kind_keys: Vec<(FrameKind, usize)>,
    /// The shard directory (`config.effective_shards()` entries).
    shards: Vec<Shard>,
    /// `true` once the enrollment phase ended ([`ReferenceDb::freeze`]):
    /// mutations are rejected so the detection phase matches against a
    /// stable reference set.
    frozen: bool,
}

impl Default for ReferenceDb {
    fn default() -> Self {
        ReferenceDb::with_config(MatchConfig::default())
    }
}

impl ReferenceDb {
    /// An empty database with the default [`MatchConfig`]
    /// (dominant-histogram sharding, [`DEFAULT_SHARDS`] shards).
    pub fn new() -> Self {
        ReferenceDb::default()
    }

    /// An empty database with an explicit shard configuration.
    pub fn with_config(config: MatchConfig) -> Self {
        let shards = config.effective_shards();
        ReferenceDb {
            config: MatchConfig { shards, ..config },
            devices: Vec::new(),
            signatures: Vec::new(),
            order: Vec::new(),
            placement: Vec::new(),
            kind_keys: Vec::new(),
            shards: vec![Shard::default(); shards],
            frozen: false,
        }
    }

    /// Builds a database from per-device signatures (e.g. the output of
    /// [`SignatureBuilder::finish`](crate::SignatureBuilder::finish)),
    /// packing the reference matrix once, with the default
    /// [`MatchConfig`].
    pub fn from_signatures(signatures: BTreeMap<MacAddr, Signature>) -> Self {
        ReferenceDb::from_signatures_with(signatures, MatchConfig::default())
    }

    /// [`ReferenceDb::from_signatures`] with an explicit shard
    /// configuration.
    pub fn from_signatures_with(
        signatures: BTreeMap<MacAddr, Signature>,
        config: MatchConfig,
    ) -> Self {
        let mut db = ReferenceDb::with_config(config);
        for (device, sig) in signatures {
            // Entries arrive in ascending order, so each lands at the end.
            db.devices.push(device);
            db.signatures.push(sig);
        }
        db.rebuild();
        db
    }

    /// The shard configuration this database was built with.
    pub fn config(&self) -> &MatchConfig {
        &self.config
    }

    /// The configured shard count (occupied or not).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Bytes resident in the packed reference matrices: the rows at the
    /// configured [`RowPrecision`] plus per-row metadata (weights,
    /// reciprocal norms, `u8` scales) and the per-block prune summaries.
    /// Retained [`Signature`]s and the index vectors are excluded — this
    /// measures what the sweeps actually touch, the number the
    /// bytes-per-device figures in the [module docs](self#precision-tiers)
    /// come from.
    pub fn row_bytes(&self) -> usize {
        self.shards
            .iter()
            .flat_map(|shard| shard.blocks.iter())
            .map(KindBlock::row_bytes)
            .sum()
    }

    /// Position of `device` in the sorted `order` index.
    fn position(&self, device: MacAddr) -> Result<usize, usize> {
        self.order.binary_search_by(|&i| self.devices[i as usize].cmp(&device))
    }

    /// The shard key of a device under the configured strategy.
    fn shard_key(&self, device: MacAddr, signature: &Signature) -> usize {
        let n = self.shards.len();
        if n <= 1 {
            return 0;
        }
        match self.config.strategy {
            ShardStrategy::MacPrefix => {
                // FNV-1a over the OUI: stable, cheap, spreads vendor
                // prefixes uniformly.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in device.oui() {
                    h = (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
                }
                (h % n as u64) as usize
            }
            ShardStrategy::DominantHistogram => {
                let mut dominant: Option<&Histogram> = None;
                let mut dominant_total = 0u64;
                for (_, hist) in signature.iter() {
                    if hist.total() > dominant_total {
                        dominant_total = hist.total();
                        dominant = Some(hist);
                    }
                }
                let Some(hist) = dominant else { return 0 };
                // Centre of mass of the dominant histogram, as a
                // fraction of its bin range: nearby distributions get
                // nearby keys (the locality-sensitive property the
                // pruning bound leans on).
                let counts = hist.counts();
                let mass: f64 = counts
                    .iter()
                    .enumerate()
                    .map(|(i, &c)| i as f64 * c as f64)
                    .sum();
                let com = mass / dominant_total as f64 / counts.len().max(1) as f64;
                ((com * n as f64) as usize).min(n - 1)
            }
        }
    }

    /// Inserts or replaces a device's reference signature (online
    /// enrollment).
    ///
    /// Returns the previous signature if the device was already present.
    /// Inserting a new device **appends** one slot to its shard
    /// (amortised `O(row width)`), so building a database by streaming
    /// inserts is linear overall; replacing detaches the old row and
    /// re-attaches the new one, migrating the device to a different
    /// shard when its dominant histogram moved.
    ///
    /// # Errors
    ///
    /// [`CoreError::FrozenDatabase`] after [`ReferenceDb::freeze`], and
    /// [`CoreError::EmptySignature`] for a signature with zero
    /// observations (its all-zero rows could never match anything).
    pub fn insert(
        &mut self,
        device: MacAddr,
        signature: Signature,
    ) -> Result<Option<Signature>, CoreError> {
        if self.frozen {
            return Err(CoreError::FrozenDatabase { device: Some(device) });
        }
        if signature.observation_count() == 0 {
            return Err(CoreError::EmptySignature { device });
        }
        Ok(match self.position(device) {
            Ok(pos) => {
                let row = self.order[pos] as usize;
                let previous = std::mem::replace(&mut self.signatures[row], signature);
                self.detach_row(row);
                self.attach_row(row);
                Some(previous)
            }
            Err(pos) => {
                let row = self.devices.len();
                self.devices.push(device);
                self.signatures.push(signature);
                self.order.insert(pos, row as u32);
                self.placement.push(Placement::default());
                self.attach_row(row);
                None
            }
        })
    }

    /// Removes a device, returning its signature (`Ok(None)` when the
    /// device was not enrolled). Shard membership, per-shard slots and
    /// the sorted address index all stay consistent, so a later
    /// [`ReferenceDb::insert`] of the same or another device scores
    /// identically to a freshly built database.
    ///
    /// # Errors
    ///
    /// [`CoreError::FrozenDatabase`] after [`ReferenceDb::freeze`].
    pub fn remove(&mut self, device: &MacAddr) -> Result<Option<Signature>, CoreError> {
        if self.frozen {
            return Err(CoreError::FrozenDatabase { device: Some(*device) });
        }
        let Ok(pos) = self.position(*device) else {
            return Ok(None);
        };
        let row = self.order.remove(pos) as usize;
        self.detach_row(row);
        self.devices.remove(row);
        let sig = self.signatures.remove(row);
        self.placement.remove(row);
        for idx in &mut self.order {
            if *idx as usize > row {
                *idx -= 1;
            }
        }
        // Global rows above the removed one shifted down by one; the
        // shard directories index by global row and must follow.
        for shard in &mut self.shards {
            for r in &mut shard.rows {
                if *r as usize > row {
                    *r -= 1;
                }
            }
        }
        Ok(Some(sig))
    }

    /// Ends the enrollment phase: every subsequent [`ReferenceDb::insert`]
    /// or [`ReferenceDb::remove`] is rejected with
    /// [`CoreError::FrozenDatabase`], so a detection phase holding this
    /// database matches against a stable reference set. Freezing is
    /// idempotent and one-way; to keep enrolling, freeze a
    /// [`ReferenceDb::snapshot`] instead and retain the original.
    ///
    /// Matching never requires a frozen database — freezing is the
    /// lifecycle *guard*, not a precondition.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// `true` once [`ReferenceDb::freeze`] (or
    /// [`ReferenceDb::snapshot`]) sealed this database.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// A frozen copy of the current state: the detection-phase view of a
    /// database that keeps enrolling. The original stays mutable.
    pub fn snapshot(&self) -> ReferenceDb {
        let mut copy = self.clone();
        copy.frozen = true;
        copy
    }

    /// The signature of a device, if present.
    pub fn get(&self, device: &MacAddr) -> Option<&Signature> {
        self.position(*device).ok().map(|pos| &self.signatures[self.order[pos] as usize])
    }

    /// `true` if the device has a reference signature.
    pub fn contains(&self, device: &MacAddr) -> bool {
        self.position(*device).is_ok()
    }

    /// Number of reference devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Iterates `(device, signature)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (MacAddr, &Signature)> {
        self.order.iter().map(|&i| (self.devices[i as usize], &self.signatures[i as usize]))
    }

    /// The devices in the database, in address order.
    pub fn devices(&self) -> impl Iterator<Item = MacAddr> + '_ {
        self.order.iter().map(|&i| self.devices[i as usize])
    }

    /// Attaches global row `row` to its shard: appends a slot and writes
    /// the device's per-kind vectors, creating blocks for `(kind, bins)`
    /// pairs the shard sees for the first time.
    fn attach_row(&mut self, row: usize) {
        let shard_idx = self.shard_key(self.devices[row], &self.signatures[row]);
        let ReferenceDb { config, signatures, placement, kind_keys, shards, .. } = self;
        let precision = config.precision;
        let shard = &mut shards[shard_idx];
        let slot = shard.rows.len();
        shard.rows.push(row as u32);
        for block in &mut shard.blocks {
            block.push_empty_slot();
        }
        placement[row] = Placement { shard: shard_idx as u16, slot: slot as u32 };
        let sig = &signatures[row];
        let slots = shard.rows.len();
        for (kind, hist) in sig.iter() {
            if hist.total() == 0 {
                continue;
            }
            let bins = hist.counts().len();
            let idx = match shard
                .blocks
                .binary_search_by(|b| (b.kind, b.bins).cmp(&(kind, bins)))
            {
                Ok(i) => i,
                Err(i) => {
                    shard.blocks.insert(i, KindBlock::empty(kind, bins, slots, precision));
                    i
                }
            };
            shard.blocks[idx].set_slot(slot, hist, sig.weight(kind) as f32);
            if let Err(i) = kind_keys.binary_search(&(kind, bins)) {
                kind_keys.insert(i, (kind, bins));
            }
        }
    }

    /// Detaches global row `row` from its shard: drops its slot, shifts
    /// the later residents down, and rebuilds the affected prune
    /// summaries (the envelope may shrink).
    fn detach_row(&mut self, row: usize) {
        let Placement { shard: shard_idx, slot } = self.placement[row];
        let ReferenceDb { placement, shards, .. } = self;
        let shard = &mut shards[shard_idx as usize];
        let slot = slot as usize;
        shard.rows.remove(slot);
        for &r in &shard.rows[slot..] {
            placement[r as usize].slot -= 1;
        }
        for block in &mut shard.blocks {
            block.remove_slot(slot);
            block.rebuild_summary();
        }
        shard.blocks.retain(|b| b.wmax > 0.0);
    }

    /// Repacks the index, the shard directory and the per-kind matrices
    /// from the current signatures (bulk construction).
    fn rebuild(&mut self) {
        let n = self.devices.len();
        self.order = (0..n as u32).collect();
        self.order.sort_by_key(|&i| self.devices[i as usize]);
        self.placement = vec![Placement::default(); n];
        self.kind_keys.clear();
        let shards = self.shards.len();
        self.shards = vec![Shard::default(); shards];
        for row in 0..n {
            self.attach_row(row);
        }
    }

    /// Algorithm 1: matches a candidate signature against every reference.
    ///
    /// For each reference `rᵢ` the score is
    /// `simᵢ = Σ_{ftype ∈ Sig(c)} weight^ftype(rᵢ) · sim(hist^ftype(c), hist^ftype(rᵢ))`,
    /// i.e. the per-frame-type histogram similarities weighted by the
    /// **reference's** frame-type distribution. Scores lie in `[0, 1]`.
    ///
    /// Convenience form that allocates its outcome; the hot paths are
    /// [`ReferenceDb::match_signature_with`],
    /// [`ReferenceDb::match_tile`] and — for argmax/top-k consumers at
    /// scale — the pruned [`ReferenceDb::match_topk`].
    pub fn match_signature(&self, candidate: &Signature, measure: SimilarityMeasure) -> MatchOutcome {
        let mut scratch = MatchScratch::new();
        self.match_signature_with(candidate, measure, &mut scratch);
        MatchOutcome { sims: std::mem::take(&mut scratch.pairs) }
    }

    /// Algorithm 1 without per-call allocation: scores accumulate into
    /// `scratch` (reused across calls) and the returned [`MatchView`]
    /// borrows from it. Internally this is a [`ReferenceDb::match_tile`]
    /// with a tile of one.
    pub fn match_signature_with<'s>(
        &self,
        candidate: &Signature,
        measure: SimilarityMeasure,
        scratch: &'s mut MatchScratch,
    ) -> MatchView<'s> {
        self.match_tile_into(std::slice::from_ref(candidate), measure, scratch);
        MatchView { sims: &scratch.pairs }
    }

    /// Scores a tile of `K` candidate signatures in one pass over the
    /// reference rows (matrix–matrix instead of `K` matrix–vector
    /// sweeps): each reference row is loaded once and dotted against all
    /// `K` candidates while hot in cache. This is the **dense** sweep:
    /// every shard is visited, and the result is bit-for-bit the flat
    /// (`shards == 1`) layout's.
    ///
    /// The returned [`TileView`] exposes one [`MatchView`] per candidate,
    /// in input order; each is identical (within float rounding of the
    /// score accumulation order — the per-pair arithmetic is the same) to
    /// a [`ReferenceDb::match_signature_with`] call for that candidate.
    /// Callers batching many windows should chunk them by [`MATCH_TILE`].
    pub fn match_tile<'s, C: Borrow<Signature>>(
        &self,
        candidates: &[C],
        measure: SimilarityMeasure,
        scratch: &'s mut MatchScratch,
    ) -> TileView<'s> {
        self.match_tile_into(candidates, measure, scratch);
        TileView { pairs: &scratch.pairs, n: self.devices.len(), k: candidates.len() }
    }

    /// The shared dense sweep: fills `scratch.pairs` with `K × N`
    /// `(device, score)` pairs, candidate-major, each candidate's segment
    /// in ascending address order.
    ///
    /// Frame kinds are the outer loop (ascending `(kind, bins)`, exactly
    /// the flat block order) and shards the inner loop, so each device's
    /// `f64` score accumulates its per-kind contributions in the same
    /// order regardless of sharding — the sharded dense sweep is
    /// bit-identical to the flat one.
    // One pass over every (shard, kind, store) combination: splitting it
    // would re-derive the packing state each sub-call shares.
    #[allow(clippy::too_many_lines)]
    fn match_tile_into<C: Borrow<Signature>>(
        &self,
        candidates: &[C],
        measure: SimilarityMeasure,
        scratch: &mut MatchScratch,
    ) {
        let n = self.devices.len();
        let k = candidates.len();
        scratch.scores.clear();
        scratch.scores.resize(k * n, 0.0);
        let dot = kernel::dot_fn();
        let precision = self.config.precision;
        let cosine = measure == SimilarityMeasure::Cosine;
        for &(kind, bins) in &self.kind_keys {
            // Pack this kind's tile: the rows of every candidate that
            // carries this (kind, bins), at the database's precision.
            // Candidates binned differently (or missing the kind) simply
            // don't join — incompatible binning carries no information.
            scratch.tile_rows.clear();
            scratch.tile_qrows.clear();
            scratch.tile_inv_norms.clear();
            scratch.tile_slots.clear();
            for (ci, cand) in candidates.iter().enumerate() {
                let Some(hist) = cand.borrow().histogram(kind) else { continue };
                if hist.total() == 0 {
                    continue; // an empty candidate histogram matches nothing
                }
                if hist.counts().len() != bins {
                    continue;
                }
                if precision == RowPrecision::U8 && cosine {
                    // Quantized cosine: dot the candidate's own codes
                    // against the reference codes with the exact integer
                    // kernel; the per-row scales cancel out of cosine.
                    let q = hist.frequencies_u8();
                    scratch.tile_qrows.extend_from_slice(q.values());
                    scratch.tile_inv_norms.push(f64::from(q.inv_norm()));
                } else {
                    let freqs = hist.frequencies_f32();
                    scratch.tile_rows.extend_from_slice(freqs);
                    // Only the cosine branch reads the norms; skip the
                    // self-dot for the other measures.
                    scratch.tile_inv_norms.push(if cosine {
                        f64::from(inv_norm(freqs))
                    } else {
                        0.0
                    });
                }
                scratch.tile_slots.push(ci);
            }
            let tile = scratch.tile_slots.len();
            if tile == 0 {
                continue;
            }
            // The matrix–matrix sweep over every shard holding this
            // kind: one linear pass over each shard's packed rows; every
            // row is dotted against the whole tile while resident in L1.
            // Zero-weight rows are absent devices.
            for shard in &self.shards {
                let Some(block) = shard.block(kind, bins) else { continue };
                match (&block.store, cosine) {
                    (RowStore::F32(rows), true) => {
                        for (slot, row) in rows.chunks_exact(bins).enumerate() {
                            let weight = block.weights[slot];
                            if weight == 0.0 {
                                continue;
                            }
                            let weight = f64::from(weight);
                            let i = shard.rows[slot] as usize;
                            // Row norms were fixed at pack time and
                            // candidate norms are invariant across rows,
                            // so the per-pair kernel is one SIMD dot.
                            let row_inv = f64::from(block.inv_norms[slot]);
                            for t in 0..tile {
                                let cand = &scratch.tile_rows[t * bins..(t + 1) * bins];
                                let cos = (f64::from(dot(cand, row))
                                    * scratch.tile_inv_norms[t]
                                    * row_inv)
                                    .clamp(0.0, 1.0);
                                scratch.scores[scratch.tile_slots[t] * n + i] += weight * cos;
                            }
                        }
                    }
                    (RowStore::U8 { rows, .. }, true) => {
                        // The register-blocked integer microkernel: each
                        // quantized reference row is dotted against the
                        // whole candidate tile in one pass, partial sums
                        // held in registers, each output written once.
                        scratch.u8_dots.clear();
                        scratch.u8_dots.resize(tile, 0);
                        for (slot, row) in rows.chunks_exact(bins).enumerate() {
                            let weight = block.weights[slot];
                            if weight == 0.0 {
                                continue;
                            }
                            let weight = f64::from(weight);
                            let i = shard.rows[slot] as usize;
                            let row_inv = f64::from(block.inv_norms[slot]);
                            kernel::dot_u8_multi(
                                &scratch.tile_qrows,
                                row,
                                &mut scratch.u8_dots[..tile],
                            );
                            for t in 0..tile {
                                let cos = (f64::from(scratch.u8_dots[t])
                                    * scratch.tile_inv_norms[t]
                                    * row_inv)
                                    .clamp(0.0, 1.0);
                                scratch.scores[scratch.tile_slots[t] * n + i] += weight * cos;
                            }
                        }
                    }
                    (RowStore::F32(rows), false) => {
                        for (slot, row) in rows.chunks_exact(bins).enumerate() {
                            let weight = block.weights[slot];
                            if weight == 0.0 {
                                continue;
                            }
                            let weight = f64::from(weight);
                            let i = shard.rows[slot] as usize;
                            for t in 0..tile {
                                let cand = &scratch.tile_rows[t * bins..(t + 1) * bins];
                                scratch.scores[scratch.tile_slots[t] * n + i] +=
                                    weight * measure.compute_dense_f32(cand, row);
                            }
                        }
                    }
                    (RowStore::U8 { rows, scales }, false) => {
                        // Non-cosine measures read frequencies, not
                        // directions: dequantize each reference row once
                        // per tile and reuse the dense f32 kernels.
                        for (slot, row) in rows.chunks_exact(bins).enumerate() {
                            let weight = block.weights[slot];
                            if weight == 0.0 {
                                continue;
                            }
                            let weight = f64::from(weight);
                            let i = shard.rows[slot] as usize;
                            let scale = scales[slot];
                            scratch.dequant_row.clear();
                            scratch.dequant_row.extend(row.iter().map(|&q| f32::from(q) * scale));
                            for t in 0..tile {
                                let cand = &scratch.tile_rows[t * bins..(t + 1) * bins];
                                scratch.scores[scratch.tile_slots[t] * n + i] +=
                                    weight * measure.compute_dense_f32(cand, &scratch.dequant_row);
                            }
                        }
                    }
                }
            }
        }
        // Emit (device, score) pairs: candidate-major, address order
        // within each candidate (the order every view API documents).
        scratch.pairs.clear();
        scratch.pairs.reserve(k * n);
        for c in 0..k {
            let scores = &scratch.scores[c * n..(c + 1) * n];
            scratch
                .pairs
                .extend(self.order.iter().map(|&i| (self.devices[i as usize], scores[i as usize])));
        }
    }

    /// The **pruned** sweep: the `k` most similar references to a
    /// candidate, best first, skipping every shard whose best possible
    /// score cannot beat the current `k`-th best.
    ///
    /// Per shard and frame kind the store keeps an upper envelope of the
    /// normalised rows plus the maximum reference weight; one dot
    /// against the envelope bounds every resident device's cosine from
    /// above (frequencies are non-negative), so
    /// `Σ_kind wmax · min(1, ĉ·envelope)` bounds every resident score.
    /// Shards are processed in descending bound order and skipped once
    /// their bound (plus [`F32_SCORE_TOLERANCE`] of rounding slack)
    /// falls below the current `k`-th best score — the bound is
    /// admissible, so the result equals the dense sweep's
    /// [`MatchOutcome::top`] exactly: same devices, same scores, same
    /// deterministic tie order.
    ///
    /// Pruning applies to [`SimilarityMeasure::Cosine`] on a sharded
    /// (`shards > 1`) database; other measures and flat databases fall
    /// back to the dense sweep plus partial selection.
    /// [`MatchScratch::prune_stats`] reports how many shards the call
    /// swept versus pruned. This is [`ReferenceDb::match_topk_tile`]
    /// with a tile of one.
    pub fn match_topk(
        &self,
        candidate: &Signature,
        k: usize,
        measure: SimilarityMeasure,
        scratch: &mut MatchScratch,
    ) -> Vec<(MacAddr, f64)> {
        self.match_topk_tile(std::slice::from_ref(candidate), k, measure, scratch)
            .pop()
            .unwrap_or_default()
    }

    /// The **tile-wide** pruned sweep: one top-`k` ranking per candidate,
    /// in input order, with the whole tile sharing a single pass over the
    /// shard order.
    ///
    /// Shards are visited in descending order of their *best* bound over
    /// the tile, and each candidate decides independently per shard: a
    /// candidate whose own bound for the shard (plus rounding slack)
    /// cannot beat its current `k`-th best skips it, while the shard's
    /// rows are loaded once for all candidates still active — so a K-wide
    /// tile costs one shard pass, not K, and each candidate still prunes
    /// exactly as aggressively as a solo [`ReferenceDb::match_topk`]
    /// (which *is* this sweep with a tile of one). Per-candidate results
    /// equal the dense sweep's [`MatchOutcome::top`]: same devices, same
    /// scores, same deterministic tie order.
    ///
    /// [`MatchScratch::prune_stats`] counts (candidate, shard) decisions,
    /// aggregated over the tile.
    // The bound ordering, per-candidate activation and gathered sweep
    // share packing state that a split would have to re-thread.
    #[allow(clippy::too_many_lines)]
    pub fn match_topk_tile<C: Borrow<Signature>>(
        &self,
        candidates: &[C],
        k: usize,
        measure: SimilarityMeasure,
        scratch: &mut MatchScratch,
    ) -> Vec<Vec<(MacAddr, f64)>> {
        let kc = candidates.len();
        scratch.prune_swept = 0;
        scratch.prune_pruned = 0;
        if k == 0 || self.devices.is_empty() || kc == 0 {
            return vec![Vec::new(); kc];
        }
        let occupied = self.shards.iter().filter(|s| !s.rows.is_empty()).count();
        if measure != SimilarityMeasure::Cosine || self.shards.len() <= 1 {
            // No admissible bound for the other measures, nothing to
            // prune in a flat layout: dense sweep + partial selection.
            self.match_tile_into(candidates, measure, scratch);
            scratch.prune_swept = occupied * kc;
            let n = self.devices.len();
            return (0..kc).map(|c| top_of(&scratch.pairs[c * n..(c + 1) * n], k)).collect();
        }
        let dot = kernel::dot_fn();
        let quantized = self.config.precision == RowPrecision::U8;

        // Pack each candidate's rows once per (kind, bins) key. The u8
        // tier packs the quantized codes (what the integer kernel dots
        // against the stored rows) and, in parallel at the same offsets,
        // their f32 widening — the envelope bound is a float dot in both
        // tiers.
        scratch.tile_rows.clear();
        scratch.tile_qrows.clear();
        scratch.cand_kinds.clear();
        scratch.cand_ranges.clear();
        for (ci, cand) in candidates.iter().enumerate() {
            let start = scratch.cand_kinds.len();
            for (ki, &(kind, bins)) in self.kind_keys.iter().enumerate() {
                let Some(hist) = cand.borrow().histogram(kind) else { continue };
                if hist.total() == 0 {
                    continue;
                }
                if hist.counts().len() != bins {
                    continue;
                }
                let offset = scratch.tile_rows.len();
                if quantized {
                    let q = hist.frequencies_u8();
                    debug_assert_eq!(offset, scratch.tile_qrows.len());
                    scratch.tile_qrows.extend_from_slice(q.values());
                    scratch.tile_rows.extend(q.values().iter().map(|&c| f32::from(c)));
                    scratch.cand_kinds.push((ci, ki, offset, f64::from(q.inv_norm())));
                } else {
                    let freqs = hist.frequencies_f32();
                    scratch.tile_rows.extend_from_slice(freqs);
                    scratch.cand_kinds.push((ci, ki, offset, f64::from(inv_norm(freqs))));
                }
            }
            scratch.cand_ranges.push((start, scratch.cand_kinds.len()));
        }

        // One bound per (occupied shard, candidate):
        // Σ_kind wmax · min(1, ĉ·envelope); shards are then ordered by
        // their best bound over the tile, which for a tile of one is
        // exactly the solo sweep's order.
        scratch.tile_bounds.clear();
        scratch.tile_bounds.resize(self.shards.len() * kc, 0.0);
        scratch.shard_bounds.clear();
        for (si, shard) in self.shards.iter().enumerate() {
            if shard.rows.is_empty() {
                continue;
            }
            let mut best = f64::NEG_INFINITY;
            for ci in 0..kc {
                let (start, end) = scratch.cand_ranges[ci];
                let mut bound = 0.0f64;
                for &(_, ki, offset, cand_inv) in &scratch.cand_kinds[start..end] {
                    let (kind, bins) = self.kind_keys[ki];
                    let Some(block) = shard.block(kind, bins) else { continue };
                    if block.wmax == 0.0 {
                        continue;
                    }
                    let cand = &scratch.tile_rows[offset..offset + bins];
                    let cos_ub =
                        (f64::from(dot(cand, &block.envelope)) * cand_inv).clamp(0.0, 1.0);
                    bound += f64::from(block.wmax) * cos_ub;
                }
                let bound = bound.min(1.0) + PRUNE_BOUND_SLACK;
                scratch.tile_bounds[si * kc + ci] = bound;
                best = best.max(bound);
            }
            scratch.shard_bounds.push((si as u32, best));
        }
        scratch.shard_bounds.sort_unstable_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0.cmp(&b.0))
        });

        let mut tops: Vec<Vec<(MacAddr, f64)>> = vec![Vec::new(); kc];
        for bi in 0..scratch.shard_bounds.len() {
            let (si, _) = scratch.shard_bounds[bi];
            let si = si as usize;
            let shard = &self.shards[si];
            // Each candidate decides for itself; the shard is scored
            // once for whoever is left. Bounds are admissible, so a
            // skipped (candidate, shard) pair could not have changed
            // that candidate's top-k.
            scratch.active.clear();
            for (ci, top) in tops.iter().enumerate() {
                if top.len() >= k && scratch.tile_bounds[si * kc + ci] < top[k - 1].1 {
                    scratch.prune_pruned += 1;
                } else {
                    scratch.active.push(ci);
                    scratch.prune_swept += 1;
                }
            }
            if scratch.active.is_empty() {
                continue;
            }
            let slots = shard.rows.len();
            scratch.shard_scores.clear();
            scratch.shard_scores.resize(slots * kc, 0.0);
            // Group the active candidates' packed kinds by kind so each
            // block is walked once for the whole tile: frame kinds
            // ascending, rows inner, candidates innermost — per
            // (candidate, row) that is the dense sweep's ascending-kind
            // `f64` accumulation, so surviving scores are bit-identical
            // to it.
            scratch.sweep_entries.clear();
            for &ci in &scratch.active {
                let (start, end) = scratch.cand_ranges[ci];
                scratch.sweep_entries.extend_from_slice(&scratch.cand_kinds[start..end]);
            }
            scratch.sweep_entries.sort_unstable_by_key(|&(ci, ki, _, _)| (ki, ci));
            let mut e = 0;
            while e < scratch.sweep_entries.len() {
                let ki = scratch.sweep_entries[e].1;
                let mut end = e + 1;
                while end < scratch.sweep_entries.len() && scratch.sweep_entries[end].1 == ki {
                    end += 1;
                }
                let (kind, bins) = self.kind_keys[ki];
                let Some(block) = shard.block(kind, bins) else {
                    e = end;
                    continue;
                };
                match &block.store {
                    RowStore::F32(rows) => {
                        for (slot, row) in rows.chunks_exact(bins).enumerate() {
                            let weight = block.weights[slot];
                            if weight == 0.0 {
                                continue;
                            }
                            let row_inv = f64::from(block.inv_norms[slot]);
                            for &(ci, _, offset, cand_inv) in &scratch.sweep_entries[e..end] {
                                let cand = &scratch.tile_rows[offset..offset + bins];
                                let cos =
                                    (f64::from(dot(cand, row)) * cand_inv * row_inv)
                                        .clamp(0.0, 1.0);
                                scratch.shard_scores[ci * slots + slot] +=
                                    f64::from(weight) * cos;
                            }
                        }
                    }
                    RowStore::U8 { rows, .. } => {
                        // Gather the active candidates' code rows
                        // contiguously and hand each reference row to
                        // the register-blocked integer microkernel.
                        let m = end - e;
                        scratch.gather_qrows.clear();
                        for &(_, _, offset, _) in &scratch.sweep_entries[e..end] {
                            scratch
                                .gather_qrows
                                .extend_from_slice(&scratch.tile_qrows[offset..offset + bins]);
                        }
                        scratch.u8_dots.clear();
                        scratch.u8_dots.resize(m, 0);
                        for (slot, row) in rows.chunks_exact(bins).enumerate() {
                            let weight = block.weights[slot];
                            if weight == 0.0 {
                                continue;
                            }
                            let row_inv = f64::from(block.inv_norms[slot]);
                            kernel::dot_u8_multi(
                                &scratch.gather_qrows,
                                row,
                                &mut scratch.u8_dots[..m],
                            );
                            for (d, &(ci, _, _, cand_inv)) in
                                scratch.u8_dots.iter().zip(&scratch.sweep_entries[e..end])
                            {
                                let cos =
                                    (f64::from(*d) * cand_inv * row_inv).clamp(0.0, 1.0);
                                scratch.shard_scores[ci * slots + slot] +=
                                    f64::from(weight) * cos;
                            }
                        }
                    }
                }
                e = end;
            }
            // Merge the shard into each active candidate's running
            // top-k, kept sorted by rank at all times: entries that
            // cannot outrank the current k-th best are dropped with one
            // comparison, survivors are placed by binary insertion (k is
            // small). Candidates with packed kinds absent from this
            // shard merge zeros, exactly like the dense sweep.
            for &ci in &scratch.active {
                let tops_c = &mut tops[ci];
                let shard_scores = &scratch.shard_scores[ci * slots..(ci + 1) * slots];
                for (&r, &s) in shard.rows.iter().zip(shard_scores) {
                    let entry = (self.devices[r as usize], s);
                    if tops_c.len() >= k
                        && rank_desc(&entry, &tops_c[k - 1]) != std::cmp::Ordering::Less
                    {
                        continue;
                    }
                    let pos = tops_c
                        .partition_point(|e| rank_desc(e, &entry) == std::cmp::Ordering::Less);
                    tops_c.insert(pos, entry);
                    tops_c.truncate(k);
                }
            }
        }
        tops
    }

    /// Matches a batch of candidate signatures, returning one outcome per
    /// candidate in order. Candidates are scored in [`MATCH_TILE`]-wide
    /// tiles ([`ReferenceDb::match_tile`]); with the `parallel` feature
    /// (default) the tiles are split across threads, one [`MatchScratch`]
    /// per worker.
    pub fn match_batch(
        &self,
        candidates: &[Signature],
        measure: SimilarityMeasure,
    ) -> Vec<MatchOutcome> {
        crate::batch::map_tiles_with_scratch(
            candidates,
            MATCH_TILE,
            MatchScratch::new,
            |scratch, tile| {
                let view = self.match_tile(tile, measure, scratch);
                (0..tile.len()).map(|t| view.candidate(t).to_outcome()).collect()
            },
        )
    }

    /// The pre-SoA matching path: per-call candidate frequency allocation,
    /// per-device frame-kind lookups, and full-`f64` arithmetic
    /// throughout. Kept so benchmarks can quantify what the matrix layout
    /// buys **and** as the f64 ground truth the f32 engine's parity tests
    /// compare against (equal output within [`F32_SCORE_TOLERANCE`]).
    #[cfg(any(test, feature = "bench-baseline"))]
    pub fn match_signature_naive(
        &self,
        candidate: &Signature,
        measure: SimilarityMeasure,
    ) -> MatchOutcome {
        let cand_freqs: Vec<(FrameKind, Vec<f64>)> =
            candidate.iter().map(|(kind, hist)| (kind, hist.frequency_vec())).collect();
        let mut sims = Vec::with_capacity(self.devices.len());
        for (device, sig) in self.iter() {
            let mut sim = 0.0;
            for (kind, cand_freq) in &cand_freqs {
                if let Some(hist) = sig.histogram(*kind) {
                    sim += sig.weight(*kind) * measure.compute(cand_freq, hist.frequencies());
                }
            }
            sims.push((device, sim));
        }
        MatchOutcome { sims }
    }
}

/// `1 / ‖row‖₂` through the dispatched kernel; 0.0 for an all-zero row.
fn inv_norm(row: &[f32]) -> f32 {
    let norm_sq = f64::from(kernel::dot_f32(row, row));
    if norm_sq > 0.0 {
        (1.0 / norm_sq.sqrt()) as f32
    } else {
        0.0
    }
}

/// How the last pruned sweep spent its shards (see
/// [`ReferenceDb::match_topk`] and [`MatchScratch::prune_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PruneStats {
    /// Shards whose rows were actually scored.
    pub swept_shards: usize,
    /// Shards skipped because their score bound could not beat the
    /// current top-k.
    pub pruned_shards: usize,
}

impl PruneStats {
    /// Fraction of the occupied shards the sweep skipped (0.0 when the
    /// database fits in one shard or the sweep fell back to dense).
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.swept_shards + self.pruned_shards;
        if total == 0 {
            0.0
        } else {
            self.pruned_shards as f64 / total as f64
        }
    }
}

/// Reusable buffers for [`ReferenceDb::match_signature_with`],
/// [`ReferenceDb::match_tile`] and [`ReferenceDb::match_topk`]: create
/// one per worker, reuse it for every window. Capacity grows to
/// `tile × database size` on first use and is retained afterwards, making
/// the steady state allocation-free.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Per-(candidate, device) accumulators, candidate-major, indexed
    /// like `ReferenceDb::devices` (insertion order) within a candidate.
    scores: Vec<f64>,
    /// The `(device, similarity)` pairs the returned views expose:
    /// candidate-major, address order within each candidate.
    pairs: Vec<(MacAddr, f64)>,
    /// The current kind's packed candidate rows (`f32`, row-major).
    tile_rows: Vec<f32>,
    /// The current kind's packed candidate code rows (`u8` tier only),
    /// at the same per-candidate offsets as `tile_rows`.
    tile_qrows: Vec<u8>,
    /// Reciprocal L2 norms of the packed candidate rows.
    tile_inv_norms: Vec<f64>,
    /// Which candidate each packed tile row belongs to.
    tile_slots: Vec<usize>,
    /// Integer microkernel outputs: one `u32` dot per tile row.
    u8_dots: Vec<u32>,
    /// One dequantized reference row (`u8` tier, non-cosine measures).
    dequant_row: Vec<f32>,
    /// Pruned sweep: every candidate's packed kinds as
    /// `(candidate, kind_key index, offset into tile_rows, 1/‖row‖)`.
    cand_kinds: Vec<(usize, usize, usize, f64)>,
    /// Pruned sweep: each candidate's `start..end` range in `cand_kinds`.
    cand_ranges: Vec<(usize, usize)>,
    /// Pruned sweep: `(shard, best score bound over the tile)`, sorted
    /// descending.
    shard_bounds: Vec<(u32, f64)>,
    /// Pruned sweep: per-(shard, candidate) score upper bounds, indexed
    /// `shard * tile + candidate`.
    tile_bounds: Vec<f64>,
    /// Pruned sweep: candidates still active for the shard being swept.
    active: Vec<usize>,
    /// Pruned sweep: the active candidates' packed kinds for the current
    /// shard, grouped by kind (ascending).
    sweep_entries: Vec<(usize, usize, usize, f64)>,
    /// Pruned sweep: active candidates' code rows gathered contiguously
    /// for the integer microkernel (`u8` tier only).
    gather_qrows: Vec<u8>,
    /// Pruned sweep: per-(candidate, slot) accumulators for the shard
    /// being swept, candidate-major.
    shard_scores: Vec<f64>,
    /// Shards scored by the last pruned sweep.
    prune_swept: usize,
    /// Shards skipped by the last pruned sweep.
    prune_pruned: usize,
}

impl MatchScratch {
    /// Empty scratch; buffers are sized lazily by the first match.
    pub fn new() -> Self {
        MatchScratch::default()
    }

    /// Shard accounting of the most recent [`ReferenceDb::match_topk`] /
    /// [`ReferenceDb::match_topk_tile`] call through this scratch.
    pub fn prune_stats(&self) -> PruneStats {
        PruneStats { swept_shards: self.prune_swept, pruned_shards: self.prune_pruned }
    }
}

/// A borrowed view of one match's similarity vector (the zero-allocation
/// counterpart of [`MatchOutcome`]).
#[derive(Debug, Clone, Copy)]
pub struct MatchView<'a> {
    sims: &'a [(MacAddr, f64)],
}

impl MatchView<'_> {
    /// All `(reference device, similarity)` pairs, in database order.
    pub fn similarities(&self) -> &[(MacAddr, f64)] {
        self.sims
    }

    /// The similarity to one specific reference device.
    pub fn similarity_to(&self, device: &MacAddr) -> Option<f64> {
        similarity_to(self.sims, *device)
    }

    /// The similarity test (§IV-B): references whose similarity is at
    /// least `threshold`.
    pub fn above_threshold(&self, threshold: f64) -> impl Iterator<Item = (MacAddr, f64)> + '_ {
        self.sims.iter().copied().filter(move |&(_, s)| s >= threshold)
    }

    /// The identification test (§IV-B): the single closest reference.
    ///
    /// Ties break toward the lower MAC address for determinism.
    pub fn best(&self) -> Option<(MacAddr, f64)> {
        best_of(self.sims)
    }

    /// The `k` most similar references, best first, via partial selection
    /// (`O(N + k log k)`) rather than a full sort. Ties order toward the
    /// lower MAC address; `top(1)` agrees with [`MatchView::best`].
    pub fn top(&self, k: usize) -> Vec<(MacAddr, f64)> {
        top_of(self.sims, k)
    }

    /// An owned copy of this view.
    pub fn to_outcome(&self) -> MatchOutcome {
        MatchOutcome { sims: self.sims.to_vec() }
    }
}

/// A borrowed view of one [`ReferenceDb::match_tile`] result: `K`
/// similarity vectors over the same reference set, one per candidate.
#[derive(Debug, Clone, Copy)]
pub struct TileView<'a> {
    /// Candidate-major `(device, similarity)` pairs; each candidate's
    /// segment is in ascending address order.
    pairs: &'a [(MacAddr, f64)],
    /// References per candidate (the database size at match time).
    n: usize,
    /// Candidates in the tile (kept separately so an empty database
    /// still yields one — empty — view per candidate).
    k: usize,
}

impl<'a> TileView<'a> {
    /// Number of candidates in the tile (the input length, even when the
    /// database was empty).
    pub fn candidate_count(&self) -> usize {
        self.k
    }

    /// The similarity vector of candidate `index` (input order). Against
    /// an empty database the view is empty, like
    /// [`ReferenceDb::match_signature_with`]'s.
    ///
    /// # Panics
    ///
    /// Panics if `index >= candidate_count()`.
    pub fn candidate(&self, index: usize) -> MatchView<'a> {
        assert!(index < self.k, "candidate {index} out of range for tile of {}", self.k);
        MatchView { sims: &self.pairs[index * self.n..(index + 1) * self.n] }
    }

    /// Iterates the per-candidate views in input order (exactly
    /// [`TileView::candidate_count`] of them).
    pub fn views(&self) -> impl Iterator<Item = MatchView<'a>> + '_ {
        (0..self.k).map(|index| self.candidate(index))
    }
}

/// The similarity vector `<sim₁, …, sim_N>` returned by Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOutcome {
    sims: Vec<(MacAddr, f64)>,
}

impl MatchOutcome {
    /// The no-references outcome (used by the engine when scoring of
    /// unknown devices is disabled).
    pub(crate) fn empty() -> MatchOutcome {
        MatchOutcome { sims: Vec::new() }
    }

    /// All `(reference device, similarity)` pairs, in database order.
    pub fn similarities(&self) -> &[(MacAddr, f64)] {
        &self.sims
    }

    /// The similarity to one specific reference device.
    pub fn similarity_to(&self, device: &MacAddr) -> Option<f64> {
        similarity_to(&self.sims, *device)
    }

    /// The similarity test (§IV-B): references whose similarity is at
    /// least `threshold`.
    pub fn above_threshold(&self, threshold: f64) -> impl Iterator<Item = (MacAddr, f64)> + '_ {
        self.sims.iter().copied().filter(move |&(_, s)| s >= threshold)
    }

    /// The identification test (§IV-B): the single closest reference.
    ///
    /// Ties break toward the lower MAC address for determinism.
    pub fn best(&self) -> Option<(MacAddr, f64)> {
        best_of(&self.sims)
    }

    /// The `k` most similar references, best first, via partial selection
    /// (`O(N + k log k)`) rather than a full sort. Ties order toward the
    /// lower MAC address; `top(1)` agrees with [`MatchOutcome::best`].
    pub fn top(&self, k: usize) -> Vec<(MacAddr, f64)> {
        top_of(&self.sims, k)
    }
}

fn similarity_to(sims: &[(MacAddr, f64)], device: MacAddr) -> Option<f64> {
    // The vector is in ascending device order (database order).
    sims.binary_search_by(|(d, _)| d.cmp(&device)).ok().map(|i| sims[i].1)
}

/// Descending score; equal scores order toward the lower address, so the
/// ranking is deterministic and `top(1)` matches `best()`.
pub(crate) fn rank_desc(a: &(MacAddr, f64), b: &(MacAddr, f64)) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0.cmp(&b.0))
}

pub(crate) fn best_of(sims: &[(MacAddr, f64)]) -> Option<(MacAddr, f64)> {
    sims.iter().copied().min_by(rank_desc)
}

pub(crate) fn top_of(sims: &[(MacAddr, f64)], k: usize) -> Vec<(MacAddr, f64)> {
    if k == 0 || sims.is_empty() {
        return Vec::new();
    }
    if k == 1 {
        // Single scan, no copy of the similarity vector.
        return best_of(sims).into_iter().collect();
    }
    let mut ranked = sims.to_vec();
    let k = k.min(ranked.len());
    if k < ranked.len() {
        // Partial select: everything before index k ranks at least as
        // high as everything after it, in O(N).
        ranked.select_nth_unstable_by(k - 1, rank_desc);
        ranked.truncate(k);
    }
    ranked.sort_unstable_by(rank_desc);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::params::NetworkParameter;
    use proptest::prelude::*;

    fn cfg() -> EvalConfig {
        EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
    }

    fn sig_with(values: &[(FrameKind, f64, u64)]) -> Signature {
        let c = cfg();
        let mut sig = Signature::new();
        for &(kind, value, n) in values {
            for _ in 0..n {
                sig.record(kind, value, &c);
            }
        }
        sig
    }

    /// Every shard configuration parity tests sweep over — both
    /// precision tiers, since the consistency invariants (streamed ≡
    /// bulk, churn ≡ fresh, sharded ≡ flat) hold per tier.
    fn strategies() -> Vec<MatchConfig> {
        vec![
            MatchConfig::flat(),
            MatchConfig::default(),
            MatchConfig::default().with_shards(3),
            MatchConfig::default().with_strategy(ShardStrategy::MacPrefix).with_shards(5),
            MatchConfig::flat().with_precision(RowPrecision::U8),
            MatchConfig::quantized(),
            MatchConfig::quantized().with_strategy(ShardStrategy::MacPrefix).with_shards(5),
        ]
    }

    #[test]
    fn identical_signature_scores_one() {
        let sig = sig_with(&[(FrameKind::Data, 500.0, 30), (FrameKind::ProbeReq, 100.0, 10)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), sig.clone()).unwrap();
        let outcome = db.match_signature(&sig, SimilarityMeasure::Cosine);
        let (_, score) = outcome.best().unwrap();
        assert!((score - 1.0).abs() < F32_SCORE_TOLERANCE);
    }

    #[test]
    fn disjoint_histograms_score_zero() {
        let a = sig_with(&[(FrameKind::Data, 100.0, 10)]);
        let b = sig_with(&[(FrameKind::Data, 2000.0, 10)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), a).unwrap();
        let outcome = db.match_signature(&b, SimilarityMeasure::Cosine);
        assert_eq!(outcome.best().unwrap().1, 0.0);
    }

    #[test]
    fn missing_frame_types_contribute_nothing() {
        // Reference only has Data; candidate only has ProbeReq.
        let r = sig_with(&[(FrameKind::Data, 100.0, 10)]);
        let c = sig_with(&[(FrameKind::ProbeReq, 100.0, 10)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), r).unwrap();
        let outcome = db.match_signature(&c, SimilarityMeasure::Cosine);
        assert_eq!(outcome.similarities()[0].1, 0.0);
    }

    #[test]
    fn weights_come_from_the_reference() {
        // Reference: 90% Data at 100 µs, 10% ProbeReq at 200 µs.
        let r = sig_with(&[(FrameKind::Data, 100.0, 90), (FrameKind::ProbeReq, 200.0, 10)]);
        // Candidate matches only the ProbeReq histogram.
        let c = sig_with(&[(FrameKind::ProbeReq, 200.0, 50)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), r).unwrap();
        let outcome = db.match_signature(&c, SimilarityMeasure::Cosine);
        // Score = weight_ref(ProbeReq) × 1.0 = 0.1.
        assert!((outcome.similarities()[0].1 - 0.1).abs() < F32_SCORE_TOLERANCE);
    }

    #[test]
    fn best_picks_highest_similarity() {
        let near = sig_with(&[(FrameKind::Data, 500.0, 40), (FrameKind::Data, 525.0, 10)]);
        let far = sig_with(&[(FrameKind::Data, 1500.0, 50)]);
        let probe = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut db = ReferenceDb::new();
        let d_near = MacAddr::from_index(1);
        let d_far = MacAddr::from_index(2);
        db.insert(d_near, near).unwrap();
        db.insert(d_far, far).unwrap();
        let outcome = db.match_signature(&probe, SimilarityMeasure::Cosine);
        assert_eq!(outcome.best().unwrap().0, d_near);
        assert!(outcome.similarity_to(&d_far).unwrap() < outcome.similarity_to(&d_near).unwrap());
    }

    #[test]
    fn above_threshold_filters() {
        let base = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), base.clone()).unwrap();
        db.insert(MacAddr::from_index(2), sig_with(&[(FrameKind::Data, 2200.0, 50)])).unwrap();
        let outcome = db.match_signature(&base, SimilarityMeasure::Cosine);
        let hits: Vec<_> = outcome.above_threshold(0.9).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, MacAddr::from_index(1));
        assert_eq!(outcome.above_threshold(0.0).count(), 2);
    }

    #[test]
    fn db_crud_operations() {
        let mut db = ReferenceDb::new();
        assert!(db.is_empty());
        let dev = MacAddr::from_index(7);
        let sig = sig_with(&[(FrameKind::Data, 1.0, 5)]);
        assert!(db.insert(dev, sig.clone()).unwrap().is_none());
        assert!(db.contains(&dev));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(&dev), Some(&sig));
        assert_eq!(db.devices().collect::<Vec<_>>(), vec![dev]);
        let replaced = db.insert(dev, sig_with(&[(FrameKind::Data, 2.0, 5)])).unwrap();
        assert_eq!(replaced, Some(sig));
        assert!(db.remove(&dev).unwrap().is_some());
        assert!(db.is_empty());
        assert!(db.remove(&dev).unwrap().is_none(), "absent device removes to None");
    }

    #[test]
    fn empty_signatures_are_rejected() {
        let mut db = ReferenceDb::new();
        let dev = MacAddr::from_index(1);
        match db.insert(dev, Signature::new()) {
            Err(CoreError::EmptySignature { device }) => assert_eq!(device, dev),
            other => panic!("expected EmptySignature, got {other:?}"),
        }
        assert!(db.is_empty());
    }

    #[test]
    fn freeze_guards_mutation_and_snapshot_splits_lifecycle() {
        let mut db = ReferenceDb::new();
        let d1 = MacAddr::from_index(1);
        let d2 = MacAddr::from_index(2);
        let sig = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        db.insert(d1, sig.clone()).unwrap();

        // A frozen snapshot serves detection while enrollment continues.
        let frozen = db.snapshot();
        assert!(frozen.is_frozen());
        assert!(!db.is_frozen());
        db.insert(d2, sig.clone()).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(frozen.len(), 1);

        // Matching works on both sides of the freeze.
        assert_eq!(frozen.match_signature(&sig, SimilarityMeasure::Cosine).best().unwrap().0, d1);

        // Mutating the frozen copy is a typed error, and changes nothing.
        let mut frozen = frozen;
        match frozen.insert(d2, sig.clone()) {
            Err(CoreError::FrozenDatabase { device }) => assert_eq!(device, Some(d2)),
            other => panic!("expected FrozenDatabase, got {other:?}"),
        }
        assert!(matches!(frozen.remove(&d1), Err(CoreError::FrozenDatabase { .. })));
        assert_eq!(frozen.len(), 1);

        // In-place freeze is idempotent.
        db.freeze();
        db.freeze();
        assert!(db.is_frozen());
        assert!(matches!(db.insert(d1, sig), Err(CoreError::FrozenDatabase { .. })));
    }

    #[test]
    fn empty_db_matches_nothing() {
        let db = ReferenceDb::new();
        let outcome =
            db.match_signature(&sig_with(&[(FrameKind::Data, 1.0, 5)]), SimilarityMeasure::Cosine);
        assert!(outcome.best().is_none());
        assert!(outcome.similarities().is_empty());
        let mut scratch = MatchScratch::new();
        assert!(db
            .match_topk(&sig_with(&[(FrameKind::Data, 1.0, 5)]), 3, SimilarityMeasure::Cosine, &mut scratch)
            .is_empty());
    }

    #[test]
    fn tie_breaks_toward_lower_address() {
        let sig = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(5), sig.clone()).unwrap();
        db.insert(MacAddr::from_index(3), sig.clone()).unwrap();
        let outcome = db.match_signature(&sig, SimilarityMeasure::Cosine);
        assert_eq!(outcome.best().unwrap().0, MacAddr::from_index(3));
    }

    #[test]
    fn scratch_view_equals_owned_outcome() {
        let mut db = ReferenceDb::new();
        for i in 1..=5u64 {
            db.insert(
                MacAddr::from_index(i),
                sig_with(&[(FrameKind::Data, 100.0 * i as f64, 30), (FrameKind::Beacon, 50.0, 5)]),
            ).unwrap();
        }
        let cand = sig_with(&[(FrameKind::Data, 250.0, 40)]);
        let mut scratch = MatchScratch::new();
        for m in SimilarityMeasure::ALL {
            let owned = db.match_signature(&cand, m);
            let view = db.match_signature_with(&cand, m, &mut scratch);
            assert_eq!(view.similarities(), owned.similarities(), "{m}");
            assert_eq!(view.best(), owned.best(), "{m}");
            assert_eq!(view.to_outcome(), owned, "{m}");
        }
    }

    #[test]
    fn matrix_sweep_agrees_with_naive_baseline() {
        let mut db = ReferenceDb::new();
        for i in 1..=16u64 {
            let kinds: &[(FrameKind, f64, u64)] = &[
                (FrameKind::Data, 37.0 * i as f64, 40 + i),
                (FrameKind::ProbeReq, 11.0 * i as f64, i),
                (FrameKind::Beacon, 500.0, 3),
            ];
            db.insert(MacAddr::from_index(i), sig_with(kinds)).unwrap();
        }
        let cand =
            sig_with(&[(FrameKind::Data, 370.0, 55), (FrameKind::ProbeReq, 110.0, 7)]);
        for m in SimilarityMeasure::ALL {
            let fast = db.match_signature(&cand, m);
            let naive = db.match_signature_naive(&cand, m);
            assert_eq!(fast.similarities().len(), naive.similarities().len());
            for (f, n) in fast.similarities().iter().zip(naive.similarities()) {
                assert_eq!(f.0, n.0);
                // The f32 rows round each frequency once; the f64
                // accumulation keeps the drift within the documented
                // tolerance of the all-f64 baseline.
                assert!((f.1 - n.1).abs() < F32_SCORE_TOLERANCE, "{m}: {} vs {}", f.1, n.1);
            }
        }
    }

    #[test]
    fn match_batch_preserves_order_and_scores() {
        let mut db = ReferenceDb::new();
        for i in 1..=8u64 {
            db.insert(MacAddr::from_index(i), sig_with(&[(FrameKind::Data, 90.0 * i as f64, 50)])).unwrap();
        }
        let candidates: Vec<Signature> =
            (1..=20u64).map(|i| sig_with(&[(FrameKind::Data, 90.0 * (i % 8 + 1) as f64, 50)])).collect();
        let batch = db.match_batch(&candidates, SimilarityMeasure::Cosine);
        assert_eq!(batch.len(), candidates.len());
        for (cand, outcome) in candidates.iter().zip(&batch) {
            assert_eq!(outcome, &db.match_signature(cand, SimilarityMeasure::Cosine));
        }
    }

    #[test]
    fn match_tile_equals_independent_matches() {
        let mut db = ReferenceDb::new();
        for i in 1..=12u64 {
            db.insert(
                MacAddr::from_index(i),
                sig_with(&[
                    (FrameKind::Data, 61.0 * i as f64, 30 + i),
                    (FrameKind::Beacon, 40.0 * i as f64, 4),
                ]),
            ).unwrap();
        }
        // A mixed tile: plain candidates, one missing a kind, one empty.
        let candidates = vec![
            sig_with(&[(FrameKind::Data, 122.0, 40)]),
            sig_with(&[(FrameKind::Beacon, 80.0, 9), (FrameKind::Data, 600.0, 11)]),
            Signature::new(),
            sig_with(&[(FrameKind::ProbeReq, 10.0, 25)]),
        ];
        let mut scratch = MatchScratch::new();
        let mut single = MatchScratch::new();
        for m in SimilarityMeasure::ALL {
            let tile = db.match_tile(&candidates, m, &mut scratch);
            assert_eq!(tile.candidate_count(), candidates.len());
            let views: Vec<MatchOutcome> = tile.views().map(|v| v.to_outcome()).collect();
            for (cand, got) in candidates.iter().zip(views) {
                let want = db.match_signature_with(cand, m, &mut single).to_outcome();
                assert_eq!(got, want, "{m}");
            }
        }
    }

    #[test]
    fn tile_against_empty_db_yields_one_empty_view_per_candidate() {
        let db = ReferenceDb::new();
        let candidates = vec![
            sig_with(&[(FrameKind::Data, 100.0, 10)]),
            sig_with(&[(FrameKind::Beacon, 50.0, 5)]),
        ];
        let mut scratch = MatchScratch::new();
        let tile = db.match_tile(&candidates, SimilarityMeasure::Cosine, &mut scratch);
        assert_eq!(tile.candidate_count(), 2);
        assert_eq!(tile.views().count(), 2);
        for i in 0..2 {
            let view = tile.candidate(i);
            assert!(view.similarities().is_empty());
            assert!(view.best().is_none());
            assert!(view.top(3).is_empty());
        }
    }

    #[test]
    fn streaming_inserts_equal_bulk_pack() {
        // The incremental append path must produce a database that scores
        // identically to the one-shot pack — per shard configuration.
        for config in strategies() {
            let sigs: Vec<(MacAddr, Signature)> = (1..=9u64)
                .map(|i| {
                    (
                        // Out-of-order addresses exercise the sorted index.
                        MacAddr::from_index((i * 7) % 9 + 1),
                        sig_with(&[
                            (FrameKind::Data, 83.0 * i as f64, 20 + i),
                            (FrameKind::ProbeReq, 31.0 * i as f64, i % 3),
                        ]),
                    )
                })
                .collect();
            let mut streamed = ReferenceDb::with_config(config);
            for (dev, sig) in &sigs {
                streamed.insert(*dev, sig.clone()).unwrap();
            }
            let bulk = ReferenceDb::from_signatures_with(sigs.into_iter().collect(), config);
            assert_eq!(
                streamed.devices().collect::<Vec<_>>(),
                bulk.devices().collect::<Vec<_>>()
            );
            let cand = sig_with(&[(FrameKind::Data, 249.0, 33), (FrameKind::ProbeReq, 62.0, 5)]);
            for m in SimilarityMeasure::ALL {
                let a = streamed.match_signature(&cand, m);
                let b = bulk.match_signature(&cand, m);
                assert_eq!(a.similarities(), b.similarities(), "{m} under {config:?}");
            }
            // Replacement detaches and re-attaches (possibly migrating
            // shards) and stays consistent too.
            let dev = streamed.devices().next().unwrap();
            let replacement = sig_with(&[(FrameKind::Beacon, 700.0, 12)]);
            streamed.insert(dev, replacement.clone()).unwrap();
            let mut bulk_map: BTreeMap<MacAddr, Signature> =
                bulk.iter().map(|(d, s)| (d, s.clone())).collect();
            bulk_map.insert(dev, replacement);
            let repacked = ReferenceDb::from_signatures_with(bulk_map, config);
            let a = streamed.match_signature(&cand, SimilarityMeasure::Cosine);
            let b = repacked.match_signature(&cand, SimilarityMeasure::Cosine);
            assert_eq!(a.similarities(), b.similarities(), "{config:?}");
        }
    }

    #[test]
    fn remove_then_insert_keeps_shards_and_index_consistent() {
        // Regression for the sharded store: any interleaving of removes
        // and (re-)inserts must leave shard membership, slots and the
        // sorted address index scoring exactly like a freshly built
        // database.
        for config in strategies() {
            let sig_for = |i: u64| {
                sig_with(&[
                    (FrameKind::Data, 190.0 * (i % 13) as f64, 25 + i),
                    (FrameKind::ProbeReq, 60.0 * (i % 5) as f64, 4 + i % 3),
                ])
            };
            let mut db = ReferenceDb::with_config(config);
            for i in 1..=12u64 {
                db.insert(MacAddr::from_index(i), sig_for(i)).unwrap();
            }
            // Remove from the middle and both ends (stressing the
            // global-row shift), then re-insert one with a *different*
            // signature so it may migrate shards.
            for i in [6u64, 1, 12] {
                assert!(db.remove(&MacAddr::from_index(i)).unwrap().is_some(), "{config:?}");
            }
            db.insert(MacAddr::from_index(6), sig_for(99)).unwrap();
            db.insert(MacAddr::from_index(13), sig_for(13)).unwrap();

            let mut fresh_map: BTreeMap<MacAddr, Signature> = BTreeMap::new();
            for i in 2..=11u64 {
                fresh_map.insert(MacAddr::from_index(i), sig_for(i));
            }
            fresh_map.insert(MacAddr::from_index(6), sig_for(99));
            fresh_map.insert(MacAddr::from_index(13), sig_for(13));
            let fresh = ReferenceDb::from_signatures_with(fresh_map, config);

            assert_eq!(
                db.devices().collect::<Vec<_>>(),
                fresh.devices().collect::<Vec<_>>(),
                "{config:?}: address index"
            );
            let mut scratch = MatchScratch::new();
            for probe in [sig_for(99), sig_for(3), sig_for(13)] {
                let a = db.match_signature(&probe, SimilarityMeasure::Cosine);
                let b = fresh.match_signature(&probe, SimilarityMeasure::Cosine);
                assert_eq!(a.similarities(), b.similarities(), "{config:?}: dense parity");
                let ta = db.match_topk(&probe, 4, SimilarityMeasure::Cosine, &mut scratch);
                assert_eq!(ta, b.top(4), "{config:?}: pruned parity after churn");
            }
        }
    }

    #[test]
    fn sharded_dense_sweep_is_bit_identical_to_flat() {
        let sigs: Vec<(MacAddr, Signature)> = (1..=24u64)
            .map(|i| {
                (
                    MacAddr::from_index(i),
                    sig_with(&[
                        (FrameKind::Data, 97.0 * (i % 11) as f64, 30 + i),
                        (FrameKind::Beacon, 45.0 * (i % 4) as f64, i % 6),
                    ]),
                )
            })
            .collect();
        let cand = sig_with(&[(FrameKind::Data, 291.0, 40), (FrameKind::Beacon, 90.0, 6)]);
        for config in strategies() {
            // The flat baseline shares the config's precision: the
            // bit-identity claim is per tier.
            let flat = ReferenceDb::from_signatures_with(
                sigs.iter().cloned().collect(),
                MatchConfig::flat().with_precision(config.precision),
            );
            let sharded = ReferenceDb::from_signatures_with(sigs.iter().cloned().collect(), config);
            for m in SimilarityMeasure::ALL {
                let a = sharded.match_signature(&cand, m);
                let b = flat.match_signature(&cand, m);
                // Bit-identical, not merely within tolerance: the sweep
                // accumulates per device in the same kind order.
                assert_eq!(a.similarities(), b.similarities(), "{m} under {config:?}");
            }
        }
    }

    #[test]
    fn pruned_topk_equals_dense_topk() {
        let mut db = ReferenceDb::with_config(MatchConfig::default().with_shards(8));
        for i in 1..=40u64 {
            db.insert(
                MacAddr::from_index(i),
                sig_with(&[
                    (FrameKind::Data, 60.0 * (i % 16) as f64, 40),
                    (FrameKind::ProbeReq, 30.0 * (i % 7) as f64, 5),
                ]),
            )
            .unwrap();
        }
        let mut scratch = MatchScratch::new();
        for probe_seed in [1u64, 7, 15] {
            let cand = sig_with(&[(FrameKind::Data, 60.0 * (probe_seed % 16) as f64, 45)]);
            let dense = db.match_signature(&cand, SimilarityMeasure::Cosine);
            for k in [1usize, 3, 10, 40, 100] {
                let pruned = db.match_topk(&cand, k, SimilarityMeasure::Cosine, &mut scratch);
                assert_eq!(pruned, dense.top(k), "seed {probe_seed}, k {k}");
                let stats = scratch.prune_stats();
                assert!(stats.swept_shards + stats.pruned_shards > 0);
            }
        }
        // Tile form agrees with the per-candidate form.
        let cands: Vec<Signature> = (1..=5u64)
            .map(|i| sig_with(&[(FrameKind::Data, 60.0 * (i % 16) as f64, 45)]))
            .collect();
        let tiled = db.match_topk_tile(&cands, 3, SimilarityMeasure::Cosine, &mut scratch);
        for (cand, got) in cands.iter().zip(&tiled) {
            assert_eq!(got, &db.match_signature(cand, SimilarityMeasure::Cosine).top(3));
        }
    }

    #[test]
    fn pruned_topk_actually_prunes_separated_populations() {
        // Devices concentrated at well-separated dominant bins: a probe
        // near one cluster must not sweep every shard.
        let mut db = ReferenceDb::with_config(MatchConfig::default().with_shards(16));
        for i in 0..160u64 {
            let center = 150.0 * (i % 16) as f64 + 10.0;
            db.insert(MacAddr::from_index(i + 1), sig_with(&[(FrameKind::Data, center, 60)]))
                .unwrap();
        }
        let cand = sig_with(&[(FrameKind::Data, 310.0, 60)]);
        let mut scratch = MatchScratch::new();
        let pruned = db.match_topk(&cand, 3, SimilarityMeasure::Cosine, &mut scratch);
        assert_eq!(pruned, db.match_signature(&cand, SimilarityMeasure::Cosine).top(3));
        let stats = scratch.prune_stats();
        assert!(
            stats.pruned_shards > 0,
            "expected pruning on separated clusters, got {stats:?}"
        );
        assert!(stats.pruned_fraction() > 0.0 && stats.pruned_fraction() < 1.0);
    }

    #[test]
    fn non_cosine_topk_falls_back_to_dense() {
        let mut db = ReferenceDb::with_config(MatchConfig::default().with_shards(4));
        for i in 1..=10u64 {
            db.insert(MacAddr::from_index(i), sig_with(&[(FrameKind::Data, 55.0 * i as f64, 40)]))
                .unwrap();
        }
        let cand = sig_with(&[(FrameKind::Data, 165.0, 40)]);
        let mut scratch = MatchScratch::new();
        for m in SimilarityMeasure::ALL {
            let top = db.match_topk(&cand, 3, m, &mut scratch);
            assert_eq!(top, db.match_signature(&cand, m).top(3), "{m}");
            if m != SimilarityMeasure::Cosine {
                assert_eq!(scratch.prune_stats().pruned_shards, 0, "{m}: no pruning claimed");
            }
        }
    }

    #[test]
    fn top_k_ranks_and_ties_deterministically() {
        let mut db = ReferenceDb::new();
        for i in 1..=10u64 {
            db.insert(MacAddr::from_index(i), sig_with(&[(FrameKind::Data, 55.0 * i as f64, 40)])).unwrap();
        }
        let cand = sig_with(&[(FrameKind::Data, 165.0, 40)]);
        let outcome = db.match_signature(&cand, SimilarityMeasure::Cosine);
        let full: Vec<_> = {
            let mut v = outcome.similarities().to_vec();
            v.sort_by(rank_desc);
            v
        };
        for k in [0, 1, 3, 10, 25] {
            let top = outcome.top(k);
            assert_eq!(top.len(), k.min(full.len()));
            assert_eq!(top, full[..top.len()].to_vec(), "k = {k}");
        }
        assert_eq!(outcome.top(1)[0], outcome.best().unwrap());
        // Exact ties (identical references) rank by ascending address —
        // in the dense ranking AND the pruned sweep.
        let sig = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut tied = ReferenceDb::new();
        for i in [5u64, 2, 9] {
            tied.insert(MacAddr::from_index(i), sig.clone()).unwrap();
        }
        let top = tied.match_signature(&sig, SimilarityMeasure::Cosine).top(2);
        assert_eq!(top[0].0, MacAddr::from_index(2));
        assert_eq!(top[1].0, MacAddr::from_index(5));
        let mut scratch = MatchScratch::new();
        let pruned = tied.match_topk(&sig, 2, SimilarityMeasure::Cosine, &mut scratch);
        assert_eq!(pruned, top);
    }

    #[test]
    fn mixed_bin_specs_keep_every_reference_scoreable() {
        // Two references binned differently for the same kind: each must
        // still score against a candidate with its own spec (sibling
        // blocks keyed on (kind, bins)).
        let fine = cfg(); // 10 µs bins
        let coarse = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
            .with_bins(crate::histogram::BinSpec::uniform_to(2500.0, 50.0));
        let build = |c: &EvalConfig| {
            let mut s = Signature::new();
            for _ in 0..50 {
                s.record(FrameKind::Data, 400.0, c);
            }
            s
        };
        let mut db = ReferenceDb::new();
        let d_fine = MacAddr::from_index(1);
        let d_coarse = MacAddr::from_index(2);
        db.insert(d_fine, build(&fine)).unwrap();
        db.insert(d_coarse, build(&coarse)).unwrap();
        for (cand_cfg, expect_dev) in [(&fine, d_fine), (&coarse, d_coarse)] {
            let outcome = db.match_signature(&build(cand_cfg), SimilarityMeasure::Cosine);
            assert!((outcome.similarity_to(&expect_dev).unwrap() - 1.0).abs() < F32_SCORE_TOLERANCE);
            let naive = db.match_signature_naive(&build(cand_cfg), SimilarityMeasure::Cosine);
            for (f, n) in outcome.similarities().iter().zip(naive.similarities()) {
                assert_eq!(f.0, n.0);
                assert!((f.1 - n.1).abs() < F32_SCORE_TOLERANCE);
            }
        }
    }

    #[test]
    fn incompatible_bin_widths_score_zero_not_panic() {
        // Reference built with the default inter-arrival bins; candidate
        // with a coarser spec ⇒ different bin counts for the same kind.
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), sig_with(&[(FrameKind::Data, 100.0, 50)])).unwrap();
        let coarse = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
            .with_bins(crate::histogram::BinSpec::uniform_to(2500.0, 100.0));
        let mut cand = Signature::new();
        for _ in 0..50 {
            cand.record(FrameKind::Data, 100.0, &coarse);
        }
        let outcome = db.match_signature(&cand, SimilarityMeasure::Cosine);
        assert_eq!(outcome.similarities()[0].1, 0.0);
    }

    #[test]
    fn quantized_self_match_scores_one() {
        // Cosine of a row with itself survives quantization exactly (up
        // to the norm rounding): codes dotted against themselves cancel
        // their own inverse norm.
        let sig = sig_with(&[(FrameKind::Data, 500.0, 30), (FrameKind::ProbeReq, 100.0, 10)]);
        let mut db = ReferenceDb::with_config(MatchConfig::quantized());
        db.insert(MacAddr::from_index(1), sig.clone()).unwrap();
        let (_, score) = db.match_signature(&sig, SimilarityMeasure::Cosine).best().unwrap();
        assert!((score - 1.0).abs() < F32_SCORE_TOLERANCE, "self-cosine {score}");
    }

    #[test]
    fn quantized_rows_halve_the_resident_bytes() {
        let sigs: Vec<(MacAddr, Signature)> = (1..=32u64)
            .map(|i| {
                (
                    MacAddr::from_index(i),
                    sig_with(&[
                        (FrameKind::Data, 70.0 * (i % 12) as f64, 40),
                        (FrameKind::ProbeReq, 35.0 * (i % 5) as f64, 6),
                    ]),
                )
            })
            .collect();
        let f32_db = ReferenceDb::from_signatures_with(
            sigs.iter().cloned().collect(),
            MatchConfig::default(),
        );
        let u8_db = ReferenceDb::from_signatures_with(
            sigs.iter().cloned().collect(),
            MatchConfig::quantized(),
        );
        let (f32_bytes, u8_bytes) = (f32_db.row_bytes(), u8_db.row_bytes());
        assert!(f32_bytes > 0 && u8_bytes > 0);
        // The acceptance bar is "halved"; with rows dominating the
        // metadata the quantized tier actually lands near a quarter.
        assert!(
            u8_bytes * 2 <= f32_bytes,
            "u8 tier holds {u8_bytes} B vs f32's {f32_bytes} B"
        );
    }

    #[test]
    fn quantized_non_cosine_measures_track_f32_on_concentrated_histograms() {
        // Non-cosine measures run the dequantized fallback; on realistic
        // (mass-concentrated) histograms the round-trip stays tight.
        let sigs: Vec<(MacAddr, Signature)> = (1..=10u64)
            .map(|i| (MacAddr::from_index(i), sig_with(&[(FrameKind::Data, 55.0 * i as f64, 40)])))
            .collect();
        let f32_db = ReferenceDb::from_signatures_with(
            sigs.iter().cloned().collect(),
            MatchConfig::default(),
        );
        let u8_db = ReferenceDb::from_signatures_with(
            sigs.iter().cloned().collect(),
            MatchConfig::quantized(),
        );
        let cand = sig_with(&[(FrameKind::Data, 165.0, 40)]);
        for m in SimilarityMeasure::ALL {
            let a = f32_db.match_signature(&cand, m);
            let b = u8_db.match_signature(&cand, m);
            for (f, q) in a.similarities().iter().zip(b.similarities()) {
                assert_eq!(f.0, q.0);
                assert!((f.1 - q.1).abs() < 2e-2, "{m}: {} vs {}", f.1, q.1);
            }
        }
    }

    #[test]
    fn tile_wide_pruned_sweep_prunes_per_candidate() {
        // Well-separated clusters, a full K=8 tile of probes aimed at
        // different clusters: every candidate's top-k must equal its
        // dense ranking while the tile as a whole skips shards — in both
        // precision tiers.
        for precision in [RowPrecision::F32, RowPrecision::U8] {
            let config =
                MatchConfig::default().with_shards(16).with_precision(precision);
            let mut db = ReferenceDb::with_config(config);
            for i in 0..160u64 {
                let center = 150.0 * (i % 16) as f64 + 10.0;
                db.insert(MacAddr::from_index(i + 1), sig_with(&[(FrameKind::Data, center, 60)]))
                    .unwrap();
            }
            let cands: Vec<Signature> = (0..8u64)
                .map(|i| sig_with(&[(FrameKind::Data, 150.0 * (2 * i) as f64 + 10.0, 60)]))
                .collect();
            let mut scratch = MatchScratch::new();
            let tiled = db.match_topk_tile(&cands, 3, SimilarityMeasure::Cosine, &mut scratch);
            let stats = scratch.prune_stats();
            for (cand, got) in cands.iter().zip(&tiled) {
                let dense = db.match_signature(cand, SimilarityMeasure::Cosine);
                assert_eq!(got, &dense.top(3), "{precision:?}");
            }
            assert!(
                stats.pruned_shards > 0,
                "{precision:?}: expected tile-wide pruning, got {stats:?}"
            );
            // One decision per (candidate, occupied shard).
            let decisions = stats.swept_shards + stats.pruned_shards;
            assert!(decisions > 0 && decisions.is_multiple_of(8), "{precision:?}: {stats:?}");
        }
    }

    // f32 ↔ f64 parity: the packed-f32 engine must track the all-f64
    // naive baseline within the documented tolerance for every measure,
    // on arbitrary databases and candidates.
    proptest! {
        #[test]
        fn f32_engine_tracks_f64_baseline(
            per_device in prop::collection::vec(
                prop::collection::vec(0.0f64..2400.0, 1..60), 1..10),
            cand_values in prop::collection::vec(0.0f64..2400.0, 1..60),
        ) {
            let c = cfg();
            let mut db = ReferenceDb::new();
            for (i, values) in per_device.iter().enumerate() {
                let mut sig = Signature::new();
                for (j, &v) in values.iter().enumerate() {
                    let kind = if j % 4 == 0 { FrameKind::ProbeReq } else { FrameKind::Data };
                    sig.record(kind, v, &c);
                }
                db.insert(MacAddr::from_index(i as u64 + 1), sig).unwrap();
            }
            let mut cand = Signature::new();
            for &v in &cand_values {
                cand.record(FrameKind::Data, v, &c);
            }
            for m in SimilarityMeasure::ALL {
                let fast = db.match_signature(&cand, m);
                let baseline = db.match_signature_naive(&cand, m);
                for (f, n) in fast.similarities().iter().zip(baseline.similarities()) {
                    prop_assert_eq!(f.0, n.0);
                    prop_assert!(
                        (f.1 - n.1).abs() < F32_SCORE_TOLERANCE,
                        "{}: {} vs {}", m, f.1, n.1
                    );
                }
            }
        }

        // The acceptance property of the sharded refactor: over arbitrary
        // enrolments, shard strategies/counts and tile widths, the
        // sharded pruned sweep reports the flat dense sweep's top-k —
        // same argmax, same order, scores within F32_SCORE_TOLERANCE
        // (they are in fact bit-identical) — and the sharded dense sweep
        // reports the flat dense sweep's full vector exactly.
        #[test]
        fn sharded_pruned_sweep_equals_flat_dense_sweep(
            per_device in prop::collection::vec(
                prop::collection::vec(0.0f64..2400.0, 1..40), 1..14),
            cand_tiles in prop::collection::vec(
                prop::collection::vec(0.0f64..2400.0, 1..40), 1..5),
            shards in 1usize..7,
            mac_prefix in any::<bool>(),
            quantized in any::<bool>(),
            k in 1usize..8,
        ) {
            let c = cfg();
            let strategy = if mac_prefix {
                ShardStrategy::MacPrefix
            } else {
                ShardStrategy::DominantHistogram
            };
            let precision = if quantized { RowPrecision::U8 } else { RowPrecision::F32 };
            let config = MatchConfig { strategy, shards, precision };
            let mut sharded = ReferenceDb::with_config(config);
            let mut flat = ReferenceDb::with_config(MatchConfig::flat().with_precision(precision));
            for (i, values) in per_device.iter().enumerate() {
                let mut sig = Signature::new();
                for (j, &v) in values.iter().enumerate() {
                    let kind = if j % 5 == 0 { FrameKind::Beacon } else { FrameKind::Data };
                    sig.record(kind, v, &c);
                }
                // Spread addresses so OUI hashing sees distinct prefixes.
                let addr = MacAddr::from_index((i as u64 + 1) * 0x0101_0101);
                sharded.insert(addr, sig.clone()).unwrap();
                flat.insert(addr, sig).unwrap();
            }
            let candidates: Vec<Signature> = cand_tiles
                .iter()
                .map(|values| {
                    let mut cand = Signature::new();
                    for &v in values {
                        cand.record(FrameKind::Data, v, &c);
                    }
                    cand
                })
                .collect();
            let mut scratch = MatchScratch::new();
            // Dense tile parity: full vectors, exact.
            let tile = sharded.match_tile(&candidates, SimilarityMeasure::Cosine, &mut scratch);
            let dense: Vec<MatchOutcome> = tile.views().map(|v| v.to_outcome()).collect();
            for (cand, got) in candidates.iter().zip(&dense) {
                let want = flat.match_signature(cand, SimilarityMeasure::Cosine);
                prop_assert_eq!(got.similarities(), want.similarities());
            }
            // Pruned top-k parity: argmax and scores.
            for (cand, want_full) in candidates.iter().zip(&dense) {
                let want = want_full.top(k);
                let got = sharded.match_topk(cand, k, SimilarityMeasure::Cosine, &mut scratch);
                prop_assert_eq!(got.len(), want.len());
                prop_assert_eq!(
                    got.first().map(|&(d, _)| d),
                    want_full.best().map(|(d, _)| d),
                    "argmax diverged under {:?}", config
                );
                for (g, w) in got.iter().zip(&want) {
                    prop_assert_eq!(g.0, w.0);
                    prop_assert!((g.1 - w.1).abs() < F32_SCORE_TOLERANCE,
                        "{} vs {} under {:?}", g.1, w.1, config);
                }
            }
        }

        // u8 ↔ f32 parity: over arbitrary enrolments, strategies and
        // shard counts, the quantized tier's cosine scores track the f32
        // tier within U8_SCORE_TOLERANCE, and its argmax is the f32
        // argmax up to a genuine near-tie at that tolerance.
        #[test]
        fn u8_tier_tracks_f32_tier(
            per_device in prop::collection::vec(
                prop::collection::vec(0.0f64..2400.0, 1..40), 1..12),
            cand_values in prop::collection::vec(0.0f64..2400.0, 1..40),
            shards in 1usize..7,
            mac_prefix in any::<bool>(),
        ) {
            let c = cfg();
            let strategy = if mac_prefix {
                ShardStrategy::MacPrefix
            } else {
                ShardStrategy::DominantHistogram
            };
            let base = MatchConfig::default().with_strategy(strategy).with_shards(shards);
            let mut f32_db = ReferenceDb::with_config(base);
            let mut u8_db = ReferenceDb::with_config(base.with_precision(RowPrecision::U8));
            for (i, values) in per_device.iter().enumerate() {
                let mut sig = Signature::new();
                for (j, &v) in values.iter().enumerate() {
                    let kind = if j % 5 == 0 { FrameKind::Beacon } else { FrameKind::Data };
                    sig.record(kind, v, &c);
                }
                let addr = MacAddr::from_index((i as u64 + 1) * 0x0101_0101);
                f32_db.insert(addr, sig.clone()).unwrap();
                u8_db.insert(addr, sig).unwrap();
            }
            let mut cand = Signature::new();
            for &v in &cand_values {
                cand.record(FrameKind::Data, v, &c);
            }
            let a = f32_db.match_signature(&cand, SimilarityMeasure::Cosine);
            let b = u8_db.match_signature(&cand, SimilarityMeasure::Cosine);
            for (f, q) in a.similarities().iter().zip(b.similarities()) {
                prop_assert_eq!(f.0, q.0);
                prop_assert!(
                    (f.1 - q.1).abs() < U8_SCORE_TOLERANCE,
                    "score drift: {} vs {}", f.1, q.1
                );
            }
            // Argmax agreement up to near-ties: the quantized winner's
            // f32 score is within the documented drift of the f32 best.
            let (f32_best, f32_score) = a.best().unwrap();
            let (u8_best, _) = b.best().unwrap();
            let u8_winner_f32 = a.similarity_to(&u8_best).unwrap();
            prop_assert!(
                u8_best == f32_best || u8_winner_f32 >= f32_score - 2.0 * U8_SCORE_TOLERANCE,
                "argmax diverged beyond a near-tie: {u8_best} at {u8_winner_f32} vs {f32_best} at {f32_score}"
            );
            // The quantized pruned sweep agrees with the quantized dense
            // sweep (per-tier invariant, integer dots are exact).
            let mut scratch = MatchScratch::new();
            let top = u8_db.match_topk(&cand, 3, SimilarityMeasure::Cosine, &mut scratch);
            prop_assert_eq!(top, b.top(3));
        }
    }
}
