//! The reference database and Algorithm 1 (signature matching).
//!
//! # Structure-of-arrays layout, in `f32`
//!
//! Matching one candidate against `N` references evaluates
//! `Σ_{ftype} weight^ftype(rᵢ) · sim(P^ftype(c), P^ftype(rᵢ))` for every
//! reference `rᵢ` — the `O(windows × devices × bins)` hot path of the
//! whole pipeline. To make that sweep cache-friendly, [`ReferenceDb`]
//! does **not** score against per-device `BTreeMap`s. Instead it packs,
//! for each frame kind, every device's frequency vector into one
//! contiguous row-major matrix:
//!
//! ```text
//! KindBlock(Data):   rows  = [ dev₀ bins… | dev₁ bins… | … | devₙ bins… ]  (f32)
//!                    weights   = [ w₀, w₁, …, wₙ ]   (f32 reference weights)
//!                    inv_norms = [ 1/‖r₀‖, …, 1/‖rₙ‖ ]  (f32, 0 ⇒ empty row)
//! KindBlock(Beacon): rows  = [ … ]
//! ```
//!
//! Rows, weights and norms are stored as **`f32`**: histogram frequencies
//! carry nowhere near 53 bits of information, and halving the row width
//! doubles the rows per cache line and per SIMD lane. Devices missing a
//! kind hold weight 0 and an all-zero row; the sweep skips them by the
//! weight test alone. Per-device *scores* still accumulate in `f64`, so
//! the only precision loss is the one-off `f64 → f32` quantisation of the
//! stored rows — bounded by [`F32_SCORE_TOLERANCE`] and enforced against
//! the `f64` baseline by property tests and an AUC-drift check in the
//! analysis crate.
//!
//! # The SIMD dot kernel
//!
//! For the paper's cosine measure the per-pair kernel collapses to a
//! single dense dot product (row norms are fixed at pack time, the
//! candidate norm is hoisted out of the device loop). That dot runs
//! through [`kernel`](crate::kernel): an AVX2+FMA path selected at
//! runtime on x86, a NEON path on aarch64, and an unrolled portable
//! fallback — all property-tested equivalent. The dispatch is resolved to
//! a function pointer once per sweep, not once per pair.
//!
//! # Multi-candidate tiling: matrix–matrix, not K × matrix–vector
//!
//! Detection evaluates whole windows of candidates against the same
//! database. [`ReferenceDb::match_tile`] scores a tile of `K` candidates
//! in **one** pass over the reference rows: each row is loaded once and
//! dotted against all `K` candidate rows while it is hot in L1, turning K
//! matrix–vector sweeps (K full passes over the matrix) into one
//! matrix–matrix sweep. [`MATCH_TILE`] is the tile width the batch paths
//! ([`ReferenceDb::match_batch`], `metrics::match_candidates`, and through
//! it the analysis pipeline) use.
//!
//! # Scratch buffers: allocation-free steady state
//!
//! [`ReferenceDb::match_signature_with`] and [`ReferenceDb::match_tile`]
//! write scores into a caller-owned [`MatchScratch`] and return borrowed
//! views. After the first call warms the scratch's capacity, matching
//! performs **no heap allocation**: candidate frequency vectors are cached
//! borrows ([`Histogram::frequencies_f32`](crate::Histogram::frequencies_f32)),
//! scores accumulate into reused buffers, and the views borrow rather
//! than copy. Use one scratch per worker thread:
//!
//! ```
//! use wifiprint_core::{EvalConfig, MatchScratch, NetworkParameter, ReferenceDb, Signature,
//!     SimilarityMeasure};
//! use wifiprint_ieee80211::{FrameKind, MacAddr};
//!
//! let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize);
//! let mut sig = Signature::new();
//! for _ in 0..60 { sig.record(FrameKind::Data, 1000.0, &cfg); }
//! let mut db = ReferenceDb::new();
//! db.insert(MacAddr::from_index(1), sig.clone()).unwrap();
//!
//! let mut scratch = MatchScratch::new();
//! for _window in 0..3 {
//!     let view = db.match_signature_with(&sig, SimilarityMeasure::Cosine, &mut scratch);
//!     assert_eq!(view.best().unwrap().0, MacAddr::from_index(1));
//! }
//! // A whole tile of windows in one row pass:
//! let windows = vec![sig.clone(), sig.clone(), sig.clone()];
//! let tile = db.match_tile(&windows, SimilarityMeasure::Cosine, &mut scratch);
//! assert_eq!(tile.candidate_count(), 3);
//! assert_eq!(tile.candidate(2).best().unwrap().0, MacAddr::from_index(1));
//! ```
//!
//! # Incremental growth
//!
//! [`ReferenceDb::insert`] appends one row per block (amortised `O(row)`)
//! instead of repacking every block, so streaming database growth is
//! linear in the data, not quadratic. Internally rows live in insertion
//! order with a sorted index on top; every public API still reports
//! devices in ascending address order.

use std::borrow::Borrow;
use std::collections::BTreeMap;

use wifiprint_ieee80211::{FrameKind, MacAddr};

use crate::error::CoreError;
use crate::kernel;
use crate::signature::Signature;
use crate::similarity::SimilarityMeasure;

/// Worst-case drift of a matching score computed over the packed `f32`
/// rows relative to the same score in full `f64`.
///
/// Scores lie in `[0, 1]`. Rows are `f64` frequencies rounded once to
/// `f32` (relative error ≤ 2⁻²⁴ per element), dots and norms run in
/// `f32`, and everything downstream (weighting, accumulation across frame
/// kinds) is `f64`. For the ≤ ~500-bin rows this crate produces, the
/// accumulated error stays ≳ an order of magnitude below this bound;
/// property tests and the analysis crate's AUC-drift check enforce it.
pub const F32_SCORE_TOLERANCE: f64 = 1e-4;

/// Tile width for multi-candidate matching: how many candidate windows
/// [`ReferenceDb::match_batch`] (and the metrics/analysis paths built on
/// it) score per pass over the reference rows.
///
/// Eight rows of ≤ ~500 `f32` bins (≤ 16 KiB) fit in L1 alongside the
/// reference row being swept, which is the point: each reference row is
/// loaded from memory once per tile instead of once per candidate.
pub const MATCH_TILE: usize = 8;

/// One frame kind's slice of the reference matrix: every device's
/// frequency vector for that kind, packed row-major, plus the reference
/// weights `weight^ftype(rᵢ)` and reciprocal row norms.
#[derive(Debug, Clone)]
struct KindBlock {
    kind: FrameKind,
    /// Row width. Blocks are keyed on `(kind, bins)`: references binned
    /// with a different spec for the same kind land in a sibling block,
    /// so heterogeneous databases still score every compatible pair.
    bins: usize,
    /// `weights[i]` is device `i`'s weight for this kind (0 ⇒ skip row).
    weights: Vec<f32>,
    /// `rows[i*bins..(i+1)*bins]` is device `i`'s frequency vector.
    rows: Vec<f32>,
    /// `inv_norms[i]` is `1 / ‖row i‖₂`, precomputed at pack time so the
    /// cosine sweep reduces to one dot product and two multiplies per
    /// pair (0.0 for absent rows, which weight 0 already skips).
    inv_norms: Vec<f32>,
}

impl KindBlock {
    fn empty(kind: FrameKind, bins: usize, n: usize) -> KindBlock {
        KindBlock {
            kind,
            bins,
            weights: vec![0.0; n],
            rows: vec![0.0; n * bins],
            inv_norms: vec![0.0; n],
        }
    }

    /// Clears row `i` back to the absent-device state.
    fn clear_row(&mut self, i: usize) {
        self.weights[i] = 0.0;
        self.inv_norms[i] = 0.0;
        self.rows[i * self.bins..(i + 1) * self.bins].fill(0.0);
    }
}

/// The reference database of the learning phase (§IV-B): one signature per
/// known device, packed into per-frame-kind `f32` matrices (see the
/// [module docs](self)).
///
/// # Example
///
/// ```
/// use wifiprint_core::{EvalConfig, NetworkParameter, ReferenceDb, Signature, SimilarityMeasure};
/// use wifiprint_ieee80211::{FrameKind, MacAddr};
///
/// let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize);
/// let mut sig = Signature::new();
/// for _ in 0..60 { sig.record(FrameKind::Data, 1000.0, &cfg); }
///
/// let mut db = ReferenceDb::new();
/// let dev = MacAddr::from_index(1);
/// db.insert(dev, sig.clone()).unwrap();
///
/// let outcome = db.match_signature(&sig, SimilarityMeasure::Cosine);
/// assert_eq!(outcome.best().unwrap().0, dev);
/// assert!((outcome.best().unwrap().1 - 1.0).abs() < 1e-4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReferenceDb {
    /// Reference devices in **insertion order**; `signatures` and the
    /// block rows are parallel to this, so inserts append instead of
    /// repacking.
    devices: Vec<MacAddr>,
    signatures: Vec<Signature>,
    /// Row indices sorted by ascending device address: the lookup index,
    /// and the order every public API reports devices in.
    order: Vec<u32>,
    /// Per-frame-kind matrices, ascending by `(kind, bins)`.
    blocks: Vec<KindBlock>,
    /// `true` once the enrollment phase ended ([`ReferenceDb::freeze`]):
    /// mutations are rejected so the detection phase matches against a
    /// stable reference set.
    frozen: bool,
}

impl ReferenceDb {
    /// An empty database.
    pub fn new() -> Self {
        ReferenceDb::default()
    }

    /// Builds a database from per-device signatures (e.g. the output of
    /// [`SignatureBuilder::finish`](crate::SignatureBuilder::finish)),
    /// packing the reference matrix once.
    pub fn from_signatures(signatures: BTreeMap<MacAddr, Signature>) -> Self {
        let mut db = ReferenceDb::new();
        for (device, sig) in signatures {
            // Entries arrive in ascending order, so each lands at the end.
            db.devices.push(device);
            db.signatures.push(sig);
        }
        db.rebuild();
        db
    }

    /// Position of `device` in the sorted `order` index.
    fn position(&self, device: MacAddr) -> Result<usize, usize> {
        self.order.binary_search_by(|&i| self.devices[i as usize].cmp(&device))
    }

    /// Inserts or replaces a device's reference signature (online
    /// enrollment).
    ///
    /// Returns the previous signature if the device was already present.
    /// Inserting a new device **appends** one row to each block
    /// (amortised `O(row width)`), so building a database by streaming
    /// inserts is linear overall; replacing rewrites only that device's
    /// rows. [`ReferenceDb::from_signatures`] remains the cheapest bulk
    /// constructor (one pack, no per-insert index maintenance).
    ///
    /// # Errors
    ///
    /// [`CoreError::FrozenDatabase`] after [`ReferenceDb::freeze`], and
    /// [`CoreError::EmptySignature`] for a signature with zero
    /// observations (its all-zero rows could never match anything).
    pub fn insert(
        &mut self,
        device: MacAddr,
        signature: Signature,
    ) -> Result<Option<Signature>, CoreError> {
        if self.frozen {
            return Err(CoreError::FrozenDatabase { device: Some(device) });
        }
        if signature.observation_count() == 0 {
            return Err(CoreError::EmptySignature { device });
        }
        Ok(match self.position(device) {
            Ok(pos) => {
                let row = self.order[pos] as usize;
                let previous = std::mem::replace(&mut self.signatures[row], signature);
                for block in &mut self.blocks {
                    block.clear_row(row);
                }
                self.write_row(row);
                Some(previous)
            }
            Err(pos) => {
                let row = self.devices.len();
                self.devices.push(device);
                self.signatures.push(signature);
                self.order.insert(pos, row as u32);
                for block in &mut self.blocks {
                    block.weights.push(0.0);
                    block.inv_norms.push(0.0);
                    block.rows.resize(block.rows.len() + block.bins, 0.0);
                }
                self.write_row(row);
                None
            }
        })
    }

    /// Removes a device, returning its signature (`Ok(None)` when the
    /// device was not enrolled).
    ///
    /// # Errors
    ///
    /// [`CoreError::FrozenDatabase`] after [`ReferenceDb::freeze`].
    pub fn remove(&mut self, device: &MacAddr) -> Result<Option<Signature>, CoreError> {
        if self.frozen {
            return Err(CoreError::FrozenDatabase { device: Some(*device) });
        }
        let Ok(pos) = self.position(*device) else {
            return Ok(None);
        };
        let row = self.order.remove(pos) as usize;
        self.devices.remove(row);
        let sig = self.signatures.remove(row);
        for idx in &mut self.order {
            if *idx as usize > row {
                *idx -= 1;
            }
        }
        for block in &mut self.blocks {
            block.weights.remove(row);
            block.inv_norms.remove(row);
            block.rows.drain(row * block.bins..(row + 1) * block.bins);
        }
        Ok(Some(sig))
    }

    /// Ends the enrollment phase: every subsequent [`ReferenceDb::insert`]
    /// or [`ReferenceDb::remove`] is rejected with
    /// [`CoreError::FrozenDatabase`], so a detection phase holding this
    /// database matches against a stable reference set. Freezing is
    /// idempotent and one-way; to keep enrolling, freeze a
    /// [`ReferenceDb::snapshot`] instead and retain the original.
    ///
    /// Matching never requires a frozen database — freezing is the
    /// lifecycle *guard*, not a precondition.
    pub fn freeze(&mut self) {
        self.frozen = true;
    }

    /// `true` once [`ReferenceDb::freeze`] (or
    /// [`ReferenceDb::snapshot`]) sealed this database.
    pub fn is_frozen(&self) -> bool {
        self.frozen
    }

    /// A frozen copy of the current state: the detection-phase view of a
    /// database that keeps enrolling. The original stays mutable.
    pub fn snapshot(&self) -> ReferenceDb {
        let mut copy = self.clone();
        copy.frozen = true;
        copy
    }

    /// The signature of a device, if present.
    pub fn get(&self, device: &MacAddr) -> Option<&Signature> {
        self.position(*device).ok().map(|pos| &self.signatures[self.order[pos] as usize])
    }

    /// `true` if the device has a reference signature.
    pub fn contains(&self, device: &MacAddr) -> bool {
        self.position(*device).is_ok()
    }

    /// Number of reference devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// `true` if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Iterates `(device, signature)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (MacAddr, &Signature)> {
        self.order.iter().map(|&i| (self.devices[i as usize], &self.signatures[i as usize]))
    }

    /// The devices in the database, in address order.
    pub fn devices(&self) -> impl Iterator<Item = MacAddr> + '_ {
        self.order.iter().map(|&i| self.devices[i as usize])
    }

    /// Writes device `row`'s per-kind vectors into the blocks, creating
    /// blocks for `(kind, bins)` pairs seen for the first time.
    fn write_row(&mut self, row: usize) {
        let n = self.devices.len();
        let ReferenceDb { signatures, blocks, .. } = self;
        let sig = &signatures[row];
        for (kind, hist) in sig.iter() {
            if hist.total() == 0 {
                continue;
            }
            let freqs = hist.frequencies_f32();
            let bins = freqs.len();
            let idx = match blocks.binary_search_by(|b| (b.kind, b.bins).cmp(&(kind, bins))) {
                Ok(i) => i,
                Err(i) => {
                    blocks.insert(i, KindBlock::empty(kind, bins, n));
                    i
                }
            };
            let block = &mut blocks[idx];
            block.weights[row] = sig.weight(kind) as f32;
            block.rows[row * bins..(row + 1) * bins].copy_from_slice(freqs);
            block.inv_norms[row] = inv_norm(freqs);
        }
    }

    /// Repacks the index and the per-kind matrices from the current
    /// signatures (bulk construction).
    fn rebuild(&mut self) {
        let n = self.devices.len();
        self.order = (0..n as u32).collect();
        self.order.sort_by_key(|&i| self.devices[i as usize]);
        self.blocks.clear();
        for row in 0..n {
            self.write_row(row);
        }
    }

    /// Algorithm 1: matches a candidate signature against every reference.
    ///
    /// For each reference `rᵢ` the score is
    /// `simᵢ = Σ_{ftype ∈ Sig(c)} weight^ftype(rᵢ) · sim(hist^ftype(c), hist^ftype(rᵢ))`,
    /// i.e. the per-frame-type histogram similarities weighted by the
    /// **reference's** frame-type distribution. Scores lie in `[0, 1]`.
    ///
    /// Convenience form that allocates its outcome; the hot paths are
    /// [`ReferenceDb::match_signature_with`] and
    /// [`ReferenceDb::match_tile`].
    pub fn match_signature(&self, candidate: &Signature, measure: SimilarityMeasure) -> MatchOutcome {
        let mut scratch = MatchScratch::new();
        self.match_signature_with(candidate, measure, &mut scratch);
        MatchOutcome { sims: std::mem::take(&mut scratch.pairs) }
    }

    /// Algorithm 1 without per-call allocation: scores accumulate into
    /// `scratch` (reused across calls) and the returned [`MatchView`]
    /// borrows from it. Internally this is a [`ReferenceDb::match_tile`]
    /// with a tile of one.
    pub fn match_signature_with<'s>(
        &self,
        candidate: &Signature,
        measure: SimilarityMeasure,
        scratch: &'s mut MatchScratch,
    ) -> MatchView<'s> {
        self.match_tile_into(std::slice::from_ref(candidate), measure, scratch);
        MatchView { sims: &scratch.pairs }
    }

    /// Scores a tile of `K` candidate signatures in one pass over the
    /// reference rows (matrix–matrix instead of `K` matrix–vector
    /// sweeps): each reference row is loaded once and dotted against all
    /// `K` candidates while hot in cache.
    ///
    /// The returned [`TileView`] exposes one [`MatchView`] per candidate,
    /// in input order; each is identical (within float rounding of the
    /// score accumulation order — the per-pair arithmetic is the same) to
    /// a [`ReferenceDb::match_signature_with`] call for that candidate.
    /// Callers batching many windows should chunk them by [`MATCH_TILE`].
    pub fn match_tile<'s, C: Borrow<Signature>>(
        &self,
        candidates: &[C],
        measure: SimilarityMeasure,
        scratch: &'s mut MatchScratch,
    ) -> TileView<'s> {
        self.match_tile_into(candidates, measure, scratch);
        TileView { pairs: &scratch.pairs, n: self.devices.len(), k: candidates.len() }
    }

    /// The shared sweep: fills `scratch.pairs` with `K × N`
    /// `(device, score)` pairs, candidate-major, each candidate's segment
    /// in ascending address order.
    fn match_tile_into<C: Borrow<Signature>>(
        &self,
        candidates: &[C],
        measure: SimilarityMeasure,
        scratch: &mut MatchScratch,
    ) {
        let n = self.devices.len();
        let k = candidates.len();
        scratch.scores.clear();
        scratch.scores.resize(k * n, 0.0);
        let dot = kernel::dot_fn();
        for block in &self.blocks {
            // Pack this block's tile: the f32 rows of every candidate
            // that carries this (kind, bins). Candidates binned
            // differently (or missing the kind) simply don't join —
            // incompatible binning carries no information.
            scratch.tile_rows.clear();
            scratch.tile_inv_norms.clear();
            scratch.tile_slots.clear();
            for (ci, cand) in candidates.iter().enumerate() {
                let Some(hist) = cand.borrow().histogram(block.kind) else { continue };
                if hist.total() == 0 {
                    continue; // an empty candidate histogram matches nothing
                }
                let freqs = hist.frequencies_f32();
                if freqs.len() != block.bins {
                    continue;
                }
                scratch.tile_rows.extend_from_slice(freqs);
                // Only the cosine branch reads the norms; skip the
                // self-dot for the other measures.
                scratch.tile_inv_norms.push(if measure == SimilarityMeasure::Cosine {
                    f64::from(inv_norm(freqs))
                } else {
                    0.0
                });
                scratch.tile_slots.push(ci);
            }
            let tile = scratch.tile_slots.len();
            if tile == 0 {
                continue;
            }
            let bins = block.bins;
            // The matrix–matrix sweep: one linear pass over this kind's
            // packed rows; every row is dotted against the whole tile
            // while resident in L1. Zero-weight rows are absent devices.
            for (i, row) in block.rows.chunks_exact(bins).enumerate() {
                let weight = block.weights[i];
                if weight == 0.0 {
                    continue;
                }
                let weight = f64::from(weight);
                if measure == SimilarityMeasure::Cosine {
                    // Row norms were fixed at pack time and candidate
                    // norms are invariant across rows, so the per-pair
                    // kernel is one SIMD dot product.
                    let row_inv = f64::from(block.inv_norms[i]);
                    for t in 0..tile {
                        let cand = &scratch.tile_rows[t * bins..(t + 1) * bins];
                        let cos = (f64::from(dot(cand, row)) * scratch.tile_inv_norms[t] * row_inv)
                            .clamp(0.0, 1.0);
                        scratch.scores[scratch.tile_slots[t] * n + i] += weight * cos;
                    }
                } else {
                    for t in 0..tile {
                        let cand = &scratch.tile_rows[t * bins..(t + 1) * bins];
                        scratch.scores[scratch.tile_slots[t] * n + i] +=
                            weight * measure.compute_dense_f32(cand, row);
                    }
                }
            }
        }
        // Emit (device, score) pairs: candidate-major, address order
        // within each candidate (the order every view API documents).
        scratch.pairs.clear();
        scratch.pairs.reserve(k * n);
        for c in 0..k {
            let scores = &scratch.scores[c * n..(c + 1) * n];
            scratch
                .pairs
                .extend(self.order.iter().map(|&i| (self.devices[i as usize], scores[i as usize])));
        }
    }

    /// Matches a batch of candidate signatures, returning one outcome per
    /// candidate in order. Candidates are scored in [`MATCH_TILE`]-wide
    /// tiles ([`ReferenceDb::match_tile`]); with the `parallel` feature
    /// (default) the tiles are split across threads, one [`MatchScratch`]
    /// per worker.
    pub fn match_batch(
        &self,
        candidates: &[Signature],
        measure: SimilarityMeasure,
    ) -> Vec<MatchOutcome> {
        crate::batch::map_tiles_with_scratch(
            candidates,
            MATCH_TILE,
            MatchScratch::new,
            |scratch, tile| {
                let view = self.match_tile(tile, measure, scratch);
                (0..tile.len()).map(|t| view.candidate(t).to_outcome()).collect()
            },
        )
    }

    /// The pre-SoA matching path: per-call candidate frequency allocation,
    /// per-device frame-kind lookups, and full-`f64` arithmetic
    /// throughout. Kept so benchmarks can quantify what the matrix layout
    /// buys **and** as the f64 ground truth the f32 engine's parity tests
    /// compare against (equal output within [`F32_SCORE_TOLERANCE`]).
    #[cfg(any(test, feature = "bench-baseline"))]
    pub fn match_signature_naive(
        &self,
        candidate: &Signature,
        measure: SimilarityMeasure,
    ) -> MatchOutcome {
        let cand_freqs: Vec<(FrameKind, Vec<f64>)> =
            candidate.iter().map(|(kind, hist)| (kind, hist.frequency_vec())).collect();
        let mut sims = Vec::with_capacity(self.devices.len());
        for (device, sig) in self.iter() {
            let mut sim = 0.0;
            for (kind, cand_freq) in &cand_freqs {
                if let Some(hist) = sig.histogram(*kind) {
                    sim += sig.weight(*kind) * measure.compute(cand_freq, hist.frequencies());
                }
            }
            sims.push((device, sim));
        }
        MatchOutcome { sims }
    }
}

/// `1 / ‖row‖₂` through the dispatched kernel; 0.0 for an all-zero row.
fn inv_norm(row: &[f32]) -> f32 {
    let norm_sq = f64::from(kernel::dot_f32(row, row));
    if norm_sq > 0.0 {
        (1.0 / norm_sq.sqrt()) as f32
    } else {
        0.0
    }
}

/// Reusable buffers for [`ReferenceDb::match_signature_with`] and
/// [`ReferenceDb::match_tile`]: create one per worker, reuse it for every
/// window. Capacity grows to `tile × database size` on first use and is
/// retained afterwards, making the steady state allocation-free.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Per-(candidate, device) accumulators, candidate-major, indexed
    /// like `ReferenceDb::devices` (insertion order) within a candidate.
    scores: Vec<f64>,
    /// The `(device, similarity)` pairs the returned views expose:
    /// candidate-major, address order within each candidate.
    pairs: Vec<(MacAddr, f64)>,
    /// The current block's packed candidate rows (`f32`, row-major).
    tile_rows: Vec<f32>,
    /// Reciprocal L2 norms of the packed candidate rows.
    tile_inv_norms: Vec<f64>,
    /// Which candidate each packed tile row belongs to.
    tile_slots: Vec<usize>,
}

impl MatchScratch {
    /// Empty scratch; buffers are sized lazily by the first match.
    pub fn new() -> Self {
        MatchScratch::default()
    }
}

/// A borrowed view of one match's similarity vector (the zero-allocation
/// counterpart of [`MatchOutcome`]).
#[derive(Debug, Clone, Copy)]
pub struct MatchView<'a> {
    sims: &'a [(MacAddr, f64)],
}

impl MatchView<'_> {
    /// All `(reference device, similarity)` pairs, in database order.
    pub fn similarities(&self) -> &[(MacAddr, f64)] {
        self.sims
    }

    /// The similarity to one specific reference device.
    pub fn similarity_to(&self, device: &MacAddr) -> Option<f64> {
        similarity_to(self.sims, *device)
    }

    /// The similarity test (§IV-B): references whose similarity is at
    /// least `threshold`.
    pub fn above_threshold(&self, threshold: f64) -> impl Iterator<Item = (MacAddr, f64)> + '_ {
        self.sims.iter().copied().filter(move |&(_, s)| s >= threshold)
    }

    /// The identification test (§IV-B): the single closest reference.
    ///
    /// Ties break toward the lower MAC address for determinism.
    pub fn best(&self) -> Option<(MacAddr, f64)> {
        best_of(self.sims)
    }

    /// The `k` most similar references, best first, via partial selection
    /// (`O(N + k log k)`) rather than a full sort. Ties order toward the
    /// lower MAC address; `top(1)` agrees with [`MatchView::best`].
    pub fn top(&self, k: usize) -> Vec<(MacAddr, f64)> {
        top_of(self.sims, k)
    }

    /// An owned copy of this view.
    pub fn to_outcome(&self) -> MatchOutcome {
        MatchOutcome { sims: self.sims.to_vec() }
    }
}

/// A borrowed view of one [`ReferenceDb::match_tile`] result: `K`
/// similarity vectors over the same reference set, one per candidate.
#[derive(Debug, Clone, Copy)]
pub struct TileView<'a> {
    /// Candidate-major `(device, similarity)` pairs; each candidate's
    /// segment is in ascending address order.
    pairs: &'a [(MacAddr, f64)],
    /// References per candidate (the database size at match time).
    n: usize,
    /// Candidates in the tile (kept separately so an empty database
    /// still yields one — empty — view per candidate).
    k: usize,
}

impl<'a> TileView<'a> {
    /// Number of candidates in the tile (the input length, even when the
    /// database was empty).
    pub fn candidate_count(&self) -> usize {
        self.k
    }

    /// The similarity vector of candidate `index` (input order). Against
    /// an empty database the view is empty, like
    /// [`ReferenceDb::match_signature_with`]'s.
    ///
    /// # Panics
    ///
    /// Panics if `index >= candidate_count()`.
    pub fn candidate(&self, index: usize) -> MatchView<'a> {
        assert!(index < self.k, "candidate {index} out of range for tile of {}", self.k);
        MatchView { sims: &self.pairs[index * self.n..(index + 1) * self.n] }
    }

    /// Iterates the per-candidate views in input order (exactly
    /// [`TileView::candidate_count`] of them).
    pub fn views(&self) -> impl Iterator<Item = MatchView<'a>> + '_ {
        (0..self.k).map(|index| self.candidate(index))
    }
}

/// The similarity vector `<sim₁, …, sim_N>` returned by Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOutcome {
    sims: Vec<(MacAddr, f64)>,
}

impl MatchOutcome {
    /// The no-references outcome (used by the engine when scoring of
    /// unknown devices is disabled).
    pub(crate) fn empty() -> MatchOutcome {
        MatchOutcome { sims: Vec::new() }
    }

    /// All `(reference device, similarity)` pairs, in database order.
    pub fn similarities(&self) -> &[(MacAddr, f64)] {
        &self.sims
    }

    /// The similarity to one specific reference device.
    pub fn similarity_to(&self, device: &MacAddr) -> Option<f64> {
        similarity_to(&self.sims, *device)
    }

    /// The similarity test (§IV-B): references whose similarity is at
    /// least `threshold`.
    pub fn above_threshold(&self, threshold: f64) -> impl Iterator<Item = (MacAddr, f64)> + '_ {
        self.sims.iter().copied().filter(move |&(_, s)| s >= threshold)
    }

    /// The identification test (§IV-B): the single closest reference.
    ///
    /// Ties break toward the lower MAC address for determinism.
    pub fn best(&self) -> Option<(MacAddr, f64)> {
        best_of(&self.sims)
    }

    /// The `k` most similar references, best first, via partial selection
    /// (`O(N + k log k)`) rather than a full sort. Ties order toward the
    /// lower MAC address; `top(1)` agrees with [`MatchOutcome::best`].
    pub fn top(&self, k: usize) -> Vec<(MacAddr, f64)> {
        top_of(&self.sims, k)
    }
}

fn similarity_to(sims: &[(MacAddr, f64)], device: MacAddr) -> Option<f64> {
    // The vector is in ascending device order (database order).
    sims.binary_search_by(|(d, _)| d.cmp(&device)).ok().map(|i| sims[i].1)
}

/// Descending score; equal scores order toward the lower address, so the
/// ranking is deterministic and `top(1)` matches `best()`.
pub(crate) fn rank_desc(a: &(MacAddr, f64), b: &(MacAddr, f64)) -> std::cmp::Ordering {
    b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0.cmp(&b.0))
}

pub(crate) fn best_of(sims: &[(MacAddr, f64)]) -> Option<(MacAddr, f64)> {
    sims.iter().copied().min_by(rank_desc)
}

pub(crate) fn top_of(sims: &[(MacAddr, f64)], k: usize) -> Vec<(MacAddr, f64)> {
    if k == 0 || sims.is_empty() {
        return Vec::new();
    }
    if k == 1 {
        // Single scan, no copy of the similarity vector.
        return best_of(sims).into_iter().collect();
    }
    let mut ranked = sims.to_vec();
    let k = k.min(ranked.len());
    if k < ranked.len() {
        // Partial select: everything before index k ranks at least as
        // high as everything after it, in O(N).
        ranked.select_nth_unstable_by(k - 1, rank_desc);
        ranked.truncate(k);
    }
    ranked.sort_unstable_by(rank_desc);
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::params::NetworkParameter;
    use proptest::prelude::*;

    fn cfg() -> EvalConfig {
        EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
    }

    fn sig_with(values: &[(FrameKind, f64, u64)]) -> Signature {
        let c = cfg();
        let mut sig = Signature::new();
        for &(kind, value, n) in values {
            for _ in 0..n {
                sig.record(kind, value, &c);
            }
        }
        sig
    }

    #[test]
    fn identical_signature_scores_one() {
        let sig = sig_with(&[(FrameKind::Data, 500.0, 30), (FrameKind::ProbeReq, 100.0, 10)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), sig.clone()).unwrap();
        let outcome = db.match_signature(&sig, SimilarityMeasure::Cosine);
        let (_, score) = outcome.best().unwrap();
        assert!((score - 1.0).abs() < F32_SCORE_TOLERANCE);
    }

    #[test]
    fn disjoint_histograms_score_zero() {
        let a = sig_with(&[(FrameKind::Data, 100.0, 10)]);
        let b = sig_with(&[(FrameKind::Data, 2000.0, 10)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), a).unwrap();
        let outcome = db.match_signature(&b, SimilarityMeasure::Cosine);
        assert_eq!(outcome.best().unwrap().1, 0.0);
    }

    #[test]
    fn missing_frame_types_contribute_nothing() {
        // Reference only has Data; candidate only has ProbeReq.
        let r = sig_with(&[(FrameKind::Data, 100.0, 10)]);
        let c = sig_with(&[(FrameKind::ProbeReq, 100.0, 10)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), r).unwrap();
        let outcome = db.match_signature(&c, SimilarityMeasure::Cosine);
        assert_eq!(outcome.similarities()[0].1, 0.0);
    }

    #[test]
    fn weights_come_from_the_reference() {
        // Reference: 90% Data at 100 µs, 10% ProbeReq at 200 µs.
        let r = sig_with(&[(FrameKind::Data, 100.0, 90), (FrameKind::ProbeReq, 200.0, 10)]);
        // Candidate matches only the ProbeReq histogram.
        let c = sig_with(&[(FrameKind::ProbeReq, 200.0, 50)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), r).unwrap();
        let outcome = db.match_signature(&c, SimilarityMeasure::Cosine);
        // Score = weight_ref(ProbeReq) × 1.0 = 0.1.
        assert!((outcome.similarities()[0].1 - 0.1).abs() < F32_SCORE_TOLERANCE);
    }

    #[test]
    fn best_picks_highest_similarity() {
        let near = sig_with(&[(FrameKind::Data, 500.0, 40), (FrameKind::Data, 525.0, 10)]);
        let far = sig_with(&[(FrameKind::Data, 1500.0, 50)]);
        let probe = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut db = ReferenceDb::new();
        let d_near = MacAddr::from_index(1);
        let d_far = MacAddr::from_index(2);
        db.insert(d_near, near).unwrap();
        db.insert(d_far, far).unwrap();
        let outcome = db.match_signature(&probe, SimilarityMeasure::Cosine);
        assert_eq!(outcome.best().unwrap().0, d_near);
        assert!(outcome.similarity_to(&d_far).unwrap() < outcome.similarity_to(&d_near).unwrap());
    }

    #[test]
    fn above_threshold_filters() {
        let base = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), base.clone()).unwrap();
        db.insert(MacAddr::from_index(2), sig_with(&[(FrameKind::Data, 2200.0, 50)])).unwrap();
        let outcome = db.match_signature(&base, SimilarityMeasure::Cosine);
        let hits: Vec<_> = outcome.above_threshold(0.9).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, MacAddr::from_index(1));
        assert_eq!(outcome.above_threshold(0.0).count(), 2);
    }

    #[test]
    fn db_crud_operations() {
        let mut db = ReferenceDb::new();
        assert!(db.is_empty());
        let dev = MacAddr::from_index(7);
        let sig = sig_with(&[(FrameKind::Data, 1.0, 5)]);
        assert!(db.insert(dev, sig.clone()).unwrap().is_none());
        assert!(db.contains(&dev));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(&dev), Some(&sig));
        assert_eq!(db.devices().collect::<Vec<_>>(), vec![dev]);
        let replaced = db.insert(dev, sig_with(&[(FrameKind::Data, 2.0, 5)])).unwrap();
        assert_eq!(replaced, Some(sig));
        assert!(db.remove(&dev).unwrap().is_some());
        assert!(db.is_empty());
        assert!(db.remove(&dev).unwrap().is_none(), "absent device removes to None");
    }

    #[test]
    fn empty_signatures_are_rejected() {
        let mut db = ReferenceDb::new();
        let dev = MacAddr::from_index(1);
        match db.insert(dev, Signature::new()) {
            Err(CoreError::EmptySignature { device }) => assert_eq!(device, dev),
            other => panic!("expected EmptySignature, got {other:?}"),
        }
        assert!(db.is_empty());
    }

    #[test]
    fn freeze_guards_mutation_and_snapshot_splits_lifecycle() {
        let mut db = ReferenceDb::new();
        let d1 = MacAddr::from_index(1);
        let d2 = MacAddr::from_index(2);
        let sig = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        db.insert(d1, sig.clone()).unwrap();

        // A frozen snapshot serves detection while enrollment continues.
        let frozen = db.snapshot();
        assert!(frozen.is_frozen());
        assert!(!db.is_frozen());
        db.insert(d2, sig.clone()).unwrap();
        assert_eq!(db.len(), 2);
        assert_eq!(frozen.len(), 1);

        // Matching works on both sides of the freeze.
        assert_eq!(frozen.match_signature(&sig, SimilarityMeasure::Cosine).best().unwrap().0, d1);

        // Mutating the frozen copy is a typed error, and changes nothing.
        let mut frozen = frozen;
        match frozen.insert(d2, sig.clone()) {
            Err(CoreError::FrozenDatabase { device }) => assert_eq!(device, Some(d2)),
            other => panic!("expected FrozenDatabase, got {other:?}"),
        }
        assert!(matches!(frozen.remove(&d1), Err(CoreError::FrozenDatabase { .. })));
        assert_eq!(frozen.len(), 1);

        // In-place freeze is idempotent.
        db.freeze();
        db.freeze();
        assert!(db.is_frozen());
        assert!(matches!(db.insert(d1, sig), Err(CoreError::FrozenDatabase { .. })));
    }

    #[test]
    fn empty_db_matches_nothing() {
        let db = ReferenceDb::new();
        let outcome =
            db.match_signature(&sig_with(&[(FrameKind::Data, 1.0, 5)]), SimilarityMeasure::Cosine);
        assert!(outcome.best().is_none());
        assert!(outcome.similarities().is_empty());
    }

    #[test]
    fn tie_breaks_toward_lower_address() {
        let sig = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(5), sig.clone()).unwrap();
        db.insert(MacAddr::from_index(3), sig.clone()).unwrap();
        let outcome = db.match_signature(&sig, SimilarityMeasure::Cosine);
        assert_eq!(outcome.best().unwrap().0, MacAddr::from_index(3));
    }

    #[test]
    fn scratch_view_equals_owned_outcome() {
        let mut db = ReferenceDb::new();
        for i in 1..=5u64 {
            db.insert(
                MacAddr::from_index(i),
                sig_with(&[(FrameKind::Data, 100.0 * i as f64, 30), (FrameKind::Beacon, 50.0, 5)]),
            ).unwrap();
        }
        let cand = sig_with(&[(FrameKind::Data, 250.0, 40)]);
        let mut scratch = MatchScratch::new();
        for m in SimilarityMeasure::ALL {
            let owned = db.match_signature(&cand, m);
            let view = db.match_signature_with(&cand, m, &mut scratch);
            assert_eq!(view.similarities(), owned.similarities(), "{m}");
            assert_eq!(view.best(), owned.best(), "{m}");
            assert_eq!(view.to_outcome(), owned, "{m}");
        }
    }

    #[test]
    fn matrix_sweep_agrees_with_naive_baseline() {
        let mut db = ReferenceDb::new();
        for i in 1..=16u64 {
            let kinds: &[(FrameKind, f64, u64)] = &[
                (FrameKind::Data, 37.0 * i as f64, 40 + i),
                (FrameKind::ProbeReq, 11.0 * i as f64, i),
                (FrameKind::Beacon, 500.0, 3),
            ];
            db.insert(MacAddr::from_index(i), sig_with(kinds)).unwrap();
        }
        let cand =
            sig_with(&[(FrameKind::Data, 370.0, 55), (FrameKind::ProbeReq, 110.0, 7)]);
        for m in SimilarityMeasure::ALL {
            let fast = db.match_signature(&cand, m);
            let naive = db.match_signature_naive(&cand, m);
            assert_eq!(fast.similarities().len(), naive.similarities().len());
            for (f, n) in fast.similarities().iter().zip(naive.similarities()) {
                assert_eq!(f.0, n.0);
                // The f32 rows round each frequency once; the f64
                // accumulation keeps the drift within the documented
                // tolerance of the all-f64 baseline.
                assert!((f.1 - n.1).abs() < F32_SCORE_TOLERANCE, "{m}: {} vs {}", f.1, n.1);
            }
        }
    }

    #[test]
    fn match_batch_preserves_order_and_scores() {
        let mut db = ReferenceDb::new();
        for i in 1..=8u64 {
            db.insert(MacAddr::from_index(i), sig_with(&[(FrameKind::Data, 90.0 * i as f64, 50)])).unwrap();
        }
        let candidates: Vec<Signature> =
            (1..=20u64).map(|i| sig_with(&[(FrameKind::Data, 90.0 * (i % 8 + 1) as f64, 50)])).collect();
        let batch = db.match_batch(&candidates, SimilarityMeasure::Cosine);
        assert_eq!(batch.len(), candidates.len());
        for (cand, outcome) in candidates.iter().zip(&batch) {
            assert_eq!(outcome, &db.match_signature(cand, SimilarityMeasure::Cosine));
        }
    }

    #[test]
    fn match_tile_equals_independent_matches() {
        let mut db = ReferenceDb::new();
        for i in 1..=12u64 {
            db.insert(
                MacAddr::from_index(i),
                sig_with(&[
                    (FrameKind::Data, 61.0 * i as f64, 30 + i),
                    (FrameKind::Beacon, 40.0 * i as f64, 4),
                ]),
            ).unwrap();
        }
        // A mixed tile: plain candidates, one missing a kind, one empty.
        let candidates = vec![
            sig_with(&[(FrameKind::Data, 122.0, 40)]),
            sig_with(&[(FrameKind::Beacon, 80.0, 9), (FrameKind::Data, 600.0, 11)]),
            Signature::new(),
            sig_with(&[(FrameKind::ProbeReq, 10.0, 25)]),
        ];
        let mut scratch = MatchScratch::new();
        let mut single = MatchScratch::new();
        for m in SimilarityMeasure::ALL {
            let tile = db.match_tile(&candidates, m, &mut scratch);
            assert_eq!(tile.candidate_count(), candidates.len());
            let views: Vec<MatchOutcome> = tile.views().map(|v| v.to_outcome()).collect();
            for (cand, got) in candidates.iter().zip(views) {
                let want = db.match_signature_with(cand, m, &mut single).to_outcome();
                assert_eq!(got, want, "{m}");
            }
        }
    }

    #[test]
    fn tile_against_empty_db_yields_one_empty_view_per_candidate() {
        let db = ReferenceDb::new();
        let candidates = vec![
            sig_with(&[(FrameKind::Data, 100.0, 10)]),
            sig_with(&[(FrameKind::Beacon, 50.0, 5)]),
        ];
        let mut scratch = MatchScratch::new();
        let tile = db.match_tile(&candidates, SimilarityMeasure::Cosine, &mut scratch);
        assert_eq!(tile.candidate_count(), 2);
        assert_eq!(tile.views().count(), 2);
        for i in 0..2 {
            let view = tile.candidate(i);
            assert!(view.similarities().is_empty());
            assert!(view.best().is_none());
            assert!(view.top(3).is_empty());
        }
    }

    #[test]
    fn streaming_inserts_equal_bulk_pack() {
        // The incremental append path must produce a database that scores
        // identically to the one-shot pack.
        let sigs: Vec<(MacAddr, Signature)> = (1..=9u64)
            .map(|i| {
                (
                    // Out-of-order addresses exercise the sorted index.
                    MacAddr::from_index((i * 7) % 9 + 1),
                    sig_with(&[
                        (FrameKind::Data, 83.0 * i as f64, 20 + i),
                        (FrameKind::ProbeReq, 31.0 * i as f64, i % 3),
                    ]),
                )
            })
            .collect();
        let mut streamed = ReferenceDb::new();
        for (dev, sig) in &sigs {
            streamed.insert(*dev, sig.clone()).unwrap();
        }
        let bulk = ReferenceDb::from_signatures(sigs.into_iter().collect());
        assert_eq!(
            streamed.devices().collect::<Vec<_>>(),
            bulk.devices().collect::<Vec<_>>()
        );
        let cand = sig_with(&[(FrameKind::Data, 249.0, 33), (FrameKind::ProbeReq, 62.0, 5)]);
        for m in SimilarityMeasure::ALL {
            let a = streamed.match_signature(&cand, m);
            let b = bulk.match_signature(&cand, m);
            assert_eq!(a.similarities(), b.similarities(), "{m}");
        }
        // Replacement rewrites rows in place and stays consistent too.
        let dev = streamed.devices().next().unwrap();
        let replacement = sig_with(&[(FrameKind::Beacon, 700.0, 12)]);
        streamed.insert(dev, replacement.clone()).unwrap();
        let mut bulk_map: BTreeMap<MacAddr, Signature> =
            bulk.iter().map(|(d, s)| (d, s.clone())).collect();
        bulk_map.insert(dev, replacement);
        let repacked = ReferenceDb::from_signatures(bulk_map);
        let a = streamed.match_signature(&cand, SimilarityMeasure::Cosine);
        let b = repacked.match_signature(&cand, SimilarityMeasure::Cosine);
        assert_eq!(a.similarities(), b.similarities());
    }

    #[test]
    fn top_k_ranks_and_ties_deterministically() {
        let mut db = ReferenceDb::new();
        for i in 1..=10u64 {
            db.insert(MacAddr::from_index(i), sig_with(&[(FrameKind::Data, 55.0 * i as f64, 40)])).unwrap();
        }
        let cand = sig_with(&[(FrameKind::Data, 165.0, 40)]);
        let outcome = db.match_signature(&cand, SimilarityMeasure::Cosine);
        let full: Vec<_> = {
            let mut v = outcome.similarities().to_vec();
            v.sort_by(rank_desc);
            v
        };
        for k in [0, 1, 3, 10, 25] {
            let top = outcome.top(k);
            assert_eq!(top.len(), k.min(full.len()));
            assert_eq!(top, full[..top.len()].to_vec(), "k = {k}");
        }
        assert_eq!(outcome.top(1)[0], outcome.best().unwrap());
        // Exact ties (identical references) rank by ascending address.
        let sig = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut tied = ReferenceDb::new();
        for i in [5u64, 2, 9] {
            tied.insert(MacAddr::from_index(i), sig.clone()).unwrap();
        }
        let top = tied.match_signature(&sig, SimilarityMeasure::Cosine).top(2);
        assert_eq!(top[0].0, MacAddr::from_index(2));
        assert_eq!(top[1].0, MacAddr::from_index(5));
    }

    #[test]
    fn mixed_bin_specs_keep_every_reference_scoreable() {
        // Two references binned differently for the same kind: each must
        // still score against a candidate with its own spec (sibling
        // blocks keyed on (kind, bins)).
        let fine = cfg(); // 10 µs bins
        let coarse = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
            .with_bins(crate::histogram::BinSpec::uniform_to(2500.0, 50.0));
        let build = |c: &EvalConfig| {
            let mut s = Signature::new();
            for _ in 0..50 {
                s.record(FrameKind::Data, 400.0, c);
            }
            s
        };
        let mut db = ReferenceDb::new();
        let d_fine = MacAddr::from_index(1);
        let d_coarse = MacAddr::from_index(2);
        db.insert(d_fine, build(&fine)).unwrap();
        db.insert(d_coarse, build(&coarse)).unwrap();
        for (cand_cfg, expect_dev) in [(&fine, d_fine), (&coarse, d_coarse)] {
            let outcome = db.match_signature(&build(cand_cfg), SimilarityMeasure::Cosine);
            assert!((outcome.similarity_to(&expect_dev).unwrap() - 1.0).abs() < F32_SCORE_TOLERANCE);
            let naive = db.match_signature_naive(&build(cand_cfg), SimilarityMeasure::Cosine);
            for (f, n) in outcome.similarities().iter().zip(naive.similarities()) {
                assert_eq!(f.0, n.0);
                assert!((f.1 - n.1).abs() < F32_SCORE_TOLERANCE);
            }
        }
    }

    #[test]
    fn incompatible_bin_widths_score_zero_not_panic() {
        // Reference built with the default inter-arrival bins; candidate
        // with a coarser spec ⇒ different bin counts for the same kind.
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), sig_with(&[(FrameKind::Data, 100.0, 50)])).unwrap();
        let coarse = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
            .with_bins(crate::histogram::BinSpec::uniform_to(2500.0, 100.0));
        let mut cand = Signature::new();
        for _ in 0..50 {
            cand.record(FrameKind::Data, 100.0, &coarse);
        }
        let outcome = db.match_signature(&cand, SimilarityMeasure::Cosine);
        assert_eq!(outcome.similarities()[0].1, 0.0);
    }

    // f32 ↔ f64 parity: the packed-f32 engine must track the all-f64
    // naive baseline within the documented tolerance for every measure,
    // on arbitrary databases and candidates.
    proptest! {
        #[test]
        fn f32_engine_tracks_f64_baseline(
            per_device in prop::collection::vec(
                prop::collection::vec(0.0f64..2400.0, 1..60), 1..10),
            cand_values in prop::collection::vec(0.0f64..2400.0, 1..60),
        ) {
            let c = cfg();
            let mut db = ReferenceDb::new();
            for (i, values) in per_device.iter().enumerate() {
                let mut sig = Signature::new();
                for (j, &v) in values.iter().enumerate() {
                    let kind = if j % 4 == 0 { FrameKind::ProbeReq } else { FrameKind::Data };
                    sig.record(kind, v, &c);
                }
                db.insert(MacAddr::from_index(i as u64 + 1), sig).unwrap();
            }
            let mut cand = Signature::new();
            for &v in &cand_values {
                cand.record(FrameKind::Data, v, &c);
            }
            for m in SimilarityMeasure::ALL {
                let fast = db.match_signature(&cand, m);
                let baseline = db.match_signature_naive(&cand, m);
                for (f, n) in fast.similarities().iter().zip(baseline.similarities()) {
                    prop_assert_eq!(f.0, n.0);
                    prop_assert!(
                        (f.1 - n.1).abs() < F32_SCORE_TOLERANCE,
                        "{}: {} vs {}", m, f.1, n.1
                    );
                }
            }
        }
    }
}
