//! The reference database and Algorithm 1 (signature matching).

use std::collections::BTreeMap;

use wifiprint_ieee80211::{FrameKind, MacAddr};

use crate::signature::Signature;
use crate::similarity::SimilarityMeasure;

/// One prepared reference entry: the signature plus cached frequency
/// vectors and weights, so matching avoids re-normalising histograms.
#[derive(Debug, Clone)]
struct PreparedSignature {
    signature: Signature,
    /// `kind -> (weight^ftype(r), P^ftype_r)`.
    freqs: BTreeMap<FrameKind, (f64, Vec<f64>)>,
}

impl PreparedSignature {
    fn prepare(signature: Signature) -> Self {
        let freqs = signature
            .iter()
            .map(|(kind, hist)| (kind, (signature.weight(kind), hist.frequencies())))
            .collect();
        PreparedSignature { signature, freqs }
    }
}

/// The reference database of the learning phase (§IV-B): one signature per
/// known device.
///
/// # Example
///
/// ```
/// use wifiprint_core::{EvalConfig, NetworkParameter, ReferenceDb, Signature, SimilarityMeasure};
/// use wifiprint_ieee80211::{FrameKind, MacAddr};
///
/// let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize);
/// let mut sig = Signature::new();
/// for _ in 0..60 { sig.record(FrameKind::Data, 1000.0, &cfg); }
///
/// let mut db = ReferenceDb::new();
/// let dev = MacAddr::from_index(1);
/// db.insert(dev, sig.clone());
///
/// let outcome = db.match_signature(&sig, SimilarityMeasure::Cosine);
/// assert_eq!(outcome.best().unwrap().0, dev);
/// assert!((outcome.best().unwrap().1 - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ReferenceDb {
    refs: BTreeMap<MacAddr, PreparedSignature>,
}

impl ReferenceDb {
    /// An empty database.
    pub fn new() -> Self {
        ReferenceDb { refs: BTreeMap::new() }
    }

    /// Builds a database from per-device signatures (e.g. the output of
    /// [`SignatureBuilder::finish`](crate::SignatureBuilder::finish)).
    pub fn from_signatures(signatures: BTreeMap<MacAddr, Signature>) -> Self {
        let mut db = ReferenceDb::new();
        for (device, sig) in signatures {
            db.insert(device, sig);
        }
        db
    }

    /// Inserts or replaces a device's reference signature.
    ///
    /// Returns the previous signature if the device was already present.
    pub fn insert(&mut self, device: MacAddr, signature: Signature) -> Option<Signature> {
        self.refs
            .insert(device, PreparedSignature::prepare(signature))
            .map(|p| p.signature)
    }

    /// Removes a device, returning its signature.
    pub fn remove(&mut self, device: &MacAddr) -> Option<Signature> {
        self.refs.remove(device).map(|p| p.signature)
    }

    /// The signature of a device, if present.
    pub fn get(&self, device: &MacAddr) -> Option<&Signature> {
        self.refs.get(device).map(|p| &p.signature)
    }

    /// `true` if the device has a reference signature.
    pub fn contains(&self, device: &MacAddr) -> bool {
        self.refs.contains_key(device)
    }

    /// Number of reference devices.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// `true` if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Iterates `(device, signature)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (MacAddr, &Signature)> {
        self.refs.iter().map(|(&d, p)| (d, &p.signature))
    }

    /// The devices in the database, in address order.
    pub fn devices(&self) -> impl Iterator<Item = MacAddr> + '_ {
        self.refs.keys().copied()
    }

    /// Algorithm 1: matches a candidate signature against every reference.
    ///
    /// For each reference `rᵢ` the score is
    /// `simᵢ = Σ_{ftype ∈ Sig(c)} weight^ftype(rᵢ) · sim(hist^ftype(c), hist^ftype(rᵢ))`,
    /// i.e. the per-frame-type histogram similarities weighted by the
    /// **reference's** frame-type distribution. Scores lie in `[0, 1]`.
    pub fn match_signature(&self, candidate: &Signature, measure: SimilarityMeasure) -> MatchOutcome {
        // Pre-normalise the candidate's histograms once.
        let cand_freqs: Vec<(FrameKind, Vec<f64>)> =
            candidate.iter().map(|(kind, hist)| (kind, hist.frequencies())).collect();

        let mut sims = Vec::with_capacity(self.refs.len());
        for (&device, prepared) in &self.refs {
            let mut sim = 0.0;
            for (kind, cand_freq) in &cand_freqs {
                if let Some((weight, ref_freq)) = prepared.freqs.get(kind) {
                    if cand_freq.len() == ref_freq.len() {
                        sim += weight * measure.compute(cand_freq, ref_freq);
                    }
                }
            }
            sims.push((device, sim));
        }
        MatchOutcome { sims }
    }
}

/// The similarity vector `<sim₁, …, sim_N>` returned by Algorithm 1.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchOutcome {
    sims: Vec<(MacAddr, f64)>,
}

impl MatchOutcome {
    /// All `(reference device, similarity)` pairs, in database order.
    pub fn similarities(&self) -> &[(MacAddr, f64)] {
        &self.sims
    }

    /// The similarity to one specific reference device.
    pub fn similarity_to(&self, device: &MacAddr) -> Option<f64> {
        self.sims.iter().find(|(d, _)| d == device).map(|&(_, s)| s)
    }

    /// The similarity test (§IV-B): references whose similarity is at
    /// least `threshold`.
    pub fn above_threshold(&self, threshold: f64) -> impl Iterator<Item = (MacAddr, f64)> + '_ {
        self.sims.iter().copied().filter(move |&(_, s)| s >= threshold)
    }

    /// The identification test (§IV-B): the single closest reference.
    ///
    /// Ties break toward the lower MAC address for determinism.
    pub fn best(&self) -> Option<(MacAddr, f64)> {
        self.sims
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal).then(
                b.0.cmp(&a.0),
            ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::params::NetworkParameter;

    fn cfg() -> EvalConfig {
        EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
    }

    fn sig_with(values: &[(FrameKind, f64, u64)]) -> Signature {
        let c = cfg();
        let mut sig = Signature::new();
        for &(kind, value, n) in values {
            for _ in 0..n {
                sig.record(kind, value, &c);
            }
        }
        sig
    }

    #[test]
    fn identical_signature_scores_one() {
        let sig = sig_with(&[(FrameKind::Data, 500.0, 30), (FrameKind::ProbeReq, 100.0, 10)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), sig.clone());
        let outcome = db.match_signature(&sig, SimilarityMeasure::Cosine);
        let (_, score) = outcome.best().unwrap();
        assert!((score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_histograms_score_zero() {
        let a = sig_with(&[(FrameKind::Data, 100.0, 10)]);
        let b = sig_with(&[(FrameKind::Data, 2000.0, 10)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), a);
        let outcome = db.match_signature(&b, SimilarityMeasure::Cosine);
        assert_eq!(outcome.best().unwrap().1, 0.0);
    }

    #[test]
    fn missing_frame_types_contribute_nothing() {
        // Reference only has Data; candidate only has ProbeReq.
        let r = sig_with(&[(FrameKind::Data, 100.0, 10)]);
        let c = sig_with(&[(FrameKind::ProbeReq, 100.0, 10)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), r);
        let outcome = db.match_signature(&c, SimilarityMeasure::Cosine);
        assert_eq!(outcome.similarities()[0].1, 0.0);
    }

    #[test]
    fn weights_come_from_the_reference() {
        // Reference: 90% Data at 100 µs, 10% ProbeReq at 200 µs.
        let r = sig_with(&[(FrameKind::Data, 100.0, 90), (FrameKind::ProbeReq, 200.0, 10)]);
        // Candidate matches only the ProbeReq histogram.
        let c = sig_with(&[(FrameKind::ProbeReq, 200.0, 50)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), r);
        let outcome = db.match_signature(&c, SimilarityMeasure::Cosine);
        // Score = weight_ref(ProbeReq) × 1.0 = 0.1.
        assert!((outcome.similarities()[0].1 - 0.1).abs() < 1e-9);
    }

    #[test]
    fn best_picks_highest_similarity() {
        let near = sig_with(&[(FrameKind::Data, 500.0, 40), (FrameKind::Data, 525.0, 10)]);
        let far = sig_with(&[(FrameKind::Data, 1500.0, 50)]);
        let probe = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut db = ReferenceDb::new();
        let d_near = MacAddr::from_index(1);
        let d_far = MacAddr::from_index(2);
        db.insert(d_near, near);
        db.insert(d_far, far);
        let outcome = db.match_signature(&probe, SimilarityMeasure::Cosine);
        assert_eq!(outcome.best().unwrap().0, d_near);
        assert!(outcome.similarity_to(&d_far).unwrap() < outcome.similarity_to(&d_near).unwrap());
    }

    #[test]
    fn above_threshold_filters() {
        let base = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(1), base.clone());
        db.insert(MacAddr::from_index(2), sig_with(&[(FrameKind::Data, 2200.0, 50)]));
        let outcome = db.match_signature(&base, SimilarityMeasure::Cosine);
        let hits: Vec<_> = outcome.above_threshold(0.9).collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, MacAddr::from_index(1));
        assert_eq!(outcome.above_threshold(0.0).count(), 2);
    }

    #[test]
    fn db_crud_operations() {
        let mut db = ReferenceDb::new();
        assert!(db.is_empty());
        let dev = MacAddr::from_index(7);
        let sig = sig_with(&[(FrameKind::Data, 1.0, 5)]);
        assert!(db.insert(dev, sig.clone()).is_none());
        assert!(db.contains(&dev));
        assert_eq!(db.len(), 1);
        assert_eq!(db.get(&dev), Some(&sig));
        assert_eq!(db.devices().collect::<Vec<_>>(), vec![dev]);
        let replaced = db.insert(dev, sig_with(&[(FrameKind::Data, 2.0, 5)]));
        assert_eq!(replaced, Some(sig));
        assert!(db.remove(&dev).is_some());
        assert!(db.is_empty());
    }

    #[test]
    fn empty_db_matches_nothing() {
        let db = ReferenceDb::new();
        let outcome =
            db.match_signature(&sig_with(&[(FrameKind::Data, 1.0, 5)]), SimilarityMeasure::Cosine);
        assert!(outcome.best().is_none());
        assert!(outcome.similarities().is_empty());
    }

    #[test]
    fn tie_breaks_toward_lower_address() {
        let sig = sig_with(&[(FrameKind::Data, 500.0, 50)]);
        let mut db = ReferenceDb::new();
        db.insert(MacAddr::from_index(5), sig.clone());
        db.insert(MacAddr::from_index(3), sig.clone());
        let outcome = db.match_signature(&sig, SimilarityMeasure::Cosine);
        assert_eq!(outcome.best().unwrap().0, MacAddr::from_index(3));
    }
}
