//! Accuracy metrics for the similarity and identification tests (§IV-B).
//!
//! The paper's similarity curve plots the **average true positive rate**
//! against the false positive rate across a threshold sweep. Because there
//! is one class per reference device (not a binary classifier), this is not
//! a classical ROC curve and points below the diagonal are possible — the
//! transmission-rate parameter in the conference trace produces exactly
//! that (AUC 4%).
//!
//! Definitions used here, per candidate instance (one device in one
//! detection window, with the true device present in the reference DB):
//!
//! * similarity test at threshold `T`: the returned set is every reference
//!   with similarity ≥ `T`. `TPR(T)` = fraction of instances whose true
//!   device is in the returned set; `FPR(T)` = mean fraction of the `N−1`
//!   wrong references that were returned.
//! * identification test at threshold `T`: the instance is *identified* as
//!   the argmax reference if its similarity ≥ `T`. The identification
//!   ratio counts correct identifications; the FPR counts instances
//!   identified as a wrong device.

use wifiprint_ieee80211::MacAddr;

use crate::error::CoreError;
use crate::matching::{best_of, MatchScratch, ReferenceDb, MATCH_TILE};
use crate::signature::Signature;
use crate::similarity::SimilarityMeasure;
use crate::windows::CandidateWindow;

/// Threshold-sweep resolution used by [`evaluate`] and
/// [`EvalOutcome::from_match_sets`].
const MAX_THRESHOLDS: usize = 512;

/// The similarities of one candidate instance against every reference,
/// plus the ground-truth device.
#[derive(Debug, Clone, PartialEq)]
pub struct MatchSet {
    /// The true identity of the candidate (its source MAC address).
    pub true_device: MacAddr,
    /// Similarity to the true device's reference signature.
    pub true_sim: f64,
    /// Similarities to all *other* references.
    pub wrong_sims: Vec<f64>,
    /// The largest similarity overall and whether it belongs to the true
    /// device (argmax of Algorithm 1's vector).
    pub best_is_true: bool,
    /// The largest similarity value.
    pub best_sim: f64,
}

impl MatchSet {
    /// Builds the ground-truthed set from one candidate's similarity
    /// vector (as produced by Algorithm 1 — e.g.
    /// [`MatchOutcome::similarities`](crate::MatchOutcome::similarities)).
    ///
    /// The true device's similarity defaults to 0.0 when it is absent
    /// from the vector; the argmax tie-breaks toward the lower address,
    /// matching [`MatchView::best`](crate::MatchView::best). An empty
    /// vector (no references at all) yields `best_is_true: false` — with
    /// nothing to match against, nothing was identified correctly.
    pub fn from_similarities(true_device: MacAddr, sims: &[(MacAddr, f64)]) -> MatchSet {
        let mut true_sim = 0.0;
        let mut wrong = Vec::with_capacity(sims.len().saturating_sub(1));
        for &(device, sim) in sims {
            if device == true_device {
                true_sim = sim;
            } else {
                wrong.push(sim);
            }
        }
        let best = best_of(sims);
        MatchSet {
            true_device,
            true_sim,
            wrong_sims: wrong,
            best_is_true: best.is_some_and(|(device, _)| device == true_device),
            best_sim: best.map_or(0.0, |(_, sim)| sim),
        }
    }
}

/// One point of the similarity curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// The similarity threshold `T` producing this point.
    pub threshold: f64,
    /// False positive rate at `T`.
    pub fpr: f64,
    /// Average true positive rate at `T`.
    pub tpr: f64,
}

/// The TPR-vs-FPR curve of the similarity test and its AUC.
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarityCurve {
    /// Curve points in order of decreasing threshold (FPR ascending).
    pub points: Vec<CurvePoint>,
    /// Area under the curve — the paper's "global probability of correct
    /// classification" (Table II).
    pub auc: f64,
}

/// One operating point of the identification test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdentOperatingPoint {
    /// The similarity threshold.
    pub threshold: f64,
    /// Fraction of instances identified as a wrong device.
    pub fpr: f64,
    /// Fraction of instances correctly identified (Table III's ratio).
    pub ratio: f64,
}

/// Full outcome of evaluating one parameter on one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalOutcome {
    /// The similarity-test curve.
    pub curve: SimilarityCurve,
    /// Identification operating points (decreasing threshold).
    pub ident_points: Vec<IdentOperatingPoint>,
    /// Number of candidate instances evaluated (known to the DB).
    pub instances: usize,
    /// Candidate instances skipped because their device has no reference.
    pub unknown_candidates: usize,
}

impl EvalOutcome {
    /// Assembles the full outcome from already-computed match sets — the
    /// aggregation step shared by the batch [`evaluate`] sweep and
    /// streaming consumers that accumulate [`MatchSet`]s from
    /// [`engine`](crate::engine) match events.
    pub fn from_match_sets(sets: &[MatchSet], unknown_candidates: usize) -> EvalOutcome {
        EvalOutcome {
            curve: similarity_curve(sets, MAX_THRESHOLDS),
            ident_points: identification_points(sets, MAX_THRESHOLDS),
            instances: sets.len(),
            unknown_candidates,
        }
    }

    /// AUC of the similarity test.
    pub fn auc(&self) -> f64 {
        self.curve.auc
    }

    /// The identification ratio at a target FPR (Table III reports 0.01
    /// and 0.1), linearly interpolated between operating points.
    ///
    /// If even the loosest threshold keeps the FPR below `target`, the
    /// final (maximal) ratio is returned.
    pub fn identification_at_fpr(&self, target: f64) -> f64 {
        interpolate_at_fpr(&self.ident_points, target)
    }
}

/// Matches every candidate window against the database, keeping instances
/// whose device is known (the paper's accuracy metrics are defined over
/// those).
///
/// Candidates are scored through the tiled `f32` matrix sweep
/// ([`ReferenceDb::match_tile`]): windows sharing a tile are scored in
/// one pass over the reference rows, and — with the `parallel` feature
/// (default) — tiles are fanned out across threads, one scratch per
/// worker. Output order matches candidate order either way.
pub fn match_candidates(
    db: &ReferenceDb,
    candidates: &[CandidateWindow],
    measure: SimilarityMeasure,
) -> (Vec<MatchSet>, usize) {
    // Unknown devices carry no ground truth; drop them before tiling so
    // no sweep time is spent scoring them.
    let known: Vec<&CandidateWindow> =
        candidates.iter().filter(|c| db.contains(&c.device)).collect();
    let unknown = candidates.len() - known.len();
    let sets = crate::batch::map_tiles_with_scratch(
        &known,
        MATCH_TILE,
        MatchScratch::new,
        |scratch, tile| {
            let sigs: Vec<&Signature> = tile.iter().map(|c| &c.signature).collect();
            let view = db.match_tile(&sigs, measure, scratch);
            tile.iter()
                .enumerate()
                .map(|(t, cand)| {
                    MatchSet::from_similarities(cand.device, view.candidate(t).similarities())
                })
                .collect()
        },
    );
    (sets, unknown)
}

/// Computes the similarity curve over a threshold sweep.
///
/// `max_thresholds` bounds the sweep resolution (thresholds are the
/// observed similarity values, subsampled evenly when too many).
pub fn similarity_curve(sets: &[MatchSet], max_thresholds: usize) -> SimilarityCurve {
    let thresholds = threshold_sweep(sets, max_thresholds);
    let n = sets.len() as f64;
    let mut points = Vec::with_capacity(thresholds.len() + 2);
    points.push(CurvePoint { threshold: f64::INFINITY, fpr: 0.0, tpr: 0.0 });
    for &t in &thresholds {
        if sets.is_empty() {
            break;
        }
        let mut tp = 0.0;
        let mut fp = 0.0;
        for set in sets {
            if set.true_sim >= t {
                tp += 1.0;
            }
            if !set.wrong_sims.is_empty() {
                let wrong_hits = set.wrong_sims.iter().filter(|&&s| s >= t).count();
                fp += wrong_hits as f64 / set.wrong_sims.len() as f64;
            }
        }
        points.push(CurvePoint { threshold: t, fpr: fp / n, tpr: tp / n });
    }
    if !sets.is_empty() {
        points.push(CurvePoint { threshold: f64::NEG_INFINITY, fpr: 1.0, tpr: 1.0 });
    }
    let auc = auc_trapezoid(&points);
    SimilarityCurve { points, auc }
}

/// Computes identification operating points over a threshold sweep.
pub fn identification_points(sets: &[MatchSet], max_thresholds: usize) -> Vec<IdentOperatingPoint> {
    let thresholds = threshold_sweep(sets, max_thresholds);
    let n = sets.len().max(1) as f64;
    let mut points = Vec::with_capacity(thresholds.len() + 1);
    points.push(IdentOperatingPoint { threshold: f64::INFINITY, fpr: 0.0, ratio: 0.0 });
    for &t in &thresholds {
        let mut correct = 0.0;
        let mut wrong = 0.0;
        for set in sets {
            if set.best_sim >= t {
                if set.best_is_true {
                    correct += 1.0;
                } else {
                    wrong += 1.0;
                }
            }
        }
        points.push(IdentOperatingPoint { threshold: t, fpr: wrong / n, ratio: correct / n });
    }
    points
}

/// Runs both tests end to end.
///
/// # Errors
///
/// [`CoreError::EmptyDatabase`] when `db` holds no reference device —
/// there is nothing to match against. Callers that want the degenerate
/// "every candidate is unknown" outcome instead can build it with
/// [`EvalOutcome::from_match_sets`]`(&[], candidates.len())`.
pub fn evaluate(
    db: &ReferenceDb,
    candidates: &[CandidateWindow],
    measure: SimilarityMeasure,
) -> Result<EvalOutcome, CoreError> {
    if db.is_empty() {
        return Err(CoreError::EmptyDatabase);
    }
    let (sets, unknown) = match_candidates(db, candidates, measure);
    Ok(EvalOutcome::from_match_sets(&sets, unknown))
}

/// All distinct similarity values, descending, subsampled to at most
/// `max_thresholds` entries.
fn threshold_sweep(sets: &[MatchSet], max_thresholds: usize) -> Vec<f64> {
    let mut values: Vec<f64> = sets
        .iter()
        .flat_map(|s| s.wrong_sims.iter().copied().chain([s.true_sim]))
        .filter(|v| v.is_finite())
        .collect();
    values.sort_by(|a, b| b.partial_cmp(a).expect("finite values"));
    values.dedup();
    if values.len() > max_thresholds && max_thresholds > 0 {
        let step = values.len() as f64 / max_thresholds as f64;
        let mut sampled = Vec::with_capacity(max_thresholds);
        for i in 0..max_thresholds {
            sampled.push(values[(i as f64 * step) as usize]);
        }
        // Always keep the loosest threshold so the sweep reaches FPR 1.
        if sampled.last() != values.last() {
            sampled.push(*values.last().expect("nonempty"));
        }
        sampled
    } else {
        values
    }
}

/// Trapezoidal area under the curve; points must be FPR-ascending.
fn auc_trapezoid(points: &[CurvePoint]) -> f64 {
    let mut auc = 0.0;
    for pair in points.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        auc += (b.fpr - a.fpr) * (a.tpr + b.tpr) / 2.0;
    }
    auc.clamp(0.0, 1.0)
}

fn interpolate_at_fpr(points: &[IdentOperatingPoint], target: f64) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let mut prev = points[0];
    for &p in points {
        if p.fpr >= target {
            if (p.fpr - prev.fpr).abs() < f64::EPSILON {
                return p.ratio;
            }
            let alpha = (target - prev.fpr) / (p.fpr - prev.fpr);
            return prev.ratio + alpha * (p.ratio - prev.ratio);
        }
        prev = p;
    }
    prev.ratio
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(true_sim: f64, wrong: &[f64]) -> MatchSet {
        let best_sim = wrong.iter().copied().fold(true_sim, f64::max);
        MatchSet {
            true_device: MacAddr::from_index(1),
            true_sim,
            wrong_sims: wrong.to_vec(),
            best_is_true: true_sim >= best_sim,
            best_sim,
        }
    }

    #[test]
    fn from_similarities_handles_empty_and_missing_true_device() {
        let dev = MacAddr::from_index(1);
        // No references at all: nothing was identified, correctly or not.
        let empty = MatchSet::from_similarities(dev, &[]);
        assert!(!empty.best_is_true);
        assert_eq!((empty.true_sim, empty.best_sim), (0.0, 0.0));
        assert!(empty.wrong_sims.is_empty());
        // True device absent from the vector: its similarity is 0.
        let other = MacAddr::from_index(2);
        let set = MatchSet::from_similarities(dev, &[(other, 0.4)]);
        assert!(!set.best_is_true);
        assert_eq!(set.true_sim, 0.0);
        assert_eq!(set.best_sim, 0.4);
        assert_eq!(set.wrong_sims, vec![0.4]);
        // Argmax ties break toward the lower address, like best().
        let set = MatchSet::from_similarities(dev, &[(dev, 0.7), (other, 0.7)]);
        assert!(set.best_is_true);
    }

    #[test]
    fn perfect_classifier_has_auc_one() {
        // True sims always 0.9; wrong sims always 0.1.
        let sets: Vec<_> = (0..10).map(|_| set(0.9, &[0.1, 0.1, 0.1])).collect();
        let curve = similarity_curve(&sets, 100);
        assert!(curve.auc > 0.99, "auc = {}", curve.auc);
    }

    #[test]
    fn inverted_classifier_has_auc_zero() {
        // The wrong references always score higher: deep lower-right curve,
        // like the transmission rate in the conference trace.
        let sets: Vec<_> = (0..10).map(|_| set(0.1, &[0.9, 0.9, 0.9])).collect();
        let curve = similarity_curve(&sets, 100);
        assert!(curve.auc < 0.01, "auc = {}", curve.auc);
    }

    #[test]
    fn random_classifier_has_auc_half() {
        // True and wrong similarities drawn from the same ladder.
        let mut sets = Vec::new();
        for i in 0..100 {
            let v = f64::from(i) / 100.0;
            sets.push(set(v, &[1.0 - v]));
        }
        let curve = similarity_curve(&sets, 512);
        assert!((curve.auc - 0.5).abs() < 0.05, "auc = {}", curve.auc);
    }

    #[test]
    fn curve_is_monotone_and_anchored() {
        let sets: Vec<_> = (0..20)
            .map(|i| set(0.5 + 0.02 * f64::from(i), &[0.3, 0.6, 0.1]))
            .collect();
        let curve = similarity_curve(&sets, 64);
        let first = curve.points.first().unwrap();
        let last = curve.points.last().unwrap();
        assert_eq!((first.fpr, first.tpr), (0.0, 0.0));
        assert_eq!((last.fpr, last.tpr), (1.0, 1.0));
        for pair in curve.points.windows(2) {
            assert!(pair[1].fpr >= pair[0].fpr);
            assert!(pair[1].tpr >= pair[0].tpr);
            assert!(pair[1].threshold <= pair[0].threshold);
        }
    }

    #[test]
    fn identification_points_count_argmax() {
        // 3 instances: two identified correctly with sims .9/.8, one where a
        // wrong device wins with .95.
        let sets = vec![set(0.9, &[0.2]), set(0.8, &[0.5]), set(0.3, &[0.95])];
        let points = identification_points(&sets, 100);
        let last = points.last().unwrap();
        assert!((last.ratio - 2.0 / 3.0).abs() < 1e-9);
        assert!((last.fpr - 1.0 / 3.0).abs() < 1e-9);
        // At a threshold above all sims, nothing is identified.
        let first = points.first().unwrap();
        assert_eq!((first.fpr, first.ratio), (0.0, 0.0));
    }

    #[test]
    fn identification_at_fpr_interpolates() {
        let points = vec![
            IdentOperatingPoint { threshold: f64::INFINITY, fpr: 0.0, ratio: 0.0 },
            IdentOperatingPoint { threshold: 0.9, fpr: 0.0, ratio: 0.4 },
            IdentOperatingPoint { threshold: 0.5, fpr: 0.2, ratio: 0.6 },
        ];
        let outcome = EvalOutcome {
            curve: SimilarityCurve { points: vec![], auc: 0.0 },
            ident_points: points,
            instances: 10,
            unknown_candidates: 0,
        };
        // Halfway between fpr 0.0 (ratio .4) and fpr 0.2 (ratio .6).
        assert!((outcome.identification_at_fpr(0.1) - 0.5).abs() < 1e-9);
        // Beyond the last point: the maximal ratio.
        assert!((outcome.identification_at_fpr(0.9) - 0.6).abs() < 1e-9);
        // Exactly at a point.
        assert!((outcome.identification_at_fpr(0.2) - 0.6).abs() < 1e-9);
    }

    #[test]
    fn empty_sets_give_empty_outcome() {
        let curve = similarity_curve(&[], 100);
        assert_eq!(curve.points.len(), 1);
        assert_eq!(curve.auc, 0.0);
        let ident = identification_points(&[], 100);
        assert_eq!(ident.len(), 1);
    }

    #[test]
    fn threshold_sweep_subsamples() {
        let sets: Vec<_> = (0..1000).map(|i| set(f64::from(i) / 1000.0, &[0.5])).collect();
        let t = threshold_sweep(&sets, 100);
        assert!(t.len() <= 101);
        // Descending and ending at the global minimum.
        for pair in t.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert_eq!(*t.last().unwrap(), 0.0);
    }

    #[test]
    fn match_candidates_skips_unknown_devices() {
        use crate::config::EvalConfig;
        use crate::params::NetworkParameter;
        use crate::signature::Signature;
        use wifiprint_ieee80211::FrameKind;

        let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize);
        let mut sig = Signature::new();
        for _ in 0..60 {
            sig.record(FrameKind::Data, 500.0, &cfg);
        }
        let known = MacAddr::from_index(1);
        let stranger = MacAddr::from_index(2);
        let mut db = ReferenceDb::new();
        db.insert(known, sig.clone()).unwrap();
        let candidates = vec![
            CandidateWindow { index: 0, device: known, signature: sig.clone() },
            CandidateWindow { index: 0, device: stranger, signature: sig },
        ];
        let (sets, unknown) = match_candidates(&db, &candidates, SimilarityMeasure::Cosine);
        assert_eq!(sets.len(), 1);
        assert_eq!(unknown, 1);
        assert!(sets[0].best_is_true);
    }

    #[test]
    fn evaluate_end_to_end_small() {
        use crate::config::EvalConfig;
        use crate::params::NetworkParameter;
        use crate::signature::Signature;
        use wifiprint_ieee80211::FrameKind;

        let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime);
        let mut db = ReferenceDb::new();
        let make_sig = |center: f64| {
            let mut s = Signature::new();
            for i in 0..50 {
                s.record(FrameKind::Data, center + f64::from(i % 5), &cfg);
            }
            s
        };
        let d1 = MacAddr::from_index(1);
        let d2 = MacAddr::from_index(2);
        db.insert(d1, make_sig(300.0)).unwrap();
        db.insert(d2, make_sig(1500.0)).unwrap();
        let candidates = vec![
            CandidateWindow { index: 0, device: d1, signature: make_sig(300.0) },
            CandidateWindow { index: 0, device: d2, signature: make_sig(1500.0) },
            CandidateWindow { index: 1, device: d1, signature: make_sig(302.0) },
        ];
        let outcome = evaluate(&db, &candidates, SimilarityMeasure::Cosine).unwrap();
        assert_eq!(outcome.instances, 3);
        assert_eq!(outcome.unknown_candidates, 0);
        assert!(outcome.auc() > 0.9, "auc = {}", outcome.auc());
        assert!(outcome.identification_at_fpr(0.1) > 0.9);
    }
}
