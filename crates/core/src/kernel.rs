//! Runtime-dispatched dot-product kernels for the matching sweep.
//!
//! The matrix–matrix sweep in [`matching`](crate::matching) reduces every
//! `(candidate, reference)` pair to one dense dot product over packed
//! `f32` rows. This module owns that kernel — and is the **only** place in
//! the crate where `unsafe` is permitted (the crate is otherwise
//! `#![deny(unsafe_code)]`; here it is scoped to the SIMD intrinsics with
//! per-site safety comments).
//!
//! Three implementations exist, selected once per process:
//!
//! * **AVX2 + FMA** (`x86`/`x86_64`): 8-lane `f32` fused multiply-adds,
//!   four independent vector accumulators (32 floats in flight per
//!   iteration). Chosen at runtime via `is_x86_feature_detected!`, so a
//!   binary compiled for the baseline target still uses it on capable
//!   hosts.
//! * **NEON** (`aarch64`): 4-lane `f32` FMA with four accumulators.
//! * **Portable**: an 8-way unrolled scalar loop with independent partial
//!   sums — auto-vectorisable on the baseline ISA and the proof text for
//!   the property tests that pin all paths to each other.
//!
//! All paths compute the same mathematical sum with different association
//! orders; results agree within a small multiple of `f32` rounding (see
//! the kernel-equivalence property tests in `tests/proptests.rs`). Scores
//! derived from these dots are accumulated in `f64` by the caller and are
//! covered by [`F32_SCORE_TOLERANCE`](crate::matching::F32_SCORE_TOLERANCE).
//! Both SIMD paths finish their row with a **masked tail** (AVX2
//! `maskload`, NEON via a zero-padded stack temporary) instead of a
//! scalar remainder loop, so a 251-bin row is 8 vector iterations, no
//! scalar epilogue.
//!
//! # Integer kernels for the quantized tier
//!
//! The [`RowPrecision::U8`](crate::matching::RowPrecision) storage tier
//! (see [`matching`](crate::matching)) holds rows as `u8` codes in
//! `0..=`[`QUANT_MAX`]. Its dot products are **exact** integer sums —
//! every dispatch path computes bit-identical `u32` results, so the
//! quantized sweeps need no cross-kernel tolerance:
//!
//! * **AVX2** (`x86`/`x86_64`): `maddubs` multiplies 32 `u8×i8` pairs and
//!   adds adjacent products into `i16`; capping codes at [`QUANT_MAX`]` =
//!   127` keeps every pair sum `≤ 2·127² = 32 258 < i16::MAX`, so the
//!   pairwise add cannot saturate. A `madd`-by-ones then widens to `i32`
//!   accumulators.
//! * **NEON** (`aarch64`): widening `vmull_u8` multiplies (`u8×u8 → u16`,
//!   exact) folded pairwise into `u32` accumulators via `vpadalq_u16`.
//!   (ARMv8.2 `udot` is the natural upgrade once an aarch64 host is in
//!   the validation loop.)
//! * **Portable**: an 8-way unrolled `u8 → u32` widening loop.
//!
//! [`dot_u8_multi`] is the 8×K **register-blocked tile microkernel**
//! (BLIS-style): one reference-row vector is loaded per chunk and dotted
//! against up to [`MICRO_TILE`] candidate rows while it sits in a
//! register, with the K partial sums held in registers across the whole
//! row — each candidate's dot is written to `out` exactly once.

// The one sanctioned escape from the crate-wide `deny(unsafe_code)`:
// SIMD intrinsics are unavoidably unsafe (raw-pointer loads + target
// features); every unsafe block below carries a safety comment.
#![allow(unsafe_code)]
// The SIMD intrinsics modules are designed for wildcard import, and
// kernel-local names follow BLAS convention (a/b operands, ap/bp
// pointers, n length).
#![allow(clippy::wildcard_imports, clippy::many_single_char_names)]

use std::sync::OnceLock;

#[cfg(target_arch = "x86")]
use std::arch::x86::__m256i;
#[cfg(target_arch = "x86_64")]
use std::arch::x86_64::__m256i;

/// Which dot kernel the runtime dispatch selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// 8-lane AVX2 with fused multiply-add (`x86`/`x86_64`, detected at
    /// runtime).
    Avx2Fma,
    /// 4-lane NEON with fused multiply-add (aarch64).
    Neon,
    /// The unrolled scalar fallback.
    Portable,
}

impl KernelKind {
    /// A short stable name for logs and bench snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelKind::Avx2Fma => "avx2+fma",
            KernelKind::Neon => "neon",
            KernelKind::Portable => "portable",
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Signature of a dispatched dot kernel: equal-length slices to a scalar.
pub type DotFn = fn(&[f32], &[f32]) -> f32;

/// The kernel selected for this host (detection runs once, then the
/// choice is cached for the process lifetime).
pub fn active() -> KernelKind {
    select().0
}

/// Dot product of two equal-length `f32` slices through the selected
/// kernel. If the lengths differ, the shorter length is used (the matrix
/// sweep only ever passes equal lengths; `debug_assert`ed).
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    (select().1)(a, b)
}

/// The selected kernel as a plain function pointer, so hot loops hoist
/// the dispatch out of the per-row sweep.
#[inline]
pub(crate) fn dot_fn() -> DotFn {
    select().1
}

fn select() -> &'static (KernelKind, DotFn) {
    static SELECTED: OnceLock<(KernelKind, DotFn)> = OnceLock::new();
    SELECTED.get_or_init(|| {
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return (KernelKind::Avx2Fma, dot_f32_avx2_entry as DotFn);
        }
        #[cfg(target_arch = "aarch64")]
        if std::arch::is_aarch64_feature_detected!("neon") {
            return (KernelKind::Neon, dot_f32_neon_entry as DotFn);
        }
        (KernelKind::Portable, dot_f32_portable as DotFn)
    })
}

/// Largest quantized code the `u8` storage tier emits: rows are scaled so
/// their maximum frequency maps to `QUANT_MAX`.
///
/// 127 (7 bits) rather than 255 is a kernel constraint, not a precision
/// choice: AVX2 `maddubs` adds adjacent `u8×i8` products into `i16`, and
/// `2 · 127 · 127 = 32 258 ≤ i16::MAX` is the largest cap for which that
/// pairwise add can never saturate (both operands also stay valid as
/// *signed* bytes, which the instruction requires of one side).
pub const QUANT_MAX: u8 = 127;

/// Width of the register-blocked integer microkernel: how many candidate
/// rows [`dot_u8_multi`] dots against one reference row per pass. Eight
/// 256-bit accumulators plus the row/candidate/ones operands fit the
/// 16-register AVX2 file (and NEON's 32 with room to spare), so the
/// partial sums never spill across the row.
pub const MICRO_TILE: usize = 8;

/// Which integer dot kernel the runtime dispatch selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IntKernelKind {
    /// AVX2 `maddubs` + `madd` widening path (`x86`/`x86_64`).
    Avx2Maddubs,
    /// NEON widening-multiply path (`vmull_u8` + `vpadalq_u16`).
    NeonWiden,
    /// The unrolled scalar widening fallback.
    Portable,
}

impl IntKernelKind {
    /// A short stable name for logs and bench snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            IntKernelKind::Avx2Maddubs => "avx2+maddubs",
            IntKernelKind::NeonWiden => "neon+widen",
            IntKernelKind::Portable => "portable",
        }
    }
}

impl std::fmt::Display for IntKernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Signature of a dispatched integer dot kernel.
pub type DotU8Fn = fn(&[u8], &[u8]) -> u32;

/// Signature of the dispatched integer tile microkernel:
/// `(candidate rows packed row-major, reference row, one dot per
/// candidate)` with `cands.len() == out.len() * row.len()` and
/// `out.len() <= MICRO_TILE`.
type DotU8MultiFn = fn(&[u8], &[u8], &mut [u32]);

/// The integer kernel selected for this host.
pub fn active_int() -> IntKernelKind {
    select_int().0
}

/// Exact integer dot product of two equal-length `u8` slices through the
/// selected kernel. Every dispatch path returns the identical `u32` (the
/// sum is exact), so quantized scores carry no cross-kernel variance.
#[inline]
pub fn dot_u8(a: &[u8], b: &[u8]) -> u32 {
    (select_int().1)(a, b)
}

/// The 8×K register-blocked integer microkernel: dots one reference
/// `row` against `out.len()` candidate rows packed row-major in `cands`
/// (`cands.len()` must be `out.len() * row.len()`), writing each
/// candidate's exact dot once. Tiles wider than [`MICRO_TILE`] are split
/// into register-sized passes.
#[inline]
pub fn dot_u8_multi(cands: &[u8], row: &[u8], out: &mut [u32]) {
    debug_assert_eq!(cands.len(), row.len() * out.len());
    let kernel = select_int().2;
    let bins = row.len();
    let mut offset = 0usize;
    for chunk in out.chunks_mut(MICRO_TILE) {
        let span = chunk.len() * bins;
        kernel(&cands[offset..offset + span], row, chunk);
        offset += span;
    }
}

fn select_int() -> &'static (IntKernelKind, DotU8Fn, DotU8MultiFn) {
    static SELECTED: OnceLock<(IntKernelKind, DotU8Fn, DotU8MultiFn)> = OnceLock::new();
    SELECTED.get_or_init(|| {
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            return (
                IntKernelKind::Avx2Maddubs,
                dot_u8_avx2_entry as DotU8Fn,
                dot_u8_multi_avx2_entry as DotU8MultiFn,
            );
        }
        #[cfg(target_arch = "aarch64")]
        if std::arch::is_aarch64_feature_detected!("neon") {
            return (
                IntKernelKind::NeonWiden,
                dot_u8_neon_entry as DotU8Fn,
                dot_u8_multi_neon_entry as DotU8MultiFn,
            );
        }
        (IntKernelKind::Portable, dot_u8_portable as DotU8Fn, dot_u8_multi_portable as DotU8MultiFn)
    })
}

/// Portable dot kernel: 8 independent partial sums give the backend the
/// instruction-level parallelism (and auto-vectorisation freedom) a
/// single-chain reduction denies it.
pub fn dot_f32_portable(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f32; 8];
    let chunks = n / 8 * 8;
    for (ca, cb) in a[..chunks].chunks_exact(8).zip(b[..chunks].chunks_exact(8)) {
        // Lane-indexed accumulators vectorise to two 4-lane mul+add per
        // chunk on the baseline ISA (a pairwise reduction tree here makes
        // LLVM chase per-accumulator identity through lane shuffles
        // inside the loop — keep the reduction linear and outside).
        for lane in 0..8 {
            acc[lane] += ca[lane] * cb[lane];
        }
    }
    let mut total = 0.0f32;
    for &lane_sum in &acc {
        total += lane_sum;
    }
    for (x, y) in a[chunks..].iter().zip(&b[chunks..]) {
        total += x * y;
    }
    total
}

/// Four-accumulator `f64` dot product — the PR-1 scalar kernel, retained
/// as the benchmark baseline for the f32-vs-f64 comparison and for
/// callers that still hold `f64` rows.
#[inline]
pub fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; 4];
    let chunks = n / 4 * 4;
    for (ca, cb) in a[..chunks].chunks_exact(4).zip(b[..chunks].chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    for (x, y) in a[chunks..].iter().zip(&b[chunks..]) {
        acc[0] += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
fn dot_f32_avx2_entry(a: &[f32], b: &[f32]) -> f32 {
    // SAFETY: this entry is only ever installed in the dispatch table
    // after `is_x86_feature_detected!` confirmed both `avx2` and `fma`
    // on the running CPU, so the target-feature contract holds.
    unsafe { dot_f32_avx2(a, b) }
}

/// AVX2+FMA kernel: 4 × 8-lane accumulators (32 multiply-adds in flight).
///
/// # Safety
///
/// The caller must ensure the running CPU supports AVX2 and FMA.
#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_f32_avx2(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 32 <= n {
        // SAFETY: `i + 32 <= n` bounds every unaligned 8-lane load below
        // within the slices; `_mm256_loadu_ps` has no alignment
        // requirement.
        unsafe {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 8)),
                _mm256_loadu_ps(bp.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 16)),
                _mm256_loadu_ps(bp.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 24)),
                _mm256_loadu_ps(bp.add(i + 24)),
                acc3,
            );
        }
        i += 32;
    }
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds the unaligned 8-lane loads.
        unsafe {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
        }
        i += 8;
    }
    let rem = n - i;
    if rem > 0 {
        // Masked tail instead of a scalar remainder loop: the mask
        // enables exactly the first `rem` lanes.
        // SAFETY: `_mm256_maskload_ps` performs no memory access on
        // masked-off lanes, so the 8-lane load never touches memory past
        // `a[n-1]` / `b[n-1]`; `rem < 8` indexes `TAIL_MASKS` in bounds.
        unsafe {
            let mask = _mm256_loadu_si256(TAIL_MASKS[rem].as_ptr().cast());
            acc0 = _mm256_fmadd_ps(
                _mm256_maskload_ps(ap.add(i), mask),
                _mm256_maskload_ps(bp.add(i), mask),
                acc0,
            );
        }
    }
    let acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
    // Horizontal reduction: 256 → 128 → 64 → 32 bits.
    let lo = _mm256_castps256_ps128(acc);
    let hi = _mm256_extractf128_ps(acc, 1);
    let sum4 = _mm_add_ps(lo, hi);
    let sum2 = _mm_add_ps(sum4, _mm_movehl_ps(sum4, sum4));
    let sum1 = _mm_add_ss(sum2, _mm_shuffle_ps(sum2, sum2, 0b01));
    _mm_cvtss_f32(sum1)
}

/// `TAIL_MASKS[r]` enables the first `r` of 8 lanes for
/// `_mm256_maskload_ps` (lane on ⇔ the `i32` is negative). Row 0 is
/// unused — a zero remainder skips the masked load entirely.
#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
static TAIL_MASKS: [[i32; 8]; 8] = {
    let mut masks = [[0i32; 8]; 8];
    let mut r = 1;
    while r < 8 {
        let mut lane = 0;
        while lane < r {
            masks[r][lane] = -1;
            lane += 1;
        }
        r += 1;
    }
    masks
};

#[cfg(target_arch = "aarch64")]
fn dot_f32_neon_entry(a: &[f32], b: &[f32]) -> f32 {
    // SAFETY: this entry is only installed after
    // `is_aarch64_feature_detected!("neon")` succeeded (NEON is also part
    // of the baseline aarch64 ABI), so the target-feature contract holds.
    unsafe { dot_f32_neon(a, b) }
}

/// NEON kernel: 4 × 4-lane accumulators (16 multiply-adds in flight).
///
/// # Safety
///
/// The caller must ensure the running CPU supports NEON.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot_f32_neon(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::aarch64::*;

    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut acc2 = vdupq_n_f32(0.0);
    let mut acc3 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 16 <= n {
        // SAFETY: `i + 16 <= n` bounds every 4-lane load within the
        // slices; NEON loads are unaligned-tolerant.
        unsafe {
            acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
            acc1 = vfmaq_f32(acc1, vld1q_f32(ap.add(i + 4)), vld1q_f32(bp.add(i + 4)));
            acc2 = vfmaq_f32(acc2, vld1q_f32(ap.add(i + 8)), vld1q_f32(bp.add(i + 8)));
            acc3 = vfmaq_f32(acc3, vld1q_f32(ap.add(i + 12)), vld1q_f32(bp.add(i + 12)));
        }
        i += 16;
    }
    while i + 4 <= n {
        // SAFETY: `i + 4 <= n` bounds the 4-lane loads.
        unsafe {
            acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
        }
        i += 4;
    }
    let rem = n - i;
    if rem > 0 {
        // Masked tail via zero-padded stack temporaries (aarch64 has no
        // maskload; padding with 0.0 adds exact zeros to the sum).
        let mut ta = [0.0f32; 4];
        let mut tb = [0.0f32; 4];
        ta[..rem].copy_from_slice(&a[i..n]);
        tb[..rem].copy_from_slice(&b[i..n]);
        // SAFETY: the 4-lane loads read the full 4-element temporaries.
        unsafe {
            acc0 = vfmaq_f32(acc0, vld1q_f32(ta.as_ptr()), vld1q_f32(tb.as_ptr()));
        }
    }
    let acc = vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3));
    vaddvq_f32(acc)
}

/// Portable integer dot: 8 independent `u32` partial sums over widened
/// `u8` products — exact, and the proof text the SIMD paths are tested
/// bit-equal to.
pub fn dot_u8_portable(a: &[u8], b: &[u8]) -> u32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0u32; 8];
    let chunks = n / 8 * 8;
    for (ca, cb) in a[..chunks].chunks_exact(8).zip(b[..chunks].chunks_exact(8)) {
        for lane in 0..8 {
            acc[lane] += u32::from(ca[lane]) * u32::from(cb[lane]);
        }
    }
    let mut total: u32 = acc.iter().sum();
    for (&x, &y) in a[chunks..].iter().zip(&b[chunks..]) {
        total += u32::from(x) * u32::from(y);
    }
    total
}

/// Portable microkernel fallback: one exact dot per candidate row.
fn dot_u8_multi_portable(cands: &[u8], row: &[u8], out: &mut [u32]) {
    let bins = row.len();
    for (j, dot) in out.iter_mut().enumerate() {
        *dot = dot_u8_portable(&cands[j * bins..(j + 1) * bins], row);
    }
}

#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
fn dot_u8_avx2_entry(a: &[u8], b: &[u8]) -> u32 {
    // SAFETY: this entry is only installed in the dispatch table after
    // `is_x86_feature_detected!("avx2")` confirmed AVX2 on the running
    // CPU, so the target-feature contract holds.
    unsafe { dot_u8_avx2(a, b) }
}

/// AVX2 integer dot: `maddubs` pairs 32 `u8×i8` products into `i16`
/// (codes capped at [`QUANT_MAX`] can never saturate the pairwise add),
/// then a `madd` by ones widens into two independent `i32` accumulators.
///
/// # Safety
///
/// The caller must ensure the running CPU supports AVX2, and that both
/// slices hold codes `<= QUANT_MAX` (enforced by the quantizer; the sum
/// is exact under that cap).
#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
#[target_feature(enable = "avx2")]
unsafe fn dot_u8_avx2(a: &[u8], b: &[u8]) -> u32 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let ones = _mm256_set1_epi16(1);
    let mut acc0 = _mm256_setzero_si256();
    let mut acc1 = _mm256_setzero_si256();
    let mut i = 0usize;
    while i + 64 <= n {
        // SAFETY: `i + 64 <= n` bounds both unaligned 32-byte loads per
        // accumulator; `_mm256_loadu_si256` has no alignment requirement.
        unsafe {
            let p0 = _mm256_maddubs_epi16(
                _mm256_loadu_si256(ap.add(i).cast()),
                _mm256_loadu_si256(bp.add(i).cast()),
            );
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(p0, ones));
            let p1 = _mm256_maddubs_epi16(
                _mm256_loadu_si256(ap.add(i + 32).cast()),
                _mm256_loadu_si256(bp.add(i + 32).cast()),
            );
            acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(p1, ones));
        }
        i += 64;
    }
    while i + 32 <= n {
        // SAFETY: `i + 32 <= n` bounds the unaligned 32-byte loads.
        unsafe {
            let p = _mm256_maddubs_epi16(
                _mm256_loadu_si256(ap.add(i).cast()),
                _mm256_loadu_si256(bp.add(i).cast()),
            );
            acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(p, ones));
        }
        i += 32;
    }
    // SAFETY: reduction is register-only.
    let mut total = unsafe { hsum_epi32(_mm256_add_epi32(acc0, acc1)) };
    while i < n {
        total += u32::from(a[i]) * u32::from(b[i]); // bounds-checked byte tail
        i += 1;
    }
    total
}

/// Horizontal sum of the eight `i32` lanes (all partial sums are
/// non-negative under the [`QUANT_MAX`] cap, so the cast is exact).
///
/// # Safety
///
/// The caller must ensure the running CPU supports AVX2.
#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn hsum_epi32(v: __m256i) -> u32 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;
    let lo = _mm256_castsi256_si128(v);
    let hi = _mm256_extracti128_si256(v, 1);
    let s4 = _mm_add_epi32(lo, hi);
    let s2 = _mm_add_epi32(s4, _mm_shuffle_epi32(s4, 0b00_00_11_10));
    let s1 = _mm_add_epi32(s2, _mm_shuffle_epi32(s2, 0b00_00_00_01));
    _mm_cvtsi128_si32(s1) as u32
}

#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
fn dot_u8_multi_avx2_entry(cands: &[u8], row: &[u8], out: &mut [u32]) {
    debug_assert!(out.len() <= MICRO_TILE);
    // Monomorphise on the tile width so the K accumulators live in
    // registers (a runtime-bounded loop would spill them to the stack).
    // SAFETY: only installed after AVX2 detection.
    unsafe {
        match out.len() {
            0 => {}
            1 => dot_u8_multi_avx2::<1>(cands, row, out),
            2 => dot_u8_multi_avx2::<2>(cands, row, out),
            3 => dot_u8_multi_avx2::<3>(cands, row, out),
            4 => dot_u8_multi_avx2::<4>(cands, row, out),
            5 => dot_u8_multi_avx2::<5>(cands, row, out),
            6 => dot_u8_multi_avx2::<6>(cands, row, out),
            7 => dot_u8_multi_avx2::<7>(cands, row, out),
            _ => dot_u8_multi_avx2::<8>(cands, row, out),
        }
    }
}

/// The AVX2 register-blocked microkernel: the reference row chunk is
/// loaded **once** and multiplied into `K` candidate accumulators that
/// stay in `ymm` registers for the whole row (`K ≤ 8` ⇒ 8 accumulators +
/// row + candidate + ones = 11 of 16 registers).
///
/// # Safety
///
/// The caller must ensure AVX2 support, `cands.len() == K * row.len()`,
/// `out.len() == K`, and codes `<= QUANT_MAX`.
#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
#[target_feature(enable = "avx2")]
unsafe fn dot_u8_multi_avx2<const K: usize>(cands: &[u8], row: &[u8], out: &mut [u32]) {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    let n = row.len();
    debug_assert_eq!(cands.len(), K * n);
    debug_assert_eq!(out.len(), K);
    let rp = row.as_ptr();
    let cp = cands.as_ptr();
    let ones = _mm256_set1_epi16(1);
    let mut acc = [_mm256_setzero_si256(); K];
    let mut i = 0usize;
    while i + 32 <= n {
        // SAFETY: `i + 32 <= n` bounds the row load; candidate row `j`
        // spans `cands[j*n..(j+1)*n]`, so `j*n + i + 32 <= (j+1)*n <=
        // cands.len()` bounds each candidate load.
        unsafe {
            let r = _mm256_loadu_si256(rp.add(i).cast());
            for (j, a) in acc.iter_mut().enumerate() {
                let c = _mm256_loadu_si256(cp.add(j * n + i).cast());
                *a = _mm256_add_epi32(*a, _mm256_madd_epi16(_mm256_maddubs_epi16(r, c), ones));
            }
        }
        i += 32;
    }
    for (j, (a, dot)) in acc.into_iter().zip(out.iter_mut()).enumerate() {
        // SAFETY: reduction is register-only.
        let mut total = unsafe { hsum_epi32(a) };
        for t in i..n {
            total += u32::from(row[t]) * u32::from(cands[j * n + t]); // byte tail
        }
        *dot = total;
    }
}

#[cfg(target_arch = "aarch64")]
fn dot_u8_neon_entry(a: &[u8], b: &[u8]) -> u32 {
    // SAFETY: only installed after `is_aarch64_feature_detected!("neon")`
    // succeeded, so the target-feature contract holds.
    unsafe { dot_u8_neon(a, b) }
}

/// NEON integer dot via widening multiplies: `vmull_u8` produces exact
/// `u16` products (`127² = 16 129` fits), `vpadalq_u16` folds them
/// pairwise into `u32` accumulators.
///
/// # Safety
///
/// The caller must ensure the running CPU supports NEON.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot_u8_neon(a: &[u8], b: &[u8]) -> u32 {
    use std::arch::aarch64::*;

    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc0 = vdupq_n_u32(0);
    let mut acc1 = vdupq_n_u32(0);
    let mut i = 0usize;
    while i + 16 <= n {
        // SAFETY: `i + 16 <= n` bounds the 16-byte loads; NEON loads are
        // unaligned-tolerant.
        unsafe {
            let va = vld1q_u8(ap.add(i));
            let vb = vld1q_u8(bp.add(i));
            acc0 = vpadalq_u16(acc0, vmull_u8(vget_low_u8(va), vget_low_u8(vb)));
            acc1 = vpadalq_u16(acc1, vmull_u8(vget_high_u8(va), vget_high_u8(vb)));
        }
        i += 16;
    }
    let mut total = vaddvq_u32(vaddq_u32(acc0, acc1));
    while i < n {
        total += u32::from(a[i]) * u32::from(b[i]); // bounds-checked byte tail
        i += 1;
    }
    total
}

#[cfg(target_arch = "aarch64")]
fn dot_u8_multi_neon_entry(cands: &[u8], row: &[u8], out: &mut [u32]) {
    debug_assert!(out.len() <= MICRO_TILE);
    // SAFETY: only installed after NEON detection.
    unsafe {
        match out.len() {
            0 => {}
            1 => dot_u8_multi_neon::<1>(cands, row, out),
            2 => dot_u8_multi_neon::<2>(cands, row, out),
            3 => dot_u8_multi_neon::<3>(cands, row, out),
            4 => dot_u8_multi_neon::<4>(cands, row, out),
            5 => dot_u8_multi_neon::<5>(cands, row, out),
            6 => dot_u8_multi_neon::<6>(cands, row, out),
            7 => dot_u8_multi_neon::<7>(cands, row, out),
            _ => dot_u8_multi_neon::<8>(cands, row, out),
        }
    }
}

/// The NEON register-blocked microkernel (widening multiplies, `K ≤ 8`
/// `u32×4` accumulators held in registers across the row).
///
/// # Safety
///
/// The caller must ensure NEON support, `cands.len() == K * row.len()`
/// and `out.len() == K`.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot_u8_multi_neon<const K: usize>(cands: &[u8], row: &[u8], out: &mut [u32]) {
    use std::arch::aarch64::*;

    let n = row.len();
    debug_assert_eq!(cands.len(), K * n);
    debug_assert_eq!(out.len(), K);
    let rp = row.as_ptr();
    let cp = cands.as_ptr();
    let mut acc = [vdupq_n_u32(0); K];
    let mut i = 0usize;
    while i + 16 <= n {
        // SAFETY: `i + 16 <= n` bounds the row load; candidate row `j`
        // spans `cands[j*n..(j+1)*n]`, bounding each candidate load.
        unsafe {
            let r = vld1q_u8(rp.add(i));
            for (j, a) in acc.iter_mut().enumerate() {
                let c = vld1q_u8(cp.add(j * n + i));
                *a = vpadalq_u16(*a, vmull_u8(vget_low_u8(r), vget_low_u8(c)));
                *a = vpadalq_u16(*a, vmull_u8(vget_high_u8(r), vget_high_u8(c)));
            }
        }
        i += 16;
    }
    for (j, (a, dot)) in acc.into_iter().zip(out.iter_mut()).enumerate() {
        let mut total = vaddvq_u32(a);
        for t in i..n {
            total += u32::from(row[t]) * u32::from(cands[j * n + t]); // byte tail
        }
        *dot = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_dot(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum()
    }

    fn pseudo_row(seed: u64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i as u64 * 1_442_695))
                    % 1000;
                x as f32 / 1000.0
            })
            .collect()
    }

    #[test]
    fn dispatched_matches_reference_on_many_lengths() {
        for len in [0, 1, 3, 4, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 100, 251, 501] {
            let a = pseudo_row(1, len);
            let b = pseudo_row(2, len);
            let want = reference_dot(&a, &b);
            let got = f64::from(dot_f32(&a, &b));
            let tol = 1e-5 * (1.0 + want.abs());
            assert!((got - want).abs() < tol, "len {len}: {got} vs {want}");
            let portable = f64::from(dot_f32_portable(&a, &b));
            assert!((portable - want).abs() < tol, "portable len {len}");
        }
    }

    #[test]
    fn kernels_agree_on_unaligned_subslices() {
        let a = pseudo_row(3, 300);
        let b = pseudo_row(4, 300);
        for offset in 0..9 {
            let (sa, sb) = (&a[offset..], &b[offset..]);
            let d = f64::from(dot_f32(sa, sb));
            let p = f64::from(dot_f32_portable(sa, sb));
            assert!((d - p).abs() < 1e-4, "offset {offset}: {d} vs {p}");
        }
    }

    #[test]
    fn dot_f64_matches_naive_sum() {
        let a: Vec<f64> = (0..251).map(|i| f64::from(i % 17) / 17.0).collect();
        let b: Vec<f64> = (0..251).map(|i| f64::from(i % 23) / 23.0).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot_f64(&a, &b) - naive).abs() < 1e-9);
    }

    #[test]
    fn masked_tail_matches_reference_on_every_length_to_64() {
        // The satellite contract for the masked-tail kernels: every
        // remainder class 0..8 (and then some), f32 and u8, dispatched
        // vs the scalar reference.
        for len in 0..=64usize {
            let a = pseudo_row(11, len);
            let b = pseudo_row(13, len);
            let want = reference_dot(&a, &b);
            let got = f64::from(dot_f32(&a, &b));
            let tol = 1e-5 * (1.0 + want.abs());
            assert!((got - want).abs() < tol, "f32 len {len}: {got} vs {want}");
        }
    }

    fn pseudo_qrow(seed: u64, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| {
                let x = seed
                    .wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add((i as u64).wrapping_mul(1_442_695_040_888_963_407));
                (x >> 33) as u8 % (QUANT_MAX + 1)
            })
            .collect()
    }

    fn reference_dot_u8(a: &[u8], b: &[u8]) -> u32 {
        a.iter().zip(b).map(|(&x, &y)| u32::from(x) * u32::from(y)).sum()
    }

    #[test]
    fn integer_dot_is_exact_on_every_length_to_64_and_beyond() {
        for len in (0..=64usize).chain([100, 251, 501, 1000]) {
            let a = pseudo_qrow(5, len);
            let b = pseudo_qrow(9, len);
            let want = reference_dot_u8(&a, &b);
            assert_eq!(dot_u8(&a, &b), want, "dispatched len {len}");
            assert_eq!(dot_u8_portable(&a, &b), want, "portable len {len}");
        }
    }

    #[test]
    fn integer_dot_peak_codes_do_not_saturate() {
        // All-QUANT_MAX rows are the maddubs worst case: every pairwise
        // i16 sum is exactly 2·127² = 32 258, one below overflow.
        for len in [31usize, 32, 64, 251, 2501] {
            let a = vec![QUANT_MAX; len];
            assert_eq!(dot_u8(&a, &a), len as u32 * 127 * 127, "len {len}");
        }
    }

    #[test]
    fn micro_tile_kernel_equals_single_dots_bit_exactly() {
        // The register-blocked microkernel must be *bit*-equal to K
        // independent dots (integer sums are exact), including ragged
        // tile widths above MICRO_TILE (split into register passes) and
        // tail lengths.
        for bins in [0usize, 1, 7, 16, 31, 32, 33, 251] {
            let row = pseudo_qrow(3, bins);
            for k in [0usize, 1, 2, 3, 5, 8, 11, 17] {
                let cands: Vec<u8> = (0..k).flat_map(|j| pseudo_qrow(20 + j as u64, bins)).collect();
                let mut out = vec![0u32; k];
                dot_u8_multi(&cands, &row, &mut out);
                for j in 0..k {
                    let want = dot_u8(&cands[j * bins..(j + 1) * bins], &row);
                    assert_eq!(out[j], want, "bins {bins}, tile {k}, lane {j}");
                }
            }
        }
    }

    #[test]
    fn active_int_kernel_has_a_name() {
        let kind = active_int();
        assert!(!kind.as_str().is_empty());
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        if std::arch::is_x86_feature_detected!("avx2") {
            assert_eq!(kind, IntKernelKind::Avx2Maddubs);
        }
        #[cfg(target_arch = "aarch64")]
        assert_eq!(kind, IntKernelKind::NeonWiden);
    }

    #[test]
    fn active_kernel_has_a_name() {
        let kind = active();
        assert!(!kind.as_str().is_empty());
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            assert_eq!(kind, KernelKind::Avx2Fma);
        }
        #[cfg(target_arch = "aarch64")]
        assert_eq!(kind, KernelKind::Neon);
    }
}
