//! Runtime-dispatched dot-product kernels for the matching sweep.
//!
//! The matrix–matrix sweep in [`matching`](crate::matching) reduces every
//! `(candidate, reference)` pair to one dense dot product over packed
//! `f32` rows. This module owns that kernel — and is the **only** place in
//! the crate where `unsafe` is permitted (the crate is otherwise
//! `#![deny(unsafe_code)]`; here it is scoped to the SIMD intrinsics with
//! per-site safety comments).
//!
//! Three implementations exist, selected once per process:
//!
//! * **AVX2 + FMA** (`x86`/`x86_64`): 8-lane `f32` fused multiply-adds,
//!   four independent vector accumulators (32 floats in flight per
//!   iteration). Chosen at runtime via `is_x86_feature_detected!`, so a
//!   binary compiled for the baseline target still uses it on capable
//!   hosts.
//! * **NEON** (`aarch64`): 4-lane `f32` FMA with four accumulators.
//! * **Portable**: an 8-way unrolled scalar loop with independent partial
//!   sums — auto-vectorisable on the baseline ISA and the proof text for
//!   the property tests that pin all paths to each other.
//!
//! All paths compute the same mathematical sum with different association
//! orders; results agree within a small multiple of `f32` rounding (see
//! the kernel-equivalence property tests in `tests/proptests.rs`). Scores
//! derived from these dots are accumulated in `f64` by the caller and are
//! covered by [`F32_SCORE_TOLERANCE`](crate::matching::F32_SCORE_TOLERANCE).

// The one sanctioned escape from the crate-wide `deny(unsafe_code)`:
// SIMD intrinsics are unavoidably unsafe (raw-pointer loads + target
// features); every unsafe block below carries a safety comment.
#![allow(unsafe_code)]
// The SIMD intrinsics modules are designed for wildcard import.
#![allow(clippy::wildcard_imports)]

use std::sync::OnceLock;

/// Which dot kernel the runtime dispatch selected for this process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// 8-lane AVX2 with fused multiply-add (`x86`/`x86_64`, detected at
    /// runtime).
    Avx2Fma,
    /// 4-lane NEON with fused multiply-add (aarch64).
    Neon,
    /// The unrolled scalar fallback.
    Portable,
}

impl KernelKind {
    /// A short stable name for logs and bench snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelKind::Avx2Fma => "avx2+fma",
            KernelKind::Neon => "neon",
            KernelKind::Portable => "portable",
        }
    }
}

impl std::fmt::Display for KernelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Signature of a dispatched dot kernel: equal-length slices to a scalar.
pub type DotFn = fn(&[f32], &[f32]) -> f32;

/// The kernel selected for this host (detection runs once, then the
/// choice is cached for the process lifetime).
pub fn active() -> KernelKind {
    select().0
}

/// Dot product of two equal-length `f32` slices through the selected
/// kernel. If the lengths differ, the shorter length is used (the matrix
/// sweep only ever passes equal lengths; `debug_assert`ed).
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    (select().1)(a, b)
}

/// The selected kernel as a plain function pointer, so hot loops hoist
/// the dispatch out of the per-row sweep.
#[inline]
pub(crate) fn dot_fn() -> DotFn {
    select().1
}

fn select() -> &'static (KernelKind, DotFn) {
    static SELECTED: OnceLock<(KernelKind, DotFn)> = OnceLock::new();
    SELECTED.get_or_init(|| {
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        if std::arch::is_x86_feature_detected!("avx2")
            && std::arch::is_x86_feature_detected!("fma")
        {
            return (KernelKind::Avx2Fma, dot_f32_avx2_entry as DotFn);
        }
        #[cfg(target_arch = "aarch64")]
        if std::arch::is_aarch64_feature_detected!("neon") {
            return (KernelKind::Neon, dot_f32_neon_entry as DotFn);
        }
        (KernelKind::Portable, dot_f32_portable as DotFn)
    })
}

/// Portable dot kernel: 8 independent partial sums give the backend the
/// instruction-level parallelism (and auto-vectorisation freedom) a
/// single-chain reduction denies it.
pub fn dot_f32_portable(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f32; 8];
    let chunks = n / 8 * 8;
    for (ca, cb) in a[..chunks].chunks_exact(8).zip(b[..chunks].chunks_exact(8)) {
        // Lane-indexed accumulators vectorise to two 4-lane mul+add per
        // chunk on the baseline ISA (a pairwise reduction tree here makes
        // LLVM chase per-accumulator identity through lane shuffles
        // inside the loop — keep the reduction linear and outside).
        for lane in 0..8 {
            acc[lane] += ca[lane] * cb[lane];
        }
    }
    let mut total = 0.0f32;
    for &lane_sum in &acc {
        total += lane_sum;
    }
    for (x, y) in a[chunks..].iter().zip(&b[chunks..]) {
        total += x * y;
    }
    total
}

/// Four-accumulator `f64` dot product — the PR-1 scalar kernel, retained
/// as the benchmark baseline for the f32-vs-f64 comparison and for
/// callers that still hold `f64` rows.
#[inline]
pub fn dot_f64(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut acc = [0.0f64; 4];
    let chunks = n / 4 * 4;
    for (ca, cb) in a[..chunks].chunks_exact(4).zip(b[..chunks].chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    for (x, y) in a[chunks..].iter().zip(&b[chunks..]) {
        acc[0] += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
fn dot_f32_avx2_entry(a: &[f32], b: &[f32]) -> f32 {
    // SAFETY: this entry is only ever installed in the dispatch table
    // after `is_x86_feature_detected!` confirmed both `avx2` and `fma`
    // on the running CPU, so the target-feature contract holds.
    unsafe { dot_f32_avx2(a, b) }
}

/// AVX2+FMA kernel: 4 × 8-lane accumulators (32 multiply-adds in flight).
///
/// # Safety
///
/// The caller must ensure the running CPU supports AVX2 and FMA.
#[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_f32_avx2(a: &[f32], b: &[f32]) -> f32 {
    #[cfg(target_arch = "x86")]
    use std::arch::x86::*;
    #[cfg(target_arch = "x86_64")]
    use std::arch::x86_64::*;

    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut acc2 = _mm256_setzero_ps();
    let mut acc3 = _mm256_setzero_ps();
    let mut i = 0usize;
    while i + 32 <= n {
        // SAFETY: `i + 32 <= n` bounds every unaligned 8-lane load below
        // within the slices; `_mm256_loadu_ps` has no alignment
        // requirement.
        unsafe {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 8)),
                _mm256_loadu_ps(bp.add(i + 8)),
                acc1,
            );
            acc2 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 16)),
                _mm256_loadu_ps(bp.add(i + 16)),
                acc2,
            );
            acc3 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(i + 24)),
                _mm256_loadu_ps(bp.add(i + 24)),
                acc3,
            );
        }
        i += 32;
    }
    while i + 8 <= n {
        // SAFETY: `i + 8 <= n` bounds the unaligned 8-lane loads.
        unsafe {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
        }
        i += 8;
    }
    let acc = _mm256_add_ps(_mm256_add_ps(acc0, acc1), _mm256_add_ps(acc2, acc3));
    // Horizontal reduction: 256 → 128 → 64 → 32 bits.
    let lo = _mm256_castps256_ps128(acc);
    let hi = _mm256_extractf128_ps(acc, 1);
    let sum4 = _mm_add_ps(lo, hi);
    let sum2 = _mm_add_ps(sum4, _mm_movehl_ps(sum4, sum4));
    let sum1 = _mm_add_ss(sum2, _mm_shuffle_ps(sum2, sum2, 0b01));
    let mut total = _mm_cvtss_f32(sum1);
    while i < n {
        total += a[i] * b[i]; // bounds-checked scalar tail
        i += 1;
    }
    total
}

#[cfg(target_arch = "aarch64")]
fn dot_f32_neon_entry(a: &[f32], b: &[f32]) -> f32 {
    // SAFETY: this entry is only installed after
    // `is_aarch64_feature_detected!("neon")` succeeded (NEON is also part
    // of the baseline aarch64 ABI), so the target-feature contract holds.
    unsafe { dot_f32_neon(a, b) }
}

/// NEON kernel: 4 × 4-lane accumulators (16 multiply-adds in flight).
///
/// # Safety
///
/// The caller must ensure the running CPU supports NEON.
#[cfg(target_arch = "aarch64")]
#[target_feature(enable = "neon")]
unsafe fn dot_f32_neon(a: &[f32], b: &[f32]) -> f32 {
    use std::arch::aarch64::*;

    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut acc2 = vdupq_n_f32(0.0);
    let mut acc3 = vdupq_n_f32(0.0);
    let mut i = 0usize;
    while i + 16 <= n {
        // SAFETY: `i + 16 <= n` bounds every 4-lane load within the
        // slices; NEON loads are unaligned-tolerant.
        unsafe {
            acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
            acc1 = vfmaq_f32(acc1, vld1q_f32(ap.add(i + 4)), vld1q_f32(bp.add(i + 4)));
            acc2 = vfmaq_f32(acc2, vld1q_f32(ap.add(i + 8)), vld1q_f32(bp.add(i + 8)));
            acc3 = vfmaq_f32(acc3, vld1q_f32(ap.add(i + 12)), vld1q_f32(bp.add(i + 12)));
        }
        i += 16;
    }
    while i + 4 <= n {
        // SAFETY: `i + 4 <= n` bounds the 4-lane loads.
        unsafe {
            acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
        }
        i += 4;
    }
    let acc = vaddq_f32(vaddq_f32(acc0, acc1), vaddq_f32(acc2, acc3));
    let mut total = vaddvq_f32(acc);
    while i < n {
        total += a[i] * b[i]; // bounds-checked scalar tail
        i += 1;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference_dot(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum()
    }

    fn pseudo_row(seed: u64, len: usize) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (seed.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(i as u64 * 1_442_695))
                    % 1000;
                x as f32 / 1000.0
            })
            .collect()
    }

    #[test]
    fn dispatched_matches_reference_on_many_lengths() {
        for len in [0, 1, 3, 4, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 100, 251, 501] {
            let a = pseudo_row(1, len);
            let b = pseudo_row(2, len);
            let want = reference_dot(&a, &b);
            let got = f64::from(dot_f32(&a, &b));
            let tol = 1e-5 * (1.0 + want.abs());
            assert!((got - want).abs() < tol, "len {len}: {got} vs {want}");
            let portable = f64::from(dot_f32_portable(&a, &b));
            assert!((portable - want).abs() < tol, "portable len {len}");
        }
    }

    #[test]
    fn kernels_agree_on_unaligned_subslices() {
        let a = pseudo_row(3, 300);
        let b = pseudo_row(4, 300);
        for offset in 0..9 {
            let (sa, sb) = (&a[offset..], &b[offset..]);
            let d = f64::from(dot_f32(sa, sb));
            let p = f64::from(dot_f32_portable(sa, sb));
            assert!((d - p).abs() < 1e-4, "offset {offset}: {d} vs {p}");
        }
    }

    #[test]
    fn dot_f64_matches_naive_sum() {
        let a: Vec<f64> = (0..251).map(|i| f64::from(i % 17) / 17.0).collect();
        let b: Vec<f64> = (0..251).map(|i| f64::from(i % 23) / 23.0).collect();
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert!((dot_f64(&a, &b) - naive).abs() < 1e-9);
    }

    #[test]
    fn active_kernel_has_a_name() {
        let kind = active();
        assert!(!kind.as_str().is_empty());
        #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
        if std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
        {
            assert_eq!(kind, KernelKind::Avx2Fma);
        }
        #[cfg(target_arch = "aarch64")]
        assert_eq!(kind, KernelKind::Neon);
    }
}
