//! Binned histograms and their percentage-frequency form (§IV-A).
//!
//! [`Histogram::frequencies`] caches the normalised vector behind a
//! [`OnceLock`], so the matching hot path borrows it instead of
//! re-normalising: recording an observation invalidates the cache, and the
//! first `frequencies()` call after a mutation rebuilds it once.
//! [`Histogram::frequencies_f32`] caches the same distribution narrowed to
//! `f32` — the storage type of the SIMD matching kernel's packed rows
//! ([`matching`](crate::matching)) — so candidate signatures are converted
//! once per mutation, not once per match.
//! [`Histogram::frequencies_u8`] caches the quantized form of the same
//! distribution ([`QuantizedRow`]) for the `u8` storage tier
//! ([`RowPrecision::U8`](crate::matching::RowPrecision)) — codes in
//! `0..=`[`QUANT_MAX`](crate::kernel::QUANT_MAX) with a per-row scale,
//! quantized once per mutation so both the reference rows and the
//! candidate side of the integer sweep borrow it.

use core::fmt;
use std::sync::OnceLock;

/// How observed values are mapped to histogram bins.
///
/// The paper fixes neither bin widths nor ranges; these are exposed as
/// configuration with defaults chosen to match the figures (e.g. Fig. 2
/// bins inter-arrival times over 0–2500 µs).
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BinSpec {
    /// `count` equal-width bins covering `[min, min + width·count)`, plus
    /// one trailing overflow bin. Values below `min` clamp into bin 0.
    Uniform {
        /// Lower edge of the first bin.
        min: f64,
        /// Width of each bin (must be positive).
        width: f64,
        /// Number of regular bins (the overflow bin is extra).
        count: usize,
    },
    /// One bin per listed centre value; observations snap to the nearest
    /// centre. Used for the discrete transmission-rate parameter.
    Categorical {
        /// Bin centres in ascending order.
        centers: Vec<f64>,
    },
}

impl BinSpec {
    /// A uniform spec covering `[0, max)` with the given bin width.
    ///
    /// # Panics
    ///
    /// Panics if `width <= 0` or `max <= 0`.
    pub fn uniform_to(max: f64, width: f64) -> BinSpec {
        assert!(width > 0.0, "bin width must be positive");
        assert!(max > 0.0, "histogram range must be positive");
        BinSpec::Uniform { min: 0.0, width, count: (max / width).ceil() as usize }
    }

    /// Total number of bins, including the overflow bin for uniform specs.
    pub fn bin_count(&self) -> usize {
        match self {
            BinSpec::Uniform { count, .. } => count + 1,
            BinSpec::Categorical { centers } => centers.len(),
        }
    }

    /// The bin index for a value.
    pub fn bin_index(&self, value: f64) -> usize {
        match self {
            BinSpec::Uniform { min, width, count } => {
                if !value.is_finite() || value <= *min {
                    0
                } else {
                    let idx = ((value - min) / width) as usize;
                    idx.min(*count) // values past the range land in overflow
                }
            }
            BinSpec::Categorical { centers } => {
                debug_assert!(!centers.is_empty());
                let mut best = 0;
                let mut best_dist = f64::INFINITY;
                for (i, c) in centers.iter().enumerate() {
                    let d = (value - c).abs();
                    if d < best_dist {
                        best_dist = d;
                        best = i;
                    }
                }
                best
            }
        }
    }

    /// The representative value (bin centre) for a bin index, handy for
    /// plotting. The overflow bin reports the upper range edge.
    pub fn bin_center(&self, index: usize) -> f64 {
        match self {
            BinSpec::Uniform { min, width, count } => {
                if index >= *count {
                    min + width * (*count as f64)
                } else {
                    min + width * (index as f64 + 0.5)
                }
            }
            BinSpec::Categorical { centers } => {
                centers.get(index).copied().unwrap_or(f64::NAN)
            }
        }
    }
}

impl fmt::Display for BinSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BinSpec::Uniform { min, width, count } => {
                write!(f, "uniform[{min}..{:.0} step {width}]", min + width * *count as f64)
            }
            BinSpec::Categorical { centers } => write!(f, "categorical[{} bins]", centers.len()),
        }
    }
}

/// An observation-count histogram convertible to the paper's
/// percentage-frequency distribution.
///
/// # Example
///
/// ```
/// use wifiprint_core::{BinSpec, Histogram};
///
/// let mut h = Histogram::new(BinSpec::uniform_to(100.0, 10.0));
/// h.add(5.0);
/// h.add(15.0);
/// h.add(15.5);
/// h.add(1e9); // overflow bin
/// assert_eq!(h.total(), 4);
/// let freq = h.frequencies();
/// assert!((freq[0] - 0.25).abs() < 1e-12);
/// assert!((freq[1] - 0.50).abs() < 1e-12);
/// assert!((freq.iter().sum::<f64>() - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Histogram {
    spec: BinSpec,
    counts: Vec<u64>,
    total: u64,
    /// Lazily computed normalised frequencies; reset on every mutation.
    #[cfg_attr(feature = "serde", serde(skip, default))]
    freqs: OnceLock<Vec<f64>>,
    /// The same frequencies narrowed to `f32` for the SIMD matching rows;
    /// reset on every mutation.
    #[cfg_attr(feature = "serde", serde(skip, default))]
    freqs32: OnceLock<Vec<f32>>,
    /// The same frequencies quantized to `u8` codes for the integer
    /// matching tier; reset on every mutation.
    #[cfg_attr(feature = "serde", serde(skip, default))]
    freqs8: OnceLock<QuantizedRow>,
}

/// A frequency row quantized for the `u8` storage tier: codes in
/// `0..=`[`QUANT_MAX`](crate::kernel::QUANT_MAX) with the per-row scale
/// mapping codes back to frequencies.
///
/// The **zero-point is fixed at 0**: frequencies are non-negative, so an
/// affine zero-point would spend codes on values that cannot occur and
/// break the "zero frequency ⇒ zero code" sparsity the envelope bounds
/// lean on. `value[i] ≈ code[i] · scale`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedRow {
    values: Vec<u8>,
    scale: f32,
    inv_norm: f32,
}

impl QuantizedRow {
    /// Quantizes a frequency row: the row maximum maps to
    /// [`QUANT_MAX`](crate::kernel::QUANT_MAX), everything else rounds to
    /// the nearest code. All-zero rows quantize to all-zero codes with
    /// scale 0.
    pub fn from_frequencies(freqs: &[f64]) -> QuantizedRow {
        let max = freqs.iter().copied().fold(0.0f64, f64::max);
        if max <= 0.0 {
            return QuantizedRow { values: vec![0; freqs.len()], scale: 0.0, inv_norm: 0.0 };
        }
        let quant_max = f64::from(crate::kernel::QUANT_MAX);
        let step = max / quant_max;
        let values: Vec<u8> = freqs
            .iter()
            .map(|&f| ((f / step).round() as u8).min(crate::kernel::QUANT_MAX))
            .collect();
        // The reciprocal norm of the *codes*: the cosine path multiplies
        // the exact integer dot by both rows' code norms (the scales
        // cancel — cosine is scale-invariant), so this is the only norm
        // the sweep needs.
        let norm_sq: f64 = values.iter().map(|&q| f64::from(q) * f64::from(q)).sum();
        let inv_norm = if norm_sq > 0.0 { (1.0 / norm_sq.sqrt()) as f32 } else { 0.0 };
        QuantizedRow { values, scale: step as f32, inv_norm }
    }

    /// The quantized codes, one per bin.
    pub fn values(&self) -> &[u8] {
        &self.values
    }

    /// Frequency per code step: `frequency[i] ≈ values[i] · scale`.
    /// Stored so non-cosine measures can dequantize; the cosine sweep
    /// never reads it.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// `1 / ‖values‖₂` over the integer codes (0.0 for an all-zero row).
    pub fn inv_norm(&self) -> f32 {
        self.inv_norm
    }
}

impl PartialEq for Histogram {
    fn eq(&self, other: &Self) -> bool {
        // The cache is derived state and never participates in equality.
        self.spec == other.spec && self.counts == other.counts && self.total == other.total
    }
}

impl Histogram {
    /// An empty histogram over the given bins.
    pub fn new(spec: BinSpec) -> Self {
        let counts = vec![0; spec.bin_count()];
        Histogram {
            spec,
            counts,
            total: 0,
            freqs: OnceLock::new(),
            freqs32: OnceLock::new(),
            freqs8: OnceLock::new(),
        }
    }

    /// Records one observation.
    pub fn add(&mut self, value: f64) {
        let idx = self.spec.bin_index(value);
        self.counts[idx] += 1;
        self.total += 1;
        self.invalidate();
    }

    /// Records an observation `n` times.
    pub fn add_n(&mut self, value: f64, n: u64) {
        let idx = self.spec.bin_index(value);
        self.counts[idx] += n;
        self.total += n;
        self.invalidate();
    }

    /// Merges another histogram with the same spec into this one.
    ///
    /// # Panics
    ///
    /// Panics if the specs differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(self.spec, other.spec, "merging histograms with different bin specs");
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.invalidate();
    }

    /// Drops both cached frequency forms after a mutation.
    fn invalidate(&mut self) {
        self.freqs = OnceLock::new();
        self.freqs32 = OnceLock::new();
        self.freqs8 = OnceLock::new();
    }

    /// Number of observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// The bin specification.
    pub fn spec(&self) -> &BinSpec {
        &self.spec
    }

    /// Raw per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The percentage-frequency distribution `Pⱼ = oⱼ / |P|` (§IV-A).
    ///
    /// All zeros for an empty histogram. The vector is computed once and
    /// cached until the next mutation, so the matching hot path borrows
    /// instead of allocating.
    pub fn frequencies(&self) -> &[f64] {
        self.freqs.get_or_init(|| self.frequency_vec())
    }

    /// The percentage-frequency distribution narrowed to `f32` — the row
    /// format of the SIMD matching kernel. Computed from
    /// [`Histogram::frequencies`] once and cached until the next
    /// mutation, so the matching hot path borrows both forms.
    pub fn frequencies_f32(&self) -> &[f32] {
        self.freqs32.get_or_init(|| self.frequencies().iter().map(|&f| f as f32).collect())
    }

    /// The percentage-frequency distribution quantized for the `u8`
    /// storage tier ([`QuantizedRow`]): codes, per-row scale and the
    /// reciprocal code norm. Computed once and cached until the next
    /// mutation, so the integer sweep borrows the candidate's codes.
    pub fn frequencies_u8(&self) -> &QuantizedRow {
        self.freqs8.get_or_init(|| QuantizedRow::from_frequencies(self.frequencies()))
    }

    /// The percentage-frequency distribution as a freshly allocated
    /// vector, bypassing the cache. Prefer [`Histogram::frequencies`];
    /// this exists for owned copies and as the per-call-allocation
    /// baseline the benchmarks compare the cached path against.
    pub fn frequency_vec(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let n = self.total as f64;
        self.counts.iter().map(|&c| c as f64 / n).collect()
    }

    /// Iterator over `(bin_center, frequency)` pairs, for plotting.
    pub fn points(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        let n = self.total.max(1) as f64;
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.spec.bin_center(i), c as f64 / n))
    }

    /// Restores a histogram from raw counts (used by the DB codec).
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != spec.bin_count()`.
    pub fn from_counts(spec: BinSpec, counts: Vec<u64>) -> Self {
        assert_eq!(counts.len(), spec.bin_count(), "count vector does not match spec");
        let total = counts.iter().sum();
        Histogram {
            spec,
            counts,
            total,
            freqs: OnceLock::new(),
            freqs32: OnceLock::new(),
            freqs8: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_binning_edges() {
        let spec = BinSpec::uniform_to(100.0, 10.0);
        assert_eq!(spec.bin_count(), 11); // 10 + overflow
        assert_eq!(spec.bin_index(-5.0), 0);
        assert_eq!(spec.bin_index(0.0), 0);
        assert_eq!(spec.bin_index(9.999), 0);
        assert_eq!(spec.bin_index(10.0), 1);
        assert_eq!(spec.bin_index(99.9), 9);
        assert_eq!(spec.bin_index(100.0), 10);
        assert_eq!(spec.bin_index(1e12), 10);
        assert_eq!(spec.bin_index(f64::NAN), 0);
    }

    #[test]
    fn categorical_snaps_to_nearest() {
        let spec = BinSpec::Categorical { centers: vec![1.0, 2.0, 5.5, 11.0] };
        assert_eq!(spec.bin_count(), 4);
        assert_eq!(spec.bin_index(1.2), 0);
        assert_eq!(spec.bin_index(4.0), 2);
        assert_eq!(spec.bin_index(100.0), 3);
        assert_eq!(spec.bin_center(2), 5.5);
    }

    #[test]
    fn bin_centers() {
        let spec = BinSpec::uniform_to(100.0, 10.0);
        assert_eq!(spec.bin_center(0), 5.0);
        assert_eq!(spec.bin_center(9), 95.0);
        assert_eq!(spec.bin_center(10), 100.0); // overflow
    }

    #[test]
    fn frequencies_normalise() {
        let mut h = Histogram::new(BinSpec::uniform_to(10.0, 1.0));
        for v in [0.5, 0.7, 3.2, 9.9, 50.0] {
            h.add(v);
        }
        let f = h.frequencies();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.4).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = Histogram::new(BinSpec::uniform_to(10.0, 1.0));
        assert_eq!(h.total(), 0);
        assert!(h.frequencies().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn merge_accumulates() {
        let spec = BinSpec::uniform_to(10.0, 1.0);
        let mut a = Histogram::new(spec.clone());
        a.add(1.5);
        let mut b = Histogram::new(spec);
        b.add(1.7);
        b.add_n(8.5, 3);
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.counts()[1], 2);
        assert_eq!(a.counts()[8], 3);
    }

    #[test]
    #[should_panic(expected = "different bin specs")]
    fn merge_rejects_mismatched_specs() {
        let mut a = Histogram::new(BinSpec::uniform_to(10.0, 1.0));
        let b = Histogram::new(BinSpec::uniform_to(20.0, 1.0));
        a.merge(&b);
    }

    #[test]
    fn from_counts_round_trip() {
        let spec = BinSpec::uniform_to(3.0, 1.0);
        let h = Histogram::from_counts(spec.clone(), vec![1, 2, 3, 4]);
        assert_eq!(h.total(), 10);
        assert_eq!(h.spec(), &spec);
    }

    #[test]
    fn points_iterate_all_bins() {
        let mut h = Histogram::new(BinSpec::uniform_to(4.0, 2.0));
        h.add(1.0);
        let pts: Vec<_> = h.points().collect();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (1.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn uniform_to_rejects_zero_width() {
        BinSpec::uniform_to(10.0, 0.0);
    }

    #[test]
    fn frequency_cache_invalidates_on_mutation() {
        let mut h = Histogram::new(BinSpec::uniform_to(10.0, 1.0));
        h.add(0.5);
        assert_eq!(h.frequencies()[0], 1.0);
        h.add(5.5); // must drop the cached vector
        assert!((h.frequencies()[0] - 0.5).abs() < 1e-12);
        assert!((h.frequencies()[5] - 0.5).abs() < 1e-12);
        h.add_n(5.5, 2);
        assert!((h.frequencies()[5] - 0.75).abs() < 1e-12);
        let mut other = Histogram::new(BinSpec::uniform_to(10.0, 1.0));
        other.add(9.5);
        h.merge(&other);
        assert!((h.frequencies()[9] - 0.2).abs() < 1e-12);
        assert_eq!(h.frequencies(), &h.frequency_vec()[..]);
    }

    #[test]
    fn equality_ignores_cache_state() {
        let mut a = Histogram::new(BinSpec::uniform_to(10.0, 1.0));
        let mut b = Histogram::new(BinSpec::uniform_to(10.0, 1.0));
        a.add(1.0);
        b.add(1.0);
        let _ = a.frequencies(); // populate a's cache only
        assert_eq!(a, b);
    }
}
