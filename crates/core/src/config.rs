//! Evaluation configuration: bin specs, filters, estimators and the
//! paper's default settings.

use wifiprint_ieee80211::{FrameKind, Nanos, Rate};
use wifiprint_radiotap::CapturedFrame;

use crate::error::CoreError;
use crate::histogram::BinSpec;
use crate::matching::MatchConfig;
use crate::params::NetworkParameter;
use crate::similarity::SimilarityMeasure;

/// How the transmission time `ttᵢ` is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TxTimeEstimator {
    /// The paper's estimator: `ttᵢ = sizeᵢ / rateᵢ` from header fields
    /// only (ignores PLCP overhead).
    #[default]
    SizeOverRate,
    /// The actual air time including PLCP preamble/header — an ablation
    /// showing how much the cheap estimator costs.
    MeasuredAirTime,
}

impl TxTimeEstimator {
    /// The transmission-time estimate for a frame, in microseconds.
    pub fn tx_time_micros(self, frame: &CapturedFrame) -> f64 {
        match self {
            TxTimeEstimator::SizeOverRate => 8.0 * frame.size as f64 / frame.rate.mbps(),
            TxTimeEstimator::MeasuredAirTime => frame.air_time.as_micros_f64(),
        }
    }
}

/// Selects which frames contribute observations (used by the §VI figure
/// experiments, e.g. "only data frames at 54 Mb/s, no retries").
///
/// Filtered-out frames still advance the extractor's previous-frame
/// timestamp — they occupied the medium.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FrameFilter {
    /// Keep only these frame kinds (all kinds when `None`).
    pub kinds: Option<Vec<FrameKind>>,
    /// Keep only frames at this rate.
    pub rate: Option<Rate>,
    /// Drop retransmissions (Frame Control retry bit).
    pub exclude_retries: bool,
    /// Keep only frames whose logical destination is group-addressed
    /// (Fig. 7's "data broadcast frames").
    pub broadcast_only: bool,
}

impl FrameFilter {
    /// A filter keeping only the given kinds.
    pub fn kinds_only(kinds: impl IntoIterator<Item = FrameKind>) -> Self {
        FrameFilter { kinds: Some(kinds.into_iter().collect()), ..FrameFilter::default() }
    }

    /// `true` if the frame passes the filter.
    pub fn matches(&self, frame: &CapturedFrame) -> bool {
        if let Some(kinds) = &self.kinds {
            if !kinds.contains(&frame.kind) {
                return false;
            }
        }
        if let Some(rate) = self.rate {
            if frame.rate != rate {
                return false;
            }
        }
        if self.exclude_retries && frame.retry {
            return false;
        }
        if self.broadcast_only && !frame.is_group_destined() {
            return false;
        }
        true
    }
}

/// The default histogram bins for each parameter.
///
/// The paper does not specify bin widths; these defaults are chosen to
/// match its figures (inter-arrival histograms plotted over 0–2500 µs,
/// Fig. 2/7/8) and to keep every histogram around 100–150 bins.
pub fn default_bins(param: NetworkParameter) -> BinSpec {
    match param {
        NetworkParameter::TransmissionRate => BinSpec::Categorical {
            centers: Rate::ALL_BG.iter().map(|r| r.mbps()).collect(),
        },
        NetworkParameter::FrameSize => BinSpec::uniform_to(2400.0, 16.0),
        NetworkParameter::TransmissionTime => BinSpec::uniform_to(2000.0, 10.0),
        // 10 µs bins expose the slot comb (20 µs) and the sub-slot
        // implementation quirks of §VI-A that coarser bins would smear.
        NetworkParameter::MediumAccessTime | NetworkParameter::InterArrivalTime => {
            BinSpec::uniform_to(2500.0, 10.0)
        }
    }
}

/// Complete configuration of a fingerprinting evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// The network parameter under evaluation.
    pub parameter: NetworkParameter,
    /// Histogram bins for that parameter.
    pub bins: BinSpec,
    /// Minimum observations per signature (the paper uses 50, §V-C).
    pub min_observations: u64,
    /// Histogram similarity measure (cosine in the paper).
    pub measure: SimilarityMeasure,
    /// Transmission-time estimator.
    pub estimator: TxTimeEstimator,
    /// Frame filter applied during extraction.
    pub filter: FrameFilter,
    /// Detection window length (the paper uses 5 minutes, §I/§V-A).
    pub window: Nanos,
    /// Shard layout **and precision tier** of reference databases built
    /// from this configuration (the engines' online-trained references;
    /// see [`MatchConfig`] and
    /// [`RowPrecision`](crate::matching::RowPrecision)). Defaults to
    /// dominant-histogram sharding over `f32` rows; pass
    /// `MatchConfig::quantized()` here to run an engine on the `u8`
    /// integer-kernel tier.
    pub match_config: MatchConfig,
}

impl EvalConfig {
    /// The paper's configuration for a given parameter: default bins,
    /// cosine similarity, 50-observation minimum, 5-minute windows.
    pub fn for_parameter(parameter: NetworkParameter) -> Self {
        EvalConfig {
            parameter,
            bins: default_bins(parameter),
            min_observations: 50,
            measure: SimilarityMeasure::Cosine,
            estimator: TxTimeEstimator::SizeOverRate,
            filter: FrameFilter::default(),
            window: Nanos::from_secs(300),
            match_config: MatchConfig::default(),
        }
    }

    /// Returns a copy with a different frame filter.
    #[must_use]
    pub fn with_filter(mut self, filter: FrameFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Returns a copy with a different minimum observation count.
    #[must_use]
    pub fn with_min_observations(mut self, min: u64) -> Self {
        self.min_observations = min;
        self
    }

    /// Returns a copy with different histogram bins.
    #[must_use]
    pub fn with_bins(mut self, bins: BinSpec) -> Self {
        self.bins = bins;
        self
    }

    /// Returns a copy with a different similarity measure.
    #[must_use]
    pub fn with_measure(mut self, measure: SimilarityMeasure) -> Self {
        self.measure = measure;
        self
    }

    /// Returns a copy with a different reference-store layout (shard
    /// strategy, shard count, precision tier).
    #[must_use]
    pub fn with_match_config(mut self, match_config: MatchConfig) -> Self {
        self.match_config = match_config;
        self
    }

    /// Checks that the configuration can drive an evaluation at all.
    /// The [`engine`](crate::engine) builder calls this before starting
    /// a session.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for a zero-length detection window
    /// or an empty bin specification.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.window == Nanos::ZERO {
            return Err(CoreError::InvalidConfig { reason: "zero-length detection window" });
        }
        if self.bins.bin_count() == 0 {
            return Err(CoreError::InvalidConfig { reason: "empty histogram bin specification" });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_ieee80211::{Frame, MacAddr};

    fn cap(kind_frame: &Frame, rate: Rate, retry: bool) -> CapturedFrame {
        let mut c = CapturedFrame::from_frame(kind_frame, rate, Nanos::from_micros(100), -50);
        c.retry = retry;
        c
    }

    #[test]
    fn default_config_matches_paper() {
        let cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime);
        assert_eq!(cfg.min_observations, 50);
        assert_eq!(cfg.window, Nanos::from_secs(300));
        assert_eq!(cfg.measure, SimilarityMeasure::Cosine);
        assert_eq!(cfg.estimator, TxTimeEstimator::SizeOverRate);
    }

    #[test]
    fn default_bins_cover_all_parameters() {
        for p in NetworkParameter::ALL {
            let bins = default_bins(p);
            assert!(bins.bin_count() > 1, "{p}");
        }
        // The rate parameter is categorical over the 12 b/g rates.
        match default_bins(NetworkParameter::TransmissionRate) {
            BinSpec::Categorical { centers } => assert_eq!(centers.len(), 12),
            other @ BinSpec::Uniform { .. } => panic!("expected categorical bins, got {other:?}"),
        }
    }

    #[test]
    fn filter_combinations() {
        let sta = MacAddr::from_index(1);
        let ap = MacAddr::from_index(2);
        let data = Frame::data_to_ds(sta, ap, ap, 100);
        let bcast = Frame::data_from_ds(MacAddr::BROADCAST, ap, sta, 100);

        let all = FrameFilter::default();
        assert!(all.matches(&cap(&data, Rate::R54M, false)));

        let kinds = FrameFilter::kinds_only([FrameKind::NullFunction]);
        assert!(!kinds.matches(&cap(&data, Rate::R54M, false)));

        let rate = FrameFilter { rate: Some(Rate::R54M), ..FrameFilter::default() };
        assert!(rate.matches(&cap(&data, Rate::R54M, false)));
        assert!(!rate.matches(&cap(&data, Rate::R11M, false)));

        let no_retry = FrameFilter { exclude_retries: true, ..FrameFilter::default() };
        assert!(!no_retry.matches(&cap(&data, Rate::R54M, true)));

        let bc = FrameFilter { broadcast_only: true, ..FrameFilter::default() };
        assert!(bc.matches(&cap(&bcast, Rate::R1M, false)));
        assert!(!bc.matches(&cap(&data, Rate::R1M, false)));
    }

    #[test]
    fn estimators_differ_by_plcp() {
        let sta = MacAddr::from_index(1);
        let f = Frame::data_to_ds(sta, sta, sta, 1000);
        let c = CapturedFrame::from_frame(&f, Rate::R11M, Nanos::from_micros(5000), -50);
        let paper = TxTimeEstimator::SizeOverRate.tx_time_micros(&c);
        let real = TxTimeEstimator::MeasuredAirTime.tx_time_micros(&c);
        assert!((real - paper - 192.0).abs() < 1.0, "long DSSS preamble is 192 µs");
    }

    #[test]
    fn validate_rejects_unusable_configs() {
        let good = EvalConfig::for_parameter(NetworkParameter::FrameSize);
        assert!(good.validate().is_ok());
        let mut zero_window = good.clone();
        zero_window.window = Nanos::ZERO;
        assert!(zero_window.validate().is_err());
        let no_bins = good.with_bins(BinSpec::Categorical { centers: vec![] });
        assert!(no_bins.validate().is_err());
    }

    #[test]
    fn builder_style_updates() {
        let cfg = EvalConfig::for_parameter(NetworkParameter::FrameSize)
            .with_min_observations(10)
            .with_measure(SimilarityMeasure::Bhattacharyya)
            .with_bins(BinSpec::uniform_to(100.0, 10.0))
            .with_filter(FrameFilter { broadcast_only: true, ..FrameFilter::default() });
        assert_eq!(cfg.min_observations, 10);
        assert_eq!(cfg.measure, SimilarityMeasure::Bhattacharyya);
        assert!(cfg.filter.broadcast_only);
    }
}
