//! Degraded-capture resilience: the ingest front both engines share.
//!
//! A passive monitor's view of the medium is imperfect by construction —
//! ring buffers overflow (loss), USB capture paths batch and reorder,
//! drivers re-deliver frames (duplicates), and truncated captures carry
//! garbage header fields. The default engine contract is strict: frames
//! must arrive in capture order ([`EngineError::NonMonotonicFrame`]) and
//! are trusted verbatim. [`ResilienceConfig`] relaxes that contract
//! *explicitly*, per deployment:
//!
//! * a [`LateFramePolicy`] decides what happens to a frame older than
//!   the stream's watermark — reject (default, today's behavior), drop
//!   and count, or re-sequence through a bounded reorder buffer;
//! * duplicate suppression drops exact re-deliveries within a recent
//!   horizon;
//! * a minimum-size sanity gate drops truncated (runt) captures before
//!   they can poison signatures;
//! * a fusion quorum lets the [`MultiEngine`](super::MultiEngine) fuse
//!   over the *surviving* parameters when a window is too sparse for
//!   some of them, instead of withholding the fused score.
//!
//! Every dropped or rewritten frame is accounted for in [`EngineHealth`]
//! (readable via `health()` on either engine), so operators can
//! reconcile engine-side counters against capture-side statistics.
//!
//! The **reorder** policy is a watermark re-sequencer: frames are held
//! in a buffer sorted by timestamp and released oldest-first once more
//! than `max_lateness` frames are pending. A stream whose frames are
//! displaced by at most `K` positions from capture order is re-sorted
//! *exactly* by a buffer of `max_lateness ≥ K` — the engine then emits
//! bit-identical events to the in-order stream (a property test pins
//! this for both engines).

use std::collections::VecDeque;

use wifiprint_ieee80211::Nanos;
use wifiprint_radiotap::CapturedFrame;

use super::EngineError;

/// The shortest frame a monitor can capture whole: frame control +
/// duration + one address + FCS (an ACK/CTS is 14 bytes on air).
/// [`ResilienceConfig::tolerant`] uses it as the runt gate.
pub const MIN_PLAUSIBLE_FRAME_SIZE: usize = 14;

/// What to do with a frame older than the stream's watermark (the
/// newest delivered timestamp, also advanced by `advance_to`/`tick`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum LateFramePolicy {
    /// Reject the frame with [`EngineError::NonMonotonicFrame`] — the
    /// strict historical contract, and still the default.
    Reject,
    /// Drop the frame, count it in
    /// [`EngineHealth::frames_late_dropped`], and keep the stream alive.
    Drop,
    /// Re-sequence through a bounded buffer: frames are delivered in
    /// timestamp order once more than `max_lateness` of them are
    /// pending, so any stream shuffled within a `max_lateness`-frame
    /// horizon is restored to capture order exactly. Frames that arrive
    /// *behind* the already-delivered watermark are dropped and counted
    /// (like [`LateFramePolicy::Drop`]). `max_lateness: 0` behaves like
    /// `Drop`.
    Reorder {
        /// Maximum positional displacement the buffer absorbs (also its
        /// capacity in frames).
        max_lateness: usize,
    },
}

/// Ingest-hardening knobs shared by [`Engine`](super::Engine) and
/// [`MultiEngine`](super::MultiEngine); set via the builders'
/// `resilience()` method. The default is **bit-for-bit** the historical
/// strict behavior: late frames rejected, nothing deduplicated, nothing
/// gated, fused scores requiring every parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Late-frame policy (default [`LateFramePolicy::Reject`]).
    pub late_policy: LateFramePolicy,
    /// Depth of the recently-seen ring used for exact-duplicate
    /// suppression; `0` (default) disables it. A frame equal in every
    /// field to one of the last `dedup_depth` arrivals is dropped and
    /// counted in [`EngineHealth::frames_duplicate`].
    pub dedup_depth: usize,
    /// Frames smaller than this many on-air bytes are dropped as
    /// truncated/corrupt captures ([`EngineHealth::frames_corrupt`]);
    /// `0` (default) disables the gate.
    pub min_frame_size: usize,
    /// [`MultiEngine`](super::MultiEngine) only: the minimum number of
    /// parameters a candidate must have scored views for to receive a
    /// fused score. `None` (default) requires **all** fused parameters —
    /// the historical behavior. `Some(q)` fuses over the surviving
    /// subset (weights renormalised) when at least `q` parameters
    /// scored, marking the event as degraded.
    pub fusion_quorum: Option<usize>,
}

impl Default for ResilienceConfig {
    fn default() -> Self {
        ResilienceConfig {
            late_policy: LateFramePolicy::Reject,
            dedup_depth: 0,
            min_frame_size: 0,
            fusion_quorum: None,
        }
    }
}

impl ResilienceConfig {
    /// A preset for degraded captures: 64-frame reorder horizon,
    /// 64-frame duplicate suppression, runt gate at
    /// [`MIN_PLAUSIBLE_FRAME_SIZE`], and fusion over whatever parameters
    /// survive (quorum 1).
    #[must_use]
    pub fn tolerant() -> Self {
        ResilienceConfig {
            late_policy: LateFramePolicy::Reorder { max_lateness: 64 },
            dedup_depth: 64,
            min_frame_size: MIN_PLAUSIBLE_FRAME_SIZE,
            fusion_quorum: Some(1),
        }
    }

    /// Returns a copy with a different late-frame policy.
    #[must_use]
    pub fn with_late_policy(mut self, policy: LateFramePolicy) -> Self {
        self.late_policy = policy;
        self
    }

    /// Returns a copy with a different duplicate-suppression depth.
    #[must_use]
    pub fn with_dedup_depth(mut self, depth: usize) -> Self {
        self.dedup_depth = depth;
        self
    }

    /// Returns a copy with a different runt-frame gate.
    #[must_use]
    pub fn with_min_frame_size(mut self, size: usize) -> Self {
        self.min_frame_size = size;
        self
    }

    /// Returns a copy with a different fusion quorum.
    #[must_use]
    pub fn with_fusion_quorum(mut self, quorum: Option<usize>) -> Self {
        self.fusion_quorum = quorum;
        self
    }
}

/// Ingest-health counters, readable via `health()` on either engine.
///
/// The counters reconcile with the arrival stream by conservation:
/// every arrival is either delivered to the engine core
/// (`frames_observed()`), still pending in the reorder buffer, or
/// counted in exactly one of the drop counters below. The supervised
/// [`IngestPipeline`](super::ingest::IngestPipeline) extends the same
/// law with three front-of-engine counters — sheds, quarantines and
/// worker restarts — so that
///
/// ```text
/// seen = delivered + dropped + shed + quarantined + pending
/// ```
///
/// holds exactly for a supervised session too ([`EngineHealth::conserves`]).
/// On an unsupervised engine the three pipeline counters stay zero and
/// the law reduces to the PR 6 form.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineHealth {
    /// Frames presented to `observe` (before any gating). On a
    /// supervised pipeline: frames submitted to the ingest ring.
    pub frames_seen: u64,
    /// Exact duplicates dropped by the suppression ring.
    pub frames_duplicate: u64,
    /// Truncated/corrupt frames dropped by the minimum-size gate.
    pub frames_corrupt: u64,
    /// Late frames dropped under [`LateFramePolicy::Drop`], or behind
    /// the delivered watermark under [`LateFramePolicy::Reorder`].
    pub frames_late_dropped: u64,
    /// Frames that arrived out of timestamp order but were successfully
    /// re-sequenced by the reorder buffer.
    pub frames_reordered: u64,
    /// Windows whose fused decision was degraded (fused over a quorum
    /// subset of parameters). Always `0` on the single-parameter engine.
    pub windows_degraded: u64,
    /// Frames shed at the supervised ingest ring by an
    /// [`OverloadPolicy`](super::ingest::OverloadPolicy) — they never
    /// reached the engine. Always `0` on an unsupervised engine.
    pub frames_shed: u64,
    /// Frames quarantined by the supervised pipeline: poison frames
    /// whose sweep panicked, plus frames the engine rejected with an
    /// error. Always `0` on an unsupervised engine.
    pub frames_quarantined: u64,
    /// Times the supervising pipeline restarted its worker after an
    /// isolated panic. Not a frame counter — it does not participate in
    /// conservation. Always `0` on an unsupervised engine.
    pub workers_restarted: u64,
}

impl EngineHealth {
    /// Total frames dropped by the ingest front (duplicate + corrupt +
    /// late). Sheds and quarantines are counted separately — they happen
    /// in front of (or around) the engine, not inside its gates.
    #[must_use]
    pub fn frames_dropped(&self) -> u64 {
        self.frames_duplicate + self.frames_corrupt + self.frames_late_dropped
    }

    /// The conservation law every session must satisfy exactly:
    /// `seen = delivered + dropped + shed + quarantined + pending`,
    /// where `delivered` is the frame count the engine core consumed
    /// (`frames_observed()`, minus any frame a panic interrupted) and
    /// `pending` is what is still buffered (ingest ring + reorder
    /// buffer). Chaos gates assert this after every degraded run.
    #[must_use]
    pub fn conserves(&self, delivered: u64, pending: u64) -> bool {
        self.frames_seen
            == delivered
                + self.frames_dropped()
                + self.frames_shed
                + self.frames_quarantined
                + pending
    }
}

/// The gatekeeper between raw arrivals and the engine core: applies the
/// [`ResilienceConfig`] (dedup → runt gate → late policy) and owns the
/// stream's monotonicity watermark. With the default config this is
/// exactly the historical floor check — one comparison, no buffering.
#[derive(Debug)]
pub(crate) struct IngestFront {
    cfg: ResilienceConfig,
    /// The delivered watermark: the newest timestamp handed to the
    /// engine core, also advanced by `advance_to`. Frames behind it are
    /// late.
    floor: Option<Nanos>,
    /// Newest *arrival* timestamp, for counting re-sequenced frames.
    arrival_max: Option<Nanos>,
    /// Recently seen frames (newest at the back), for dedup.
    recent: VecDeque<CapturedFrame>,
    /// Reorder buffer, sorted ascending by `t_end` (stable for ties).
    pending: VecDeque<CapturedFrame>,
    pub(crate) health: EngineHealth,
}

impl IngestFront {
    pub(crate) fn new(cfg: ResilienceConfig) -> Self {
        IngestFront {
            cfg,
            floor: None,
            arrival_max: None,
            recent: VecDeque::new(),
            pending: VecDeque::new(),
            health: EngineHealth::default(),
        }
    }

    pub(crate) fn config(&self) -> &ResilienceConfig {
        &self.cfg
    }

    /// The stream's watermark: the newest delivered (or ticked)
    /// timestamp — the engines' no-op floor for `advance_to`.
    pub(crate) fn last_t(&self) -> Option<Nanos> {
        self.floor
    }

    /// Admits one arrival. Returns at most one frame to deliver to the
    /// engine core *now* (the frame itself, or the oldest frame a full
    /// reorder buffer released to make room).
    ///
    /// # Errors
    ///
    /// [`EngineError::NonMonotonicFrame`] for a late frame under
    /// [`LateFramePolicy::Reject`]; the engine state is unchanged (the
    /// frame may be re-sent in order).
    pub(crate) fn admit(
        &mut self,
        frame: &CapturedFrame,
    ) -> Result<Option<CapturedFrame>, EngineError> {
        self.health.frames_seen += 1;
        if self.cfg.dedup_depth > 0 {
            if self.recent.contains(frame) {
                self.health.frames_duplicate += 1;
                return Ok(None);
            }
            if self.recent.len() == self.cfg.dedup_depth {
                self.recent.pop_front();
            }
            self.recent.push_back(*frame);
        }
        if frame.size < self.cfg.min_frame_size {
            self.health.frames_corrupt += 1;
            return Ok(None);
        }
        let t = frame.t_end;
        match self.cfg.late_policy {
            LateFramePolicy::Reject => {
                if let Some(last) = self.floor {
                    if t < last {
                        return Err(EngineError::NonMonotonicFrame { last, got: t });
                    }
                }
                self.floor = Some(t);
                Ok(Some(*frame))
            }
            LateFramePolicy::Drop => {
                if self.floor.is_some_and(|last| t < last) {
                    self.health.frames_late_dropped += 1;
                    return Ok(None);
                }
                self.floor = Some(t);
                Ok(Some(*frame))
            }
            LateFramePolicy::Reorder { max_lateness } => {
                if self.floor.is_some_and(|last| t < last) {
                    // Behind the delivered watermark: the buffer cannot
                    // un-deliver, so this frame is beyond the horizon.
                    self.health.frames_late_dropped += 1;
                    return Ok(None);
                }
                if self.arrival_max.is_some_and(|m| t < m) {
                    self.health.frames_reordered += 1;
                }
                self.arrival_max = Some(self.arrival_max.map_or(t, |m| m.max(t)));
                // Stable insert: after all equal timestamps, preserving
                // arrival order among ties.
                let pos = self.pending.partition_point(|f| f.t_end <= t);
                self.pending.insert(pos, *frame);
                if self.pending.len() > max_lateness {
                    let out = self.pending.pop_front().expect("len > max_lateness >= 0");
                    self.floor = Some(out.t_end);
                    return Ok(Some(out));
                }
                Ok(None)
            }
        }
    }

    /// Releases every buffered frame with `t_end <= t` (in timestamp
    /// order), then raises the watermark to at least `t`. The engines
    /// call this from `advance_to` *before* advancing their window
    /// clocks, so buffered frames land in their proper windows.
    pub(crate) fn release_until(&mut self, t: Nanos) -> Vec<CapturedFrame> {
        let mut out = Vec::new();
        while self.pending.front().is_some_and(|f| f.t_end <= t) {
            out.push(self.pending.pop_front().expect("checked front"));
        }
        self.floor = Some(self.floor.map_or(t, |f| f.max(t)));
        out
    }

    /// Drains the whole reorder buffer in timestamp order (for
    /// `finish`).
    pub(crate) fn drain(&mut self) -> Vec<CapturedFrame> {
        if let Some(last) = self.pending.back() {
            self.floor = Some(self.floor.map_or(last.t_end, |f| f.max(last.t_end)));
        }
        self.pending.drain(..).collect()
    }

    /// Frames currently held by the reorder buffer.
    pub(crate) fn pending_frames(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_ieee80211::{FrameKind, MacAddr, Rate};

    fn frame(t_us: u64, size: usize) -> CapturedFrame {
        CapturedFrame {
            t_end: Nanos::from_micros(t_us),
            air_time: Nanos::from_micros(100),
            rate: Rate::R24M,
            size,
            kind: FrameKind::Data,
            transmitter: Some(MacAddr::from_index(1)),
            receiver: MacAddr::from_index(2),
            dest_group: false,
            retry: false,
            signal_dbm: -55,
        }
    }

    #[test]
    fn default_front_is_the_strict_floor_check() {
        let mut front = IngestFront::new(ResilienceConfig::default());
        assert_eq!(front.admit(&frame(10, 100)).unwrap(), Some(frame(10, 100)));
        assert!(matches!(
            front.admit(&frame(5, 100)),
            Err(EngineError::NonMonotonicFrame { .. })
        ));
        // Equal timestamps are in order (monitor clocks can tie).
        assert_eq!(front.admit(&frame(10, 100)).unwrap(), Some(frame(10, 100)));
        assert_eq!(front.health.frames_seen, 3);
        assert_eq!(front.health.frames_dropped(), 0);
    }

    #[test]
    fn drop_policy_counts_and_continues() {
        let cfg = ResilienceConfig::default().with_late_policy(LateFramePolicy::Drop);
        let mut front = IngestFront::new(cfg);
        assert!(front.admit(&frame(10, 100)).unwrap().is_some());
        assert!(front.admit(&frame(5, 100)).unwrap().is_none());
        assert!(front.admit(&frame(12, 100)).unwrap().is_some());
        assert_eq!(front.health.frames_late_dropped, 1);
    }

    #[test]
    fn reorder_restores_a_bounded_shuffle() {
        let cfg = ResilienceConfig::default()
            .with_late_policy(LateFramePolicy::Reorder { max_lateness: 2 });
        let mut front = IngestFront::new(cfg);
        let mut delivered = Vec::new();
        // Arrival order 30, 10, 20, 40 (displacement ≤ 2).
        for t in [30u64, 10, 20, 40] {
            if let Some(f) = front.admit(&frame(t, 100)).unwrap() {
                delivered.push(f.t_end.as_nanos());
            }
        }
        delivered.extend(front.drain().into_iter().map(|f| f.t_end.as_nanos()));
        assert_eq!(delivered, vec![10_000, 20_000, 30_000, 40_000]);
        assert_eq!(front.health.frames_reordered, 2, "10 and 20 arrived late");
        assert_eq!(front.health.frames_late_dropped, 0);
    }

    #[test]
    fn reorder_drops_frames_behind_the_delivered_watermark() {
        let cfg = ResilienceConfig::default()
            .with_late_policy(LateFramePolicy::Reorder { max_lateness: 1 });
        let mut front = IngestFront::new(cfg);
        assert!(front.admit(&frame(10, 100)).unwrap().is_none());
        // Buffer over capacity: 10 is delivered, watermark = 10.
        assert_eq!(front.admit(&frame(20, 100)).unwrap().unwrap().t_end, Nanos::from_micros(10));
        // A frame behind the watermark is beyond the horizon.
        assert!(front.admit(&frame(5, 100)).unwrap().is_none());
        assert_eq!(front.health.frames_late_dropped, 1);
        assert_eq!(front.pending_frames(), 1);
    }

    #[test]
    fn release_until_flushes_in_order_and_raises_the_watermark() {
        let cfg = ResilienceConfig::default()
            .with_late_policy(LateFramePolicy::Reorder { max_lateness: 8 });
        let mut front = IngestFront::new(cfg);
        for t in [30u64, 10, 20, 50] {
            assert!(front.admit(&frame(t, 100)).unwrap().is_none());
        }
        let released: Vec<u64> = front
            .release_until(Nanos::from_micros(25))
            .into_iter()
            .map(|f| f.t_end.as_nanos() / 1_000)
            .collect();
        assert_eq!(released, vec![10, 20]);
        assert_eq!(front.last_t(), Some(Nanos::from_micros(25)));
        assert_eq!(front.pending_frames(), 2);
        // The raised watermark now rejects (drops) older arrivals.
        assert!(front.admit(&frame(22, 100)).unwrap().is_none());
        assert_eq!(front.health.frames_late_dropped, 1);
    }

    #[test]
    fn dedup_ring_drops_exact_re_deliveries() {
        let cfg = ResilienceConfig::default().with_dedup_depth(2);
        let mut front = IngestFront::new(cfg);
        let f = frame(10, 100);
        assert!(front.admit(&f).unwrap().is_some());
        assert!(front.admit(&f).unwrap().is_none(), "exact duplicate");
        // A frame differing in any field is not a duplicate (same
        // timestamp keeps the strict monotonicity check out of play).
        assert!(front.admit(&frame(10, 101)).unwrap().is_some());
        // The ring is bounded: after two newer frames, f is forgotten.
        assert!(front.admit(&frame(10, 102)).unwrap().is_some());
        assert!(front.admit(&f).unwrap().is_some());
        assert_eq!(front.health.frames_duplicate, 1);
    }

    #[test]
    fn runt_gate_drops_truncated_frames() {
        let cfg = ResilienceConfig::tolerant();
        let mut front = IngestFront::new(cfg);
        assert!(front.admit(&frame(10, 4)).unwrap().is_none());
        assert_eq!(front.health.frames_corrupt, 1);
        // A duplicate of a runt counts as duplicate, not corrupt twice:
        // the dedup ring sees every arrival first.
        assert!(front.admit(&frame(10, 4)).unwrap().is_none());
        assert_eq!(front.health.frames_corrupt, 1);
        assert_eq!(front.health.frames_duplicate, 1);
    }

    #[test]
    fn conservation_law_covers_the_pipeline_counters() {
        // Unsupervised front: seen = delivered + dropped + pending.
        let cfg = ResilienceConfig::tolerant();
        let mut front = IngestFront::new(cfg);
        let mut delivered = 0u64;
        for t in [30u64, 10, 20, 40] {
            if front.admit(&frame(t, 100)).unwrap().is_some() {
                delivered += 1;
            }
        }
        assert!(front.admit(&frame(40, 4)).unwrap().is_none(), "runt");
        assert!(front.health.conserves(delivered, front.pending_frames() as u64));

        // Supervised counters extend the same identity: a shed and a
        // quarantined frame are each accounted exactly once.
        let mut health = front.health;
        health.frames_seen += 2;
        health.frames_shed += 1;
        health.frames_quarantined += 1;
        health.workers_restarted += 1; // not a frame counter: no effect
        assert!(health.conserves(delivered, front.pending_frames() as u64));
        // Losing a frame from every bucket breaks the law.
        health.frames_seen += 1;
        assert!(!health.conserves(delivered, front.pending_frames() as u64));
    }

    #[test]
    fn tolerant_preset_and_builders_compose() {
        let cfg = ResilienceConfig::tolerant()
            .with_dedup_depth(8)
            .with_min_frame_size(0)
            .with_fusion_quorum(Some(3))
            .with_late_policy(LateFramePolicy::Drop);
        assert_eq!(cfg.dedup_depth, 8);
        assert_eq!(cfg.min_frame_size, 0);
        assert_eq!(cfg.fusion_quorum, Some(3));
        assert_eq!(cfg.late_policy, LateFramePolicy::Drop);
        assert_eq!(ResilienceConfig::default().late_policy, LateFramePolicy::Reject);
    }
}
