//! The fused five-parameter streaming engine.
//!
//! The paper's headline accuracy comes from combining the network
//! parameters, yet a single [`Engine`](super::Engine) runs exactly one.
//! Running five engines side by side — as the analysis pipeline used to —
//! re-parses every frame five times, keeps five copies of the timing
//! history, and five window clocks that can only ever agree. The
//! [`MultiEngine`] collapses all of that:
//!
//! * **one fused extraction** — a single [`FusedExtractor`] pass per
//!   frame yields all five [`NetworkParameter`] observations from one
//!   header parse and one shared previous-frame timestamp;
//! * **one shared window clock** — a single [`WindowClock`] decides when
//!   detection windows seal for every parameter, so per-parameter
//!   decisions are always aligned;
//! * **online score fusion** — as each window closes, every candidate is
//!   swept against each parameter's [`ReferenceDb`] (the same tiled
//!   `f32` SIMD sweep the single engine uses) and the per-parameter
//!   similarity vectors are combined into one weighted-average
//!   [`FusedOutcome`] per [`fusion`](crate::fusion) spec — the online
//!   port of what the analysis crate's fusion evaluator did offline at
//!   end-of-trace.
//!
//! Events mirror the single engine's, fused: [`MultiEvent::FusedMatch`]
//! / [`MultiEvent::FusedNewDevice`] carry one [`ParameterDecision`] per
//! parameter the candidate qualified for (its per-parameter similarity
//! vector) plus the combined score, and fire the moment the window
//! closes — or when [`MultiEngine::advance_to`] / [`MultiEngine::tick`]
//! seal it on wall clock, so a quiet channel cannot stall the last
//! decision.
//!
//! Per-parameter decisions are **bit-for-bit** the five single engines'
//! decisions (same argmax, scores within
//! [`F32_SCORE_TOLERANCE`](crate::F32_SCORE_TOLERANCE)); an end-to-end
//! test pins this on the office and conference scenarios.
//!
//! # Example
//!
//! ```
//! use wifiprint_core::engine::{MultiConfig, MultiEngine, MultiEvent};
//! use wifiprint_core::FusionSpec;
//! use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
//! use wifiprint_radiotap::CapturedFrame;
//!
//! let mut cfg = MultiConfig::default().with_min_observations(20);
//! cfg.window = Nanos::from_secs(1);
//! let mut engine = MultiEngine::builder()
//!     .spec(FusionSpec::all_equal())
//!     .config(cfg)
//!     .train_for(Nanos::from_secs(2))
//!     .build()
//!     .expect("valid engine configuration");
//!
//! // One station sending every 10 ms: 2 s of training, 3 s of detection.
//! let sta = MacAddr::from_index(1);
//! let ap = MacAddr::from_index(2);
//! let mut events = Vec::new();
//! for i in 0..500u64 {
//!     let f = Frame::data_to_ds(sta, ap, ap, 400);
//!     let cap = CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_millis(10 * (i + 1)), -50);
//!     events.extend(engine.observe(&cap).expect("in-order frame"));
//! }
//! events.extend(engine.finish().expect("finish once"));
//!
//! assert!(matches!(events[0], MultiEvent::Enrolled { device, .. } if device == sta));
//! let fused_matches = events
//!     .iter()
//!     .filter(|e| matches!(e, MultiEvent::FusedMatch { fused: Some(_), .. }))
//!     .count();
//! assert!(fused_matches >= 3, "one fused decision per closed detection window");
//! ```

use std::collections::BTreeMap;

use wifiprint_ieee80211::{MacAddr, Nanos};
use wifiprint_radiotap::CapturedFrame;

use crate::config::{default_bins, EvalConfig, FrameFilter, TxTimeEstimator};
use crate::error::CoreError;
use crate::fusion::{fuse_outcomes, FusedOutcome, FusionSpec};
use crate::matching::{MatchConfig, MatchOutcome, MatchScratch, ReferenceDb, MATCH_TILE};
use crate::params::{FusedExtractor, NetworkParameter};
use crate::signature::Signature;
use crate::similarity::SimilarityMeasure;
use crate::windows::WindowClock;

use super::resilience::{EngineHealth, IngestFront, ResilienceConfig};
use super::{EngineError, EnginePhase};

/// Shared knobs of a [`MultiEngine`]: everything an [`EvalConfig`]
/// carries except the parameter itself and its bins. The fused parse
/// shares one filter, estimator, window length and observation floor
/// across all parameters (per-parameter bins come from
/// [`default_bins`]); [`MultiConfig::eval_config`] projects the
/// equivalent single-parameter configuration, which is exactly what a
/// side-by-side [`Engine`](super::Engine) would run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiConfig {
    /// Minimum observations per candidate signature, per parameter (the
    /// paper uses 50, §V-C).
    pub min_observations: u64,
    /// Histogram similarity measure (cosine in the paper).
    pub measure: SimilarityMeasure,
    /// Transmission-time estimator, shared by the fused parse.
    pub estimator: TxTimeEstimator,
    /// Frame filter applied once per frame, for every parameter.
    pub filter: FrameFilter,
    /// Detection window length (the paper uses 5 minutes, §I/§V-A).
    pub window: Nanos,
    /// Shard layout of the per-parameter reference databases the
    /// training phase builds (see [`MatchConfig`]).
    pub match_config: MatchConfig,
}

impl Default for MultiConfig {
    /// The paper's defaults: 50-observation floor, cosine similarity,
    /// size/rate transmission-time estimator, no filtering, 5-minute
    /// windows.
    fn default() -> Self {
        MultiConfig {
            min_observations: 50,
            measure: SimilarityMeasure::Cosine,
            estimator: TxTimeEstimator::SizeOverRate,
            filter: FrameFilter::default(),
            window: Nanos::from_secs(300),
            match_config: MatchConfig::default(),
        }
    }
}

impl MultiConfig {
    /// Returns a copy with a different minimum observation count.
    #[must_use]
    pub fn with_min_observations(mut self, min: u64) -> Self {
        self.min_observations = min;
        self
    }

    /// Returns a copy with a different similarity measure.
    #[must_use]
    pub fn with_measure(mut self, measure: SimilarityMeasure) -> Self {
        self.measure = measure;
        self
    }

    /// Returns a copy with a different frame filter.
    #[must_use]
    pub fn with_filter(mut self, filter: FrameFilter) -> Self {
        self.filter = filter;
        self
    }

    /// Returns a copy with a different detection window length.
    #[must_use]
    pub fn with_window(mut self, window: Nanos) -> Self {
        self.window = window;
        self
    }

    /// Returns a copy with a different reference-store shard layout.
    #[must_use]
    pub fn with_match_config(mut self, match_config: MatchConfig) -> Self {
        self.match_config = match_config;
        self
    }

    /// The single-parameter [`EvalConfig`] this multi-configuration is
    /// equivalent to for one parameter — the configuration a
    /// side-by-side [`Engine`](super::Engine) would need to reproduce
    /// the [`MultiEngine`]'s per-parameter decisions.
    pub fn eval_config(&self, parameter: NetworkParameter) -> EvalConfig {
        EvalConfig {
            parameter,
            bins: default_bins(parameter),
            min_observations: self.min_observations,
            measure: self.measure,
            estimator: self.estimator,
            filter: self.filter.clone(),
            window: self.window,
            match_config: self.match_config,
        }
    }

    /// Checks the configuration can drive an engine (non-zero window).
    fn validate(&self) -> Result<(), CoreError> {
        if self.window == Nanos::ZERO {
            return Err(CoreError::InvalidConfig { reason: "zero-length detection window" });
        }
        Ok(())
    }
}

/// One parameter's contribution to a fused window decision.
#[derive(Debug, Clone)]
pub struct ParameterDecision {
    /// The network parameter this decision scored.
    pub parameter: NetworkParameter,
    /// Whether the candidate device is enrolled in *this parameter's*
    /// reference database (enrollment can differ per parameter: the
    /// history-based parameters observe one frame fewer, and a filter
    /// may starve one projection).
    pub known: bool,
    /// Algorithm 1's similarity vector against this parameter's
    /// references. Empty for strangers when stranger scoring is off
    /// ([`MultiEngineBuilder::score_unknown`]).
    pub view: MatchOutcome,
}

/// A typed notification emitted by [`MultiEngine::observe`] /
/// [`MultiEngine::advance_to`] / [`MultiEngine::finish`].
///
/// Per closed window the order is: one [`MultiEvent::FusedMatch`] or
/// [`MultiEvent::FusedNewDevice`] per qualifying candidate (ascending
/// device address), then exactly one [`MultiEvent::WindowClosed`]
/// terminator. [`MultiEvent::Enrolled`] events (ascending address)
/// precede all window events.
#[derive(Debug, Clone)]
pub enum MultiEvent {
    /// A device entered the reference databases at the end of the
    /// training phase.
    Enrolled {
        /// The enrolled device.
        device: MacAddr,
        /// Per parameter the device qualified for: the observation count
        /// backing its reference signature. A device may qualify for a
        /// subset (the history parameters observe one frame fewer).
        observations: Vec<(NetworkParameter, u64)>,
    },
    /// A device enrolled for **every** fused parameter produced
    /// qualifying candidate signatures in the window that just closed.
    FusedMatch {
        /// Index of the closed detection window.
        window: usize,
        /// The candidate device (its claimed source address).
        device: MacAddr,
        /// Per-parameter similarity vectors, one entry per parameter the
        /// candidate met the observation floor for (spec order).
        scores: Vec<ParameterDecision>,
        /// The combined (weighted-average) similarity vector over the
        /// commonly enrolled devices — present when the candidate
        /// qualified for **all** fused parameters, or (under a
        /// [`ResilienceConfig::fusion_quorum`]) for at least the quorum.
        fused: Option<FusedOutcome>,
        /// Degraded-fusion marker: the parameters *missing* from the
        /// fused score. Empty for a full fusion (the default-config
        /// invariant); non-empty when a quorum fused over the surviving
        /// subset with renormalised weights.
        degraded: Vec<NetworkParameter>,
    },
    /// A candidate *not* enrolled for every fused parameter. Usually a
    /// true stranger; occasionally a device enrolled for only a subset
    /// of parameters (its per-parameter scores still report those).
    FusedNewDevice {
        /// Index of the closed detection window.
        window: usize,
        /// The candidate's claimed source address.
        device: MacAddr,
        /// Per-parameter candidate signatures, one per parameter the
        /// candidate met the floor for (spec order) — handed over so
        /// callers can enroll the newcomer without rebuilding them.
        signatures: Vec<(NetworkParameter, Signature)>,
        /// Per-parameter similarity vectors (empty views when stranger
        /// scoring is disabled).
        scores: Vec<ParameterDecision>,
        /// The combined similarity vector over the commonly enrolled
        /// devices — who this newcomer most behaves like, fused across
        /// parameters (the paper's §VII MAC-rotation question). Present
        /// when the candidate qualified for all fused parameters (or a
        /// configured quorum of them) and stranger scoring is on.
        fused: Option<FusedOutcome>,
        /// Degraded-fusion marker: the parameters missing from the
        /// fused score (empty when `fused` is a full fusion or absent).
        degraded: Vec<NetworkParameter>,
    },
    /// Terminator: the window sealed and all its candidate events (if
    /// any) have been emitted.
    WindowClosed {
        /// Index of the closed detection window.
        window: usize,
        /// Qualifying candidates the window produced (union across
        /// parameters).
        candidates: usize,
        /// How many were enrolled for every parameter
        /// ([`MultiEvent::FusedMatch`]).
        known: usize,
        /// How many were not ([`MultiEvent::FusedNewDevice`]).
        unknown: usize,
    },
}

/// Configures and validates a [`MultiEngine`]; obtained from
/// [`MultiEngine::builder`].
#[derive(Debug)]
pub struct MultiEngineBuilder {
    spec: Option<FusionSpec>,
    config: Option<MultiConfig>,
    references: Option<BTreeMap<NetworkParameter, ReferenceDb>>,
    train_duration: Option<Nanos>,
    score_unknown: bool,
    resilience: ResilienceConfig,
}

impl Default for MultiEngineBuilder {
    fn default() -> Self {
        MultiEngineBuilder {
            spec: None,
            config: None,
            references: None,
            train_duration: None,
            score_unknown: true,
            resilience: ResilienceConfig::default(),
        }
    }
}

impl MultiEngineBuilder {
    /// Which parameters to fuse, and with what weights. Defaults to
    /// [`FusionSpec::all_equal`] — all five parameters, equally
    /// weighted.
    #[must_use]
    pub fn spec(mut self, spec: FusionSpec) -> Self {
        self.spec = Some(spec);
        self
    }

    /// The shared configuration (floor, measure, filter, estimator,
    /// window). Defaults to [`MultiConfig::default`] — the paper's
    /// settings.
    #[must_use]
    pub fn config(mut self, config: MultiConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Starts the engine directly in the detection phase against
    /// pre-learned per-parameter reference databases (frozen on entry;
    /// one non-empty database per fused parameter). Mutually exclusive
    /// with [`MultiEngineBuilder::train_for`].
    #[must_use]
    pub fn references(mut self, dbs: BTreeMap<NetworkParameter, ReferenceDb>) -> Self {
        self.references = Some(dbs);
        self
    }

    /// Starts the engine with an online enrollment phase: the first
    /// `duration` of the stream (measured from its first frame) trains
    /// one reference database per parameter, then freezes them for
    /// detection. Mutually exclusive with
    /// [`MultiEngineBuilder::references`].
    #[must_use]
    pub fn train_for(mut self, duration: Nanos) -> Self {
        self.train_duration = Some(duration);
        self
    }

    /// Whether candidates outside the common enrolled set are scored
    /// against the reference matrices (default `true`); see
    /// [`EngineBuilder::score_unknown`](super::EngineBuilder::score_unknown).
    #[must_use]
    pub fn score_unknown(mut self, score: bool) -> Self {
        self.score_unknown = score;
        self
    }

    /// Ingest-hardening knobs: late-frame policy, duplicate
    /// suppression, runt gate, fusion quorum (default
    /// [`ResilienceConfig::default`] — strict, today's behavior); see
    /// [`ResilienceConfig`].
    #[must_use]
    pub fn resilience(mut self, resilience: ResilienceConfig) -> Self {
        self.resilience = resilience;
        self
    }

    /// Validates the configuration and builds the engine.
    ///
    /// # Errors
    ///
    /// * [`EngineError::MissingReference`] with neither references nor a
    ///   training phase, [`EngineError::ConflictingReference`] with both;
    /// * [`EngineError::Core`]([`CoreError::InvalidConfig`]) for an
    ///   invalid fusion spec (empty, repeated parameter, bad weights), a
    ///   zero-length window or training phase, or a reference map
    ///   missing a fused parameter;
    /// * [`EngineError::Core`]([`CoreError::EmptyDatabase`]) for an
    ///   empty reference database.
    pub fn build(self) -> Result<MultiEngine, EngineError> {
        let spec = self.spec.unwrap_or_else(FusionSpec::all_equal);
        spec.validate()?;
        let cfg = self.config.unwrap_or_default();
        cfg.validate()?;
        let configs: Vec<EvalConfig> = spec.parameters().map(|p| cfg.eval_config(p)).collect();
        for c in &configs {
            c.validate()?;
        }
        let phase = match (self.references, self.train_duration) {
            (Some(_), Some(_)) => return Err(EngineError::ConflictingReference),
            (None, None) => return Err(EngineError::MissingReference),
            (Some(mut dbs), None) => {
                let mut references = Vec::with_capacity(spec.len());
                for param in spec.parameters() {
                    let mut db = dbs.remove(&param).ok_or(CoreError::InvalidConfig {
                        reason: "reference map is missing a fused parameter",
                    })?;
                    if db.is_empty() {
                        return Err(CoreError::EmptyDatabase.into());
                    }
                    db.freeze();
                    references.push(db);
                }
                MultiPhase::Detecting(DetectState::new(references, &spec, cfg.window))
            }
            (None, Some(duration)) => {
                if duration == Nanos::ZERO {
                    return Err(CoreError::InvalidConfig {
                        reason: "training phase must be longer than zero",
                    }
                    .into());
                }
                MultiPhase::Training { devices: BTreeMap::new(), duration }
            }
        };
        let extractor = FusedExtractor::with_options(cfg.estimator, cfg.filter.clone());
        // A quorum outside [1, spec.len()] is meaningless — clamp rather
        // than error, so `tolerant()` works for any spec width.
        let quorum = self.resilience.fusion_quorum.map_or(spec.len(), |q| q.clamp(1, spec.len()));
        Ok(MultiEngine {
            quorum,
            spec,
            cfg,
            configs,
            extractor,
            phase,
            score_unknown: self.score_unknown,
            scratches: Vec::new(),
            origin: None,
            front: IngestFront::new(self.resilience),
            frames: 0,
            train_frames: 0,
            windows_closed: 0,
        })
    }
}

/// Detection-phase state: per-parameter references and candidate maps on
/// one shared window clock.
#[derive(Debug)]
struct DetectState {
    /// One frozen reference database per fused parameter (spec order).
    references: Vec<ReferenceDb>,
    /// Devices enrolled in **every** parameter's database, ascending —
    /// the domain of the fused score.
    common: Vec<MacAddr>,
    /// The one shared window clock.
    clock: WindowClock,
    /// Per device: one in-progress candidate signature per parameter
    /// (spec order) for the open window.
    current: BTreeMap<MacAddr, Vec<Signature>>,
}

impl DetectState {
    fn new(references: Vec<ReferenceDb>, spec: &FusionSpec, window: Nanos) -> Self {
        let common = match references.first() {
            Some(first) => first
                .devices()
                .filter(|d| references.iter().all(|db| db.contains(d)))
                .collect(),
            None => Vec::new(),
        };
        debug_assert_eq!(references.len(), spec.len());
        DetectState { references, common, clock: WindowClock::new(window), current: BTreeMap::new() }
    }
}

/// Folds one fused observation into a device's per-parameter signatures
/// (training map and open-window map share this shape).
fn record_fused(
    devices: &mut BTreeMap<MacAddr, Vec<Signature>>,
    obs: &crate::params::FusedObservation,
    spec: &FusionSpec,
    configs: &[EvalConfig],
) {
    let sigs = devices
        .entry(obs.device)
        .or_insert_with(|| vec![Signature::new(); configs.len()]);
    for ((sig, cfg), param) in sigs.iter_mut().zip(configs).zip(spec.parameters()) {
        if let Some(value) = obs.value(param) {
            sig.record(obs.kind, value, cfg);
        }
    }
}

/// Internal lifecycle state (the public projection is [`EnginePhase`]).
#[derive(Debug)]
enum MultiPhase {
    Training {
        /// Per device: one growing signature per parameter (spec order).
        devices: BTreeMap<MacAddr, Vec<Signature>>,
        duration: Nanos,
    },
    Detecting(DetectState),
    Finished { references: Vec<ReferenceDb> },
}

/// The fused five-parameter ingest → window → match → fuse facade (see
/// the [module docs](self)).
#[derive(Debug)]
pub struct MultiEngine {
    spec: FusionSpec,
    cfg: MultiConfig,
    /// Per-parameter projections of `cfg` (spec order) — carry the bins
    /// each parameter's signatures record into.
    configs: Vec<EvalConfig>,
    /// The single shared extractor: one parse, one timing history.
    extractor: FusedExtractor,
    phase: MultiPhase,
    score_unknown: bool,
    /// Warm [`MatchScratch`]es reused across window closes: the
    /// per-parameter fan-out checks one out per worker and returns it,
    /// keeping the steady state allocation-free like the single engine.
    scratches: Vec<MatchScratch>,
    origin: Option<Nanos>,
    /// The resilience gatekeeper every arrival passes through (dedup →
    /// runt gate → late policy) — also owns the monotonicity floor and
    /// the [`EngineHealth`] counters.
    front: IngestFront,
    /// Minimum scored parameter views required for a fused score
    /// (precomputed from [`ResilienceConfig::fusion_quorum`], clamped to
    /// `[1, spec.len()]`).
    quorum: usize,
    frames: u64,
    train_frames: u64,
    windows_closed: u64,
}

impl MultiEngine {
    /// Starts configuring a fused engine.
    #[must_use]
    pub fn builder() -> MultiEngineBuilder {
        MultiEngineBuilder::default()
    }

    /// Processes one captured frame, returning the events it triggered —
    /// one fused parse feeding every parameter.
    ///
    /// The frame first passes the engine's [`ResilienceConfig`]
    /// gatekeeper: duplicates and runts are counted into
    /// [`MultiEngine::health`] and silently absorbed, and a late frame
    /// is handled per [`LateFramePolicy`](super::LateFramePolicy) —
    /// rejected (default), dropped, or re-sequenced through the bounded
    /// reorder buffer.
    ///
    /// # Errors
    ///
    /// * [`EngineError::NonMonotonicFrame`] for a frame older than its
    ///   predecessor (or than the latest
    ///   [`MultiEngine::advance_to`] tick) under the default
    ///   [`LateFramePolicy::Reject`](super::LateFramePolicy::Reject);
    ///   the engine state is unchanged;
    /// * [`EngineError::Finished`] after [`MultiEngine::finish`].
    pub fn observe(&mut self, frame: &CapturedFrame) -> Result<Vec<MultiEvent>, EngineError> {
        if matches!(self.phase, MultiPhase::Finished { .. }) {
            return Err(EngineError::Finished);
        }
        let mut events = Vec::new();
        let delivered = self.front.admit(frame)?;
        if let Some(frame) = delivered {
            self.ingest(&frame, &mut events)?;
        }
        Ok(events)
    }

    /// Feeds one gatekeeper-approved frame through training / the fused
    /// window path (the pre-resilience `observe` body).
    fn ingest(
        &mut self,
        frame: &CapturedFrame,
        events: &mut Vec<MultiEvent>,
    ) -> Result<(), EngineError> {
        let origin = *self.origin.get_or_insert(frame.t_end);
        self.frames += 1;

        if let MultiPhase::Training { duration, .. } = &self.phase {
            if frame.t_end.saturating_sub(origin) < *duration {
                self.train_frames += 1;
                // Extract once, record into every parameter's signature.
                let obs = self.extractor.push(frame);
                let MultiPhase::Training { devices, .. } = &mut self.phase else {
                    unreachable!("phase checked above");
                };
                if let Some(obs) = obs {
                    record_fused(devices, &obs, &self.spec, &self.configs);
                }
                return Ok(());
            }
            // First frame past the boundary: enroll, freeze, switch to
            // detection (resetting the shared timing history, like the
            // single-parameter path's fresh detection extractor), then
            // treat this frame as the first detection frame below.
            self.end_training(events)?;
        }

        // One fused parse per frame — this is the whole point.
        let obs = self.extractor.push(frame);
        let MultiPhase::Detecting(state) = &mut self.phase else {
            unreachable!("ingest handled Training, callers handle Finished");
        };
        if let Some(sealed) = state.clock.observe(frame.t_end) {
            let current = std::mem::take(&mut state.current);
            close_multi_window(
                &CloseArgs {
                    spec: &self.spec,
                    cfg: &self.cfg,
                    state,
                    score_unknown: self.score_unknown,
                    quorum: self.quorum,
                },
                &mut self.scratches,
                &mut self.front.health,
                sealed,
                current,
                events,
            );
            self.windows_closed += 1;
        }
        if let Some(obs) = obs {
            record_fused(&mut state.current, &obs, &self.spec, &self.configs);
        }
        Ok(())
    }

    /// [`MultiEngine::observe`] over a frame sequence, concatenating the
    /// events.
    ///
    /// # Errors
    ///
    /// The first [`MultiEngine::observe`] error, wrapped in
    /// [`EngineError::Batch`] carrying the zero-based index of the
    /// failing frame so callers can resume or skip past it; events from
    /// frames already processed are lost.
    pub fn observe_all<'a>(
        &mut self,
        frames: impl IntoIterator<Item = &'a CapturedFrame>,
    ) -> Result<Vec<MultiEvent>, EngineError> {
        let mut events = Vec::new();
        for (index, frame) in frames.into_iter().enumerate() {
            match self.observe(frame) {
                Ok(mut ev) => events.append(&mut ev),
                Err(source) => {
                    return Err(EngineError::Batch { index, source: Box::new(source) });
                }
            }
        }
        Ok(events)
    }

    /// Advances the engine's clock to wall-clock time `t` **without a
    /// frame** — the event-driven close for quiet channels, with the
    /// same contract as [`Engine::advance_to`](super::Engine::advance_to):
    /// ends the training phase when `t` passes its boundary, seals and
    /// scores an open detection window whose end lies at or before `t`,
    /// is a no-op at or before the newest frame, and advances the
    /// monotonicity floor.
    ///
    /// # Errors
    ///
    /// [`EngineError::Finished`] after [`MultiEngine::finish`].
    pub fn advance_to(&mut self, t: Nanos) -> Result<Vec<MultiEvent>, EngineError> {
        if matches!(self.phase, MultiPhase::Finished { .. }) {
            return Err(EngineError::Finished);
        }
        let mut events = Vec::new();
        if self.front.last_t().is_some_and(|last| t <= last) {
            return Ok(events);
        }
        // Advancing the wall clock first flushes every reorder-buffered
        // frame at or before `t` (in timestamp order) and raises the
        // delivered watermark, so a window can never seal ahead of a
        // frame still waiting in the buffer.
        for frame in self.front.release_until(t) {
            self.ingest(&frame, &mut events)?;
        }
        if let MultiPhase::Training { duration, .. } = &self.phase {
            let Some(origin) = self.origin else { return Ok(events) };
            if t.saturating_sub(origin) < *duration {
                return Ok(events);
            }
            self.end_training(&mut events)?;
        }
        let MultiPhase::Detecting(state) = &mut self.phase else {
            unreachable!("advance_to handled Training and Finished above");
        };
        if let Some(sealed) = state.clock.advance_to(t) {
            let current = std::mem::take(&mut state.current);
            close_multi_window(
                &CloseArgs {
                    spec: &self.spec,
                    cfg: &self.cfg,
                    state,
                    score_unknown: self.score_unknown,
                    quorum: self.quorum,
                },
                &mut self.scratches,
                &mut self.front.health,
                sealed,
                current,
                &mut events,
            );
            self.windows_closed += 1;
        }
        Ok(events)
    }

    /// Forces a decision on the still-open detection window *now* (see
    /// [`Engine::tick`](super::Engine::tick)).
    ///
    /// # Errors
    ///
    /// [`EngineError::Finished`] after [`MultiEngine::finish`].
    pub fn tick(&mut self) -> Result<Vec<MultiEvent>, EngineError> {
        if matches!(self.phase, MultiPhase::Finished { .. }) {
            return Err(EngineError::Finished);
        }
        let end = match &self.phase {
            MultiPhase::Detecting(state) => state.clock.current_end(),
            _ => None,
        };
        match end {
            Some(t) => self.advance_to(t),
            None => Ok(Vec::new()),
        }
    }

    /// Ends the session: drains any frames still waiting in the reorder
    /// buffer, seals the still-open trailing window (emitting its events
    /// so the last partial window is never silently dropped), or — when
    /// the stream never outlived the training phase — ends training and
    /// emits the [`MultiEvent::Enrolled`] events, making a training-only
    /// run the enrollment entry point (finish, then take the databases
    /// with [`MultiEngine::into_references`]).
    ///
    /// Idempotent: a second call returns an empty event list (the
    /// trailing window is only ever scored once).
    ///
    /// # Errors
    ///
    /// [`EngineError::Core`] if sealing the references fails.
    pub fn finish(&mut self) -> Result<Vec<MultiEvent>, EngineError> {
        let mut events = Vec::new();
        if matches!(self.phase, MultiPhase::Finished { .. }) {
            return Ok(events);
        }
        // Everything the reorder buffer still holds is delivered now, in
        // timestamp order, before the trailing window seals.
        for frame in self.front.drain() {
            self.ingest(&frame, &mut events)?;
        }
        if matches!(self.phase, MultiPhase::Training { .. }) {
            self.end_training(&mut events)?;
        }
        let MultiPhase::Detecting(mut state) =
            std::mem::replace(&mut self.phase, MultiPhase::Finished { references: Vec::new() })
        else {
            unreachable!("finish handled Training and Finished above");
        };
        if let Some(sealed) = state.clock.finish() {
            let current = std::mem::take(&mut state.current);
            close_multi_window(
                &CloseArgs {
                    spec: &self.spec,
                    cfg: &self.cfg,
                    state: &state,
                    score_unknown: self.score_unknown,
                    quorum: self.quorum,
                },
                &mut self.scratches,
                &mut self.front.health,
                sealed,
                current,
                &mut events,
            );
            self.windows_closed += 1;
        }
        self.phase = MultiPhase::Finished { references: state.references };
        Ok(events)
    }

    /// The engine's lifecycle phase.
    #[must_use]
    pub fn phase(&self) -> EnginePhase {
        match self.phase {
            MultiPhase::Training { .. } => EnginePhase::Training,
            MultiPhase::Detecting(_) => EnginePhase::Detecting,
            MultiPhase::Finished { .. } => EnginePhase::Finished,
        }
    }

    /// The fusion spec the engine runs.
    #[must_use]
    pub fn spec(&self) -> &FusionSpec {
        &self.spec
    }

    /// The shared configuration the engine runs.
    #[must_use]
    pub fn config(&self) -> &MultiConfig {
        &self.cfg
    }

    /// One parameter's (frozen) reference database, once one exists —
    /// `None` while still training or for a parameter outside the spec.
    #[must_use]
    pub fn reference(&self, parameter: NetworkParameter) -> Option<&ReferenceDb> {
        let idx = self.spec.parameters().position(|p| p == parameter)?;
        match &self.phase {
            MultiPhase::Training { .. } => None,
            MultiPhase::Detecting(state) => state.references.get(idx),
            MultiPhase::Finished { references } => references.get(idx),
        }
    }

    /// Consumes the engine, handing over the per-parameter reference
    /// databases (empty while still training) — ready to seed another
    /// engine's [`MultiEngineBuilder::references`].
    #[must_use]
    pub fn into_references(self) -> BTreeMap<NetworkParameter, ReferenceDb> {
        let references = match self.phase {
            MultiPhase::Training { .. } => Vec::new(),
            MultiPhase::Detecting(state) => state.references,
            MultiPhase::Finished { references } => references,
        };
        self.spec.parameters().zip(references).collect()
    }

    /// Frames observed so far (training + detection).
    #[must_use]
    pub fn frames_observed(&self) -> u64 {
        self.frames
    }

    /// Frames that fell into the training phase.
    #[must_use]
    pub fn train_frames(&self) -> u64 {
        self.train_frames
    }

    /// Detection windows closed so far.
    #[must_use]
    pub fn windows_closed(&self) -> u64 {
        self.windows_closed
    }

    /// The ingest-health counter block: frames seen/duplicate/corrupt/
    /// late-dropped/reordered and windows that closed with a degraded
    /// fused score. Cheap (a `Copy` snapshot); poll it any time.
    #[must_use]
    pub fn health(&self) -> EngineHealth {
        self.front.health
    }

    /// The resilience configuration the engine runs.
    #[must_use]
    pub fn resilience(&self) -> &ResilienceConfig {
        self.front.config()
    }

    /// Frames admitted but still waiting in the reorder buffer (always 0
    /// outside [`LateFramePolicy::Reorder`](super::LateFramePolicy::Reorder)).
    #[must_use]
    pub fn pending_frames(&self) -> usize {
        self.front.pending_frames()
    }

    /// Training → detection: per parameter, enroll the devices that met
    /// the floor, freeze, emit [`MultiEvent::Enrolled`]s. A parameter
    /// that enrolled nobody degrades to an empty (frozen) database —
    /// exactly like the single engine's empty-training degradation.
    fn end_training(&mut self, events: &mut Vec<MultiEvent>) -> Result<(), EngineError> {
        let MultiPhase::Training { devices, .. } =
            std::mem::replace(&mut self.phase, MultiPhase::Finished { references: Vec::new() })
        else {
            unreachable!("end_training is only called while training");
        };
        // `max(1)`: a parameter a device never produced an observation
        // for has an empty signature in the fused per-device vector;
        // the single-parameter SignatureBuilder never tracked such a
        // device at all, and the reference database rejects empty rows.
        let min = self.cfg.min_observations.max(1);
        let mut references: Vec<ReferenceDb> = (0..self.spec.len())
            .map(|_| ReferenceDb::with_config(self.cfg.match_config))
            .collect();
        for (device, sigs) in devices {
            let mut observations = Vec::new();
            for ((i, sig), param) in sigs.into_iter().enumerate().zip(self.spec.parameters()) {
                if sig.observation_count() >= min {
                    observations.push((param, sig.observation_count()));
                    if let Err(e) = references[i].insert(device, sig) {
                        self.phase = MultiPhase::Finished { references: Vec::new() };
                        return Err(e.into());
                    }
                }
            }
            if !observations.is_empty() {
                events.push(MultiEvent::Enrolled { device, observations });
            }
        }
        for db in &mut references {
            db.freeze();
        }
        // The single-parameter path starts detection with a fresh
        // extractor (no history across the split); mirror that so
        // per-parameter decisions stay bit-identical.
        self.extractor.reset_history();
        self.phase = MultiPhase::Detecting(DetectState::new(references, &self.spec, self.cfg.window));
        Ok(())
    }
}

/// A [`MatchScratch`] checked out of the engine's warm pool for one
/// fan-out worker; returning it on drop keeps the buffers (grown to the
/// reference size) alive across window closes.
struct PooledScratch<'a> {
    pool: &'a std::sync::Mutex<Vec<MatchScratch>>,
    inner: MatchScratch,
}

impl Drop for PooledScratch<'_> {
    fn drop(&mut self) {
        if let Ok(mut pool) = self.pool.lock() {
            pool.push(std::mem::take(&mut self.inner));
        }
    }
}

/// The per-window context [`close_multi_window`] needs from the engine.
struct CloseArgs<'a> {
    spec: &'a FusionSpec,
    cfg: &'a MultiConfig,
    state: &'a DetectState,
    score_unknown: bool,
    /// Minimum scored parameter views for a fused score (see
    /// [`ResilienceConfig::fusion_quorum`]).
    quorum: usize,
}

/// Scores one sealed window: per parameter, sweep the qualifying
/// candidates against that parameter's reference matrix in
/// [`MATCH_TILE`]-wide tiles, then fuse each candidate's per-parameter
/// vectors into the combined score, and emit the fused events (ascending
/// device address) plus the terminator. A candidate with only a quorum
/// of scored parameters gets a fused score over the survivors, with the
/// missing parameters listed in the event's `degraded` marker;
/// `health.windows_degraded` counts windows emitting at least one such
/// event.
#[allow(clippy::too_many_lines)] // qualify → fan-out sweep → fuse, one linear pass
fn close_multi_window(
    args: &CloseArgs<'_>,
    scratches: &mut Vec<MatchScratch>,
    health: &mut EngineHealth,
    window: usize,
    candidates: BTreeMap<MacAddr, Vec<Signature>>,
    events: &mut Vec<MultiEvent>,
) {
    // One qualifying candidate: per device, which parameters met the
    // floor and (further down) their similarity views.
    struct Candidate {
        device: MacAddr,
        /// Per spec parameter: the qualifying signature, if any.
        sigs: Vec<Option<Signature>>,
        /// Per spec parameter: the similarity view (filled below).
        views: Vec<Option<MatchOutcome>>,
    }

    let CloseArgs { spec, cfg, state, score_unknown, quorum } = *args;
    // `max(1)`: parameters with zero observations stay out, exactly as
    // they never enter a single-parameter window's candidate map.
    let min = cfg.min_observations.max(1);
    let n_params = spec.len();

    // Qualifying candidates, in the map's ascending-address order.
    let mut qualified: Vec<Candidate> = candidates
        .into_iter()
        .filter_map(|(device, sigs)| {
            let sigs: Vec<Option<Signature>> = sigs
                .into_iter()
                .map(|s| (s.observation_count() >= min).then_some(s))
                .collect();
            sigs.iter().any(Option::is_some).then(|| Candidate {
                device,
                views: vec![None; n_params],
                sigs,
            })
        })
        .collect();

    // One tiled sweep per parameter over the candidates that qualified
    // for it — the same matrix–matrix path the single engine drives,
    // skipping strangers when their scoring is off. The five sweeps are
    // independent by construction (each reads its own sharded reference
    // database), so with the `parallel` feature they fan out across
    // `batch::map_tiles_with_scratch` — one parameter per work unit, one
    // scratch per worker; on 1-CPU hosts the map degrades to the serial
    // loop.
    // Workers borrow warm scratches from the engine's pool (returned on
    // drop), so repeated window closes stay allocation-free once the
    // buffers have grown to the reference size.
    let pool = std::sync::Mutex::new(std::mem::take(scratches));
    let checkout = || PooledScratch {
        pool: &pool,
        inner: pool.lock().map_or_else(|_| MatchScratch::new(), |mut p| p.pop().unwrap_or_default()),
    };
    let params: Vec<usize> = (0..n_params).collect();
    let per_param: Vec<Vec<(usize, MatchOutcome)>> = crate::batch::map_tiles_with_scratch(
        &params,
        1,
        checkout,
        |pooled, chunk| {
            let scratch = &mut pooled.inner;
            chunk
                .iter()
                .map(|&p| {
                    let db = &state.references[p];
                    let to_score: Vec<usize> = qualified
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| {
                            c.sigs[p].is_some() && (score_unknown || db.contains(&c.device))
                        })
                        .map(|(i, _)| i)
                        .collect();
                    let mut outcomes = Vec::with_capacity(to_score.len());
                    for tile_ids in to_score.chunks(MATCH_TILE) {
                        let sigs: Vec<&Signature> = tile_ids
                            .iter()
                            .map(|&i| qualified[i].sigs[p].as_ref().expect("qualified"))
                            .collect();
                        let tile = db.match_tile(&sigs, cfg.measure, scratch);
                        outcomes.extend(
                            tile_ids.iter().zip(tile.views()).map(|(&i, v)| (i, v.to_outcome())),
                        );
                    }
                    outcomes
                })
                .collect()
        },
    );
    *scratches = pool.into_inner().unwrap_or_default();
    for (p, outcomes) in per_param.into_iter().enumerate() {
        for (i, outcome) in outcomes {
            qualified[i].views[p] = Some(outcome);
        }
    }

    let total = qualified.len();
    let mut known = 0usize;
    let mut any_degraded = false;
    for candidate in qualified {
        let Candidate { device, sigs, views } = candidate;
        let in_common = state.common.binary_search(&device).is_ok();
        // The fused score wants a scored view for every parameter, but a
        // degraded capture may starve some of them below the floor: fuse
        // over the survivors when at least `quorum` parameters scored,
        // naming the missing ones in `degraded`. The views are borrowed
        // here and handed over to the per-parameter decisions below, no
        // clones.
        let survivors: Vec<&MatchOutcome> = views.iter().flatten().collect();
        let (fused, degraded) = if state.common.is_empty() || survivors.len() < quorum {
            (None, Vec::new())
        } else if survivors.len() == n_params {
            (Some(fuse_outcomes(spec, &survivors, &state.common)), Vec::new())
        } else {
            // Renormalise over the surviving parameters: a sub-spec of
            // the scored (parameter, weight) pairs, weights re-scaled by
            // `fuse_outcomes` itself (it divides by the weight sum).
            let sub = FusionSpec {
                parameters: spec
                    .parameters
                    .iter()
                    .zip(&views)
                    .filter_map(|(&pw, v)| v.is_some().then_some(pw))
                    .collect(),
            };
            let missing: Vec<NetworkParameter> = spec
                .parameters()
                .zip(&views)
                .filter(|(_, v)| v.is_none())
                .map(|(p, _)| p)
                .collect();
            (Some(fuse_outcomes(&sub, &survivors, &state.common)), missing)
        };
        let mut scores = Vec::with_capacity(n_params);
        let mut signatures = Vec::new();
        for (p, ((param, sig), view)) in spec.parameters().zip(sigs).zip(views).enumerate() {
            let Some(sig) = sig else { continue };
            scores.push(ParameterDecision {
                parameter: param,
                known: state.references[p].contains(&device),
                view: view.unwrap_or_else(MatchOutcome::empty),
            });
            if !in_common {
                signatures.push((param, sig));
            }
        }
        if in_common {
            any_degraded |= fused.is_some() && !degraded.is_empty();
            known += 1;
            events.push(MultiEvent::FusedMatch { window, device, scores, fused, degraded });
        } else {
            let fused = fused.filter(|_| score_unknown);
            let degraded = if fused.is_some() { degraded } else { Vec::new() };
            any_degraded |= !degraded.is_empty();
            events.push(MultiEvent::FusedNewDevice {
                window,
                device,
                signatures,
                scores,
                fused,
                degraded,
            });
        }
    }
    if any_degraded {
        health.windows_degraded += 1;
    }
    events.push(MultiEvent::WindowClosed {
        window,
        candidates: total,
        known,
        unknown: total - known,
    });
}

#[cfg(test)]
mod tests {
    use super::super::{Engine, Event};
    use super::*;
    use crate::F32_SCORE_TOLERANCE;
    use wifiprint_ieee80211::{Frame, Rate};

    fn cfg(window_secs: u64, min_obs: u64) -> MultiConfig {
        MultiConfig::default()
            .with_min_observations(min_obs)
            .with_window(Nanos::from_secs(window_secs))
    }

    fn frame(from: u64, t_us: u64, payload: usize) -> CapturedFrame {
        let sta = MacAddr::from_index(from);
        let ap = MacAddr::from_index(99);
        let f = Frame::data_to_ds(sta, ap, ap, payload);
        CapturedFrame::from_frame(&f, Rate::R24M, Nanos::from_micros(t_us), -55)
    }

    /// Two devices with complementary behaviour: same sizes but
    /// different periods (1 vs 2), plus a third with a distinct size.
    fn training_frames() -> Vec<CapturedFrame> {
        let mut frames = Vec::new();
        for i in 0..40u64 {
            frames.push(frame(1, 1_000 + i * 40_000, 300));
            frames.push(frame(2, 2_500 + i * 40_000, 300));
            frames.push(frame(3, 3_900 + i * 25_000, 900));
        }
        frames.sort_by_key(|f| f.t_end);
        frames
    }

    #[test]
    fn builder_rejects_incomplete_or_conflicting_setups() {
        assert!(matches!(
            MultiEngine::builder().build(),
            Err(EngineError::MissingReference)
        ));
        assert!(matches!(
            MultiEngine::builder()
                .references(BTreeMap::new())
                .train_for(Nanos::from_secs(5))
                .build(),
            Err(EngineError::ConflictingReference)
        ));
        assert!(matches!(
            MultiEngine::builder().references(BTreeMap::new()).build(),
            Err(EngineError::Core(CoreError::InvalidConfig { .. }))
        ));
        assert!(matches!(
            MultiEngine::builder().train_for(Nanos::ZERO).build(),
            Err(EngineError::Core(CoreError::InvalidConfig { .. }))
        ));
        assert!(matches!(
            MultiEngine::builder()
                .config(cfg(0, 5))
                .train_for(Nanos::from_secs(5))
                .build(),
            Err(EngineError::Core(CoreError::InvalidConfig { .. }))
        ));
        let empty_spec = FusionSpec { parameters: vec![] };
        assert!(matches!(
            MultiEngine::builder().spec(empty_spec).train_for(Nanos::from_secs(5)).build(),
            Err(EngineError::Core(CoreError::InvalidConfig { .. }))
        ));
    }

    #[test]
    fn references_mode_requires_every_parameter_nonempty() {
        // Build per-parameter databases via a training-only session.
        let mut trainer = MultiEngine::builder()
            .config(cfg(10, 5))
            .train_for(Nanos::from_secs(3600))
            .build()
            .unwrap();
        trainer.observe_all(&training_frames()).unwrap();
        trainer.finish().unwrap();
        let mut dbs = trainer.into_references();
        assert_eq!(dbs.len(), NetworkParameter::COUNT);
        assert!(dbs.values().all(|db| db.is_frozen() && !db.is_empty()));

        // Missing one parameter's database is rejected.
        let incomplete: BTreeMap<_, _> = dbs
            .iter()
            .filter(|(&p, _)| p != NetworkParameter::FrameSize)
            .map(|(&p, db)| (p, db.snapshot()))
            .collect();
        assert!(matches!(
            MultiEngine::builder().config(cfg(10, 5)).references(incomplete).build(),
            Err(EngineError::Core(CoreError::InvalidConfig { .. }))
        ));
        // An empty database is rejected too.
        dbs.insert(NetworkParameter::FrameSize, ReferenceDb::new());
        assert!(matches!(
            MultiEngine::builder().config(cfg(10, 5)).references(dbs).build(),
            Err(EngineError::Core(CoreError::EmptyDatabase))
        ));
    }

    #[test]
    fn per_parameter_decisions_match_five_single_engines() {
        // The fused engine must reproduce each single-parameter engine's
        // decisions bit for bit: same (window, device) sequence per
        // parameter, same argmax, same scores.
        let mcfg = cfg(1, 5);
        let train = Nanos::from_secs(2);
        let mut frames = training_frames();
        // Detection phase: devices 1 and 3 return; a stranger 7 appears.
        for i in 0..60u64 {
            frames.push(frame(1, 2_100_000 + i * 40_000, 300));
            frames.push(frame(3, 2_103_000 + i * 25_000, 900));
            frames.push(frame(7, 2_106_000 + i * 60_000, 300));
        }
        frames.sort_by_key(|f| f.t_end);

        let mut multi = MultiEngine::builder()
            .config(mcfg.clone())
            .train_for(train)
            .build()
            .unwrap();
        let mut multi_events = multi.observe_all(&frames).unwrap();
        multi_events.append(&mut multi.finish().unwrap());

        for param in NetworkParameter::ALL {
            let mut single = Engine::builder()
                .config(mcfg.eval_config(param))
                .train_for(train)
                .build()
                .unwrap();
            let mut single_events = single.observe_all(&frames).unwrap();
            single_events.append(&mut single.finish().unwrap());

            // Reference databases agree.
            let sdb = single.reference().expect("trained");
            let mdb = multi.reference(param).expect("trained");
            assert_eq!(
                sdb.devices().collect::<Vec<_>>(),
                mdb.devices().collect::<Vec<_>>(),
                "{param}: enrolled devices"
            );

            // Per-window decisions agree.
            let single_decisions: Vec<(usize, MacAddr, MatchOutcome)> = single_events
                .into_iter()
                .filter_map(|e| match e {
                    Event::Match { window, device, view }
                    | Event::NewDevice { window, device, view, .. } => {
                        Some((window, device, view))
                    }
                    _ => None,
                })
                .collect();
            let multi_decisions: Vec<(usize, MacAddr, MatchOutcome)> = multi_events
                .iter()
                .filter_map(|e| match e {
                    MultiEvent::FusedMatch { window, device, scores, .. }
                    | MultiEvent::FusedNewDevice { window, device, scores, .. } => scores
                        .iter()
                        .find(|d| d.parameter == param)
                        .map(|d| (*window, *device, d.view.clone())),
                    _ => None,
                })
                .collect();
            assert_eq!(
                single_decisions.len(),
                multi_decisions.len(),
                "{param}: decision count"
            );
            for ((sw, sd, sv), (mw, md, mv)) in single_decisions.iter().zip(&multi_decisions) {
                assert_eq!((sw, sd), (mw, md), "{param}: decision identity");
                assert_eq!(
                    sv.best().map(|(d, _)| d),
                    mv.best().map(|(d, _)| d),
                    "{param}: argmax for {sd} in window {sw}"
                );
                assert_eq!(sv.similarities().len(), mv.similarities().len());
                for (a, b) in sv.similarities().iter().zip(mv.similarities()) {
                    assert_eq!(a.0, b.0, "{param}: device order");
                    assert!(
                        (a.1 - b.1).abs() < F32_SCORE_TOLERANCE,
                        "{param}: {} vs {}",
                        a.1,
                        b.1
                    );
                }
            }
        }
    }

    #[test]
    fn fused_score_is_the_weighted_average_of_parameter_scores() {
        let mcfg = cfg(1, 5);
        let spec = FusionSpec {
            parameters: vec![
                (NetworkParameter::FrameSize, 3.0),
                (NetworkParameter::InterArrivalTime, 1.0),
            ],
        };
        let mut engine = MultiEngine::builder()
            .spec(spec.clone())
            .config(mcfg)
            .train_for(Nanos::from_secs(2))
            .build()
            .unwrap();
        let mut frames = training_frames();
        for i in 0..40u64 {
            frames.push(frame(1, 2_100_000 + i * 40_000, 300));
        }
        frames.sort_by_key(|f| f.t_end);
        let mut events = engine.observe_all(&frames).unwrap();
        events.append(&mut engine.finish().unwrap());

        let mut checked = 0;
        for event in &events {
            let MultiEvent::FusedMatch { scores, fused: Some(fused), .. } = event else {
                continue;
            };
            assert_eq!(scores.len(), 2);
            for &(device, got) in fused.similarities() {
                let a = scores[0].view.similarity_to(&device).unwrap_or(0.0);
                let b = scores[1].view.similarity_to(&device).unwrap_or(0.0);
                let want = (3.0 * a + 1.0 * b) / 4.0;
                assert!((got - want).abs() < 1e-12, "{got} vs {want}");
            }
            checked += 1;
        }
        assert!(checked > 0, "at least one fused decision");
    }

    #[test]
    fn strangers_surface_as_fused_new_devices_with_a_closest_reference() {
        let mcfg = cfg(1, 5);
        let mut frames = training_frames();
        // A stranger behaving exactly like device 1.
        for i in 0..60u64 {
            frames.push(frame(1, 2_100_000 + i * 40_000, 300));
            frames.push(frame(7, 2_101_000 + i * 40_000, 300));
        }
        frames.sort_by_key(|f| f.t_end);
        let mut engine = MultiEngine::builder()
            .config(mcfg)
            .train_for(Nanos::from_secs(2))
            .build()
            .unwrap();
        let mut events = engine.observe_all(&frames).unwrap();
        events.append(&mut engine.finish().unwrap());

        let stranger = MacAddr::from_index(7);
        let fused_view = events
            .iter()
            .find_map(|e| match e {
                MultiEvent::FusedNewDevice { device, fused: Some(f), signatures, .. }
                    if *device == stranger =>
                {
                    assert!(!signatures.is_empty(), "candidate signatures handed over");
                    Some(f.clone())
                }
                _ => None,
            })
            .expect("stranger flagged with a fused view");
        // Fused across parameters, the clone points at device 1.
        assert_eq!(fused_view.best().unwrap().0, MacAddr::from_index(1));
    }

    #[test]
    fn advance_to_emits_what_a_later_frame_would_have() {
        // Identical prefixes; then one engine sees a much later frame,
        // the other a tick at the same timestamp. The sealed window's
        // decisions must be identical (the frame itself only opens the
        // next window).
        let build = || {
            let mut trainer = MultiEngine::builder()
                .config(cfg(1, 5))
                .train_for(Nanos::from_secs(3600))
                .build()
                .unwrap();
            trainer.observe_all(&training_frames()).unwrap();
            trainer.finish().unwrap();
            MultiEngine::builder()
                .config(cfg(1, 5))
                .references(trainer.into_references())
                .build()
                .unwrap()
        };
        let mut by_frame = build();
        let mut by_tick = build();
        for i in 0..30u64 {
            let f = frame(1, 10_000_000 + i * 30_000, 300);
            assert!(by_frame.observe(&f).unwrap().is_empty());
            assert!(by_tick.observe(&f).unwrap().is_empty());
        }
        let later = Nanos::from_micros(12_000_000);
        let frame_events = by_frame.observe(&frame(2, 12_000_000, 300)).unwrap();
        let tick_events = by_tick.advance_to(later).unwrap();
        assert_eq!(frame_events.len(), tick_events.len());
        for (a, b) in frame_events.iter().zip(&tick_events) {
            match (a, b) {
                (
                    MultiEvent::FusedMatch { window: wa, device: da, fused: fa, .. },
                    MultiEvent::FusedMatch { window: wb, device: db_, fused: fb, .. },
                ) => {
                    assert_eq!((wa, da), (wb, db_));
                    assert_eq!(
                        fa.as_ref().map(FusedOutcome::similarities),
                        fb.as_ref().map(FusedOutcome::similarities)
                    );
                }
                (MultiEvent::WindowClosed { window: wa, .. }, MultiEvent::WindowClosed { window: wb, .. }) => {
                    assert_eq!(wa, wb);
                }
                other => panic!("event sequences diverged: {other:?}"),
            }
        }
        // The tick advanced the monotonicity floor: older frames are
        // now rejected rather than silently mis-windowed.
        assert!(matches!(
            by_tick.observe(&frame(1, 11_000_000, 300)),
            Err(EngineError::NonMonotonicFrame { .. })
        ));
        // A finish after the tick does not re-close the sealed window.
        let tail = by_tick.finish().unwrap();
        assert!(tail.is_empty(), "tick already sealed the trailing window: {tail:?}");
    }

    #[test]
    fn tick_seals_the_open_window_without_a_timestamp() {
        let mut trainer = MultiEngine::builder()
            .config(cfg(1, 5))
            .train_for(Nanos::from_secs(3600))
            .build()
            .unwrap();
        trainer.observe_all(&training_frames()).unwrap();
        trainer.finish().unwrap();
        let mut engine = MultiEngine::builder()
            .config(cfg(1, 5))
            .references(trainer.into_references())
            .build()
            .unwrap();
        assert!(engine.tick().unwrap().is_empty(), "no open window yet");
        for i in 0..30u64 {
            engine.observe(&frame(1, 10_000_000 + i * 30_000, 300)).unwrap();
        }
        let events = engine.tick().unwrap();
        assert!(
            events.iter().any(|e| matches!(e,
                MultiEvent::FusedMatch { device, .. } if *device == MacAddr::from_index(1))),
            "tick forces the pending decision: {events:?}"
        );
        assert!(engine.tick().unwrap().is_empty(), "second tick has nothing to seal");
        assert_eq!(engine.windows_closed(), 1);
    }

    #[test]
    fn finish_scores_the_trailing_partial_window() {
        // Regression (quiet-channel fix): a stream that ends mid-window
        // still gets its last window scored — the frames are not
        // silently dropped just because no later frame arrived.
        let mut trainer = MultiEngine::builder()
            .config(cfg(1, 5))
            .train_for(Nanos::from_secs(3600))
            .build()
            .unwrap();
        trainer.observe_all(&training_frames()).unwrap();
        trainer.finish().unwrap();
        let mut engine = MultiEngine::builder()
            .config(cfg(1, 5))
            .references(trainer.into_references())
            .build()
            .unwrap();
        // 10 frames spanning 0.3 s: the 1 s window never closes on its
        // own.
        for i in 0..10u64 {
            assert!(engine.observe(&frame(1, 10_000_000 + i * 30_000, 300)).unwrap().is_empty());
        }
        let tail = engine.finish().unwrap();
        let Some(MultiEvent::FusedMatch { window: 0, device, fused: Some(fused), .. }) =
            tail.first()
        else {
            panic!("expected a scored trailing-window decision, got {tail:?}");
        };
        assert_eq!(*device, MacAddr::from_index(1));
        assert_eq!(fused.best().unwrap().0, MacAddr::from_index(1));
        assert!(matches!(
            tail.last(),
            Some(MultiEvent::WindowClosed { window: 0, candidates: 1, known: 1, unknown: 0 })
        ));
    }

    #[test]
    fn training_only_session_is_the_enrollment_entry_point() {
        let mut engine = MultiEngine::builder()
            .config(cfg(10, 5))
            .train_for(Nanos::from_secs(3600))
            .build()
            .unwrap();
        assert_eq!(engine.phase(), EnginePhase::Training);
        engine.observe_all(&training_frames()).unwrap();
        let events = engine.finish().unwrap();
        assert_eq!(engine.phase(), EnginePhase::Finished);
        let enrolled: Vec<_> = events
            .iter()
            .filter_map(|e| match e {
                MultiEvent::Enrolled { device, observations } => Some((*device, observations)),
                _ => None,
            })
            .collect();
        assert_eq!(enrolled.len(), 3);
        // Ascending device order; every parameter qualified; the
        // history-based parameters observe one frame fewer.
        for (i, (device, observations)) in enrolled.iter().enumerate() {
            assert_eq!(*device, MacAddr::from_index(i as u64 + 1));
            assert_eq!(observations.len(), NetworkParameter::COUNT);
            let by_param: BTreeMap<_, _> = observations.iter().copied().collect();
            assert_eq!(by_param[&NetworkParameter::FrameSize], 40);
            assert!(by_param[&NetworkParameter::InterArrivalTime] <= 40);
        }
        let dbs = engine.into_references();
        assert!(dbs.values().all(|db| db.len() == 3 && db.is_frozen()));
    }

    #[test]
    fn finished_engine_rejects_further_use() {
        let mut engine = MultiEngine::builder()
            .config(cfg(10, 5))
            .train_for(Nanos::from_secs(3600))
            .build()
            .unwrap();
        engine.observe(&frame(1, 1_000, 300)).unwrap();
        engine.finish().unwrap();
        assert!(matches!(engine.observe(&frame(1, 2_000, 300)), Err(EngineError::Finished)));
        assert!(matches!(engine.advance_to(Nanos::from_secs(10)), Err(EngineError::Finished)));
        assert!(matches!(engine.tick(), Err(EngineError::Finished)));
        // finish() itself is idempotent: no error, no duplicate trailing
        // window — just an empty event list.
        assert!(engine.finish().unwrap().is_empty());
        assert!(engine.finish().unwrap().is_empty());
    }

    #[test]
    fn out_of_order_frames_are_rejected_without_corrupting_state() {
        let mut engine = MultiEngine::builder()
            .config(cfg(10, 1))
            .train_for(Nanos::from_secs(3600))
            .build()
            .unwrap();
        engine.observe(&frame(1, 5_000, 300)).unwrap();
        assert!(matches!(
            engine.observe(&frame(1, 4_000, 300)),
            Err(EngineError::NonMonotonicFrame { .. })
        ));
        engine.observe(&frame(1, 6_000, 300)).unwrap();
        assert_eq!(engine.frames_observed(), 2);
    }

    #[test]
    fn single_parameter_spec_behaves_like_one_engine_with_fusion_identity() {
        // FusionSpec::single is the drop-in shape: the fused score IS
        // the one parameter's score over the enrolled set.
        let mcfg = cfg(1, 5);
        let spec = FusionSpec::single(NetworkParameter::FrameSize);
        let mut engine = MultiEngine::builder()
            .spec(spec)
            .config(mcfg)
            .train_for(Nanos::from_secs(2))
            .build()
            .unwrap();
        let mut frames = training_frames();
        for i in 0..40u64 {
            frames.push(frame(3, 2_100_000 + i * 25_000, 900));
        }
        frames.sort_by_key(|f| f.t_end);
        let mut events = engine.observe_all(&frames).unwrap();
        events.append(&mut engine.finish().unwrap());
        let mut seen = 0;
        for event in &events {
            let MultiEvent::FusedMatch { scores, fused: Some(fused), .. } = event else {
                continue;
            };
            for &(device, got) in fused.similarities() {
                let single = scores[0].view.similarity_to(&device).unwrap_or(0.0);
                assert!((got - single).abs() < 1e-12);
            }
            seen += 1;
        }
        assert!(seen > 0);
    }

    #[test]
    fn degraded_window_fuses_over_surviving_parameters_under_quorum() {
        use crate::engine::ResilienceConfig;
        // A sparse window: exactly 5 frames from device 1. The per-frame
        // parameters (size, rate, transmission time) observe all 5; the
        // history-based ones (inter-arrival, medium access) observe 4 —
        // under the floor — so the window closes with 3 of 5 views.
        let sparse_run = |resilience: ResilienceConfig| {
            let mut trainer = MultiEngine::builder()
                .config(cfg(1, 5))
                .train_for(Nanos::from_secs(3600))
                .build()
                .unwrap();
            trainer.observe_all(&training_frames()).unwrap();
            trainer.finish().unwrap();
            let mut engine = MultiEngine::builder()
                .config(cfg(1, 5))
                .references(trainer.into_references())
                .resilience(resilience)
                .build()
                .unwrap();
            for i in 0..5u64 {
                engine.observe(&frame(1, 10_000_000 + i * 30_000, 300)).unwrap();
            }
            let events = engine.finish().unwrap();
            let health = engine.health();
            (events, health)
        };

        // Default (strict): a missing view poisons the fused score.
        let (events, health) = sparse_run(ResilienceConfig::default());
        let Some(MultiEvent::FusedMatch { fused, degraded, .. }) = events.first() else {
            panic!("expected a trailing-window decision, got {events:?}");
        };
        assert!(fused.is_none(), "all-parameter quorum unmet: no fused score");
        assert!(degraded.is_empty());
        assert_eq!(health.windows_degraded, 0);

        // Quorum 1: fuse over the survivors, name the missing ones.
        let (events, health) = sparse_run(ResilienceConfig::default().with_fusion_quorum(Some(1)));
        let Some(MultiEvent::FusedMatch { device, fused: Some(fused), degraded, .. }) =
            events.first()
        else {
            panic!("expected a degraded fused decision, got {events:?}");
        };
        assert_eq!(*device, MacAddr::from_index(1));
        assert_eq!(fused.best().unwrap().0, MacAddr::from_index(1));
        assert_eq!(degraded.len(), 2, "the two history-based parameters starved");
        assert!(degraded.contains(&NetworkParameter::InterArrivalTime));
        assert!(degraded.contains(&NetworkParameter::MediumAccessTime));
        assert_eq!(health.windows_degraded, 1);

        // A quorum above the surviving count still refuses to fuse.
        let (events, _) = sparse_run(ResilienceConfig::default().with_fusion_quorum(Some(4)));
        let Some(MultiEvent::FusedMatch { fused, degraded, .. }) = events.first() else {
            panic!("expected a trailing-window decision, got {events:?}");
        };
        assert!(fused.is_none(), "3 surviving views < quorum 4");
        assert!(degraded.is_empty());
    }

    #[test]
    fn observe_all_reports_the_failing_frame_index() {
        let mut engine = MultiEngine::builder()
            .config(cfg(10, 1))
            .train_for(Nanos::from_secs(3600))
            .build()
            .unwrap();
        let frames =
            vec![frame(1, 5_000, 300), frame(1, 6_000, 300), frame(1, 4_000, 300)];
        let err = engine.observe_all(&frames).unwrap_err();
        let EngineError::Batch { index, source } = err else {
            panic!("expected a batch error, got {err:?}");
        };
        assert_eq!(index, 2);
        assert!(matches!(*source, EngineError::NonMonotonicFrame { .. }));
        // The two good frames were processed; the caller can skip past
        // index 2 and resume.
        assert_eq!(engine.frames_observed(), 2);
        engine.observe(&frame(1, 7_000, 300)).unwrap();
    }

    #[test]
    fn reorder_policy_restores_shuffled_streams_bit_identically() {
        use crate::engine::{LateFramePolicy, ResilienceConfig};
        // Same traffic, one stream locally shuffled within a 4-frame
        // horizon: with `Reorder { max_lateness: 8 }` the emitted events
        // must be bit-identical to the in-order run.
        let build = |resilience: ResilienceConfig| {
            MultiEngine::builder()
                .config(cfg(1, 5))
                .train_for(Nanos::from_secs(2))
                .resilience(resilience)
                .build()
                .unwrap()
        };
        let mut frames = training_frames();
        // Strictly distinct timestamps (40 kµs and 25 kµs lattices never
        // meet off a 13 kµs offset), so re-sequencing is unambiguous.
        for i in 0..60u64 {
            frames.push(frame(1, 2_100_000 + i * 40_000, 300));
            frames.push(frame(3, 2_113_000 + i * 25_000, 900));
        }
        frames.sort_by_key(|f| f.t_end);
        let mut shuffled = frames.clone();
        for chunk in shuffled.chunks_mut(4) {
            chunk.reverse();
        }

        let run = |engine: &mut MultiEngine, frames: &[CapturedFrame]| {
            let mut events = engine.observe_all(frames).unwrap();
            events.append(&mut engine.finish().unwrap());
            events
        };
        let mut in_order = build(ResilienceConfig::default());
        let reorder_cfg = ResilienceConfig::default()
            .with_late_policy(LateFramePolicy::Reorder { max_lateness: 8 });
        let mut resequenced = build(reorder_cfg);
        let expected = run(&mut in_order, &frames);
        let got = run(&mut resequenced, &shuffled);
        assert_eq!(format!("{expected:?}"), format!("{got:?}"));
        assert!(resequenced.health().frames_reordered > 0, "the shuffle was real");
        assert_eq!(resequenced.health().frames_late_dropped, 0);
    }

    #[test]
    fn deadline_tick_inside_the_reorder_horizon_keeps_buffered_frames() {
        use crate::engine::{LateFramePolicy, ResilienceConfig};
        // The fused-engine twin of the single-engine regression test: a
        // watchdog-style deadline tick landing inside the reorder
        // buffer's horizon must flush only frames at or before it — the
        // later buffered frames stay pending, are neither dropped nor
        // re-shuffled, and arrive in order at the final drain.
        let resilience = ResilienceConfig::default()
            .with_late_policy(LateFramePolicy::Reorder { max_lateness: 16 });
        let mut engine = MultiEngine::builder()
            .config(cfg(1, 1))
            .train_for(Nanos::from_secs(3600))
            .resilience(resilience)
            .build()
            .unwrap();
        for t_us in [50_000u64, 10_000, 30_000, 70_000, 20_000] {
            assert!(engine.observe(&frame(1, t_us, 300)).unwrap().is_empty());
        }
        assert_eq!(engine.pending_frames(), 5);
        // Deadline at 35 ms: flushes 10/20/30 ms into the core, keeps
        // 50/70 ms buffered.
        assert!(engine.advance_to(Nanos::from_micros(35_000)).unwrap().is_empty());
        assert_eq!(engine.frames_observed(), 3);
        assert_eq!(engine.pending_frames(), 2);
        assert_eq!(engine.health().frames_late_dropped, 0, "the tick dropped nothing");
        // The drain delivers the stragglers: every frame reaches the core.
        engine.finish().unwrap();
        assert_eq!(engine.frames_observed(), 5);
        assert_eq!(engine.pending_frames(), 0);
        assert_eq!(engine.health().frames_late_dropped, 0);
    }
}
