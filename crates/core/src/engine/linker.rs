//! MAC-randomization linking: chaining rotated addresses back to one
//! device identity.
//!
//! The paper's §VII headline is that passive fingerprints survive MAC
//! address changes — the engines already hand every stranger's candidate
//! signatures over in [`Event::NewDevice`] / [`MultiEvent::FusedNewDevice`]
//! events, and this module is the consumer that closes the loop. A
//! [`RotationLinker`] maintains a **gallery** of retained identities —
//! one internal sharded [`ReferenceDb`] per fused parameter, so the hot
//! path reuses the summary-pruned [`ReferenceDb::match_topk`] sweep —
//! and decides, per sighting of an unknown MAC, whether the behaviour
//! behind it is an identity it already knows:
//!
//! * **MAC binding fast path** — an address the linker has already bound
//!   re-links in one map lookup, no gallery sweep;
//! * **universally-administered pre-gate** — a MAC with the U/L bit
//!   *clear* is burned-in and cannot rotate
//!   ([`MacAddr::is_locally_administered`]), so it founds (or re-links)
//!   its own identity without paying for a sweep; only
//!   randomized-looking addresses reach the gallery;
//! * **pruned gallery sweep** — each qualifying per-parameter candidate
//!   signature is ranked against that parameter's gallery via
//!   [`ReferenceDb::match_topk`] and the per-parameter scores are
//!   combined under the configured [`FusionSpec`] weights; the fused
//!   best either links ([`LinkEvent::Linked`], at or above
//!   [`LinkerConfig::accept_threshold`] with a clear
//!   [`LinkerConfig::ambiguity_margin`] over the runner-up), stays
//!   undecided ([`LinkEvent::Ambiguous`], above threshold but inside the
//!   margin), or founds a fresh identity ([`LinkEvent::NewIdentity`]).
//!
//! Retained identities age out under a configurable TTL and a hard
//! gallery cap (least-recently-seen eviction), and every decision and
//! sweep cost is counted into a [`LinkerStats`] snapshot — including the
//! pruned-shard accounting from [`MatchScratch::prune_stats`], so the
//! linking cost is visible right next to its accuracy.
//!
//! # Example
//!
//! ```
//! use wifiprint_core::engine::linker::{LinkEvent, LinkerConfig, RotationLinker};
//! use wifiprint_core::{EvalConfig, FusionSpec, NetworkParameter, Signature};
//! use wifiprint_ieee80211::{FrameKind, MacAddr, Nanos};
//!
//! let cfg = LinkerConfig::default().with_spec(FusionSpec::single(
//!     NetworkParameter::InterArrivalTime,
//! ));
//! let mut linker = RotationLinker::new(cfg)?;
//!
//! // A device's behaviour, observed twice under two randomized MACs.
//! let eval = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime);
//! let mut sig = Signature::new();
//! for i in 0..60 {
//!     sig.record(FrameKind::Data, 400.0 + f64::from(i % 3), &eval);
//! }
//! let sigs = vec![(NetworkParameter::InterArrivalTime, sig)];
//!
//! let first = linker.link(MacAddr::randomized(1), Nanos::from_secs(1), &sigs);
//! let LinkEvent::NewIdentity { identity, .. } = first else { panic!("fresh gallery") };
//! let second = linker.link(MacAddr::randomized(2), Nanos::from_secs(300), &sigs);
//! assert!(matches!(second, LinkEvent::Linked { identity: id, .. } if id == identity));
//! # Ok::<(), wifiprint_core::CoreError>(())
//! ```

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use wifiprint_ieee80211::{MacAddr, Nanos};

use crate::error::CoreError;
use crate::fusion::FusionSpec;
use crate::matching::{MatchConfig, MatchScratch, ReferenceDb};
use crate::params::NetworkParameter;
use crate::signature::Signature;
use crate::similarity::SimilarityMeasure;

use super::multi::MultiEvent;
use super::Event;

/// A linker-assigned device identity: stable across however many MAC
/// addresses the device rotates through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IdentityId(pub u64);

impl std::fmt::Display for IdentityId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "id:{}", self.0)
    }
}

/// Configuration of a [`RotationLinker`].
#[derive(Debug, Clone)]
pub struct LinkerConfig {
    /// Which parameters the gallery keeps (and with what weights the
    /// per-parameter gallery scores fuse). Defaults to
    /// [`FusionSpec::all_equal`] — the [`MultiEngine`](super::MultiEngine)
    /// shape; single-parameter deployments use [`FusionSpec::single`].
    pub spec: FusionSpec,
    /// Minimum fused gallery score to link a sighting to a retained
    /// identity (cosine-weighted, in `[0, 1]`).
    pub accept_threshold: f64,
    /// Minimum lead of the best identity over the runner-up: a best
    /// score above [`LinkerConfig::accept_threshold`] whose lead is
    /// smaller stays [`LinkEvent::Ambiguous`] instead of linking —
    /// trading recall for precision exactly where false merges live.
    pub ambiguity_margin: f64,
    /// How many fused parameters must have produced a qualifying
    /// candidate signature before a gallery link is allowed (clamped to
    /// `[1, spec.len()]`). Sightings below the quorum found a fresh
    /// identity rather than risk linking on starved evidence.
    pub link_quorum: usize,
    /// Gallery candidates ranked per parameter sweep (the pruned
    /// top-`k`); at least 2 so the ambiguity margin has a runner-up to
    /// compare against.
    pub topk: usize,
    /// Hard cap on retained identities; exceeding it evicts the
    /// least-recently-seen identity (its gallery rows and MAC bindings
    /// go with it).
    pub gallery_cap: usize,
    /// Optional age-out: an identity not sighted for this long is
    /// evicted on the next observation.
    pub identity_ttl: Option<Nanos>,
    /// When `true` (default), a universally-administered MAC (U/L bit
    /// clear — a burned-in address that cannot rotate) bypasses the
    /// gallery sweep entirely: the cheap pre-gate that keeps
    /// non-randomized traffic off the hot path.
    pub gate_universal: bool,
    /// When `true`, a gallery link merges the sighting's candidate
    /// signatures into the linked identity's gallery rows (evidence
    /// accumulation). Default `false`: galleries stay exactly the
    /// founding observation, which keeps decisions independent of
    /// sighting order.
    pub update_on_link: bool,
    /// Similarity measure of the gallery sweeps (cosine — the pruned
    /// sweep's admissible-bound measure).
    pub measure: SimilarityMeasure,
    /// Shard layout of the per-parameter gallery databases; sharding is
    /// what makes the pruned sweep prune.
    pub match_config: MatchConfig,
}

impl Default for LinkerConfig {
    /// All five parameters equally weighted, 0.90 accept threshold,
    /// 0.01 ambiguity margin, quorum 1, top-4 ranking, 200 000-identity
    /// cap, no TTL, universal-MAC gate on, 32-shard galleries.
    fn default() -> Self {
        LinkerConfig {
            spec: FusionSpec::all_equal(),
            accept_threshold: 0.90,
            ambiguity_margin: 0.01,
            link_quorum: 1,
            topk: 4,
            gallery_cap: 200_000,
            identity_ttl: None,
            gate_universal: true,
            update_on_link: false,
            measure: SimilarityMeasure::Cosine,
            match_config: MatchConfig::default().with_shards(32),
        }
    }
}

impl LinkerConfig {
    /// Returns a copy with a different fusion spec.
    #[must_use]
    pub fn with_spec(mut self, spec: FusionSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Returns a copy with a different accept threshold.
    #[must_use]
    pub fn with_accept_threshold(mut self, threshold: f64) -> Self {
        self.accept_threshold = threshold;
        self
    }

    /// Returns a copy with a different ambiguity margin.
    #[must_use]
    pub fn with_ambiguity_margin(mut self, margin: f64) -> Self {
        self.ambiguity_margin = margin;
        self
    }

    /// Returns a copy with a different link quorum.
    #[must_use]
    pub fn with_link_quorum(mut self, quorum: usize) -> Self {
        self.link_quorum = quorum;
        self
    }

    /// Returns a copy with a different gallery cap.
    #[must_use]
    pub fn with_gallery_cap(mut self, cap: usize) -> Self {
        self.gallery_cap = cap;
        self
    }

    /// Returns a copy with a different identity TTL.
    #[must_use]
    pub fn with_identity_ttl(mut self, ttl: Option<Nanos>) -> Self {
        self.identity_ttl = ttl;
        self
    }

    /// Returns a copy with the universal-MAC pre-gate on or off.
    #[must_use]
    pub fn with_gate_universal(mut self, gate: bool) -> Self {
        self.gate_universal = gate;
        self
    }

    /// Returns a copy with gallery evidence accumulation on or off.
    #[must_use]
    pub fn with_update_on_link(mut self, update: bool) -> Self {
        self.update_on_link = update;
        self
    }

    /// Returns a copy with a different gallery shard layout.
    #[must_use]
    pub fn with_match_config(mut self, match_config: MatchConfig) -> Self {
        self.match_config = match_config;
        self
    }

    /// Checks the configuration can drive a linker.
    fn validate(&self) -> Result<(), CoreError> {
        self.spec.validate()?;
        if !(0.0..=1.0).contains(&self.accept_threshold) {
            return Err(CoreError::InvalidConfig {
                reason: "linker accept threshold must lie in [0, 1]",
            });
        }
        if !self.ambiguity_margin.is_finite() || self.ambiguity_margin < 0.0 {
            return Err(CoreError::InvalidConfig {
                reason: "linker ambiguity margin must be finite and non-negative",
            });
        }
        if self.topk < 2 {
            return Err(CoreError::InvalidConfig {
                reason: "linker top-k must be at least 2 (the margin needs a runner-up)",
            });
        }
        if self.gallery_cap == 0 {
            return Err(CoreError::InvalidConfig {
                reason: "linker gallery cap must be at least 1",
            });
        }
        Ok(())
    }
}

/// A typed linking decision, one per sighting fed to
/// [`RotationLinker::link`].
#[derive(Debug, Clone, PartialEq)]
pub enum LinkEvent {
    /// The sighting was chained to a retained identity — by exact MAC
    /// binding (confidence 1.0) or by a gallery match at `confidence`
    /// (the fused gallery score).
    Linked {
        /// The retained identity the sighting was chained to.
        identity: IdentityId,
        /// The sighted MAC address (now bound to the identity).
        mac: MacAddr,
        /// Fused gallery score of the link; exactly 1.0 for a MAC
        /// binding or a universal-MAC re-sighting.
        confidence: f64,
    },
    /// No retained identity matched: the sighting founded a fresh one
    /// (its candidate signatures are now gallery rows).
    NewIdentity {
        /// The newly founded identity.
        identity: IdentityId,
        /// The founding MAC address.
        mac: MacAddr,
    },
    /// The best gallery score cleared the accept threshold but not the
    /// ambiguity margin over the runner-up: the linker abstains rather
    /// than risk a false merge. The MAC stays unbound, so a later
    /// sighting of it retries with fresh evidence.
    Ambiguous {
        /// The sighted MAC address (left unbound).
        mac: MacAddr,
        /// The contending identities with their fused gallery scores,
        /// best first.
        contenders: Vec<(IdentityId, f64)>,
    },
}

impl LinkEvent {
    /// The sighted MAC address the event decided on.
    pub fn mac(&self) -> MacAddr {
        match *self {
            LinkEvent::Linked { mac, .. }
            | LinkEvent::NewIdentity { mac, .. }
            | LinkEvent::Ambiguous { mac, .. } => mac,
        }
    }

    /// The identity the sighting resolved to, if the linker decided
    /// (`None` for [`LinkEvent::Ambiguous`]).
    pub fn identity(&self) -> Option<IdentityId> {
        match *self {
            LinkEvent::Linked { identity, .. } | LinkEvent::NewIdentity { identity, .. } => {
                Some(identity)
            }
            LinkEvent::Ambiguous { .. } => None,
        }
    }
}

/// Counter snapshot of a [`RotationLinker`]'s work: every decision,
/// eviction and pruned-sweep cost since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkerStats {
    /// Sightings observed.
    pub sightings: u64,
    /// Sightings chained to a retained identity (all link paths).
    pub linked: u64,
    /// Links resolved by the exact MAC-binding fast path.
    pub linked_by_mac: u64,
    /// Links resolved by a fused gallery sweep.
    pub linked_by_gallery: u64,
    /// Sightings that founded a fresh identity.
    pub new_identities: u64,
    /// Sightings the linker abstained on (inside the ambiguity margin).
    pub ambiguous: u64,
    /// Sightings that skipped the gallery sweep because the MAC is
    /// universally administered ([`LinkerConfig::gate_universal`]).
    pub gate_bypassed: u64,
    /// Identities evicted by the TTL.
    pub evicted_ttl: u64,
    /// Identities evicted by the gallery cap.
    pub evicted_cap: u64,
    /// Retained identities right now.
    pub identities_retained: usize,
    /// Gallery rows resident right now (sum over the per-parameter
    /// databases).
    pub gallery_rows: usize,
    /// Gallery shards actually scored across all sweeps
    /// ([`MatchScratch::prune_stats`], accumulated).
    pub shards_swept: u64,
    /// Gallery shards skipped by the admissible score bound.
    pub shards_pruned: u64,
}

impl LinkerStats {
    /// Fraction of gallery shards the pruned sweeps skipped.
    pub fn pruned_fraction(&self) -> f64 {
        let total = self.shards_swept + self.shards_pruned;
        if total == 0 {
            0.0
        } else {
            self.shards_pruned as f64 / total as f64
        }
    }

    /// Conservation law: every sighting produced exactly one decision.
    pub fn conserves(&self) -> bool {
        self.sightings == self.linked + self.new_identities + self.ambiguous
            && self.linked == self.linked_by_mac + self.linked_by_gallery
    }
}

/// What the linker retains about one identity.
#[derive(Debug, Clone)]
struct IdentityRecord {
    last_seen: Nanos,
    sightings: u64,
    /// Every MAC bound to this identity, binding order (first is the
    /// founding address). Needed to clear the bindings on eviction.
    macs: Vec<MacAddr>,
}

/// The streaming MAC-randomization linker (see the [module docs](self)).
#[derive(Debug)]
pub struct RotationLinker {
    cfg: LinkerConfig,
    /// Effective link quorum (clamped to `[1, spec.len()]`).
    quorum: usize,
    /// `(parameter, weight)` in spec order, denormalised from the spec.
    params: Vec<(NetworkParameter, f64)>,
    /// One gallery database per spec parameter (same order).
    galleries: Vec<ReferenceDb>,
    identities: BTreeMap<u64, IdentityRecord>,
    /// Exact MAC → identity bindings (the fast path).
    bindings: BTreeMap<MacAddr, u64>,
    /// Least-recently-seen index over the identities, for TTL and cap
    /// eviction in `O(log n)`.
    by_last_seen: BTreeSet<(Nanos, u64)>,
    next_id: u64,
    scratch: MatchScratch,
    /// Reused fused-score accumulator (identity → weighted score sum).
    acc: BTreeMap<u64, f64>,
    stats: LinkerStats,
}

/// The gallery databases key identities by a synthetic address derived
/// from the identity number (identities outlive any particular MAC).
fn gallery_key(id: u64) -> MacAddr {
    MacAddr::from_index(id)
}

/// Inverse of [`gallery_key`].
fn key_id(mac: MacAddr) -> u64 {
    let o = mac.octets();
    (u64::from(o[1]) << 32)
        | (u64::from(o[2]) << 24)
        | (u64::from(o[3]) << 16)
        | (u64::from(o[4]) << 8)
        | u64::from(o[5])
}

impl RotationLinker {
    /// Builds a linker from a validated configuration.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidConfig`] for an invalid fusion spec, an
    /// accept threshold outside `[0, 1]`, a negative or non-finite
    /// ambiguity margin, `topk < 2` or a zero gallery cap.
    pub fn new(cfg: LinkerConfig) -> Result<Self, CoreError> {
        cfg.validate()?;
        let params: Vec<(NetworkParameter, f64)> = cfg.spec.parameters.clone();
        let galleries = params.iter().map(|_| ReferenceDb::with_config(cfg.match_config)).collect();
        let quorum = cfg.link_quorum.clamp(1, params.len());
        Ok(RotationLinker {
            quorum,
            params,
            galleries,
            identities: BTreeMap::new(),
            bindings: BTreeMap::new(),
            by_last_seen: BTreeSet::new(),
            next_id: 0,
            scratch: MatchScratch::new(),
            acc: BTreeMap::new(),
            stats: LinkerStats::default(),
            cfg,
        })
    }

    /// The configuration the linker runs.
    pub fn config(&self) -> &LinkerConfig {
        &self.cfg
    }

    /// Observes one sighting — a MAC address seen at `at` with the
    /// per-parameter candidate signatures a detection window produced
    /// for it — and returns the linking decision.
    ///
    /// This is the core entry point; [`RotationLinker::observe_multi`] /
    /// [`RotationLinker::observe_event`] adapt engine events onto it.
    /// Parameters outside the linker's spec are ignored; empty
    /// signatures never enter the gallery.
    pub fn link(
        &mut self,
        mac: MacAddr,
        at: Nanos,
        signatures: &[(NetworkParameter, Signature)],
    ) -> LinkEvent {
        self.stats.sightings += 1;
        self.evict_expired(at);

        // Fast path: an address already bound to an identity re-links
        // in one lookup — with no rotation this is every sighting after
        // a device's first, making the linker the identity map.
        if let Some(&id) = self.bindings.get(&mac) {
            self.touch(id, at, None);
            if self.cfg.update_on_link {
                self.reinforce(id, signatures);
            }
            self.stats.linked += 1;
            self.stats.linked_by_mac += 1;
            return LinkEvent::Linked { identity: IdentityId(id), mac, confidence: 1.0 };
        }

        // Pre-gate: a universally-administered MAC is burned in — it
        // cannot be a rotation of anything, so it founds its own
        // identity without a sweep.
        if self.cfg.gate_universal && mac.is_universally_administered() {
            self.stats.gate_bypassed += 1;
            return self.found(mac, at, signatures);
        }

        let (scored, ranked) = self.sweep(signatures);
        if scored >= self.quorum {
            if let Some(&(best_id, best_score)) = ranked.first() {
                if best_score >= self.cfg.accept_threshold {
                    let runner = ranked.get(1).map_or(0.0, |&(_, s)| s);
                    if best_score - runner >= self.cfg.ambiguity_margin {
                        self.touch(best_id, at, Some(mac));
                        if self.cfg.update_on_link {
                            self.reinforce(best_id, signatures);
                        }
                        self.stats.linked += 1;
                        self.stats.linked_by_gallery += 1;
                        return LinkEvent::Linked {
                            identity: IdentityId(best_id),
                            mac,
                            confidence: best_score,
                        };
                    }
                    // Above threshold but inside the margin: abstain.
                    // The MAC stays unbound so a later, better-evidenced
                    // sighting of it can still decide.
                    self.stats.ambiguous += 1;
                    let contenders = ranked
                        .into_iter()
                        .take_while(|&(_, s)| s >= self.cfg.accept_threshold)
                        .map(|(id, s)| (IdentityId(id), s))
                        .collect();
                    return LinkEvent::Ambiguous { mac, contenders };
                }
            }
        }
        self.found(mac, at, signatures)
    }

    /// Adapts a fused-engine event stream onto [`RotationLinker::link`]:
    /// [`MultiEvent::FusedNewDevice`] carries its per-parameter
    /// candidate signatures into a full sighting, and
    /// [`MultiEvent::FusedMatch`] (an address enrolled in the engine's
    /// own references) passes through as a signature-less sighting so
    /// its MAC binding stays warm. Other events return `None`.
    ///
    /// `at` is the sighting time on the caller's clock (the engines
    /// report window indices, not timestamps — multiply by the window
    /// length, or feed the capture clock).
    pub fn observe_multi(&mut self, event: &MultiEvent, at: Nanos) -> Option<LinkEvent> {
        match event {
            MultiEvent::FusedNewDevice { device, signatures, .. } => {
                Some(self.link(*device, at, signatures))
            }
            MultiEvent::FusedMatch { device, .. } => Some(self.link(*device, at, &[])),
            _ => None,
        }
    }

    /// Adapts a single-parameter engine event stream onto
    /// [`RotationLinker::link`]; `parameter` names the parameter the
    /// engine runs (an [`Event`] does not carry it). See
    /// [`RotationLinker::observe_multi`] for the `at` contract.
    pub fn observe_event(
        &mut self,
        event: &Event,
        parameter: NetworkParameter,
        at: Nanos,
    ) -> Option<LinkEvent> {
        match event {
            Event::NewDevice { device, signature, .. } => {
                let sigs = [(parameter, signature.clone())];
                Some(self.link(*device, at, &sigs))
            }
            Event::Match { device, .. } => Some(self.link(*device, at, &[])),
            _ => None,
        }
    }

    /// The identity a MAC address is currently bound to, if any.
    pub fn identity_of(&self, mac: &MacAddr) -> Option<IdentityId> {
        self.bindings.get(mac).map(|&id| IdentityId(id))
    }

    /// Retained identities right now.
    pub fn identity_count(&self) -> usize {
        self.identities.len()
    }

    /// The MAC addresses bound to an identity, binding order (first is
    /// the founding address). `None` for an unknown or evicted identity.
    pub fn macs_of(&self, identity: IdentityId) -> Option<&[MacAddr]> {
        self.identities.get(&identity.0).map(|r| r.macs.as_slice())
    }

    /// The counter snapshot: decisions, evictions, resident gallery
    /// size and the accumulated pruned-sweep accounting.
    pub fn stats(&self) -> LinkerStats {
        let mut stats = self.stats;
        stats.identities_retained = self.identities.len();
        stats.gallery_rows = self.galleries.iter().map(ReferenceDb::len).sum();
        stats
    }

    /// Ranks the gallery against the sighting's signatures: one pruned
    /// top-k sweep per spec parameter with a qualifying signature,
    /// fused under the spec weights (identities missing from a
    /// parameter's top-k contribute zero for it — conservative).
    /// Returns `(parameters scored, ranked (identity, fused score))`.
    fn sweep(&mut self, signatures: &[(NetworkParameter, Signature)]) -> (usize, Vec<(u64, f64)>) {
        self.acc.clear();
        let mut scored = 0usize;
        let mut weight_total = 0.0f64;
        for (&(param, weight), db) in self.params.iter().zip(&self.galleries) {
            let Some(sig) = signatures
                .iter()
                .find(|(p, s)| *p == param && s.observation_count() > 0)
                .map(|(_, s)| s)
            else {
                continue;
            };
            scored += 1;
            weight_total += weight;
            if db.is_empty() {
                continue;
            }
            let tops = db.match_topk(sig, self.cfg.topk, self.cfg.measure, &mut self.scratch);
            let prune = self.scratch.prune_stats();
            self.stats.shards_swept += prune.swept_shards as u64;
            self.stats.shards_pruned += prune.pruned_shards as u64;
            for (key, score) in tops {
                *self.acc.entry(key_id(key)).or_insert(0.0) += weight * score;
            }
        }
        if weight_total <= 0.0 {
            return (scored, Vec::new());
        }
        let mut ranked: Vec<(u64, f64)> =
            self.acc.iter().map(|(&id, &sum)| (id, sum / weight_total)).collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then_with(|| a.0.cmp(&b.0))
        });
        ranked.truncate(self.cfg.topk);
        (scored, ranked)
    }

    /// Founds a fresh identity from a sighting: enrolls its qualifying
    /// signatures as gallery rows, binds the MAC, and enforces the
    /// gallery cap.
    fn found(
        &mut self,
        mac: MacAddr,
        at: Nanos,
        signatures: &[(NetworkParameter, Signature)],
    ) -> LinkEvent {
        let id = self.next_id;
        self.next_id += 1;
        let key = gallery_key(id);
        for (&(param, _), db) in self.params.iter().zip(&mut self.galleries) {
            let Some(sig) = signatures
                .iter()
                .find(|(p, s)| *p == param && s.observation_count() > 0)
                .map(|(_, s)| s)
            else {
                continue;
            };
            db.insert(key, sig.clone()).expect("gallery databases are never frozen");
        }
        self.identities.insert(id, IdentityRecord { last_seen: at, sightings: 1, macs: vec![mac] });
        self.bindings.insert(mac, id);
        self.by_last_seen.insert((at, id));
        self.stats.new_identities += 1;
        // Cap enforcement never evicts the identity just founded.
        while self.identities.len() > self.cfg.gallery_cap {
            let Some(&(seen, victim)) = self.by_last_seen.iter().find(|&&(_, v)| v != id) else {
                break;
            };
            self.evict(seen, victim);
            self.stats.evicted_cap += 1;
        }
        LinkEvent::NewIdentity { identity: IdentityId(id), mac }
    }

    /// Marks an identity sighted at `at`, optionally binding a fresh
    /// MAC to it.
    fn touch(&mut self, id: u64, at: Nanos, fresh_mac: Option<MacAddr>) {
        let Some(record) = self.identities.get_mut(&id) else { return };
        self.by_last_seen.remove(&(record.last_seen, id));
        record.last_seen = record.last_seen.max(at);
        record.sightings += 1;
        if let Some(mac) = fresh_mac {
            record.macs.push(mac);
            self.bindings.insert(mac, id);
        }
        self.by_last_seen.insert((record.last_seen, id));
    }

    /// Merges a sighting's signatures into an identity's gallery rows
    /// ([`LinkerConfig::update_on_link`]).
    fn reinforce(&mut self, id: u64, signatures: &[(NetworkParameter, Signature)]) {
        let key = gallery_key(id);
        for (&(param, _), db) in self.params.iter().zip(&mut self.galleries) {
            let Some(sig) = signatures
                .iter()
                .find(|(p, s)| *p == param && s.observation_count() > 0)
                .map(|(_, s)| s)
            else {
                continue;
            };
            let merged = match db.get(&key) {
                Some(existing) => {
                    let mut merged = existing.clone();
                    merged.merge(sig);
                    merged
                }
                None => sig.clone(),
            };
            db.insert(key, merged).expect("gallery databases are never frozen");
        }
    }

    /// TTL sweep: evicts every identity whose last sighting is at least
    /// one TTL behind `at`. `O(log n)` per evicted identity, nothing
    /// when the TTL is off.
    fn evict_expired(&mut self, at: Nanos) {
        let Some(ttl) = self.cfg.identity_ttl else { return };
        while let Some(&(seen, id)) = self.by_last_seen.first() {
            if seen.saturating_add(ttl) > at {
                break;
            }
            self.evict(seen, id);
            self.stats.evicted_ttl += 1;
        }
    }

    /// Removes an identity: its LRU entry, its MAC bindings and its
    /// gallery rows.
    fn evict(&mut self, seen: Nanos, id: u64) {
        self.by_last_seen.remove(&(seen, id));
        let Some(record) = self.identities.remove(&id) else { return };
        for mac in &record.macs {
            self.bindings.remove(mac);
        }
        let key = gallery_key(id);
        for db in &mut self.galleries {
            db.remove(&key).expect("gallery databases are never frozen");
        }
    }
}

/// Inserts a candidate's per-parameter signatures into a map of
/// per-parameter reference databases — the conversion a
/// [`MultiEvent::FusedNewDevice`] consumer needs to enroll the newcomer
/// (track-then-enroll, or a linker-style gallery) without hand-rolling
/// it. Missing databases are created with `config`; empty signatures
/// and parameters already enrolled for this device are skipped (the
/// first sighting wins, matching the linker's founding semantics).
///
/// Returns how many `(parameter, signature)` pairs were inserted.
///
/// # Errors
///
/// [`CoreError::FrozenDatabase`] if a target database is frozen; prior
/// insertions stick.
pub fn enroll_signatures(
    dbs: &mut BTreeMap<NetworkParameter, ReferenceDb>,
    config: MatchConfig,
    device: MacAddr,
    signatures: &[(NetworkParameter, Signature)],
) -> Result<usize, CoreError> {
    let mut inserted = 0usize;
    for (param, sig) in signatures {
        if sig.observation_count() == 0 {
            continue;
        }
        let db = dbs.entry(*param).or_insert_with(|| ReferenceDb::with_config(config));
        if db.contains(&device) {
            continue;
        }
        db.insert(device, sig.clone())?;
        inserted += 1;
    }
    Ok(inserted)
}

impl MultiEvent {
    /// Enrolls a [`MultiEvent::FusedNewDevice`]'s candidate signatures
    /// into per-parameter reference databases via
    /// [`enroll_signatures`]; any other event variant is a no-op.
    /// Returns how many `(parameter, signature)` pairs were inserted.
    ///
    /// # Errors
    ///
    /// [`CoreError::FrozenDatabase`] if a target database is frozen.
    pub fn enroll_into(
        &self,
        dbs: &mut BTreeMap<NetworkParameter, ReferenceDb>,
        config: MatchConfig,
    ) -> Result<usize, CoreError> {
        match self {
            MultiEvent::FusedNewDevice { device, signatures, .. } => {
                enroll_signatures(dbs, config, *device, signatures)
            }
            _ => Ok(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use wifiprint_ieee80211::FrameKind;

    const IAT: NetworkParameter = NetworkParameter::InterArrivalTime;

    fn single_cfg() -> LinkerConfig {
        LinkerConfig::default().with_spec(FusionSpec::single(IAT))
    }

    /// A deterministic signature peaked around `center` µs.
    fn sig_at(center: f64, obs: u64) -> Signature {
        let eval = EvalConfig::for_parameter(IAT);
        let mut sig = Signature::new();
        for i in 0..obs {
            let offset = match i % 4 {
                0 | 1 => 0.0,
                2 => -10.0,
                _ => 10.0,
            };
            sig.record(FrameKind::Data, (center + offset).clamp(1.0, 2400.0), &eval);
        }
        sig
    }

    fn sighting(center: f64) -> Vec<(NetworkParameter, Signature)> {
        vec![(IAT, sig_at(center, 60))]
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        assert!(RotationLinker::new(LinkerConfig::default().with_accept_threshold(1.5)).is_err());
        assert!(RotationLinker::new(LinkerConfig::default().with_ambiguity_margin(-0.1)).is_err());
        assert!(RotationLinker::new(LinkerConfig::default().with_gallery_cap(0)).is_err());
        let bad_topk = LinkerConfig { topk: 1, ..LinkerConfig::default() };
        assert!(RotationLinker::new(bad_topk).is_err());
        let empty_spec = LinkerConfig::default().with_spec(FusionSpec { parameters: vec![] });
        assert!(RotationLinker::new(empty_spec).is_err());
        assert!(RotationLinker::new(LinkerConfig::default()).is_ok());
    }

    #[test]
    fn mac_binding_is_the_identity_map() {
        let mut linker = RotationLinker::new(single_cfg()).unwrap();
        let mac = MacAddr::randomized(7);
        let first = linker.link(mac, Nanos::from_secs(1), &sighting(400.0));
        let LinkEvent::NewIdentity { identity, .. } = first else {
            panic!("fresh gallery founds: {first:?}");
        };
        // Same MAC again: linked by binding, confidence exactly 1.0,
        // no second identity, regardless of how different the evidence is.
        let second = linker.link(mac, Nanos::from_secs(2), &sighting(1900.0));
        assert_eq!(
            second,
            LinkEvent::Linked { identity, mac, confidence: 1.0 }
        );
        let stats = linker.stats();
        assert_eq!(stats.linked_by_mac, 1);
        assert_eq!(stats.new_identities, 1);
        assert_eq!(stats.identities_retained, 1);
        assert!(stats.conserves());
        assert_eq!(linker.identity_of(&mac), Some(identity));
        assert_eq!(linker.macs_of(identity), Some(&[mac][..]));
    }

    #[test]
    fn universal_macs_bypass_the_gallery_sweep() {
        let mut linker = RotationLinker::new(single_cfg()).unwrap();
        // Two universally-administered devices with identical behaviour:
        // without the gate the second would link to the first.
        let a = MacAddr::universal_from_index(1);
        let b = MacAddr::universal_from_index(2);
        let ea = linker.link(a, Nanos::from_secs(1), &sighting(700.0));
        let eb = linker.link(b, Nanos::from_secs(2), &sighting(700.0));
        assert!(matches!(ea, LinkEvent::NewIdentity { .. }));
        assert!(matches!(eb, LinkEvent::NewIdentity { .. }));
        assert_ne!(ea.identity(), eb.identity());
        let stats = linker.stats();
        assert_eq!(stats.gate_bypassed, 2);
        assert_eq!(stats.shards_swept + stats.shards_pruned, 0, "no sweep ran");

        // Gate off: the identically-behaving twin *does* link.
        let mut gateless =
            RotationLinker::new(single_cfg().with_gate_universal(false)).unwrap();
        let ea = gateless.link(a, Nanos::from_secs(1), &sighting(700.0));
        let eb = gateless.link(b, Nanos::from_secs(2), &sighting(700.0));
        assert!(matches!(eb, LinkEvent::Linked { .. }));
        assert_eq!(eb.identity(), ea.identity());
    }

    #[test]
    fn gallery_links_rotated_macs_and_separates_strangers() {
        let mut linker = RotationLinker::new(single_cfg()).unwrap();
        let e1 = linker.link(MacAddr::randomized(1), Nanos::from_secs(1), &sighting(500.0));
        let founded = e1.identity().expect("founds");
        // A fresh randomized MAC with the same behaviour links back...
        let e2 = linker.link(MacAddr::randomized(2), Nanos::from_secs(300), &sighting(500.0));
        let LinkEvent::Linked { identity, confidence, mac } = e2 else {
            panic!("same behaviour must link: {e2:?}");
        };
        assert_eq!(identity, founded);
        assert!(confidence >= linker.config().accept_threshold);
        assert_eq!(linker.macs_of(founded).unwrap().len(), 2);
        assert_eq!(linker.identity_of(&mac), Some(founded));
        // ...while a distinct behaviour founds its own identity.
        let e3 = linker.link(MacAddr::randomized(3), Nanos::from_secs(600), &sighting(1800.0));
        assert!(matches!(e3, LinkEvent::NewIdentity { .. }));
        assert_ne!(e3.identity(), Some(founded));
        let stats = linker.stats();
        assert_eq!(stats.linked_by_gallery, 1);
        assert_eq!(stats.new_identities, 2);
        assert!(stats.conserves());
    }

    #[test]
    fn near_ties_abstain_as_ambiguous() {
        // An ambiguity margin no lead can clear turns every would-be
        // link into an abstention — the degenerate case that pins the
        // Ambiguous contract: no binding, counters conserve, the same
        // MAC retries on its next sighting.
        let mut strict = RotationLinker::new(
            single_cfg().with_gate_universal(false).with_ambiguity_margin(2.0),
        )
        .unwrap();
        strict.link(MacAddr::randomized(31), Nanos::from_secs(1), &sighting(900.0));
        strict.link(MacAddr::randomized(32), Nanos::from_secs(2), &sighting(1700.0));
        let e = strict.link(MacAddr::randomized(33), Nanos::from_secs(3), &sighting(900.0));
        let LinkEvent::Ambiguous { contenders, mac } = e else {
            panic!("margin 2.0 can never be cleared: {e:?}");
        };
        assert!(!contenders.is_empty());
        assert!(contenders[0].1 >= strict.config().accept_threshold);
        // Ambiguous leaves the MAC unbound: the same MAC retries later
        // (and an unchanged margin abstains again, conserving counters).
        assert_eq!(strict.identity_of(&mac), None);
        let again = strict.link(mac, Nanos::from_secs(4), &sighting(900.0));
        assert!(matches!(again, LinkEvent::Ambiguous { .. }));
        assert_eq!(strict.stats().ambiguous, 2);
        assert!(strict.stats().conserves());
    }

    #[test]
    fn ttl_and_cap_evict_identities_with_their_bindings() {
        let cfg = single_cfg()
            .with_identity_ttl(Some(Nanos::from_secs(100)))
            .with_gallery_cap(2);
        let mut linker = RotationLinker::new(cfg).unwrap();
        let m1 = MacAddr::randomized(1);
        linker.link(m1, Nanos::from_secs(1), &sighting(300.0));
        linker.link(MacAddr::randomized(2), Nanos::from_secs(60), &sighting(1200.0));
        // TTL: at t=150 the first identity (last seen t=1) ages out;
        // the second (last seen t=60) survives.
        linker.link(MacAddr::randomized(3), Nanos::from_secs(150), &sighting(2100.0));
        assert_eq!(linker.identity_of(&m1), None, "TTL evicted the binding");
        let stats = linker.stats();
        assert_eq!(stats.evicted_ttl, 1);
        assert_eq!(stats.identities_retained, 2);
        // Cap: a fourth identity inside the TTL evicts the LRU one.
        linker.link(MacAddr::randomized(4), Nanos::from_secs(151), &sighting(600.0));
        let stats = linker.stats();
        assert_eq!(stats.evicted_cap, 1);
        assert_eq!(stats.identities_retained, 2);
        assert_eq!(stats.gallery_rows, 2, "evicted gallery rows are gone");
        assert!(stats.conserves());
    }

    #[test]
    fn sweeps_report_prune_stats() {
        // A gallery of identities clustered at well-separated dominant
        // bins: a probe near one cluster must not sweep every shard.
        // The universal-MAC gate enrolls the population without
        // sweeping, so the prune counters isolate the probe sweeps.
        let mut linker = RotationLinker::new(single_cfg()).unwrap();
        for i in 0..160u64 {
            let center = 150.0 * ((i % 16) as f64) + 10.0;
            linker.link(MacAddr::universal_from_index(i + 1), Nanos::from_secs(i), &sighting(center));
        }
        assert_eq!(linker.stats().shards_swept + linker.stats().shards_pruned, 0);
        for j in 0..4u64 {
            linker.link(MacAddr::randomized(j), Nanos::from_secs(200 + j), &sighting(310.0));
        }
        let stats = linker.stats();
        assert!(stats.shards_swept > 0, "gallery sweeps ran: {stats:?}");
        assert!(
            stats.shards_pruned > 0,
            "pruned match_topk must prune on clustered galleries: {stats:?}"
        );
        assert!(stats.pruned_fraction() > 0.0);
        assert!(stats.conserves());
    }

    #[test]
    fn enroll_signatures_round_trips() {
        let sigs = vec![
            (NetworkParameter::FrameSize, sig_at(400.0, 30)),
            (IAT, sig_at(900.0, 40)),
            (NetworkParameter::TransmissionRate, Signature::new()), // empty: skipped
        ];
        let device = MacAddr::randomized(9);
        let mut dbs: BTreeMap<NetworkParameter, ReferenceDb> = BTreeMap::new();
        let inserted =
            enroll_signatures(&mut dbs, MatchConfig::default(), device, &sigs).unwrap();
        assert_eq!(inserted, 2);
        assert_eq!(dbs.len(), 2);
        // Round trip: the enrolled rows are exactly the candidate
        // signatures.
        assert_eq!(dbs[&NetworkParameter::FrameSize].get(&device), Some(&sigs[0].1));
        assert_eq!(dbs[&IAT].get(&device), Some(&sigs[1].1));
        // Re-enrolling the same device is a no-op (first sighting wins).
        let again = enroll_signatures(&mut dbs, MatchConfig::default(), device, &sigs).unwrap();
        assert_eq!(again, 0);
        // The MultiEvent adapter drives the same path.
        let event = MultiEvent::FusedNewDevice {
            window: 3,
            device: MacAddr::randomized(10),
            signatures: vec![(IAT, sig_at(500.0, 25))],
            scores: Vec::new(),
            fused: None,
            degraded: Vec::new(),
        };
        assert_eq!(event.enroll_into(&mut dbs, MatchConfig::default()).unwrap(), 1);
        assert_eq!(dbs[&IAT].len(), 2);
        let closed = MultiEvent::WindowClosed { window: 3, candidates: 0, known: 0, unknown: 0 };
        assert_eq!(closed.enroll_into(&mut dbs, MatchConfig::default()).unwrap(), 0);
    }

    #[test]
    fn quorum_gates_starved_sightings() {
        let spec = FusionSpec::equal_weights([IAT, NetworkParameter::FrameSize]);
        let cfg = LinkerConfig::default().with_spec(spec).with_link_quorum(2);
        let mut linker = RotationLinker::new(cfg).unwrap();
        let full = vec![(IAT, sig_at(800.0, 40)), (NetworkParameter::FrameSize, sig_at(300.0, 40))];
        linker.link(MacAddr::randomized(1), Nanos::from_secs(1), &full);
        // Only one of two parameters scored: below quorum, founds.
        let starved = vec![(IAT, sig_at(800.0, 40))];
        let e = linker.link(MacAddr::randomized(2), Nanos::from_secs(2), &starved);
        assert!(matches!(e, LinkEvent::NewIdentity { .. }), "{e:?}");
        // Full evidence links.
        let e = linker.link(MacAddr::randomized(3), Nanos::from_secs(3), &full);
        assert!(matches!(e, LinkEvent::Linked { .. }), "{e:?}");
    }

    #[test]
    fn update_on_link_merges_gallery_evidence() {
        let cfg = single_cfg().with_update_on_link(true);
        let mut linker = RotationLinker::new(cfg).unwrap();
        let e = linker.link(MacAddr::randomized(1), Nanos::from_secs(1), &sighting(650.0));
        let id = e.identity().unwrap();
        let before = linker.galleries[0].get(&gallery_key(id.0)).unwrap().observation_count();
        linker.link(MacAddr::randomized(2), Nanos::from_secs(2), &sighting(650.0));
        let after = linker.galleries[0].get(&gallery_key(id.0)).unwrap().observation_count();
        assert!(after > before, "linked evidence merged into the gallery row");
    }

    #[test]
    fn gallery_key_round_trips() {
        for id in [0u64, 1, 255, 1 << 20, (1 << 40) - 1] {
            assert_eq!(key_id(gallery_key(id)), id);
        }
    }
}
