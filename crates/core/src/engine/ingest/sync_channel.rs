//! Blocking sender/receiver facades over the shared ring state.
//!
//! The `sync_channel.rs` half of the facade split: these types carry no
//! queue logic of their own — every decision (overload policy, sequence
//! allocation, close semantics) lives in [`state`](super::state). An
//! async facade lands next to this file later, wrapping the *same*
//! [`RingState`] with wakers instead of condition variables, which is
//! why the split exists.

use std::sync::Arc;
use std::time::Duration;

use wifiprint_radiotap::CapturedFrame;

use super::state::{PopOutcome, PushOutcome, RingState};

/// A cloneable blocking producer handle onto the ingest ring. Any
/// number of threads may hold one — submissions interleave under the
/// ring lock, each receiving a dense sequence number.
#[derive(Debug, Clone)]
pub(crate) struct SyncSender {
    state: Arc<RingState>,
}

/// A cloneable blocking consumer handle onto the ingest ring. The
/// supervised pipeline runs one consumer today; the MPMC state supports
/// any number.
#[derive(Debug, Clone)]
pub(crate) struct SyncReceiver {
    state: Arc<RingState>,
}

/// Builds a connected sender/receiver pair over one shared ring.
pub(crate) fn channel(state: Arc<RingState>) -> (SyncSender, SyncReceiver) {
    (SyncSender { state: Arc::clone(&state) }, SyncReceiver { state })
}

impl SyncSender {
    /// Submits one frame under the ring's overload policy (blocking
    /// only under `OverloadPolicy::Block` on a full ring).
    pub(crate) fn send(&self, frame: &CapturedFrame) -> PushOutcome {
        self.state.push(frame)
    }

    /// Closes the channel for every handle.
    pub(crate) fn close(&self) {
        self.state.close();
    }

    /// Tickets currently queued.
    pub(crate) fn len(&self) -> usize {
        self.state.len()
    }
}

impl SyncReceiver {
    /// Receives the oldest ticket, waiting up to `timeout` (forever
    /// when `None`).
    pub(crate) fn recv_timeout(&self, timeout: Option<Duration>) -> PopOutcome {
        self.state.pop_timeout(timeout)
    }

    /// Allocates a sequence number for a non-frame emission (watchdog
    /// tick, final finish batch).
    pub(crate) fn alloc_seq(&self) -> u64 {
        self.state.alloc_seq()
    }
}

#[cfg(test)]
mod tests {
    use super::super::OverloadPolicy;
    use super::*;
    use wifiprint_ieee80211::{FrameKind, MacAddr, Nanos, Rate};

    fn frame(t_us: u64) -> CapturedFrame {
        CapturedFrame {
            t_end: Nanos::from_micros(t_us),
            air_time: Nanos::from_micros(100),
            rate: Rate::R24M,
            size: 200,
            kind: FrameKind::Data,
            transmitter: Some(MacAddr::from_index(1)),
            receiver: MacAddr::from_index(2),
            dest_group: false,
            retry: false,
            signal_dbm: -55,
        }
    }

    #[test]
    fn two_producers_interleave_with_dense_sequence_numbers() {
        let (tx, rx) = channel(Arc::new(RingState::new(64, OverloadPolicy::Block)));
        let tx2 = tx.clone();
        let a = std::thread::spawn(move || {
            for t in 0..10u64 {
                tx2.send(&frame(t));
            }
        });
        for t in 10..20u64 {
            tx.send(&frame(t));
        }
        a.join().expect("producer");
        let mut seqs = Vec::new();
        for _ in 0..20 {
            let PopOutcome::Item(ticket) = rx.recv_timeout(Some(Duration::from_millis(50)))
            else {
                panic!("expected 20 tickets");
            };
            seqs.push(ticket.seq);
        }
        seqs.sort_unstable();
        assert_eq!(seqs, (0..20u64).collect::<Vec<_>>());
    }
}
