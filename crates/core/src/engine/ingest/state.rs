//! Shared state of the bounded MPMC ingest ring.
//!
//! This file is the `state.rs` half of the facade split planned in the
//! roadmap: all queue state (the ring, the sequence counter, the closed
//! flag) lives behind one mutex here, and the condition variables are
//! the only blocking primitive. [`sync_channel`](super::sync_channel)
//! wraps it in blocking sender/receiver facades; an async facade can
//! later wrap the *same* state with wakers instead of condvars without
//! touching the queue logic.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use wifiprint_radiotap::CapturedFrame;

use super::OverloadPolicy;

/// One queued frame, tagged with its submission sequence number (the
/// sequencer's ordering key) and its enqueue instant (for latency
/// accounting).
#[derive(Debug, Clone, Copy)]
pub struct Ticket {
    /// Submission order, assigned under the ring lock — dense across
    /// all producers, with sheds leaving explicit gaps the sequencer is
    /// told about.
    pub seq: u64,
    /// The submitted frame.
    pub frame: CapturedFrame,
    /// When the frame entered the ring (queueing-latency anchor).
    pub enqueued: Instant,
}

/// What [`RingState::push`] did with a submission.
// The `seq` fields are read by the state tests and kept for the async
// facade, which will need them to report gaps without a ticket in hand.
#[allow(dead_code)]
#[derive(Debug)]
pub(crate) enum PushOutcome {
    /// The frame was enqueued under `seq`.
    Enqueued { seq: u64 },
    /// [`OverloadPolicy::ShedNewest`]: the ring was full and the
    /// submitted frame itself was shed; `seq` is its (never-enqueued)
    /// sequence number, which the caller must report to the sequencer
    /// as a gap.
    ShedNewest { seq: u64 },
    /// [`OverloadPolicy::ShedOldest`]: the submitted frame was enqueued
    /// under `seq` and the oldest queued ticket was shed to make room.
    ShedOldest { seq: u64, dropped: Ticket },
    /// The channel is closed (the pipeline is finishing); nothing was
    /// enqueued.
    Closed,
}

/// What [`RingState::pop_timeout`] returned to a consumer.
#[derive(Debug)]
pub(crate) enum PopOutcome {
    /// The oldest queued ticket.
    Item(Ticket),
    /// The ring stayed empty past the deadline — the stall-watchdog
    /// signal.
    TimedOut,
    /// The channel is closed *and* drained: no ticket will ever arrive
    /// again.
    Closed,
}

#[derive(Debug)]
struct Ring {
    queue: VecDeque<Ticket>,
    next_seq: u64,
    closed: bool,
}

/// The bounded MPMC ring: a mutex-guarded queue with two condition
/// variables. Producers of any count share [`RingState::push`];
/// consumers of any count share [`RingState::pop_timeout`] — the
/// supervised pipeline runs one consumer today, but nothing in the
/// state assumes that.
#[derive(Debug)]
pub(crate) struct RingState {
    capacity: usize,
    overload: OverloadPolicy,
    ring: Mutex<Ring>,
    /// Signalled on enqueue and on close.
    not_empty: Condvar,
    /// Signalled on dequeue and on close (for blocked producers).
    not_full: Condvar,
}

impl RingState {
    pub(crate) fn new(capacity: usize, overload: OverloadPolicy) -> Self {
        RingState {
            capacity: capacity.max(1),
            overload,
            ring: Mutex::new(Ring { queue: VecDeque::new(), next_seq: 0, closed: false }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Submits one frame under the configured [`OverloadPolicy`].
    /// `Block` waits for room; the shed policies never wait.
    pub(crate) fn push(&self, frame: &CapturedFrame) -> PushOutcome {
        let mut ring = self.ring.lock().expect("ring lock");
        if ring.closed {
            return PushOutcome::Closed;
        }
        if ring.queue.len() >= self.capacity {
            match self.overload {
                OverloadPolicy::Block => {
                    while ring.queue.len() >= self.capacity && !ring.closed {
                        ring = self.not_full.wait(ring).expect("ring lock");
                    }
                    if ring.closed {
                        return PushOutcome::Closed;
                    }
                }
                OverloadPolicy::ShedNewest => {
                    let seq = ring.next_seq;
                    ring.next_seq += 1;
                    return PushOutcome::ShedNewest { seq };
                }
                OverloadPolicy::ShedOldest => {
                    let dropped = ring.queue.pop_front().expect("len >= capacity >= 1");
                    let seq = ring.next_seq;
                    ring.next_seq += 1;
                    ring.queue.push_back(Ticket { seq, frame: *frame, enqueued: Instant::now() });
                    self.not_empty.notify_one();
                    return PushOutcome::ShedOldest { seq, dropped };
                }
            }
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.queue.push_back(Ticket { seq, frame: *frame, enqueued: Instant::now() });
        self.not_empty.notify_one();
        PushOutcome::Enqueued { seq }
    }

    /// Pops the oldest ticket, waiting up to `timeout` (forever when
    /// `None`). A `TimedOut` return means the ring stayed empty for the
    /// whole deadline — the watchdog's cue to force a window decision.
    pub(crate) fn pop_timeout(&self, timeout: Option<Duration>) -> PopOutcome {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut ring = self.ring.lock().expect("ring lock");
        loop {
            if let Some(ticket) = ring.queue.pop_front() {
                self.not_full.notify_one();
                return PopOutcome::Item(ticket);
            }
            if ring.closed {
                return PopOutcome::Closed;
            }
            match deadline {
                None => ring = self.not_empty.wait(ring).expect("ring lock"),
                Some(deadline) => {
                    let remaining = deadline.saturating_duration_since(Instant::now());
                    if remaining.is_zero() {
                        return PopOutcome::TimedOut;
                    }
                    let (guard, _) =
                        self.not_empty.wait_timeout(ring, remaining).expect("ring lock");
                    ring = guard;
                }
            }
        }
    }

    /// Allocates a fresh sequence number for a non-frame emission (a
    /// watchdog tick or the final `finish` batch), so those events slot
    /// into the sequencer's total order after everything already
    /// submitted.
    pub(crate) fn alloc_seq(&self) -> u64 {
        let mut ring = self.ring.lock().expect("ring lock");
        let seq = ring.next_seq;
        ring.next_seq += 1;
        seq
    }

    /// Closes the channel: producers fail fast, blocked producers wake
    /// with [`PushOutcome::Closed`], and consumers drain the remainder
    /// then see [`PopOutcome::Closed`].
    pub(crate) fn close(&self) {
        let mut ring = self.ring.lock().expect("ring lock");
        ring.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }

    /// Tickets currently queued.
    pub(crate) fn len(&self) -> usize {
        self.ring.lock().expect("ring lock").queue.len()
    }
}

/// Reassembles per-ticket event batches into submission order.
///
/// Workers insert each processed ticket's events under its sequence
/// number; sheds and quarantines close their sequence numbers as gaps.
/// Events release strictly in ascending sequence order, buffering
/// out-of-order insertions until the gap fills — with today's single
/// supervised worker insertions already arrive in order and the
/// sequencer is pass-through, but a future per-shard worker pool
/// delivers through the same component unchanged.
#[derive(Debug)]
pub struct EventSequencer<T> {
    next: u64,
    /// Out-of-order batches (`None` marks a closed gap).
    pending: BTreeMap<u64, Option<Vec<T>>>,
    ready: VecDeque<T>,
}

impl<T> Default for EventSequencer<T> {
    fn default() -> Self {
        EventSequencer { next: 0, pending: BTreeMap::new(), ready: VecDeque::new() }
    }
}

impl<T> EventSequencer<T> {
    /// A sequencer expecting sequence numbers from 0.
    #[must_use]
    pub fn new() -> Self {
        EventSequencer::default()
    }

    /// Inserts the event batch of sequence number `seq`; releases it —
    /// and everything contiguously after it — once every earlier
    /// sequence number has been inserted or closed.
    pub fn insert(&mut self, seq: u64, events: Vec<T>) {
        if seq == self.next {
            self.ready.extend(events);
            self.next += 1;
            self.flush();
        } else if seq > self.next {
            self.pending.insert(seq, Some(events));
        }
        // seq < next: a duplicate of an already-released batch; ignore.
    }

    /// Marks `seq` as never coming (the ticket was shed or its frame
    /// quarantined), so later sequence numbers can release past it.
    pub fn close_gap(&mut self, seq: u64) {
        if seq == self.next {
            self.next += 1;
            self.flush();
        } else if seq > self.next {
            self.pending.insert(seq, None);
        }
    }

    fn flush(&mut self) {
        while let Some(entry) = self.pending.remove(&self.next) {
            if let Some(events) = entry {
                self.ready.extend(events);
            }
            self.next += 1;
        }
    }

    /// Takes every event released so far, in submission order.
    pub fn drain_ready(&mut self) -> Vec<T> {
        self.ready.drain(..).collect()
    }

    /// Event batches still buffered behind a gap.
    #[must_use]
    pub fn pending_batches(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wifiprint_ieee80211::{FrameKind, MacAddr, Nanos, Rate};

    fn frame(t_us: u64) -> CapturedFrame {
        CapturedFrame {
            t_end: Nanos::from_micros(t_us),
            air_time: Nanos::from_micros(100),
            rate: Rate::R24M,
            size: 200,
            kind: FrameKind::Data,
            transmitter: Some(MacAddr::from_index(1)),
            receiver: MacAddr::from_index(2),
            dest_group: false,
            retry: false,
            signal_dbm: -55,
        }
    }

    #[test]
    fn shed_newest_drops_the_submission_itself() {
        let ring = RingState::new(2, OverloadPolicy::ShedNewest);
        assert!(matches!(ring.push(&frame(1)), PushOutcome::Enqueued { seq: 0 }));
        assert!(matches!(ring.push(&frame(2)), PushOutcome::Enqueued { seq: 1 }));
        assert!(matches!(ring.push(&frame(3)), PushOutcome::ShedNewest { seq: 2 }));
        assert_eq!(ring.len(), 2);
        // The queue still holds the two oldest frames.
        let PopOutcome::Item(t) = ring.pop_timeout(Some(Duration::from_millis(1))) else {
            panic!("expected an item");
        };
        assert_eq!(t.seq, 0);
        assert_eq!(t.frame.t_end, Nanos::from_micros(1));
    }

    #[test]
    fn shed_oldest_makes_room_for_the_newest() {
        let ring = RingState::new(2, OverloadPolicy::ShedOldest);
        ring.push(&frame(1));
        ring.push(&frame(2));
        let PushOutcome::ShedOldest { seq, dropped } = ring.push(&frame(3)) else {
            panic!("expected ShedOldest");
        };
        assert_eq!(seq, 2);
        assert_eq!(dropped.seq, 0);
        assert_eq!(dropped.frame.t_end, Nanos::from_micros(1));
        let PopOutcome::Item(t) = ring.pop_timeout(Some(Duration::from_millis(1))) else {
            panic!("expected an item");
        };
        assert_eq!(t.seq, 1, "the second-oldest survives");
    }

    #[test]
    fn close_wakes_consumers_and_fails_producers() {
        let ring = RingState::new(4, OverloadPolicy::Block);
        ring.push(&frame(1));
        ring.close();
        assert!(matches!(ring.push(&frame(2)), PushOutcome::Closed));
        // The queued ticket still drains before Closed.
        assert!(matches!(ring.pop_timeout(None), PopOutcome::Item(_)));
        assert!(matches!(ring.pop_timeout(None), PopOutcome::Closed));
    }

    #[test]
    fn empty_ring_times_out_for_the_watchdog() {
        let ring = RingState::new(4, OverloadPolicy::Block);
        assert!(matches!(
            ring.pop_timeout(Some(Duration::from_millis(5))),
            PopOutcome::TimedOut
        ));
    }

    #[test]
    fn blocked_producer_resumes_when_a_consumer_makes_room() {
        use std::sync::Arc;
        let ring = Arc::new(RingState::new(1, OverloadPolicy::Block));
        ring.push(&frame(1));
        let producer = {
            let ring = Arc::clone(&ring);
            std::thread::spawn(move || ring.push(&frame(2)))
        };
        // The producer is (about to be) blocked on a full ring; popping
        // one ticket unblocks it.
        loop {
            match ring.pop_timeout(Some(Duration::from_millis(50))) {
                PopOutcome::Item(_) => break,
                PopOutcome::TimedOut => {}
                PopOutcome::Closed => panic!("ring closed unexpectedly"),
            }
        }
        assert!(matches!(producer.join().expect("producer"), PushOutcome::Enqueued { seq: 1 }));
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn sequencer_releases_in_order_across_out_of_order_inserts() {
        let mut seq = EventSequencer::new();
        seq.insert(2, vec!["c"]);
        seq.insert(0, vec!["a1", "a2"]);
        assert_eq!(seq.drain_ready(), vec!["a1", "a2"]);
        assert_eq!(seq.pending_batches(), 1, "batch 2 waits for 1");
        seq.insert(1, vec!["b"]);
        assert_eq!(seq.drain_ready(), vec!["b", "c"]);
    }

    #[test]
    fn sequencer_gaps_release_what_they_were_blocking() {
        let mut seq = EventSequencer::new();
        seq.insert(1, vec!["b"]);
        seq.insert(3, vec!["d"]);
        assert!(seq.drain_ready().is_empty());
        seq.close_gap(0); // shed ticket 0
        assert_eq!(seq.drain_ready(), vec!["b"]);
        seq.close_gap(2); // quarantined ticket 2
        assert_eq!(seq.drain_ready(), vec!["d"]);
        assert_eq!(seq.pending_batches(), 0);
    }

    #[test]
    fn sequencer_ignores_duplicate_and_stale_batches() {
        let mut seq = EventSequencer::new();
        seq.insert(0, vec!["a"]);
        seq.insert(0, vec!["stale"]);
        seq.close_gap(0);
        seq.insert(1, vec!["b"]);
        assert_eq!(seq.drain_ready(), vec!["a", "b"]);
    }
}
