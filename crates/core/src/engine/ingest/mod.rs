//! The supervised ingest front: back-pressure, overload shedding,
//! panic isolation and stall watchdogs around either streaming engine.
//!
//! PR 6 hardened the engines against *degraded frames*; this module
//! hardens them against *degraded flow*. An [`IngestPipeline`] owns an
//! engine on a supervised worker thread behind a bounded MPMC ring:
//!
//! * **Back-pressure** — the ring is bounded; an [`OverloadPolicy`]
//!   decides what a full ring does to a submission: `Block` (lossless,
//!   the default), `ShedNewest` (drop the submission) or `ShedOldest`
//!   (drop the stalest queued frame). Every shed is counted in
//!   [`EngineHealth::frames_shed`] and reconciles exactly against the
//!   conservation law ([`EngineHealth::conserves`]).
//! * **Panic isolation** — the worker wraps the window sweep in
//!   [`std::panic::catch_unwind`]. A frame whose sweep panics is moved
//!   into a capped [`Quarantine`] buffer together with the panic
//!   message, the worker restarts around the *same* engine state, and
//!   the stream stays alive ([`EngineHealth::workers_restarted`]).
//!   Frames the engine rejects with an [`EngineError`] (e.g. a late
//!   frame under the strict policy) quarantine through the same path.
//! * **Stall watchdog** — with [`IngestConfig::stall_timeout`] set, a
//!   ring that stays empty past the deadline drives
//!   [`Engine::tick`](super::Engine::tick) /
//!   [`MultiEngine::tick`](super::MultiEngine::tick), so a silent
//!   source can never stall a window decision. The watchdog trades
//!   bit-exact replay determinism for liveness; leave it `None` when
//!   events must be bit-identical to the synchronous run.
//! * **Ordered delivery** — every submission gets a dense sequence
//!   number, and an [`EventSequencer`] reassembles event batches in
//!   submission order (sheds and quarantines close their numbers as
//!   gaps). Under `OverloadPolicy::Block` with no faults and no
//!   watchdog, the delivered event stream is **bit-identical** to
//!   calling `observe` synchronously — a property test pins this for
//!   both engines.
//!
//! The ring is the `sync_channel.rs`/`state.rs` split the roadmap
//! planned: all queue state and policy lives in [`state`], the blocking
//! facade in [`sync_channel`], so an async facade can wrap the same
//! state later without touching core.
//!
//! # Chaos probes
//!
//! Real poison frames are rare and not reproducible on demand, so the
//! supervision path is exercised through two explicitly-labelled chaos
//! knobs: [`IngestConfig::panic_probe`] makes the worker panic on
//! matching frames (simulating a sweep panic, inside the same
//! `catch_unwind` envelope that guards the real sweep), and
//! [`IngestConfig::sweep_delay`] simulates a slow sweep so overload is
//! reachable at test scale. Both default to off and add nothing to the
//! production path.
//!
//! # Example
//!
//! ```
//! use wifiprint_core::engine::ingest::{IngestConfig, IngestPipeline, OverloadPolicy};
//! use wifiprint_core::{Engine, EvalConfig, NetworkParameter};
//! use wifiprint_ieee80211::{Frame, MacAddr, Nanos, Rate};
//! use wifiprint_radiotap::CapturedFrame;
//!
//! let engine = Engine::builder()
//!     .config(EvalConfig::for_parameter(NetworkParameter::InterArrivalTime))
//!     .train_for(Nanos::from_secs(3600))
//!     .build()
//!     .expect("valid engine configuration");
//! let pipeline = IngestPipeline::spawn(engine, IngestConfig::default())
//!     .expect("worker spawns");
//!
//! let sta = MacAddr::from_index(1);
//! let ap = MacAddr::from_index(2);
//! for i in 0..200u64 {
//!     let f = Frame::data_to_ds(sta, ap, ap, 500);
//!     let cap = CapturedFrame::from_frame(&f, Rate::R54M, Nanos::from_micros(800 * (i + 1)), -50);
//!     pipeline.submit(&cap).expect("pipeline accepts while open");
//! }
//! let report = pipeline.finish().expect("supervised session terminates");
//! assert_eq!(report.health.frames_seen, 200);
//! assert!(report.is_reconciled(), "seen = delivered + dropped + shed + quarantined");
//! ```

pub mod state;
pub(crate) mod sync_channel;

pub use state::EventSequencer;

use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use wifiprint_ieee80211::Nanos;
use wifiprint_radiotap::CapturedFrame;

use self::state::{PopOutcome, PushOutcome, RingState, Ticket};
use self::sync_channel::{channel, SyncReceiver, SyncSender};
use super::resilience::EngineHealth;
use super::{Engine, EngineError, Event, MultiEngine, MultiEvent};

/// What a full ingest ring does to a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[non_exhaustive]
pub enum OverloadPolicy {
    /// Apply back-pressure: the submitter blocks until the worker makes
    /// room. Lossless — the default, and the policy under which the
    /// pipeline's event stream is bit-identical to synchronous
    /// `observe`.
    #[default]
    Block,
    /// Shed the submission itself: the newest frame is dropped and
    /// counted, the submitter never blocks. Keeps stale queued frames —
    /// prefer when earlier frames carry more decision value.
    ShedNewest,
    /// Shed the stalest queued frame to make room for the submission.
    /// Keeps the stream fresh under sustained overload — the classic
    /// monitor ring-buffer behaviour.
    ShedOldest,
}

/// Configuration of a supervised [`IngestPipeline`].
#[derive(Clone, Copy)]
pub struct IngestConfig {
    /// Ring capacity in frames (default 1024; clamped to at least 1).
    pub capacity: usize,
    /// Full-ring policy (default [`OverloadPolicy::Block`]).
    pub overload: OverloadPolicy,
    /// Maximum quarantined frames retained for inspection (default 32);
    /// older entries are evicted first. The
    /// [`EngineHealth::frames_quarantined`] *counter* is never capped.
    pub quarantine_capacity: usize,
    /// Stall watchdog deadline: when the ring stays empty this long,
    /// the worker drives the engine's `tick()` so the open window still
    /// gets its decision. `None` (default) disables the watchdog —
    /// required for bit-exact equivalence with synchronous `observe`.
    pub stall_timeout: Option<Duration>,
    /// Chaos knob: a per-frame artificial sweep cost, so overload
    /// behaviour is testable at small scale. `Duration::ZERO` (default)
    /// adds nothing to the processing path.
    pub sweep_delay: Duration,
    /// Chaos knob: frames matching the probe panic inside the worker's
    /// `catch_unwind` envelope, exercising quarantine + restart with a
    /// real unwinding panic. `None` (default) panics on nothing.
    pub panic_probe: Option<fn(&CapturedFrame) -> bool>,
}

impl Default for IngestConfig {
    fn default() -> Self {
        IngestConfig {
            capacity: 1024,
            overload: OverloadPolicy::Block,
            quarantine_capacity: 32,
            stall_timeout: None,
            sweep_delay: Duration::ZERO,
            panic_probe: None,
        }
    }
}

impl fmt::Debug for IngestConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("IngestConfig")
            .field("capacity", &self.capacity)
            .field("overload", &self.overload)
            .field("quarantine_capacity", &self.quarantine_capacity)
            .field("stall_timeout", &self.stall_timeout)
            .field("sweep_delay", &self.sweep_delay)
            .field("panic_probe", &self.panic_probe.map(|_| "fn"))
            .finish()
    }
}

impl IngestConfig {
    /// Returns a copy with a different ring capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }

    /// Returns a copy with a different overload policy.
    #[must_use]
    pub fn with_overload(mut self, overload: OverloadPolicy) -> Self {
        self.overload = overload;
        self
    }

    /// Returns a copy with a different quarantine retention cap.
    #[must_use]
    pub fn with_quarantine_capacity(mut self, capacity: usize) -> Self {
        self.quarantine_capacity = capacity;
        self
    }

    /// Returns a copy with a stall-watchdog deadline.
    #[must_use]
    pub fn with_stall_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.stall_timeout = timeout;
        self
    }

    /// Returns a copy with an artificial per-frame sweep cost (chaos
    /// knob).
    #[must_use]
    pub fn with_sweep_delay(mut self, delay: Duration) -> Self {
        self.sweep_delay = delay;
        self
    }

    /// Returns a copy with a panic probe (chaos knob).
    #[must_use]
    pub fn with_panic_probe(mut self, probe: Option<fn(&CapturedFrame) -> bool>) -> Self {
        self.panic_probe = probe;
        self
    }
}

/// The engine surface the supervised pipeline drives — implemented by
/// both [`Engine`] (single parameter) and [`MultiEngine`] (fused five
/// parameters).
pub trait StreamEngine: Send + 'static {
    /// The typed event the engine emits.
    type Event: fmt::Debug + Send + 'static;

    /// Processes one frame (see `Engine::observe`).
    ///
    /// # Errors
    /// The engine's per-frame failure (late frame under the strict
    /// policy, finished session, training-transition failure).
    fn observe(&mut self, frame: &CapturedFrame) -> Result<Vec<Self::Event>, EngineError>;

    /// Advances the engine clock without a frame (see
    /// `Engine::advance_to`).
    ///
    /// # Errors
    /// `EngineError::Finished` after `finish`, or a training-transition
    /// failure.
    fn advance_to(&mut self, t: Nanos) -> Result<Vec<Self::Event>, EngineError>;

    /// Forces a decision on the open window now (see `Engine::tick`).
    ///
    /// # Errors
    /// `EngineError::Finished` after `finish`.
    fn tick(&mut self) -> Result<Vec<Self::Event>, EngineError>;

    /// Seals the session (see `Engine::finish`).
    ///
    /// # Errors
    /// A training-transition failure.
    fn finish(&mut self) -> Result<Vec<Self::Event>, EngineError>;

    /// The engine's ingest-health counters.
    fn health(&self) -> EngineHealth;

    /// Frames delivered to the engine core so far.
    fn frames_observed(&self) -> u64;

    /// Frames still held by the engine's reorder buffer.
    fn pending_frames(&self) -> usize;
}

impl StreamEngine for Engine {
    type Event = Event;

    fn observe(&mut self, frame: &CapturedFrame) -> Result<Vec<Event>, EngineError> {
        Engine::observe(self, frame)
    }
    fn advance_to(&mut self, t: Nanos) -> Result<Vec<Event>, EngineError> {
        Engine::advance_to(self, t)
    }
    fn tick(&mut self) -> Result<Vec<Event>, EngineError> {
        Engine::tick(self)
    }
    fn finish(&mut self) -> Result<Vec<Event>, EngineError> {
        Engine::finish(self)
    }
    fn health(&self) -> EngineHealth {
        Engine::health(self)
    }
    fn frames_observed(&self) -> u64 {
        Engine::frames_observed(self)
    }
    fn pending_frames(&self) -> usize {
        Engine::pending_frames(self)
    }
}

impl StreamEngine for MultiEngine {
    type Event = MultiEvent;

    fn observe(&mut self, frame: &CapturedFrame) -> Result<Vec<MultiEvent>, EngineError> {
        MultiEngine::observe(self, frame)
    }
    fn advance_to(&mut self, t: Nanos) -> Result<Vec<MultiEvent>, EngineError> {
        MultiEngine::advance_to(self, t)
    }
    fn tick(&mut self) -> Result<Vec<MultiEvent>, EngineError> {
        MultiEngine::tick(self)
    }
    fn finish(&mut self) -> Result<Vec<MultiEvent>, EngineError> {
        MultiEngine::finish(self)
    }
    fn health(&self) -> EngineHealth {
        MultiEngine::health(self)
    }
    fn frames_observed(&self) -> u64 {
        MultiEngine::frames_observed(self)
    }
    fn pending_frames(&self) -> usize {
        MultiEngine::pending_frames(self)
    }
}

/// One quarantined frame: the frame, its submission sequence number,
/// and why it was poisoned (panic message or engine error).
#[derive(Debug, Clone)]
pub struct Quarantined {
    /// Submission sequence number of the poisoned frame.
    pub seq: u64,
    /// The frame itself, retained for offline inspection.
    pub frame: CapturedFrame,
    /// The panic payload (for an isolated panic) or the engine error's
    /// display (for a rejected frame).
    pub reason: String,
}

/// A capped buffer of the most recent [`Quarantined`] frames. The cap
/// bounds *retention*, not accounting: evicted entries stay counted in
/// [`EngineHealth::frames_quarantined`].
#[derive(Debug)]
pub struct Quarantine {
    capacity: usize,
    entries: VecDeque<Quarantined>,
    evicted: u64,
}

impl Quarantine {
    fn new(capacity: usize) -> Self {
        Quarantine { capacity: capacity.max(1), entries: VecDeque::new(), evicted: 0 }
    }

    fn push(&mut self, entry: Quarantined) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(entry);
    }

    /// The retained entries, oldest first.
    #[must_use]
    pub fn entries(&self) -> &VecDeque<Quarantined> {
        &self.entries
    }

    /// Entries evicted to respect the retention cap.
    #[must_use]
    pub fn evicted(&self) -> u64 {
        self.evicted
    }
}

/// A point-in-time snapshot of the pipeline-level counters, readable
/// while the worker is still running ([`IngestPipeline::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct IngestStats {
    /// Frames submitted to the ring.
    pub submitted: u64,
    /// Frames shed by the overload policy.
    pub shed: u64,
    /// Frames quarantined (panic or engine rejection).
    pub quarantined: u64,
    /// Worker restarts after an isolated panic.
    pub worker_restarts: u64,
    /// Watchdog deadline expiries that drove a `tick`.
    pub watchdog_ticks: u64,
    /// Frames currently queued in the ring.
    pub ring_pending: u64,
    /// Sum of enqueue→processed latency over all processed frames, in
    /// nanoseconds.
    pub latency_ns_sum: u64,
    /// Processed frames contributing to the latency sum.
    pub latency_samples: u64,
    /// Worst single enqueue→processed latency, in nanoseconds.
    pub latency_max_ns: u64,
}

impl IngestStats {
    /// Shed fraction of everything submitted (0 when nothing was).
    #[must_use]
    pub fn shed_rate(&self) -> f64 {
        if self.submitted == 0 {
            0.0
        } else {
            self.shed as f64 / self.submitted as f64
        }
    }

    /// Mean enqueue→processed latency in nanoseconds (0 with no
    /// samples).
    #[must_use]
    pub fn mean_latency_ns(&self) -> f64 {
        if self.latency_samples == 0 {
            0.0
        } else {
            self.latency_ns_sum as f64 / self.latency_samples as f64
        }
    }
}

/// Pipeline-level counters, shared between submitters, the worker and
/// snapshot readers.
#[derive(Debug, Default)]
struct SharedStats {
    submitted: AtomicU64,
    shed: AtomicU64,
    quarantined: AtomicU64,
    worker_restarts: AtomicU64,
    watchdog_ticks: AtomicU64,
    latency_ns_sum: AtomicU64,
    latency_samples: AtomicU64,
    latency_max_ns: AtomicU64,
    /// Frames the engine core counted during an observe that then
    /// panicked — subtracted from `frames_observed()` so `delivered`
    /// and `quarantined` never double-count a frame.
    panic_observed_adjust: AtomicU64,
}

/// Everything the producer facades and the worker share.
#[derive(Debug)]
struct PipelineShared<T> {
    sender: SyncSender,
    sequencer: Mutex<EventSequencer<T>>,
    quarantine: Mutex<Quarantine>,
    stats: SharedStats,
}

/// The outcome [`IngestPipeline::submit`] reports for one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The frame was enqueued (possibly after blocking for room).
    Enqueued,
    /// [`OverloadPolicy::ShedNewest`]: the submitted frame was shed.
    ShedNewest,
    /// [`OverloadPolicy::ShedOldest`]: the frame was enqueued and the
    /// stalest queued frame was shed to make room.
    ShedOldest,
}

/// A cloneable producer handle onto a running pipeline — the MPMC
/// "sender" side. Any number of capture threads may submit through
/// their own handle; see [`IngestPipeline::handle`].
#[derive(Debug)]
pub struct IngestHandle<T> {
    shared: Arc<PipelineShared<T>>,
}

impl<T> Clone for IngestHandle<T> {
    fn clone(&self) -> Self {
        IngestHandle { shared: Arc::clone(&self.shared) }
    }
}

impl<T> IngestHandle<T> {
    /// Submits one frame under the pipeline's overload policy.
    ///
    /// # Errors
    ///
    /// [`EngineError::Finished`] once the pipeline is finishing (the
    /// ring is closed).
    pub fn submit(&self, frame: &CapturedFrame) -> Result<SubmitOutcome, EngineError> {
        submit_shared(&self.shared, frame)
    }
}

fn submit_shared<T>(
    shared: &PipelineShared<T>,
    frame: &CapturedFrame,
) -> Result<SubmitOutcome, EngineError> {
    match shared.sender.send(frame) {
        PushOutcome::Enqueued { .. } => {
            shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
            Ok(SubmitOutcome::Enqueued)
        }
        PushOutcome::ShedNewest { seq } => {
            shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            shared.sequencer.lock().expect("sequencer lock").close_gap(seq);
            Ok(SubmitOutcome::ShedNewest)
        }
        PushOutcome::ShedOldest { dropped, .. } => {
            shared.stats.submitted.fetch_add(1, Ordering::Relaxed);
            shared.stats.shed.fetch_add(1, Ordering::Relaxed);
            shared.sequencer.lock().expect("sequencer lock").close_gap(dropped.seq);
            Ok(SubmitOutcome::ShedOldest)
        }
        PushOutcome::Closed => Err(EngineError::Finished),
    }
}

/// The terminal report of a supervised session: the ordered event
/// stream, the engine itself (for `into_reference` etc.), the merged
/// health ledger, the pipeline counters, and the retained quarantine.
#[derive(Debug)]
pub struct IngestReport<E: StreamEngine> {
    /// Every delivered event, in submission order.
    pub events: Vec<E::Event>,
    /// The engine, already `finish()`ed by the worker.
    pub engine: E,
    /// The merged health ledger: the engine's gate counters with
    /// `frames_seen` replaced by the submission count and the
    /// shed/quarantined/restarted counters filled in.
    pub health: EngineHealth,
    /// Final pipeline counters.
    pub stats: IngestStats,
    /// The retained quarantined frames (capped; see
    /// [`Quarantine::evicted`]).
    pub quarantine: Vec<Quarantined>,
    /// Frames the engine core consumed, net of panic-interrupted ones.
    pub delivered: u64,
}

impl<E: StreamEngine> IngestReport<E> {
    /// Whether the session satisfies the conservation law exactly:
    /// `seen = delivered + dropped + shed + quarantined` (everything is
    /// drained after `finish`, so `pending = 0`).
    #[must_use]
    pub fn is_reconciled(&self) -> bool {
        self.health.conserves(self.delivered, self.engine.pending_frames() as u64)
    }
}

/// A supervised ingest front around one [`StreamEngine`]: bounded ring,
/// overload policy, panic-isolating worker, stall watchdog and ordered
/// event delivery. See the [module docs](self).
#[derive(Debug)]
pub struct IngestPipeline<E: StreamEngine> {
    shared: Arc<PipelineShared<E::Event>>,
    worker: Option<JoinHandle<E>>,
}

impl<E: StreamEngine> IngestPipeline<E> {
    /// Spawns the supervised worker around `engine` and opens the ring
    /// for submissions.
    ///
    /// # Errors
    ///
    /// [`EngineError::Supervisor`] when the worker thread cannot be
    /// spawned.
    pub fn spawn(engine: E, cfg: IngestConfig) -> Result<Self, EngineError> {
        let ring = Arc::new(RingState::new(cfg.capacity, cfg.overload));
        let (sender, receiver) = channel(ring);
        let shared = Arc::new(PipelineShared {
            sender,
            sequencer: Mutex::new(EventSequencer::new()),
            quarantine: Mutex::new(Quarantine::new(cfg.quarantine_capacity)),
            stats: SharedStats::default(),
        });
        let worker_shared = Arc::clone(&shared);
        let stall_timeout = cfg.stall_timeout;
        let sweep_delay = cfg.sweep_delay;
        let probe = cfg.panic_probe;
        let worker = std::thread::Builder::new()
            .name("wifiprint-ingest".to_owned())
            .spawn(move || {
                supervise(engine, &worker_shared, &receiver, stall_timeout, sweep_delay, probe)
            })
            .map_err(|e| EngineError::Supervisor { reason: format!("spawn worker: {e}") })?;
        Ok(IngestPipeline { shared, worker: Some(worker) })
    }

    /// Submits one frame under the configured overload policy (blocks
    /// only under [`OverloadPolicy::Block`] on a full ring).
    ///
    /// # Errors
    ///
    /// [`EngineError::Finished`] once the pipeline is finishing.
    pub fn submit(&self, frame: &CapturedFrame) -> Result<SubmitOutcome, EngineError> {
        submit_shared(&self.shared, frame)
    }

    /// A cloneable producer handle, so any number of capture threads
    /// can feed the ring (MPMC).
    #[must_use]
    pub fn handle(&self) -> IngestHandle<E::Event> {
        IngestHandle { shared: Arc::clone(&self.shared) }
    }

    /// Takes every event delivered so far, in submission order.
    ///
    /// # Panics
    ///
    /// If the sequencer lock is poisoned — impossible in practice, the
    /// worker wraps every sweep in its panic isolation.
    pub fn drain_events(&self) -> Vec<E::Event> {
        self.shared.sequencer.lock().expect("sequencer lock").drain_ready()
    }

    /// A snapshot of the pipeline counters.
    #[must_use]
    pub fn stats(&self) -> IngestStats {
        let s = &self.shared.stats;
        IngestStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            quarantined: s.quarantined.load(Ordering::Relaxed),
            worker_restarts: s.worker_restarts.load(Ordering::Relaxed),
            watchdog_ticks: s.watchdog_ticks.load(Ordering::Relaxed),
            ring_pending: self.ring_len() as u64,
            latency_ns_sum: s.latency_ns_sum.load(Ordering::Relaxed),
            latency_samples: s.latency_samples.load(Ordering::Relaxed),
            latency_max_ns: s.latency_max_ns.load(Ordering::Relaxed),
        }
    }

    fn ring_len(&self) -> usize {
        self.shared.sender.len()
    }

    /// The retained quarantined frames so far (clone; the worker keeps
    /// appending).
    ///
    /// # Panics
    ///
    /// If the quarantine lock is poisoned — impossible in practice, the
    /// worker wraps every sweep in its panic isolation.
    #[must_use]
    pub fn quarantined(&self) -> Vec<Quarantined> {
        self.shared.quarantine.lock().expect("quarantine lock").entries.iter().cloned().collect()
    }

    /// Closes the ring, lets the worker drain it and `finish()` the
    /// engine, joins the worker and returns the terminal
    /// [`IngestReport`].
    ///
    /// # Errors
    ///
    /// [`EngineError::Supervisor`] if the worker died outside its panic
    /// isolation (a supervision bug, not a poison frame).
    ///
    /// # Panics
    ///
    /// If an internal lock is poisoned — impossible in practice, the
    /// worker wraps every sweep in its panic isolation.
    pub fn finish(mut self) -> Result<IngestReport<E>, EngineError> {
        self.shared.sender.close();
        let worker = self.worker.take().expect("finish consumes the only owner");
        let engine = worker.join().map_err(|_| EngineError::Supervisor {
            reason: "ingest worker died outside its panic isolation".to_owned(),
        })?;
        let events = self.drain_events();
        let stats = self.stats();
        let adjust = self.shared.stats.panic_observed_adjust.load(Ordering::Relaxed);
        let delivered = engine.frames_observed().saturating_sub(adjust);
        let mut health = engine.health();
        health.frames_seen = stats.submitted;
        health.frames_shed = stats.shed;
        health.frames_quarantined = stats.quarantined;
        health.workers_restarted = stats.worker_restarts;
        let quarantine = {
            let q = self.shared.quarantine.lock().expect("quarantine lock");
            q.entries.iter().cloned().collect()
        };
        Ok(IngestReport { events, engine, health, stats, quarantine, delivered })
    }
}

impl<E: StreamEngine> Drop for IngestPipeline<E> {
    fn drop(&mut self) {
        // An abandoned pipeline must not leak its worker: close the
        // ring and wait for the drain. `finish()` takes the handle, so
        // this only runs for pipelines dropped without finishing.
        if let Some(worker) = self.worker.take() {
            self.shared.sender.close();
            let _ = worker.join();
        }
    }
}

/// The supervision loop: runs the worker under `catch_unwind`; on a
/// panic, quarantines the in-flight frame (with the panic message),
/// counts a restart, and re-enters the worker around the same engine.
/// Returns the engine once the ring is closed and drained.
fn supervise<E: StreamEngine>(
    mut engine: E,
    shared: &Arc<PipelineShared<E::Event>>,
    receiver: &SyncReceiver,
    stall_timeout: Option<Duration>,
    sweep_delay: Duration,
    probe: Option<fn(&CapturedFrame) -> bool>,
) -> E {
    // The in-flight ticket, plus the engine-core frame count before its
    // observe — readable after an unwind, so the supervisor knows what
    // to quarantine and whether the core counted the doomed frame.
    let inflight: std::cell::Cell<Option<(Ticket, u64)>> = std::cell::Cell::new(None);
    loop {
        let run = catch_unwind(AssertUnwindSafe(|| {
            worker_loop(
                &mut engine,
                shared,
                receiver,
                &inflight,
                stall_timeout,
                sweep_delay,
                probe,
            );
        }));
        match run {
            Ok(()) => return engine,
            Err(payload) => {
                // `as_ref`, not `&payload`: coercing `&Box<dyn Any>`
                // would downcast against the Box itself and never match.
                let reason = panic_message(payload.as_ref());
                if let Some((ticket, observed_before)) = inflight.take() {
                    let double_counted =
                        engine.frames_observed().saturating_sub(observed_before);
                    shared
                        .stats
                        .panic_observed_adjust
                        .fetch_add(double_counted, Ordering::Relaxed);
                    quarantine_frame(shared, ticket, reason);
                } else {
                    // A panic outside frame processing (tick/finish):
                    // nothing to quarantine; restart and keep going.
                }
                shared.stats.worker_restarts.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

fn quarantine_frame<T>(shared: &PipelineShared<T>, ticket: Ticket, reason: String) {
    shared.stats.quarantined.fetch_add(1, Ordering::Relaxed);
    shared
        .quarantine
        .lock()
        .expect("quarantine lock")
        .push(Quarantined { seq: ticket.seq, frame: ticket.frame, reason });
    shared.sequencer.lock().expect("sequencer lock").close_gap(ticket.seq);
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The worker proper: pops tickets, drives the engine, feeds the
/// sequencer. Runs until the ring is closed and drained; panics unwind
/// to [`supervise`].
#[allow(clippy::too_many_lines)]
fn worker_loop<E: StreamEngine>(
    engine: &mut E,
    shared: &Arc<PipelineShared<E::Event>>,
    receiver: &SyncReceiver,
    inflight: &std::cell::Cell<Option<(Ticket, u64)>>,
    stall_timeout: Option<Duration>,
    sweep_delay: Duration,
    probe: Option<fn(&CapturedFrame) -> bool>,
) {
    loop {
        match receiver.recv_timeout(stall_timeout) {
            PopOutcome::Item(ticket) => {
                inflight.set(Some((ticket, engine.frames_observed())));
                if !sweep_delay.is_zero() {
                    std::thread::sleep(sweep_delay);
                }
                assert!(
                    !probe.is_some_and(|p| p(&ticket.frame)),
                    "chaos probe: poison frame at {} ns",
                    ticket.frame.t_end.as_nanos()
                );
                let outcome = engine.observe(&ticket.frame);
                let latency = ticket.enqueued.elapsed().as_nanos() as u64;
                shared.stats.latency_ns_sum.fetch_add(latency, Ordering::Relaxed);
                shared.stats.latency_samples.fetch_add(1, Ordering::Relaxed);
                shared.stats.latency_max_ns.fetch_max(latency, Ordering::Relaxed);
                match outcome {
                    Ok(events) => {
                        inflight.set(None);
                        shared
                            .sequencer
                            .lock()
                            .expect("sequencer lock")
                            .insert(ticket.seq, events);
                    }
                    Err(e) => {
                        inflight.set(None);
                        quarantine_frame(shared, ticket, e.to_string());
                    }
                }
            }
            PopOutcome::TimedOut => {
                // Stall watchdog: the source went silent past the
                // deadline — force the open window's decision so the
                // stream of decisions stays live.
                shared.stats.watchdog_ticks.fetch_add(1, Ordering::Relaxed);
                let seq = receiver.alloc_seq();
                match engine.tick() {
                    Ok(events) => shared
                        .sequencer
                        .lock()
                        .expect("sequencer lock")
                        .insert(seq, events),
                    Err(_) => shared.sequencer.lock().expect("sequencer lock").close_gap(seq),
                }
            }
            PopOutcome::Closed => {
                let seq = receiver.alloc_seq();
                match engine.finish() {
                    Ok(events) => shared
                        .sequencer
                        .lock()
                        .expect("sequencer lock")
                        .insert(seq, events),
                    Err(_) => shared.sequencer.lock().expect("sequencer lock").close_gap(seq),
                }
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EvalConfig;
    use crate::engine::resilience::{LateFramePolicy, ResilienceConfig};
    use crate::params::NetworkParameter;
    use wifiprint_ieee80211::{Frame, MacAddr, Rate};

    fn capture(dev: u64, t_us: u64, payload: usize) -> CapturedFrame {
        let sta = MacAddr::from_index(dev + 1);
        let ap = MacAddr::from_index(99);
        let f = Frame::data_to_ds(sta, ap, ap, payload);
        CapturedFrame::from_frame(&f, Rate::R24M, Nanos::from_micros(t_us), -50)
    }

    fn stream(n: u64) -> Vec<CapturedFrame> {
        (0..n).map(|i| capture(i % 3, 500 * (i + 1), 200 + (i % 5) as usize * 100)).collect()
    }

    fn engine(resilience: ResilienceConfig) -> Engine {
        let mut cfg = EvalConfig::for_parameter(NetworkParameter::InterArrivalTime)
            .with_min_observations(3);
        cfg.window = Nanos::from_millis(100);
        Engine::builder()
            .config(cfg)
            .train_for(Nanos::from_millis(200))
            .resilience(resilience)
            .build()
            .expect("valid engine configuration")
    }

    /// The poison marker the chaos probe recognises in these tests: a
    /// zero-size data frame (which no real capture produces here).
    fn is_poison(frame: &CapturedFrame) -> bool {
        frame.size == 0
    }

    #[test]
    fn block_pipeline_matches_synchronous_observe() {
        let frames = stream(400);
        let mut sync = engine(ResilienceConfig::default());
        let mut want = Vec::new();
        for f in &frames {
            want.extend(sync.observe(f).expect("in-order frame"));
        }
        want.extend(sync.finish().expect("finish"));

        let pipeline =
            IngestPipeline::spawn(engine(ResilienceConfig::default()), IngestConfig::default())
                .expect("spawn");
        for f in &frames {
            assert_eq!(pipeline.submit(f).expect("open"), SubmitOutcome::Enqueued);
        }
        let report = pipeline.finish().expect("terminates");
        assert_eq!(format!("{:?}", report.events), format!("{want:?}"));
        assert_eq!(report.health.frames_seen, 400);
        assert_eq!(report.health.frames_shed, 0);
        assert_eq!(report.delivered, 400);
        assert!(report.is_reconciled());
    }

    #[test]
    fn panic_probe_frames_are_quarantined_and_the_stream_survives() {
        let mut frames = stream(300);
        // Three poison frames scattered through the stream.
        for &i in &[50usize, 150, 250] {
            frames[i].size = 0;
        }
        let clean: Vec<CapturedFrame> =
            frames.iter().copied().filter(|f| !is_poison(f)).collect();
        let mut sync = engine(ResilienceConfig::default());
        let mut want = Vec::new();
        for f in &clean {
            want.extend(sync.observe(f).expect("in-order frame"));
        }
        want.extend(sync.finish().expect("finish"));

        let cfg = IngestConfig::default().with_panic_probe(Some(is_poison));
        let pipeline =
            IngestPipeline::spawn(engine(ResilienceConfig::default()), cfg).expect("spawn");
        for f in &frames {
            pipeline.submit(f).expect("open");
        }
        let report = pipeline.finish().expect("survives the panics");
        // A quarantined frame behaves exactly as if it was never
        // captured: the delivered event stream is the clean stream's.
        assert_eq!(format!("{:?}", report.events), format!("{want:?}"));
        assert_eq!(report.health.frames_quarantined, 3);
        assert_eq!(report.health.workers_restarted, 3);
        assert_eq!(report.quarantine.len(), 3);
        for q in &report.quarantine {
            assert!(q.reason.contains("chaos probe"), "reason: {}", q.reason);
            assert_eq!(q.frame.size, 0);
        }
        assert!(report.is_reconciled());
    }

    #[test]
    fn rejected_frames_quarantine_with_their_engine_error() {
        // Strict policy + one late frame: the engine rejects it, the
        // pipeline quarantines it, the stream continues.
        let mut frames = stream(50);
        frames[20].t_end = Nanos::from_micros(1); // far behind the watermark
        let pipeline =
            IngestPipeline::spawn(engine(ResilienceConfig::default()), IngestConfig::default())
                .expect("spawn");
        for f in &frames {
            pipeline.submit(f).expect("open");
        }
        let report = pipeline.finish().expect("terminates");
        assert_eq!(report.health.frames_quarantined, 1);
        assert_eq!(report.health.workers_restarted, 0, "a rejection is not a panic");
        assert!(
            report.quarantine[0].reason.contains("capture order"),
            "reason: {}",
            report.quarantine[0].reason
        );
        assert!(report.is_reconciled());
    }

    #[test]
    fn shed_oldest_under_overload_keeps_the_ledger_exact() {
        let frames = stream(300);
        let cfg = IngestConfig::default()
            .with_capacity(8)
            .with_overload(OverloadPolicy::ShedOldest)
            .with_sweep_delay(Duration::from_micros(200));
        let pipeline =
            IngestPipeline::spawn(engine(ResilienceConfig::default()), cfg).expect("spawn");
        let mut shed_seen = 0u64;
        for f in &frames {
            if pipeline.submit(f).expect("open") == SubmitOutcome::ShedOldest {
                shed_seen += 1;
            }
        }
        let report = pipeline.finish().expect("terminates");
        assert!(report.health.frames_shed > 0, "a 200 us sweep over an 8-slot ring sheds");
        assert_eq!(report.health.frames_shed, shed_seen);
        assert_eq!(report.health.frames_seen, 300);
        assert!(report.is_reconciled(), "health: {:?}", report.health);
        // Shedding the oldest keeps delivered frames in order, so the
        // engine saw a monotonic stream and dropped nothing as late.
        assert_eq!(report.health.frames_late_dropped, 0);
    }

    #[test]
    fn watchdog_closes_windows_while_the_source_is_silent() {
        let cfg = IngestConfig::default()
            .with_stall_timeout(Some(Duration::from_millis(10)));
        let pipeline =
            IngestPipeline::spawn(engine(ResilienceConfig::default()), cfg).expect("spawn");
        // 300 ms of traffic: 200 ms of training, then a detection window
        // opens and stays open (its end is past the last frame).
        for f in stream(600) {
            pipeline.submit(&f).expect("open");
        }
        // Wait for the worker to drain the ring, then discard everything
        // the *frames* produced (the enrollment batch).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while pipeline.stats().latency_samples < 600
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pipeline.stats().latency_samples, 600, "worker drained the ring");
        pipeline.drain_events();
        // Source goes silent. The watchdog must drive tick() and seal
        // the open detection window without any further frame.
        let mut events = Vec::new();
        while events.is_empty() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
            events.extend(pipeline.drain_events());
        }
        assert!(!events.is_empty(), "watchdog never delivered the stalled window");
        assert!(pipeline.stats().watchdog_ticks > 0);
        let report = pipeline.finish().expect("terminates");
        assert!(report.is_reconciled());
    }

    #[test]
    fn watchdog_tick_does_not_disturb_the_reorder_buffer() {
        // Frames shuffled within the reorder horizon sit in the buffer
        // while the watchdog fires; they must still deliver in order,
        // with nothing dropped — the deadline only seals *windows*, it
        // never bypasses the re-sequencer.
        let resilience = ResilienceConfig::default()
            .with_late_policy(LateFramePolicy::Reorder { max_lateness: 8 });
        let mut frames = stream(200);
        frames.swap(120, 122);
        frames.swap(150, 153);
        let mut sync = engine(resilience.clone());
        let mut want = Vec::new();
        for f in &frames {
            want.extend(sync.observe(f).expect("reorder absorbs the shuffle"));
        }
        want.extend(sync.finish().expect("finish"));

        let cfg = IngestConfig::default()
            .with_stall_timeout(Some(Duration::from_millis(5)));
        let pipeline = IngestPipeline::spawn(engine(resilience), cfg).expect("spawn");
        for (i, f) in frames.iter().enumerate() {
            pipeline.submit(f).expect("open");
            if i == 123 || i == 154 {
                // Let the watchdog fire while shuffled frames are
                // buffered.
                std::thread::sleep(Duration::from_millis(25));
            }
        }
        let report = pipeline.finish().expect("terminates");
        assert_eq!(format!("{:?}", report.events), format!("{want:?}"));
        assert_eq!(report.health.frames_late_dropped, 0);
        assert_eq!(report.health.frames_reordered, sync.health().frames_reordered);
        assert!(report.health.frames_reordered > 0, "the shuffle was real");
        assert!(report.stats.watchdog_ticks > 0, "the stalls must have fired the watchdog");
        assert!(report.is_reconciled());
    }

    #[test]
    fn mpmc_handles_submit_from_several_threads() {
        let pipeline =
            IngestPipeline::spawn(engine(ResilienceConfig::tolerant()), IngestConfig::default())
                .expect("spawn");
        let frames = stream(600);
        let mid = frames.len() / 2;
        let (a, b) = frames.split_at(mid);
        let handle = pipeline.handle();
        let b = b.to_vec();
        let t = std::thread::spawn(move || {
            for f in &b {
                handle.submit(f).expect("open");
            }
        });
        for f in a {
            pipeline.submit(f).expect("open");
        }
        t.join().expect("producer");
        let report = pipeline.finish().expect("terminates");
        assert_eq!(report.health.frames_seen, 600);
        assert!(report.is_reconciled(), "health: {:?}", report.health);
    }

    #[test]
    fn quarantine_retention_is_capped_but_accounting_is_not() {
        let mut frames = stream(120);
        for f in frames.iter_mut().skip(40).take(10) {
            f.size = 0; // 10 poison frames
        }
        let cfg = IngestConfig::default()
            .with_panic_probe(Some(is_poison))
            .with_quarantine_capacity(4);
        let pipeline =
            IngestPipeline::spawn(engine(ResilienceConfig::default()), cfg).expect("spawn");
        for f in &frames {
            pipeline.submit(f).expect("open");
        }
        let report = pipeline.finish().expect("terminates");
        assert_eq!(report.health.frames_quarantined, 10);
        assert_eq!(report.quarantine.len(), 4, "retention cap");
        assert!(report.is_reconciled(), "evictions must not lose accounting");
    }

    #[test]
    fn submitting_after_finish_fails_fast() {
        let pipeline =
            IngestPipeline::spawn(engine(ResilienceConfig::default()), IngestConfig::default())
                .expect("spawn");
        let handle = pipeline.handle();
        pipeline.finish().expect("terminates");
        assert!(matches!(handle.submit(&capture(0, 10, 100)), Err(EngineError::Finished)));
    }
}
